//! Integration: independent computation paths must agree.
//!
//! datalog° engine ↔ affine systems / `LinearLFP` ↔ matrix closures ↔
//! classical graph algorithms ↔ game-theoretic oracles. Disagreement
//! anywhere is a bug in exactly one layer — these tests triangulate.

use datalog_o::core::{
    ground, ground_sparse, naive_eval_system, relational_naive_eval, relational_seminaive_eval,
    BoolDatabase, Database, EvalOutcome, Program, Relation,
};
use datalog_o::pops::{
    Bool, CompleteDistributiveDioid, NaturallyOrdered, PreSemiring, Trop, TropP,
};
use datalog_o::semilin::{
    fwk_closure, fwk_solve, linear_lfp, linear_lfp_auto, linear_naive_lfp, AffineSystem, Matrix,
};
use datalog_o::{engine_naive_eval, engine_seminaive_eval};
use dlo_bench::{dijkstra, GraphInstance};

#[test]
fn engine_equals_dijkstra_equals_linear_lfp() {
    for seed in [7u64, 8, 9, 10] {
        let g = GraphInstance::random(15, 45, 9, seed);
        let (prog, edb) = g.sssp();
        let bools = BoolDatabase::new();

        // Path 1: the datalog° engine (sparse grounding + naive).
        let sys = ground_sparse(&prog, &edb, &bools);
        let EvalOutcome::Converged { output, .. } = naive_eval_system(&sys, 100_000) else {
            panic!()
        };

        // Path 2: Algorithm 2 on the grounded affine system.
        let asys = AffineSystem::from_ground_system(&sys).expect("SSSP is linear");
        let alg2 = linear_lfp_auto(&asys);

        // Path 3: Dijkstra.
        let oracle = dijkstra(&g, 0);

        let l = output.get("L").unwrap();
        for (i, want) in oracle.iter().enumerate() {
            let from_engine = l.get(&vec![g.node(i)]).get();
            assert_eq!(from_engine, *want, "engine vs dijkstra, node {i}");
        }
        for (atom, v) in sys.atoms.iter().zip(&alg2) {
            let node: usize = atom.tuple[0].as_int().unwrap() as usize;
            assert_eq!(v.get(), oracle[node], "LinearLFP vs dijkstra, node {node}");
        }
    }
}

#[test]
fn dense_and_sparse_grounding_agree_on_natural_semirings() {
    for seed in [21u64, 22] {
        let g = GraphInstance::random(7, 18, 5, seed);
        let (prog, edb) = g.sssp();
        let bools = BoolDatabase::new();
        let dense = ground(&prog, &edb, &bools);
        let sparse = ground_sparse(&prog, &edb, &bools);
        let d = naive_eval_system(&dense, 100_000).unwrap();
        let s = naive_eval_system(&sparse, 100_000).unwrap();
        assert_eq!(d, s, "seed {seed}");
        // Sparse grounding must be no larger.
        assert!(sparse.num_monomials() <= dense.num_monomials());
    }
}

#[test]
fn boolean_tc_equals_matrix_closure() {
    let g = GraphInstance::random(10, 26, 1, 33);
    // Engine path (linear TC program, sparse).
    let prog = datalog_o::core::examples_lib::apsp_program::<Bool>();
    let edb = g.bool_edb();
    let sys = ground_sparse(&prog, &edb, &BoolDatabase::new());
    let out = naive_eval_system(&sys, 100_000).unwrap();
    let t = out.get("T");

    // Matrix path: A⁺ = A·A*.
    let mut a = Matrix::<Bool>::zeros(g.n);
    for &(u, v, _) in &g.edges {
        a.set(u, v, Bool(true));
    }
    let aplus = a.mul(&fwk_closure(&a));
    for i in 0..g.n {
        for j in 0..g.n {
            let engine = t
                .map(|r| !r.get(&vec![g.node(i), g.node(j)]).is_zero())
                .unwrap_or(false);
            assert_eq!(engine, aplus.get(i, j).0, "({i}, {j})");
        }
    }
}

#[test]
fn linear_lfp_equals_naive_on_trop_p_random_systems() {
    const P: usize = 2;
    let mut seed = 0x77777777u64;
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for n in [3usize, 6, 10] {
        let a = Matrix::<TropP<P>>::from_fn(n, |_, _| {
            if rng() % 3 == 0 {
                TropP::<P>::from_costs(&[(rng() % 9) as f64, (rng() % 9) as f64])
            } else {
                TropP::<P>::zero()
            }
        });
        let b: Vec<TropP<P>> = (0..n)
            .map(|_| {
                if rng() % 2 == 0 {
                    TropP::<P>::from_costs(&[(rng() % 5) as f64])
                } else {
                    TropP::<P>::zero()
                }
            })
            .collect();
        let (naive, _) = linear_naive_lfp(&a, &b, 1_000_000).unwrap();
        assert_eq!(fwk_solve(&a, &b), naive, "FWK n={n}");
        // Via the affine system too.
        let fns = (0..n)
            .map(|i| {
                let mut f = datalog_o::semilin::AffineFn::new();
                for j in 0..n {
                    if !a.get(i, j).is_zero() {
                        f.add_term(j, a.get(i, j).clone());
                    }
                }
                if !b[i].is_zero() {
                    f.add_const(b[i].clone());
                }
                f
            })
            .collect();
        let sys = AffineSystem { fns };
        assert_eq!(linear_lfp(&sys, P), naive, "Alg2 n={n}");
    }
}

#[test]
fn winmove_three_way_on_larger_random_graphs() {
    for seed in 50..60u64 {
        let inst = datalog_o::wellfounded::WinMoveInstance::random(25, 70, seed);
        inst.check_equivalence()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

/// Four-way agreement on every IDB: grounded (sparse) naive, relational
/// naive, engine naive, engine semi-naive.
fn assert_engine_agrees<P>(program: &Program<P>, pops: &Database<P>, bools: &BoolDatabase)
where
    P: NaturallyOrdered + CompleteDistributiveDioid + Send + Sync,
{
    let grounded = naive_eval_system(&ground_sparse(program, pops, bools), 100_000).unwrap();
    let relational = relational_naive_eval(program, pops, bools, 100_000).unwrap();
    let eng_naive = engine_naive_eval(program, pops, bools, 100_000)
        .expect("compiles")
        .unwrap();
    let eng_semi = engine_seminaive_eval(program, pops, bools, 100_000)
        .expect("compiles")
        .unwrap();
    for (pred, r) in grounded.iter() {
        let empty = Relation::new(r.arity());
        assert_eq!(
            r,
            relational.get(pred).unwrap_or(&empty),
            "relational {pred}"
        );
        assert_eq!(
            r,
            eng_naive.get(pred).unwrap_or(&empty),
            "engine naive {pred}"
        );
        assert_eq!(
            r,
            eng_semi.get(pred).unwrap_or(&empty),
            "engine semi {pred}"
        );
    }
    for (pred, r) in eng_semi.iter() {
        if grounded.get(pred).is_none() {
            assert!(r.is_empty(), "engine derived extra atoms in {pred}");
        }
    }
}

#[test]
fn engine_matches_grounded_and_relational_on_sssp_example_4_1() {
    // Example 4.1: SSSP over Trop⁺ on the Fig. 2(a) graph.
    let (program, edb) = datalog_o::core::examples_lib::sssp_trop("a");
    assert_engine_agrees(&program, &edb, &BoolDatabase::new());
    // Spot-check the paper's answers through the engine path.
    let out = engine_seminaive_eval(&program, &edb, &BoolDatabase::new(), 1000)
        .expect("compiles")
        .unwrap();
    let l = out.get("L").unwrap();
    assert_eq!(l.get(&vec!["a".into()]), Trop::finite(0.0));
    assert_eq!(l.get(&vec!["b".into()]), Trop::finite(1.0));
    assert_eq!(l.get(&vec!["c".into()]), Trop::finite(4.0));
    assert_eq!(l.get(&vec!["d".into()]), Trop::finite(8.0));
}

#[test]
fn engine_matches_grounded_and_relational_on_bom_example_4_2() {
    // Example 4.2 (bill of material) on the Fig. 2(b) subpart graph,
    // over MinNat (a complete distributive dioid, so every backend runs).
    use datalog_o::pops::MinNat;
    let program: Program<MinNat> = datalog_o::core::examples_lib::bom_program();
    let mut pops = Database::new();
    pops.insert(
        "C",
        Relation::from_pairs(
            1,
            vec![
                (vec!["a".into()], MinNat::finite(1)),
                (vec!["b".into()], MinNat::finite(1)),
                (vec!["c".into()], MinNat::finite(1)),
                (vec!["d".into()], MinNat::finite(10)),
            ],
        ),
    );
    let bools = datalog_o::core::examples_lib::fig2b_bool_edges();
    assert_engine_agrees(&program, &pops, &bools);
}

#[test]
fn engine_matches_relational_on_company_control_example_4_3() {
    // Example 4.3 over ℝ₊ with the monotone threshold wrapped around the
    // IDB factor. ℝ₊ is naturally ordered but not a dioid (⊕ = +), so
    // the semi-naïve backends are out; naive paths must still agree.
    // Share weights are dyadic so float sums are exact under any
    // association order.
    let (program, pops, bools) = datalog_o::core::examples_lib::company_control(
        &["a", "b", "c", "d"],
        &[
            ("a", "b", 0.75),
            ("b", "c", 0.375),
            ("a", "c", 0.25),
            ("c", "d", 0.625),
            ("b", "d", 0.25),
        ],
    );
    let grounded = datalog_o::core::naive_eval_sparse(&program, &pops, &bools, 100_000).unwrap();
    let relational = relational_naive_eval(&program, &pops, &bools, 100_000).unwrap();
    let eng = engine_naive_eval(&program, &pops, &bools, 100_000)
        .expect("compiles")
        .unwrap();
    for (pred, r) in grounded.iter() {
        let empty = Relation::new(r.arity());
        assert_eq!(
            r,
            relational.get(pred).unwrap_or(&empty),
            "relational {pred}"
        );
        assert_eq!(r, eng.get(pred).unwrap_or(&empty), "engine {pred}");
    }
    // a controls d transitively: T(a, d) must accumulate past 0.5.
    let t = eng.get("T").unwrap();
    assert!(t.get(&vec!["a".into(), "d".into()]).0.get() > 0.5);
}

#[test]
fn engine_matches_grounded_and_relational_on_tc_random_graphs() {
    for seed in [71u64, 72, 73] {
        let g = GraphInstance::random(12, 30, 9, seed);
        // Trop: linear APSP and the quadratic TC rule.
        let apsp = datalog_o::core::examples_lib::apsp_program::<Trop>();
        assert_engine_agrees(&apsp, &g.trop_edb(), &BoolDatabase::new());
        let quad = datalog_o::core::examples_lib::quadratic_tc_program::<Trop>();
        assert_engine_agrees(&quad, &g.trop_edb(), &BoolDatabase::new());
        // Bool: plain transitive closure.
        let tc = datalog_o::core::examples_lib::apsp_program::<Bool>();
        assert_engine_agrees(&tc, &g.bool_edb(), &BoolDatabase::new());
    }
}

#[test]
fn engine_seminaive_agrees_with_relational_seminaive_step_counts() {
    for seed in [81u64, 82] {
        let g = GraphInstance::random(10, 24, 5, seed);
        let (prog, edb) = g.sssp();
        let bools = BoolDatabase::new();
        let rel = relational_seminaive_eval(&prog, &edb, &bools, 100_000)
            .converged()
            .expect("relational converges");
        let eng = engine_seminaive_eval(&prog, &edb, &bools, 100_000)
            .expect("compiles")
            .converged()
            .expect("engine converges");
        assert_eq!(rel.0, eng.0, "fixpoints differ, seed {seed}");
        assert_eq!(rel.1, eng.1, "step counts differ, seed {seed}");
    }
}

/// Win-move (Sec. 7) through the engine: each alternating-fixpoint step
/// of Van Gelder's construction is the positive datalog° program
/// `W(X) :- { 1 | E(X, Y) ∧ ¬PrevW(Y) }` over 𝔹, with the previous
/// iterate frozen into the Boolean EDB `PrevW`. The three-valued model
/// read off the even/odd limits must match the wellfounded crate's
/// solvers (alternating, Fitting/THREE) and the game-theoretic oracle.
#[test]
fn engine_powered_win_move_matches_three_and_oracle() {
    use datalog_o::core::ast::{Atom, SumProduct, Term};
    use datalog_o::core::bool_relation;
    use datalog_o::core::formula::Formula;
    use datalog_o::wellfounded::{Wf, WinMoveInstance};

    let mut program = Program::<Bool>::new();
    program.rule(
        Atom::new("W", vec![Term::v(0)]),
        vec![SumProduct::new(vec![]).with_condition(
            Formula::atom("E", vec![Term::v(0), Term::v(1)])
                .and(Formula::atom("PrevW", vec![Term::v(1)]).negate()),
        )],
    );

    for seed in [90u64, 91, 92, 93, 94] {
        let inst = WinMoveInstance::random(12, 26, seed);
        let reference = inst
            .check_equivalence()
            .unwrap_or_else(|e| panic!("seed {seed}: reference solvers disagree: {e}"));

        // Alternating fixpoint with the engine as the step evaluator.
        let step = |prev: &Vec<bool>| -> Vec<bool> {
            let mut bools = BoolDatabase::new();
            bools.insert(
                "E",
                bool_relation(
                    2,
                    inst.edges
                        .iter()
                        .map(|&(u, v)| vec![(u as i64).into(), (v as i64).into()]),
                ),
            );
            bools.insert(
                "PrevW",
                bool_relation(
                    1,
                    prev.iter()
                        .enumerate()
                        .filter(|(_, &w)| w)
                        .map(|(i, _)| vec![(i as i64).into()]),
                ),
            );
            let out = engine_seminaive_eval(&program, &Database::<Bool>::new(), &bools, 1000)
                .expect("compiles")
                .converged()
                .expect("one alternating step converges")
                .0;
            let w = out.get("W");
            (0..inst.n)
                .map(|i| {
                    w.map(|r| !r.get(&vec![(i as i64).into()]).is_zero())
                        .unwrap_or(false)
                })
                .collect()
        };
        let mut trace: Vec<Vec<bool>> = vec![vec![false; inst.n]];
        loop {
            let next = step(trace.last().unwrap());
            trace.push(next);
            let t = trace.len() - 1;
            if t >= 3 && trace[t] == trace[t - 2] && trace[t - 1] == trace[t - 3] {
                break;
            }
            if t >= 2 && trace[t] == trace[t - 1] && trace[t] == trace[t - 2] {
                break;
            }
        }
        let t = trace.len() - 1;
        let (l, g) = if t.is_multiple_of(2) {
            (&trace[t], &trace[t - 1])
        } else {
            (&trace[t - 1], &trace[t])
        };
        for i in 0..inst.n {
            let engine_wf = if l[i] {
                Wf::True
            } else if !g[i] {
                Wf::False
            } else {
                Wf::Undef
            };
            assert_eq!(
                engine_wf, reference[i],
                "seed {seed}, node {i}: engine-powered alternating fixpoint \
                 disagrees with the reference solvers"
            );
        }
    }
}

#[test]
fn trop_engine_agrees_with_trop_matrix_on_apsp() {
    let g = GraphInstance::random(9, 24, 9, 44);
    let prog = datalog_o::core::examples_lib::apsp_program::<Trop>();
    let edb = g.trop_edb();
    let sys = ground_sparse(&prog, &edb, &BoolDatabase::new());
    let out = naive_eval_system(&sys, 100_000).unwrap();
    let t = out.get("T").unwrap();

    let mut a = Matrix::<Trop>::zeros(g.n);
    for &(u, v, w) in &g.edges {
        let merged = Trop::finite(w).add(a.get(u, v));
        a.set(u, v, merged);
    }
    let aplus = a.mul(&fwk_closure(&a));
    for i in 0..g.n {
        for j in 0..g.n {
            assert_eq!(
                t.get(&vec![g.node(i), g.node(j)]),
                *aplus.get(i, j),
                "({i}, {j})"
            );
        }
    }
}
