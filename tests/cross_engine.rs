//! Integration: independent computation paths must agree.
//!
//! datalog° engine ↔ affine systems / `LinearLFP` ↔ matrix closures ↔
//! classical graph algorithms ↔ game-theoretic oracles. Disagreement
//! anywhere is a bug in exactly one layer — these tests triangulate.

use datalog_o::core::{ground, ground_sparse, naive_eval_system, BoolDatabase, EvalOutcome};
use datalog_o::pops::{Bool, PreSemiring, Trop, TropP};
use datalog_o::semilin::{
    fwk_closure, fwk_solve, linear_lfp, linear_lfp_auto, linear_naive_lfp, AffineSystem, Matrix,
};
use dlo_bench::{dijkstra, GraphInstance};

#[test]
fn engine_equals_dijkstra_equals_linear_lfp() {
    for seed in [7u64, 8, 9, 10] {
        let g = GraphInstance::random(15, 45, 9, seed);
        let (prog, edb) = g.sssp();
        let bools = BoolDatabase::new();

        // Path 1: the datalog° engine (sparse grounding + naive).
        let sys = ground_sparse(&prog, &edb, &bools);
        let EvalOutcome::Converged { output, .. } = naive_eval_system(&sys, 100_000) else {
            panic!()
        };

        // Path 2: Algorithm 2 on the grounded affine system.
        let asys = AffineSystem::from_ground_system(&sys).expect("SSSP is linear");
        let alg2 = linear_lfp_auto(&asys);

        // Path 3: Dijkstra.
        let oracle = dijkstra(&g, 0);

        let l = output.get("L").unwrap();
        for (i, want) in oracle.iter().enumerate() {
            let from_engine = l.get(&vec![g.node(i)]).get();
            assert_eq!(from_engine, *want, "engine vs dijkstra, node {i}");
        }
        for (atom, v) in sys.atoms.iter().zip(&alg2) {
            let node: usize = atom.tuple[0].as_int().unwrap() as usize;
            assert_eq!(v.get(), oracle[node], "LinearLFP vs dijkstra, node {node}");
        }
    }
}

#[test]
fn dense_and_sparse_grounding_agree_on_natural_semirings() {
    for seed in [21u64, 22] {
        let g = GraphInstance::random(7, 18, 5, seed);
        let (prog, edb) = g.sssp();
        let bools = BoolDatabase::new();
        let dense = ground(&prog, &edb, &bools);
        let sparse = ground_sparse(&prog, &edb, &bools);
        let d = naive_eval_system(&dense, 100_000).unwrap();
        let s = naive_eval_system(&sparse, 100_000).unwrap();
        assert_eq!(d, s, "seed {seed}");
        // Sparse grounding must be no larger.
        assert!(sparse.num_monomials() <= dense.num_monomials());
    }
}

#[test]
fn boolean_tc_equals_matrix_closure() {
    let g = GraphInstance::random(10, 26, 1, 33);
    // Engine path (linear TC program, sparse).
    let prog = datalog_o::core::examples_lib::apsp_program::<Bool>();
    let edb = g.bool_edb();
    let sys = ground_sparse(&prog, &edb, &BoolDatabase::new());
    let out = naive_eval_system(&sys, 100_000).unwrap();
    let t = out.get("T");

    // Matrix path: A⁺ = A·A*.
    let mut a = Matrix::<Bool>::zeros(g.n);
    for &(u, v, _) in &g.edges {
        a.set(u, v, Bool(true));
    }
    let aplus = a.mul(&fwk_closure(&a));
    for i in 0..g.n {
        for j in 0..g.n {
            let engine = t
                .map(|r| !r.get(&vec![g.node(i), g.node(j)]).is_zero())
                .unwrap_or(false);
            assert_eq!(engine, aplus.get(i, j).0, "({i}, {j})");
        }
    }
}

#[test]
fn linear_lfp_equals_naive_on_trop_p_random_systems() {
    const P: usize = 2;
    let mut seed = 0x77777777u64;
    let mut rng = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    for n in [3usize, 6, 10] {
        let a = Matrix::<TropP<P>>::from_fn(n, |_, _| {
            if rng() % 3 == 0 {
                TropP::<P>::from_costs(&[(rng() % 9) as f64, (rng() % 9) as f64])
            } else {
                TropP::<P>::zero()
            }
        });
        let b: Vec<TropP<P>> = (0..n)
            .map(|_| {
                if rng() % 2 == 0 {
                    TropP::<P>::from_costs(&[(rng() % 5) as f64])
                } else {
                    TropP::<P>::zero()
                }
            })
            .collect();
        let (naive, _) = linear_naive_lfp(&a, &b, 1_000_000).unwrap();
        assert_eq!(fwk_solve(&a, &b), naive, "FWK n={n}");
        // Via the affine system too.
        let fns = (0..n)
            .map(|i| {
                let mut f = datalog_o::semilin::AffineFn::new();
                for j in 0..n {
                    if !a.get(i, j).is_zero() {
                        f.add_term(j, a.get(i, j).clone());
                    }
                }
                if !b[i].is_zero() {
                    f.add_const(b[i].clone());
                }
                f
            })
            .collect();
        let sys = AffineSystem { fns };
        assert_eq!(linear_lfp(&sys, P), naive, "Alg2 n={n}");
    }
}

#[test]
fn winmove_three_way_on_larger_random_graphs() {
    for seed in 50..60u64 {
        let inst = datalog_o::wellfounded::WinMoveInstance::random(25, 70, seed);
        inst.check_equivalence()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}

#[test]
fn trop_engine_agrees_with_trop_matrix_on_apsp() {
    let g = GraphInstance::random(9, 24, 9, 44);
    let prog = datalog_o::core::examples_lib::apsp_program::<Trop>();
    let edb = g.trop_edb();
    let sys = ground_sparse(&prog, &edb, &BoolDatabase::new());
    let out = naive_eval_system(&sys, 100_000).unwrap();
    let t = out.get("T").unwrap();

    let mut a = Matrix::<Trop>::zeros(g.n);
    for &(u, v, w) in &g.edges {
        let merged = Trop::finite(w).add(a.get(u, v));
        a.set(u, v, merged);
    }
    let aplus = a.mul(&fwk_closure(&a));
    for i in 0..g.n {
        for j in 0..g.n {
            assert_eq!(
                t.get(&vec![g.node(i), g.node(j)]),
                *aplus.get(i, j),
                "({i}, {j})"
            );
        }
    }
}
