//! PR 6 observability surface: structured trace events reach the
//! configured sink, the `DLO_TRACE` JSONL fallback produces parseable
//! lines, `explain()` attributes time and emissions to compiled rules,
//! and every public evaluation entry point returns populated
//! [`EvalStats`] — all without changing any result (the determinism
//! legs live in `backend_matrix.rs` / `proptest_engine.rs`).

use datalog_o::core::eval::stats::json;
use datalog_o::core::examples_lib as ex;
use datalog_o::core::{parse_query, BoolDatabase, Database};
use datalog_o::pops::Trop;
use datalog_o::{
    engine_eval, engine_eval_interned, engine_eval_with_opts, engine_naive_eval, engine_query_eval,
    engine_query_naive_eval, engine_query_seminaive_eval, engine_seminaive_eval, EngineOpts,
    JoinMode, JsonlSink, MemorySink, Strategy, TraceEvent, TraceHandle,
};

const CAP: usize = 100_000;

/// Serializes the tests whose assertions depend on per-iteration
/// snapshot counts with the one that sets `DLO_STATS_SAMPLE`
/// process-wide (test threads share the environment).
static SNAPSHOT_ENV: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn snapshot_env_guard() -> std::sync::MutexGuard<'static, ()> {
    SNAPSHOT_ENV.lock().unwrap_or_else(|e| e.into_inner())
}

fn sssp() -> (datalog_o::core::Program<Trop>, Database<Trop>) {
    ex::sssp_trop("a")
}

/// A [`MemorySink`] handed through [`EngineOpts::trace`] receives the
/// full structured event stream: `RunStart`, one `Phase` per timed
/// non-loop phase, one `Iteration` per recorded step (matching the
/// stats' iteration snapshots), and a final converged `RunEnd`.
#[test]
fn memory_sink_receives_structured_event_stream() {
    let _env = snapshot_env_guard();
    let (program, edb) = sssp();
    let bools = BoolDatabase::new();
    for strategy in [Strategy::SemiNaive, Strategy::Worklist, Strategy::Priority] {
        let sink = MemorySink::default();
        let opts = EngineOpts {
            trace: Some(TraceHandle::new(sink.clone())),
            ..EngineOpts::default()
        };
        let out =
            engine_eval_with_opts(&program, &edb, &bools, CAP, strategy, &opts).expect("compiles");
        let stats = out.stats();
        let events = sink.events();
        let Some(TraceEvent::RunStart {
            strategy: name,
            threads,
        }) = events.first()
        else {
            panic!("{strategy:?}: stream must open with RunStart, got {events:?}");
        };
        assert_eq!(
            name, &stats.strategy,
            "{strategy:?}: RunStart names the strategy"
        );
        assert_eq!(
            *threads, stats.threads,
            "{strategy:?}: RunStart names the pool size"
        );
        let Some(TraceEvent::RunEnd { steps, converged }) = events.last() else {
            panic!("{strategy:?}: stream must close with RunEnd");
        };
        assert!(*converged, "{strategy:?}: SSSP converges");
        assert_eq!(
            *steps, stats.steps,
            "{strategy:?}: RunEnd steps match stats"
        );
        let iterations: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Iteration(it) => Some(*it),
                _ => None,
            })
            .collect();
        assert_eq!(
            iterations, stats.iterations,
            "{strategy:?}: traced iterations mirror the stats snapshots"
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, TraceEvent::Phase { name, .. } if name == "edb_index")),
            "{strategy:?}: EDB index phase is traced"
        );
    }
}

/// The file sink writes one JSON object per line; every line parses
/// with the in-tree parser, and the decoded events round-trip the run
/// boundaries. This is the `DLO_TRACE=out.jsonl` format, exercised
/// here through an explicit handle so parallel tests cannot interleave
/// streams in one file.
#[test]
fn jsonl_sink_round_trips_through_the_parser() {
    let _env = snapshot_env_guard();
    let (program, edb) = sssp();
    let bools = BoolDatabase::new();
    let path = std::env::temp_dir().join(format!("dlo_trace_test_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let sink = JsonlSink::create(&path).expect("temp trace file");
    let opts = EngineOpts {
        trace: Some(TraceHandle::new(sink)),
        ..EngineOpts::default()
    };
    let out = engine_eval_with_opts(&program, &edb, &bools, CAP, Strategy::Priority, &opts)
        .expect("compiles");
    drop(opts); // drop the handle so the writer flushes before we read
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let _ = std::fs::remove_file(&path);
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    assert!(!lines.is_empty(), "traced run must write events");
    let mut kinds = vec![];
    for line in &lines {
        let v = json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        let kind = v.get("event").and_then(|e| e.as_str()).expect("event tag");
        kinds.push(kind.to_string());
    }
    assert_eq!(kinds.first().map(String::as_str), Some("run_start"));
    assert_eq!(kinds.last().map(String::as_str), Some("run_end"));
    let iteration_lines = kinds.iter().filter(|k| *k == "iteration").count();
    assert_eq!(
        iteration_lines,
        out.stats().iterations.len(),
        "one iteration line per recorded step"
    );
    // The stats block itself speaks the same JSON dialect.
    let stats_json = json::parse(&out.stats().to_json()).expect("stats JSON parses");
    assert_eq!(
        stats_json.get("steps").and_then(|v| v.as_u64()),
        Some(out.stats().steps)
    );
}

/// `explain()` renders a per-rule profile: every compiled plan of the
/// SSSP program shows up with its rule skeleton, and the phase/counter
/// headline agrees with the raw stats.
#[test]
fn explain_attributes_work_to_rules() {
    let (program, edb) = sssp();
    let bools = BoolDatabase::new();
    let out = engine_eval(&program, &edb, &bools, CAP, Strategy::Auto).expect("compiles");
    let stats = out.stats();
    let report = stats.explain();
    assert!(
        report.contains(&stats.strategy),
        "explain names the strategy:\n{report}"
    );
    assert!(!stats.rules.is_empty(), "per-rule profiles populated");
    for rule in &stats.rules {
        assert!(
            report.contains(&rule.label),
            "explain lists rule {:?}:\n{report}",
            rule.label
        );
    }
    // The SSSP recursion joins L with E — some profiled plan says so.
    assert!(
        stats
            .rules
            .iter()
            .any(|r| r.label.contains("L") && r.label.contains("E")),
        "rule labels carry the program skeleton: {:?}",
        stats.rules
    );
    let emitted: u64 = stats.rules.iter().map(|r| r.emits + r.fresh_emits).sum();
    assert_eq!(
        emitted,
        stats.counters.emits + stats.counters.fresh_emits,
        "per-rule emissions sum to the run totals"
    );
}

/// The join-strategy telemetry added with the sorted arrangements:
/// forcing merge joins routes every probing step through
/// `merge_join_steps` (and times the `arrange` phase leg), forcing hash
/// joins routes them all through `hash_join_steps`, the two always sum
/// to `index_probes`, `explain()` tags each probing rule with the
/// resolved strategy, and the stats JSON carries the new fields.
#[test]
fn join_mode_telemetry_attributes_probes_and_arranges() {
    // Quadratic TC probes the *IDB* on both sides of the recursive
    // join, so forced merge mode arranges per-iteration relations (the
    // `arrange` phase leg) rather than only the static EDB.
    let program = ex::quadratic_tc_program::<Trop>();
    let mut edb = Database::new();
    edb.insert(
        "E",
        datalog_o::core::Relation::from_pairs(
            2,
            ["a", "b", "c", "d"]
                .windows(2)
                .map(|w| (vec![w[0].into(), w[1].into()], Trop::finite(1.0))),
        ),
    );
    let bools = BoolDatabase::new();
    let run = |mode: JoinMode| {
        engine_eval_with_opts(
            &program,
            &edb,
            &bools,
            CAP,
            Strategy::SemiNaive,
            &EngineOpts {
                join_mode: Some(mode),
                ..EngineOpts::default()
            },
        )
        .expect("compiles")
    };

    let merged = run(JoinMode::Merge);
    let hashed = run(JoinMode::Hash);
    assert_eq!(
        merged.clone().unwrap(),
        hashed.clone().unwrap(),
        "join mode is a performance knob, not a semantics knob"
    );

    let mc = &merged.stats().counters;
    assert!(mc.merge_join_steps > 0, "forced merge probes arrangements");
    assert_eq!(mc.hash_join_steps, 0, "forced merge never hash-probes");
    assert_eq!(
        mc.merge_join_steps + mc.hash_join_steps,
        mc.index_probes,
        "the split partitions the probe total"
    );
    // The naive driver re-arranges the rebuilt IDB every iteration, so
    // its forced-merge runs must bank arrange-phase time. (Semi-naïve
    // maintains arrangements incrementally inside row insertion —
    // counted by `arrange_batches_merged`, not timed.)
    let naive = datalog_o::engine::engine_naive_eval_with_opts(
        &program,
        &edb,
        &bools,
        CAP,
        &EngineOpts {
            join_mode: Some(JoinMode::Merge),
            ..EngineOpts::default()
        },
    )
    .expect("compiles");
    assert!(
        naive.stats().phases.arrange > 0,
        "arrangement builds are timed under their own phase leg"
    );
    assert_eq!(naive.unwrap(), merged.clone().unwrap());

    let hc = &hashed.stats().counters;
    assert!(hc.hash_join_steps > 0, "forced hash probes prefix indexes");
    assert_eq!(hc.merge_join_steps, 0, "forced hash never merge-probes");
    assert_eq!(hc.merge_join_steps + hc.hash_join_steps, hc.index_probes);
    assert_eq!(
        mc.index_probes, hc.index_probes,
        "the probe total is mode-invariant"
    );

    // explain() tags each probing rule with the strategy it resolved to.
    assert!(
        merged.stats().rules.iter().any(|r| r.join == "merge"),
        "merge-mode profile tags rules: {:?}",
        merged.stats().rules
    );
    assert!(
        hashed.stats().rules.iter().any(|r| r.join == "hash"),
        "hash-mode profile tags rules: {:?}",
        hashed.stats().rules
    );
    assert!(
        merged.stats().explain().contains("merge"),
        "explain renders the join tag"
    );

    // The JSON dialect carries the new counters and the arrange leg.
    let v = json::parse(&merged.stats().to_json()).expect("stats JSON parses");
    let counters = v.get("counters").expect("counters object");
    assert_eq!(
        counters.get("merge_join_steps").and_then(|x| x.as_u64()),
        Some(mc.merge_join_steps)
    );
    assert_eq!(
        counters.get("hash_join_steps").and_then(|x| x.as_u64()),
        Some(mc.hash_join_steps)
    );
    assert!(
        counters.get("arrange_batches_merged").is_some(),
        "spine-merge counter serialized"
    );
    let phases = v.get("phases").expect("phases object");
    assert_eq!(
        phases.get("arrange_ns").and_then(|x| x.as_u64()),
        Some(merged.stats().phases.arrange)
    );
}

/// Every public evaluation entry point — materializing, interned, and
/// query-seeded, across all four strategies — returns stats with the
/// strategy name, a step count, and emission counters filled in.
#[test]
fn every_entry_point_returns_populated_stats() {
    let (program, edb) = sssp();
    let bools = BoolDatabase::new();
    let opts = EngineOpts::default();
    let query = parse_query("?- L(d).").unwrap();
    let mut legs: Vec<(String, datalog_o::EvalStats)> = vec![
        (
            "naive".into(),
            engine_naive_eval(&program, &edb, &bools, CAP)
                .expect("compiles")
                .stats()
                .clone(),
        ),
        (
            "seminaive".into(),
            engine_seminaive_eval(&program, &edb, &bools, CAP)
                .expect("compiles")
                .stats()
                .clone(),
        ),
    ];
    for strategy in [Strategy::SemiNaive, Strategy::Worklist, Strategy::Priority] {
        legs.push((
            format!("engine_eval/{strategy:?}"),
            engine_eval(&program, &edb, &bools, CAP, strategy)
                .expect("compiles")
                .stats()
                .clone(),
        ));
        legs.push((
            format!("engine_eval_interned/{strategy:?}"),
            engine_eval_interned(&program, &edb, &bools, CAP, strategy, &opts)
                .expect("compiles")
                .stats()
                .clone(),
        ));
    }
    legs.push((
        "engine_query_eval".into(),
        engine_query_eval(&program, &query, &edb, &bools, CAP, Strategy::Auto)
            .expect("compiles")
            .stats()
            .clone(),
    ));
    legs.push((
        "engine_query_seminaive_eval".into(),
        engine_query_seminaive_eval(&program, &query, &edb, &bools, CAP, &opts)
            .expect("compiles")
            .stats()
            .clone(),
    ));
    legs.push((
        "engine_query_naive_eval".into(),
        engine_query_naive_eval(&program, &query, &edb, &bools, CAP, &opts)
            .expect("compiles")
            .stats()
            .clone(),
    ));
    for (leg, stats) in &legs {
        assert!(!stats.strategy.is_empty(), "{leg}: strategy recorded");
        assert!(stats.steps > 0, "{leg}: steps recorded");
        assert!(
            stats.counters.emits + stats.counters.fresh_emits > 0,
            "{leg}: emissions recorded"
        );
        assert!(stats.threads > 0, "{leg}: thread count recorded");
        assert!(
            !stats.iterations.is_empty(),
            "{leg}: iteration snapshots recorded"
        );
        // Query entry points pay the rewrite inside setup; everyone
        // times setup.
        assert!(stats.phases.setup > 0, "{leg}: setup phase timed");
    }
}

/// The [`EngineOpts::iter_sample`] knob keeps every k-th per-iteration
/// snapshot: recorded steps are exactly those divisible by `k`,
/// sampled-out steps are accounted in `iterations_dropped`, `last_iter`
/// survives, an attached trace sink still streams **every** iteration,
/// and results are untouched.
#[test]
fn iter_sample_records_every_kth_snapshot() {
    let _env = snapshot_env_guard();
    // A 14-node chain: the semi-naïve loop takes one step per link, so
    // there are enough iterations for the stride to matter.
    let names: Vec<String> = (0..14).map(|i| format!("n{i}")).collect();
    let edges: Vec<(&str, &str)> = names
        .windows(2)
        .map(|w| (w[0].as_str(), w[1].as_str()))
        .collect();
    let (program, edb) = ex::sssp_trop_graph("n0", &edges, |i| 1.0 + i as f64);
    let bools = BoolDatabase::new();

    let full = engine_eval_with_opts(
        &program,
        &edb,
        &bools,
        CAP,
        Strategy::SemiNaive,
        &EngineOpts::default(),
    )
    .expect("compiles");
    let full_iters = &full.stats().iterations;
    assert!(
        full_iters.len() >= 10,
        "chain run yields enough iterations to sample: {}",
        full_iters.len()
    );

    let sink = MemorySink::default();
    let sampled = engine_eval_with_opts(
        &program,
        &edb,
        &bools,
        CAP,
        Strategy::SemiNaive,
        &EngineOpts {
            iter_sample: Some(3),
            trace: Some(TraceHandle::new(sink.clone())),
            ..EngineOpts::default()
        },
    )
    .expect("compiles");
    assert_eq!(
        full.clone().unwrap(),
        sampled.clone().unwrap(),
        "sampling never changes results"
    );
    let stats = sampled.stats();
    let expected: Vec<_> = full_iters
        .iter()
        .copied()
        .filter(|it| it.step % 3 == 0)
        .collect();
    assert_eq!(
        stats.iterations, expected,
        "recorded snapshots are exactly the steps divisible by the stride"
    );
    assert_eq!(
        stats.iterations_dropped as usize,
        full_iters.len() - expected.len(),
        "sampled-out steps are accounted as dropped"
    );
    assert_eq!(
        stats.last_iter,
        full.stats().last_iter,
        "the final step's snapshot survives sampling"
    );
    let traced = sink
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Iteration(_)))
        .count();
    assert_eq!(
        traced,
        full_iters.len(),
        "the trace sink still streams every iteration"
    );
}

/// `DLO_STATS_SAMPLE` is the environment fallback for the same knob; an
/// explicit `iter_sample` wins over it.
#[test]
fn dlo_stats_sample_env_fallback() {
    let _env = snapshot_env_guard();
    let (program, edb) = sssp();
    let bools = BoolDatabase::new();
    std::env::set_var("DLO_STATS_SAMPLE", "2");
    let via_env = engine_eval_with_opts(
        &program,
        &edb,
        &bools,
        CAP,
        Strategy::SemiNaive,
        &EngineOpts::default(),
    )
    .expect("compiles");
    let explicit_wins = engine_eval_with_opts(
        &program,
        &edb,
        &bools,
        CAP,
        Strategy::SemiNaive,
        &EngineOpts {
            iter_sample: Some(1),
            ..EngineOpts::default()
        },
    )
    .expect("compiles");
    std::env::remove_var("DLO_STATS_SAMPLE");
    let unsampled = engine_eval_with_opts(
        &program,
        &edb,
        &bools,
        CAP,
        Strategy::SemiNaive,
        &EngineOpts::default(),
    )
    .expect("compiles");
    assert!(
        via_env.stats().iterations.iter().all(|it| it.step % 2 == 0),
        "env stride keeps even steps only"
    );
    assert!(
        via_env.stats().iterations.len() < unsampled.stats().iterations.len(),
        "env stride drops snapshots"
    );
    assert_eq!(
        explicit_wins.stats().iterations,
        unsampled.stats().iterations,
        "an explicit iter_sample overrides the environment"
    );
    assert_eq!(via_env.unwrap(), unsampled.unwrap(), "results unchanged");
}

/// The `DLO_TRACE` environment fallback appends parseable JSONL without
/// an explicit handle. Runs in-process with other tests, so it only
/// asserts about lines (other engine tests do not set the variable, and
/// the variable is cleared before any of their runs could start here).
#[test]
fn dlo_trace_env_fallback_writes_jsonl() {
    let (program, edb) = sssp();
    let bools = BoolDatabase::new();
    let path = std::env::temp_dir().join(format!("dlo_trace_env_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    std::env::set_var("DLO_TRACE", &path);
    let out = engine_eval(&program, &edb, &bools, CAP, Strategy::Auto).expect("compiles");
    std::env::remove_var("DLO_TRACE");
    assert!(out.is_converged());
    let text = std::fs::read_to_string(&path).expect("DLO_TRACE file written");
    let _ = std::fs::remove_file(&path);
    let mut saw_end = false;
    for line in text.lines().filter(|l| !l.is_empty()) {
        let v = json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        if v.get("event").and_then(|e| e.as_str()) == Some("run_end") {
            saw_end = true;
        }
    }
    assert!(saw_end, "stream contains a run_end event");
}
