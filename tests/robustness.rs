//! Fault-tolerance suite: typed compile errors, resource budgets,
//! cancellation, deadline-bounded termination, and poisoned
//! materializations recovering through `rebuild()`.
//!
//! Three legs:
//!
//! * **Compile regressions** — one test per [`EvalError::Compile`]
//!   cause (arity > 32, mixed-arity heads) pinning that every entry
//!   point returns the typed error instead of panicking.
//! * **Governance properties** — random graph and keyed programs under
//!   tiny budgets, zero deadlines, and pre-cancelled tokens: no panic
//!   escapes, every error carries populated [`EvalStats`], and a
//!   successful re-run after a budget error is bit-identical to the
//!   ungoverned run.
//! * **Injected failures** — edits forced over a ceiling poison the
//!   [`Materialization`]; `rebuild()` recovers bit-identically to a
//!   from-scratch build of the retained EDB, across strategies and
//!   thread counts {1, 2, 4}.
//! * **Graceful degradation** — governed aborts carry a
//!   `PartialOutput`: exact on the priority frontier's settled rows
//!   (differentially pinned against the ungoverned fixpoint at 1, 2,
//!   and 4 threads), a pointwise lower bound elsewhere; and
//!   `eval_with_retry`'s budget-class escalation recovers the full
//!   bit-identical fixpoint from a partial attempt.

use std::time::{Duration, Instant};

use datalog_o::core::ast::{Atom, Factor, SumProduct, Term};
use datalog_o::core::{
    parse_program, parse_query, BoolDatabase, Database, EvalOutcome, FactInsert, Program, Relation,
};
use datalog_o::pops::{Pops, Trop};
use datalog_o::{
    engine_eval_partial_with_opts, engine_eval_with_opts, engine_naive_eval,
    engine_query_eval_partial_with_opts, engine_query_eval_with_opts, engine_seminaive_eval,
    eval_with_retry, BudgetClass, CancelToken, EngineOpts, EvalBudget, EvalError, EvalStats,
    Materialization, RetryPolicy, Strategy,
};
use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;

const CAP: usize = 1_000_000;

fn k(s: &str) -> datalog_o::core::Constant {
    s.into()
}

/// `T(X, Y) :- E(X, Y) + T(X, Z) * E(Z, Y).` over Trop.
fn apsp() -> Program<Trop> {
    parse_program("T(X, Y) :- E(X, Y) + T(X, Z) * E(Z, Y).").unwrap()
}

fn chain_edb(n: usize) -> Database<Trop> {
    let mut db = Database::new();
    db.insert(
        "E",
        Relation::from_pairs(
            2,
            (0..n).map(|i| {
                (
                    vec![k(&format!("n{i}")), k(&format!("n{}", i + 1))],
                    Trop::finite(1.0),
                )
            }),
        ),
    );
    db
}

fn opts_with(budget: EvalBudget, cancel: Option<CancelToken>, threads: usize) -> EngineOpts {
    EngineOpts {
        threads: Some(threads),
        budget,
        cancel,
        ..EngineOpts::default()
    }
}

/// An error's stats must be a real snapshot of the aborted run, not a
/// default: governance counters recorded, strategy label set.
fn assert_populated(err: &EvalError, governed: bool) {
    let stats = err
        .stats()
        .unwrap_or_else(|| panic!("{} error must carry stats", err.kind()));
    assert!(
        !stats.strategy.is_empty(),
        "{}: stats.strategy empty",
        err.kind()
    );
    if governed {
        assert!(
            stats.counters.budget_checks > 0 || stats.counters.cancel_polls > 0,
            "{}: governed abort recorded no checks",
            err.kind()
        );
    }
}

// ---------------------------------------------------------------------
// Compile regressions: one per CompileError cause.
// ---------------------------------------------------------------------

/// An atom wider than the engine's 32-column storage limit is a typed
/// compile error from every entry point — never a panic.
#[test]
fn arity_over_32_is_a_typed_compile_error() {
    let mut p = Program::<Trop>::new();
    let wide: Vec<Term> = (0..33u32).map(Term::v).collect();
    p.rule(
        Atom::new("W", wide.clone()),
        vec![SumProduct::new(vec![Factor::atom("A", wide)])],
    );
    let edb = Database::new();
    let bools = BoolDatabase::new();
    let err = engine_naive_eval(&p, &edb, &bools, 10).expect_err("arity 33 must not compile");
    match &err {
        EvalError::Compile { detail } => {
            assert!(detail.contains("ArityTooLarge"), "got: {detail}");
        }
        other => panic!("expected EvalError::Compile, got {other:?}"),
    }
    assert_eq!(err.kind(), "compile");
    assert!(err.stats().is_none(), "compile errors predate any run");
    // Same rejection from the semi-naïve, frontier, and query paths.
    assert_eq!(
        engine_seminaive_eval(&p, &edb, &bools, 10)
            .expect_err("semi-naive")
            .kind(),
        "compile"
    );
    for strategy in [Strategy::Worklist, Strategy::Priority] {
        let e = engine_eval_with_opts(&p, &edb, &bools, 10, strategy, &EngineOpts::default())
            .expect_err("frontier");
        assert_eq!(e.kind(), "compile");
    }
    let mat = Materialization::new(
        &p,
        &edb,
        &bools,
        10,
        Strategy::SemiNaive,
        &EngineOpts::default(),
    );
    assert_eq!(mat.err().expect("materialization").kind(), "compile");
}

/// One head predicate at two arities is rejected the same way (the
/// in-crate regression covers `engine_naive_eval`; this pins the query
/// rewrite and Materialization fronts).
#[test]
fn mixed_arity_heads_are_typed_compile_errors_everywhere() {
    let mut p = Program::<Trop>::new();
    p.rule(
        Atom::new("T", vec![Term::v(0)]),
        vec![SumProduct::new(vec![Factor::atom("A", vec![Term::v(0)])])],
    );
    p.rule(
        Atom::new("T", vec![Term::v(0), Term::v(1)]),
        vec![SumProduct::new(vec![Factor::atom(
            "B",
            vec![Term::v(0), Term::v(1)],
        )])],
    );
    let edb = Database::new();
    let bools = BoolDatabase::new();
    for strategy in [Strategy::SemiNaive, Strategy::Worklist, Strategy::Priority] {
        let e = engine_eval_with_opts(&p, &edb, &bools, 10, strategy, &EngineOpts::default())
            .expect_err("mixed-arity heads must not compile");
        match &e {
            EvalError::Compile { detail } => {
                assert!(detail.contains("HeadArityMismatch"), "got: {detail}");
            }
            other => panic!("expected EvalError::Compile, got {other:?}"),
        }
    }
    let q = parse_query("?- T(\"a\").").unwrap();
    let e = engine_query_eval_with_opts(
        &p,
        &q,
        &edb,
        &bools,
        10,
        Strategy::SemiNaive,
        &EngineOpts::default(),
    )
    .expect_err("query front");
    assert_eq!(e.kind(), "compile");
    let mat = Materialization::new(
        &p,
        &edb,
        &bools,
        10,
        Strategy::SemiNaive,
        &EngineOpts::default(),
    );
    assert_eq!(mat.err().expect("materialization front").kind(), "compile");
}

// ---------------------------------------------------------------------
// Deadline-bounded termination on a genuinely divergent program.
// ---------------------------------------------------------------------

/// An unguarded counter mints a fresh key every step — the program has
/// no finite fixpoint. A wall-clock deadline must stop the run promptly
/// (checks are per phase; phases here are microseconds) with a typed
/// error carrying the partial stats.
#[test]
fn deadline_bounds_a_divergent_run() {
    let program: Program<Trop> = parse_program(
        "N(X) :- V(X).\n\
         N(X + 1) :- N(X).",
    )
    .unwrap();
    let mut edb = Database::new();
    edb.insert(
        "V",
        Relation::from_pairs(1, vec![(vec![0i64.into()], Trop::finite(0.0))]),
    );
    let bools = BoolDatabase::new();
    let deadline = Duration::from_millis(200);
    for strategy in [Strategy::SemiNaive, Strategy::Worklist, Strategy::Priority] {
        let opts = opts_with(EvalBudget::default().with_deadline(deadline), None, 1);
        let t = Instant::now();
        let err = engine_eval_with_opts(&program, &edb, &bools, usize::MAX, strategy, &opts)
            .expect_err("negative cycle cannot converge");
        let elapsed = t.elapsed();
        assert_eq!(err.kind(), "deadline", "{strategy:?}");
        assert_populated(&err, true);
        assert!(
            elapsed < deadline * 2 + Duration::from_millis(250),
            "{strategy:?}: took {elapsed:?} against a {deadline:?} deadline"
        );
    }
}

/// A pre-cancelled token stops every strategy at its first phase
/// boundary, with `cancel_polls` recorded in the carried stats.
#[test]
fn pre_cancelled_token_stops_every_strategy() {
    let program = apsp();
    let edb = chain_edb(64);
    let bools = BoolDatabase::new();
    let token = CancelToken::new();
    token.cancel();
    for strategy in [Strategy::SemiNaive, Strategy::Worklist, Strategy::Priority] {
        let opts = opts_with(EvalBudget::default(), Some(token.clone()), 1);
        let err = engine_eval_with_opts(&program, &edb, &bools, CAP, strategy, &opts)
            .expect_err("pre-cancelled run must not complete");
        assert_eq!(err.kind(), "cancelled", "{strategy:?}");
        let stats = err.stats().expect("cancelled carries stats");
        assert!(stats.counters.cancel_polls > 0, "{strategy:?}");
    }
}

/// Governance counters are thread-invariant: a budgeted-but-successful
/// run reports identical deterministic stats (and nonzero
/// `budget_checks`) at 1, 2, and 4 threads.
#[test]
fn budget_counters_are_thread_invariant() {
    let program = apsp();
    let edb = chain_edb(24);
    let bools = BoolDatabase::new();
    for strategy in [Strategy::SemiNaive, Strategy::Worklist, Strategy::Priority] {
        let mut baseline: Option<(EvalOutcome<Trop>, EvalStats)> = None;
        for threads in [1usize, 2, 4] {
            let opts = EngineOpts {
                threads: Some(threads),
                par_threshold: 1,
                chunk_min: 2,
                budget: EvalBudget::default().with_max_steps(1_000_000),
                ..EngineOpts::default()
            };
            let out = engine_eval_with_opts(&program, &edb, &bools, CAP, strategy, &opts)
                .expect("well within budget");
            let stats = out.stats().clone();
            assert!(stats.counters.budget_checks > 0, "{strategy:?}");
            match &baseline {
                None => baseline = Some((out, stats)),
                Some((b_out, b_stats)) => {
                    assert_eq!(
                        b_out, &out,
                        "{strategy:?}: outcome differs at {threads} threads"
                    );
                    assert_eq!(
                        b_stats.invariants(),
                        stats.invariants(),
                        "{strategy:?}: governed stats differ at {threads} threads"
                    );
                }
            }
        }
    }
}

/// Ungoverned runs pay nothing observable: both counters stay zero.
#[test]
fn ungoverned_runs_record_no_governance_counters() {
    let program = apsp();
    let edb = chain_edb(8);
    let bools = BoolDatabase::new();
    for strategy in [Strategy::SemiNaive, Strategy::Worklist, Strategy::Priority] {
        let out = engine_eval_with_opts(
            &program,
            &edb,
            &bools,
            CAP,
            strategy,
            &EngineOpts::default(),
        )
        .expect("compiles");
        let s = out.stats();
        assert_eq!(s.counters.budget_checks, 0, "{strategy:?}");
        assert_eq!(s.counters.cancel_polls, 0, "{strategy:?}");
    }
}

// ---------------------------------------------------------------------
// Injected failures: poisoning and recovery.
// ---------------------------------------------------------------------

/// Forces an edit over a one-row budget, then checks the full poisoned
/// lifecycle: the edit reports the typed error, later calls return
/// [`EvalError::Poisoned`], `rebuild()` under a restored budget
/// recovers, and the recovered state is bit-identical to a from-scratch
/// build over the retained (post-edit) EDB.
fn assert_poison_and_rebuild(strategy: Strategy, threads: usize) {
    let program = apsp();
    let edb = chain_edb(12);
    let bools = BoolDatabase::new();
    let opts = EngineOpts {
        threads: Some(threads),
        par_threshold: 1,
        chunk_min: 2,
        ..EngineOpts::default()
    };
    let mut mat = Materialization::new(&program, &edb, &bools, CAP, strategy, &opts)
        .expect("ungoverned build succeeds");
    assert!(mat.poisoned().is_none());

    // A long bridge edge derives many new paths: guaranteed to trip a
    // one-row emit ceiling mid-loop.
    let edit = [FactInsert::new(
        "E",
        vec![k("n12"), k("n0")],
        Trop::finite(0.5),
    )];
    mat.set_budget(EvalBudget::default().with_max_rows(1));
    let err = mat.insert(&edit).expect_err("one-row ceiling must trip");
    assert_eq!(err.kind(), "budget", "{strategy:?}/{threads}");
    assert_populated(&err, true);
    let reason = mat.poisoned().expect("failed edit poisons").to_string();
    assert!(
        reason.contains("rebuild"),
        "reason advertises recovery: {reason}"
    );

    // Every entry point on a poisoned handle short-circuits.
    assert_eq!(mat.insert(&edit).expect_err("poisoned").kind(), "poisoned");
    assert_eq!(
        mat.delete(&[datalog_o::core::FactDelete::new(
            "E",
            vec![k("n0"), k("n1")]
        )])
        .expect_err("poisoned")
        .kind(),
        "poisoned"
    );
    let q = parse_query("?- T(\"n0\", Y).").unwrap();
    assert_eq!(mat.query(&q).expect_err("poisoned").kind(), "poisoned");

    // A rebuild under the tripping budget fails and stays poisoned.
    assert_eq!(
        mat.rebuild().expect_err("budget still trips").kind(),
        "budget"
    );
    assert!(mat.poisoned().is_some());

    // Restore the budget: rebuild re-derives from the retained EDB
    // (which includes the failed edit's staged facts) and the handle is
    // live again.
    mat.set_budget(EvalBudget::unlimited());
    let epoch_before = mat.epoch();
    mat.rebuild().expect("ungoverned rebuild succeeds");
    assert!(mat.poisoned().is_none());
    assert!(mat.epoch() > epoch_before, "epochs stay monotone");

    let recovered = mat.output().materialize();
    let scratch = Materialization::new(&program, mat.edb(), &bools, CAP, strategy, &opts)
        .expect("from-scratch build on the retained EDB");
    let mut scratch = scratch;
    assert_eq!(
        recovered,
        scratch.output().materialize(),
        "{strategy:?}/{threads}: recovered state is not the from-scratch fixpoint"
    );

    // And the recovered handle accepts edits again.
    mat.insert(&[FactInsert::new(
        "E",
        vec![k("n3"), k("n0")],
        Trop::finite(2.0),
    )])
    .expect("recovered handle is live");
}

#[test]
fn poisoned_materialization_rebuilds_bit_identically() {
    for strategy in [Strategy::SemiNaive, Strategy::Worklist, Strategy::Priority] {
        for threads in [1usize, 2, 4] {
            assert_poison_and_rebuild(strategy, threads);
        }
    }
}

/// Cancellation mid-lifecycle poisons too, and `set_cancel(None)`
/// plus `rebuild()` recovers.
#[test]
fn cancelled_edit_poisons_and_rebuild_recovers() {
    let program = apsp();
    let edb = chain_edb(6);
    let bools = BoolDatabase::new();
    let mut mat = Materialization::new(
        &program,
        &edb,
        &bools,
        CAP,
        Strategy::SemiNaive,
        &EngineOpts::default(),
    )
    .expect("compiles");
    let token = CancelToken::new();
    token.cancel();
    mat.set_cancel(Some(token));
    let err = mat
        .insert(&[FactInsert::new(
            "E",
            vec![k("n6"), k("n0")],
            Trop::finite(1.0),
        )])
        .expect_err("pre-cancelled edit");
    assert_eq!(err.kind(), "cancelled");
    assert!(mat.poisoned().is_some());
    mat.set_cancel(None);
    mat.rebuild().expect("rebuild after clearing the token");
    assert!(mat.poisoned().is_none());
}

/// Invalid batches are rejected *before* staging: the typed error comes
/// back, but the handle is not poisoned and keeps accepting edits.
#[test]
fn invalid_edits_reject_without_poisoning() {
    let program = apsp();
    let edb = chain_edb(4);
    let bools = BoolDatabase::new();
    let mut mat = Materialization::new(
        &program,
        &edb,
        &bools,
        CAP,
        Strategy::SemiNaive,
        &EngineOpts::default(),
    )
    .expect("compiles");
    let unknown = mat
        .insert(&[FactInsert::new("Nope", vec![k("a")], Trop::finite(1.0))])
        .expect_err("unknown predicate");
    assert_eq!(unknown.kind(), "compile");
    let arity = mat
        .insert(&[FactInsert::new("E", vec![k("a")], Trop::finite(1.0))])
        .expect_err("arity mismatch");
    assert_eq!(arity.kind(), "compile");
    assert!(mat.poisoned().is_none(), "bad input must not poison");
    mat.insert(&[FactInsert::new(
        "E",
        vec![k("n4"), k("n0")],
        Trop::finite(1.0),
    )])
    .expect("handle still live");
}

// ---------------------------------------------------------------------
// Governance properties on random programs.
// ---------------------------------------------------------------------

fn random_edb(edges: &[(usize, usize, u8)]) -> Database<Trop> {
    let mut db = Database::new();
    db.insert(
        "E",
        Relation::from_pairs(
            2,
            edges.iter().map(|&(u, v, w)| {
                (
                    vec![(u as i64).into(), (v as i64).into()],
                    Trop::finite(w as f64),
                )
            }),
        ),
    );
    db
}

fn edges_strategy() -> impl PropStrategy<Value = Vec<(usize, usize, u8)>> {
    (3usize..8).prop_flat_map(|n| proptest::collection::vec(((0..n), (0..n), 1u8..9), 1..=3 * n))
}

/// Every governed run either matches the ungoverned outcome exactly or
/// returns a typed, stats-carrying error — and a later ungoverned run
/// on the same inputs is bit-identical to the reference. No panics.
fn assert_governed_behavior(
    program: &Program<Trop>,
    edb: &Database<Trop>,
    bools: &BoolDatabase,
) -> Result<(), TestCaseError> {
    for strategy in [Strategy::SemiNaive, Strategy::Worklist, Strategy::Priority] {
        let free = engine_eval_with_opts(
            program,
            edb,
            bools,
            CAP,
            strategy,
            &opts_with(EvalBudget::default(), None, 2),
        )
        .expect("ungoverned reference run");
        let pre_cancelled = {
            let t = CancelToken::new();
            t.cancel();
            t
        };
        let regimes: Vec<(&str, EngineOpts)> = vec![
            (
                "steps-0",
                opts_with(EvalBudget::default().with_max_steps(0), None, 2),
            ),
            (
                "steps-1",
                opts_with(EvalBudget::default().with_max_steps(1), None, 2),
            ),
            (
                "rows-1",
                opts_with(EvalBudget::default().with_max_rows(1), None, 2),
            ),
            (
                "rows-32",
                opts_with(EvalBudget::default().with_max_rows(32), None, 2),
            ),
            (
                "deadline-0",
                opts_with(EvalBudget::default().with_deadline(Duration::ZERO), None, 2),
            ),
            (
                "cancelled",
                opts_with(EvalBudget::default(), Some(pre_cancelled), 2),
            ),
        ];
        for (label, opts) in &regimes {
            match engine_eval_with_opts(program, edb, bools, CAP, strategy, opts) {
                Ok(out) => prop_assert_eq!(
                    &free,
                    &out,
                    "{:?}/{}: governed success must match the ungoverned outcome",
                    strategy,
                    label
                ),
                Err(err) => {
                    prop_assert!(
                        matches!(err.kind(), "budget" | "deadline" | "cancelled"),
                        "{:?}/{}: unexpected error kind {}",
                        strategy,
                        label,
                        err.kind()
                    );
                    assert_populated(&err, true);
                }
            }
        }
        // Re-running ungoverned after the governed failures is still
        // bit-identical: aborted runs leak no state.
        let again = engine_eval_with_opts(
            program,
            edb,
            bools,
            CAP,
            strategy,
            &opts_with(EvalBudget::default(), None, 2),
        )
        .expect("ungoverned re-run");
        prop_assert_eq!(&free, &again, "{:?}: re-run after aborts differs", strategy);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Budgets, zero deadlines, and pre-cancelled tokens on random
    /// APSP instances: no panics, typed errors with populated stats,
    /// and bit-identical ungoverned re-runs.
    #[test]
    fn governed_runs_never_panic_on_random_graphs(edges in edges_strategy()) {
        let program = apsp();
        let edb = random_edb(&edges);
        assert_governed_behavior(&program, &edb, &BoolDatabase::new())?;
    }

    /// The same property on a head-key-minting program (the counter
    /// rule mints fresh constants, exercising the minted-id ceiling's
    /// code path alongside steps/rows/deadline).
    #[test]
    fn governed_runs_never_panic_on_keyed_programs(edges in edges_strategy()) {
        let program: Program<Trop> = parse_program(
            "R(X) :- V(X).\n\
             R(X + 1) :- R(X) | X < 6.",
        )
        .unwrap();
        let mut edb = random_edb(&edges);
        edb.insert(
            "V",
            Relation::from_pairs(1, (0..4i64).map(|i| (vec![i.into()], Trop::finite(i as f64)))),
        );
        assert_governed_behavior(&program, &edb, &BoolDatabase::new())?;
        // And the minted-id ceiling specifically: the counter mints
        // fresh keys, so a zero ceiling must abort with the Rows/Minted
        // budget error rather than panicking.
        let opts = opts_with(EvalBudget::default().with_max_minted(0), None, 2);
        match engine_eval_with_opts(&program, &edb, &BoolDatabase::new(), CAP,
                                    Strategy::SemiNaive, &opts) {
            Ok(_) => {}
            Err(err) => {
                prop_assert_eq!(err.kind(), "budget");
                assert_populated(&err, true);
            }
        }
    }

    /// Materialization edits under tiny budgets on random graphs: the
    /// edit either succeeds or poisons with a typed error, and
    /// `rebuild()` under no budget always recovers to exactly the
    /// from-scratch fixpoint of the retained EDB.
    #[test]
    fn governed_edits_poison_and_recover_on_random_graphs(edges in edges_strategy()) {
        let program = apsp();
        let edb = random_edb(&edges);
        let bools = BoolDatabase::new();
        let opts = EngineOpts::default();
        let mut mat = Materialization::new(&program, &edb, &bools, CAP,
                                           Strategy::SemiNaive, &opts)
            .expect("compiles");
        mat.set_budget(EvalBudget::default().with_max_rows(1));
        let edit = [FactInsert::new("E", vec![0i64.into(), 1i64.into()], Trop::finite(0.5))];
        match mat.insert(&edit) {
            Ok(_) => prop_assert!(mat.poisoned().is_none()),
            Err(err) => {
                prop_assert_eq!(err.kind(), "budget");
                assert_populated(&err, true);
                prop_assert!(mat.poisoned().is_some());
                mat.set_budget(EvalBudget::unlimited());
                mat.rebuild().expect("ungoverned rebuild");
            }
        }
        prop_assert!(mat.poisoned().is_none());
        let got = mat.output().materialize();
        let oracle = engine_seminaive_eval(&program, mat.edb(), &bools, CAP)
            .expect("compiles")
            .converged()
            .expect("bounded")
            .0;
        for (pred, r) in oracle.iter() {
            let empty = Relation::new(r.arity());
            prop_assert_eq!(r, got.get(pred).unwrap_or(&empty),
                "{} diverges from from-scratch after recovery", pred);
        }
    }
}

// ---------------------------------------------------------------------
// Graceful degradation: partial results on abort, retry escalation.
// ---------------------------------------------------------------------

/// The PR's acceptance differential: a priority-strategy run aborted by
/// a step budget returns a partial whose **settled** rows carry exactly
/// the ungoverned fixpoint's values — at 1, 2, and 4 threads — and the
/// settled set itself is thread-invariant (budget aborts are
/// deterministic: steps count value buckets).
#[test]
fn aborted_priority_run_returns_exact_settled_partial() {
    let program = apsp();
    let edb = chain_edb(200);
    let bools = BoolDatabase::new();
    let full = engine_eval_with_opts(
        &program,
        &edb,
        &bools,
        CAP,
        Strategy::Priority,
        &EngineOpts::default(),
    )
    .expect("reference run")
    .unwrap();

    let mut settled_baseline: Option<Database<Trop>> = None;
    for threads in [1usize, 2, 4] {
        let opts = EngineOpts {
            threads: Some(threads),
            par_threshold: 1,
            chunk_min: 2,
            budget: EvalBudget::default().with_max_steps(40),
            ..EngineOpts::default()
        };
        let aborted =
            engine_eval_partial_with_opts(&program, &edb, &bools, CAP, Strategy::Priority, &opts)
                .expect_err("a 40-step budget must trip on a 200-node chain");
        assert_eq!(aborted.error().kind(), "budget", "{threads} threads");
        assert_populated(aborted.error(), true);
        let partial = aborted.partial();
        assert!(partial.is_exact(), "priority partials are exact");
        assert!(
            partial.settled().settled_rows() > 0,
            "{threads} threads: settled prefix must be non-empty"
        );
        let settled = partial.materialize_settled();
        let mut checked = 0usize;
        for (pred, rel) in settled.iter() {
            let full_rel = full.get(pred).expect("settled pred exists in the fixpoint");
            for (t, v) in rel.support() {
                assert_eq!(
                    full_rel.get(t),
                    v.clone(),
                    "{threads} threads: settled {pred}({t:?}) must be final"
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "the differential actually compared rows");
        // Decode-free probe agrees with the decoded settled relation.
        let t0 = vec![k("n0"), k("n1")];
        if let Some(v) = partial.settled_value("T", &t0) {
            assert_eq!(full.get("T").unwrap().get(&t0), v.clone());
        }
        match &settled_baseline {
            None => settled_baseline = Some(settled),
            Some(base) => assert_eq!(base, &settled, "settled set differs at {threads} threads"),
        }
    }
}

/// `eval_with_retry` escalation: attempt 0 trips its step budget, the
/// retry climbs one rung (warm-started from the partial's interner) and
/// converges to the full bit-identical fixpoint, with the per-attempt
/// report recording both rungs.
#[test]
fn retry_escalation_reaches_the_full_fixpoint() {
    let program = apsp();
    let edb = chain_edb(120);
    let bools = BoolDatabase::new();
    let full = engine_eval_with_opts(
        &program,
        &edb,
        &bools,
        CAP,
        Strategy::Priority,
        &EngineOpts::default(),
    )
    .expect("reference run")
    .unwrap();
    let mut backoffs: Vec<usize> = vec![];
    let policy = RetryPolicy::from_class(BudgetClass::Interactive)
        .with_ladder(vec![
            EvalBudget::default().with_max_steps(20),
            EvalBudget::unlimited(),
        ])
        .with_backoff(move |attempt| backoffs.push(attempt));
    let base = opts_with(EvalBudget::default(), None, 2);
    let (outcome, report) = eval_with_retry(
        &program,
        &edb,
        &bools,
        CAP,
        Strategy::Priority,
        &base,
        policy,
    )
    .expect("the second rung is unbounded");
    assert_eq!(report.attempts_made(), 2);
    assert_eq!(report.attempts[0].outcome, "budget");
    assert!(!report.attempts[0].warm_start);
    assert!(report.attempts[0].settled_rows > 0, "partial was non-empty");
    assert_eq!(report.attempts[1].outcome, "converged");
    assert!(report.attempts[1].warm_start);
    let (iout, _) = outcome.converged().expect("bounded");
    assert_eq!(iout.materialize(), full, "escalated run is the fixpoint");
}

/// A non-recoverable stop (pre-cancelled token) fails immediately: no
/// rungs are consumed beyond the first attempt, and the failure carries
/// the attempt trail plus the last partial.
#[test]
fn retry_does_not_escalate_past_cancellation() {
    let program = apsp();
    let edb = chain_edb(16);
    let bools = BoolDatabase::new();
    let token = CancelToken::new();
    token.cancel();
    let policy = RetryPolicy::from_class(BudgetClass::Interactive);
    let base = opts_with(EvalBudget::default(), Some(token), 1);
    let failure = eval_with_retry(
        &program,
        &edb,
        &bools,
        CAP,
        Strategy::Priority,
        &base,
        policy,
    )
    .expect_err("cancellation is not recoverable");
    assert_eq!(failure.error().kind(), "cancelled");
    assert_eq!(failure.report.attempts_made(), 1);
    assert_eq!(failure.report.attempts[0].outcome, "cancelled");
}

/// The query path degrades the same way: a demanded priority run
/// stopped by its budget returns settled partial answers that are
/// value-exact against the full fixpoint's query restriction.
#[test]
fn aborted_query_returns_exact_settled_partial_answers() {
    let program = apsp();
    let edb = chain_edb(200);
    let bools = BoolDatabase::new();
    let full = engine_eval_with_opts(
        &program,
        &edb,
        &bools,
        CAP,
        Strategy::Priority,
        &EngineOpts::default(),
    )
    .expect("reference run")
    .unwrap();
    let q = parse_query("?- T(\"n0\", Y).").unwrap();
    let opts = opts_with(EvalBudget::default().with_max_steps(30), None, 1);
    let aborted = engine_query_eval_partial_with_opts(
        &program,
        &q,
        &edb,
        &bools,
        CAP,
        Strategy::Priority,
        &opts,
    )
    .expect_err("a 30-step budget must trip on the demanded 200-chain");
    assert_eq!(aborted.error().kind(), "budget");
    assert!(aborted.is_exact(), "priority query partials are exact");
    let partial_answers = aborted.partial_answers();
    let full_t = full.get("T").expect("T in fixpoint");
    let mut rows = 0usize;
    for (t, v) in partial_answers.support() {
        assert_eq!(full_t.get(t), v.clone(), "partial answer T({t:?})");
        rows += 1;
    }
    assert!(rows > 0, "some answers settled before the abort");
}

/// `BudgetClass` presets are ordered and terminate at `Unbounded`, and
/// `EngineOpts::for_class` installs the preset budget.
#[test]
fn budget_classes_escalate_to_unbounded() {
    assert_eq!(BudgetClass::Interactive.next_up(), Some(BudgetClass::Batch));
    assert_eq!(BudgetClass::Batch.next_up(), Some(BudgetClass::Unbounded));
    assert_eq!(BudgetClass::Unbounded.next_up(), None);
    assert_eq!(BudgetClass::Interactive.ladder().len(), 3);
    assert!(BudgetClass::Interactive.budget().is_limited());
    assert!(!BudgetClass::Unbounded.budget().is_limited());
    let opts = EngineOpts::for_class(BudgetClass::Interactive);
    assert!(opts.budget.is_limited());
    // An Unbounded-class run behaves like an ungoverned one.
    let program = apsp();
    let edb = chain_edb(8);
    let bools = BoolDatabase::new();
    let free = engine_eval_with_opts(
        &program,
        &edb,
        &bools,
        CAP,
        Strategy::Priority,
        &EngineOpts::default(),
    )
    .expect("compiles");
    let classed = engine_eval_with_opts(
        &program,
        &edb,
        &bools,
        CAP,
        Strategy::Priority,
        &EngineOpts::for_class(BudgetClass::Unbounded),
    )
    .expect("compiles");
    assert_eq!(free, classed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Partial outputs are pointwise lower bounds of the fixpoint on
    /// every strategy (the `J(t) ⊑ lfp` loop invariant), and exact on
    /// the priority frontier's settled rows.
    #[test]
    fn partials_are_lower_bounds_and_priority_settled_rows_are_exact(
        edges in edges_strategy()
    ) {
        let program = apsp();
        let edb = random_edb(&edges);
        let bools = BoolDatabase::new();
        let full = engine_eval_with_opts(
            &program, &edb, &bools, CAP, Strategy::Priority, &EngineOpts::default(),
        ).expect("reference").unwrap();
        for strategy in [Strategy::SemiNaive, Strategy::Worklist, Strategy::Priority] {
            for max_steps in [0u64, 1, 2, 4] {
                let opts = opts_with(
                    EvalBudget::default().with_max_steps(max_steps), None, 2);
                let Err(aborted) = engine_eval_partial_with_opts(
                    &program, &edb, &bools, CAP, strategy, &opts,
                ) else { continue };
                prop_assert_eq!(aborted.error().kind(), "budget");
                let partial = aborted.partial();
                prop_assert_eq!(
                    partial.is_exact(),
                    matches!(strategy, Strategy::Priority),
                    "exactness is a priority-only promise"
                );
                // Every partial row sits ⊑-below its fixpoint value.
                let snap = partial.materialize();
                for (pred, rel) in snap.iter() {
                    for (t, v) in rel.support() {
                        let fv = full.get(pred)
                            .map(|r| r.get(t))
                            .unwrap_or_else(Trop::bottom);
                        prop_assert!(
                            v.leq(&fv),
                            "{:?}: partial {}({:?}) = {:?} above fixpoint {:?}",
                            strategy, pred, t, v, fv
                        );
                    }
                }
                // Settled rows are bit-exact.
                let settled = partial.materialize_settled();
                if partial.is_exact() {
                    for (pred, rel) in settled.iter() {
                        for (t, v) in rel.support() {
                            prop_assert_eq!(
                                full.get(pred).expect("pred in fixpoint").get(t),
                                v.clone(),
                                "settled {}({:?}) not final", pred, t
                            );
                        }
                    }
                }
            }
        }
    }

    /// The priority frontier's settled set under a step budget is
    /// bit-identical at 1, 2, and 4 threads (budget aborts are
    /// deterministic — steps count value buckets).
    #[test]
    fn priority_settled_sets_are_thread_invariant(edges in edges_strategy()) {
        let program = apsp();
        let edb = random_edb(&edges);
        let bools = BoolDatabase::new();
        for max_steps in [1u64, 3] {
            let mut baseline: Option<(bool, Database<Trop>)> = None;
            for threads in [1usize, 2, 4] {
                let opts = EngineOpts {
                    threads: Some(threads),
                    par_threshold: 1,
                    chunk_min: 2,
                    budget: EvalBudget::default().with_max_steps(max_steps),
                    ..EngineOpts::default()
                };
                let got = match engine_eval_partial_with_opts(
                    &program, &edb, &bools, CAP, Strategy::Priority, &opts,
                ) {
                    Ok(_) => (true, Database::new()),
                    Err(aborted) => (false, aborted.partial().materialize_settled()),
                };
                match &baseline {
                    None => baseline = Some(got),
                    Some(base) => prop_assert_eq!(
                        base, &got,
                        "settled set differs at {} threads (max_steps {})",
                        threads, max_steps
                    ),
                }
            }
        }
    }

    /// Retry-with-escalation on random graphs always ends at the
    /// ungoverned fixpoint: whatever rung finally fits, the result is
    /// bit-identical to a cold unbounded run.
    #[test]
    fn retry_escalation_converges_on_random_graphs(edges in edges_strategy()) {
        let program = apsp();
        let edb = random_edb(&edges);
        let bools = BoolDatabase::new();
        let full = engine_eval_with_opts(
            &program, &edb, &bools, CAP, Strategy::Priority, &EngineOpts::default(),
        ).expect("reference").unwrap();
        let policy = RetryPolicy::from_class(BudgetClass::Interactive)
            .with_ladder(vec![
                EvalBudget::default().with_max_steps(1),
                EvalBudget::default().with_max_steps(2),
                EvalBudget::unlimited(),
            ]);
        let (outcome, report) = eval_with_retry(
            &program, &edb, &bools, CAP, Strategy::Priority,
            &opts_with(EvalBudget::default(), None, 2), policy,
        ).expect("final rung is unbounded");
        prop_assert!(report.attempts_made() >= 1);
        let (iout, _) = outcome.converged().expect("bounded");
        prop_assert_eq!(iout.materialize(), full);
    }
}
