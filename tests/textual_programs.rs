//! Integration: programs written in the surface syntax, end to end —
//! the way a downstream user would drive the library.

use datalog_o::core::{
    bool_relation, naive_eval, parse_program, BoolDatabase, Database, Program, ProgramParser,
    Relation, UnaryFn,
};
use datalog_o::pops::{Bool, LiftedReal, MinNat, NNReal, Three, Trop};

fn k(s: &str) -> datalog_o::core::Constant {
    s.into()
}

#[test]
fn same_source_reachability_and_distance() {
    let src = "
        % single-source 'cost' from node s, POPS-generic
        Reach(X) :- 1 | X = s.
        Reach(X) :- Reach(Z) * E(Z, X).
    ";
    let edges = [("s", "a"), ("a", "b"), ("b", "a"), ("c", "d")];

    // 𝔹: reachability.
    let pb: Program<Bool> = parse_program(src).unwrap();
    let mut db = Database::new();
    db.insert(
        "E",
        bool_relation(2, edges.iter().map(|(x, y)| vec![k(x), k(y)])),
    );
    let out = naive_eval(&pb, &db, &BoolDatabase::new(), 1000).unwrap();
    assert_eq!(out.get("Reach").unwrap().support_size(), 3); // s, a, b

    // MinNat: hop counts.
    let pm: Program<MinNat> = parse_program(src).unwrap();
    let mut db = Database::new();
    db.insert(
        "E",
        Relation::from_pairs(
            2,
            edges
                .iter()
                .map(|(x, y)| (vec![k(x), k(y)], MinNat::finite(1))),
        ),
    );
    let out = naive_eval(&pm, &db, &BoolDatabase::new(), 1000).unwrap();
    let r = out.get("Reach").unwrap();
    assert_eq!(r.get(&vec![k("b")]), MinNat(2));
    assert_eq!(r.get(&vec![k("d")]), MinNat::INF);
}

#[test]
fn win_move_in_surface_syntax() {
    let notf = UnaryFn::new("not", |x: &Three| x.not());
    let parser = ProgramParser::<Three>::new().with_func(notf);
    let program = parser.parse("Win(X) :- not(Win(Y)) | E(X, Y).").unwrap();
    let mut bools = BoolDatabase::new();
    bools.insert(
        "E",
        bool_relation(
            2,
            datalog_o::core::examples_lib::fig4_edges()
                .iter()
                .map(|(x, y)| vec![k(x), k(y)]),
        ),
    );
    let out = naive_eval(&program, &Database::<Three>::new(), &bools, 1000).unwrap();
    let win = out.get("Win").unwrap();
    assert_eq!(win.get(&vec![k("c")]), Three::True);
    assert_eq!(win.get(&vec![k("f")]), Three::False);
    assert_eq!(win.get(&vec![k("a")]), Three::Undef);
}

#[test]
fn bill_of_material_in_surface_syntax() {
    let src = "T(X) :- C(X) + T(Y) | E(X, Y).";
    // NOTE: the condition applies per sum-product; write it as the paper
    // does — C(X) unconditioned, T(Y) guarded:
    let src = {
        let _ = src;
        "T(X) :- C(X).\nT(X) :- T(Y) | E(X, Y)."
    };
    let p: Program<LiftedReal> = parse_program(src).unwrap();
    let mut pops = Database::new();
    pops.insert(
        "C",
        Relation::from_pairs(
            1,
            vec![
                (vec![k("c")], datalog_o::pops::lifted::lreal(1.0)),
                (vec![k("d")], datalog_o::pops::lifted::lreal(10.0)),
            ],
        ),
    );
    let mut bools = BoolDatabase::new();
    bools.insert("E", bool_relation(2, vec![vec![k("c"), k("d")]]));
    let out = naive_eval(&p, &pops, &bools, 1000).unwrap();
    assert_eq!(
        out.get("T").unwrap().get(&vec![k("c")]),
        datalog_o::pops::lifted::lreal(11.0)
    );
}

#[test]
fn multiple_rules_same_head_merge() {
    // Two textual rules with the same head behave as one sum-sum-product.
    let src = "
        D(X) :- $5 | X = a.
        D(X) :- $3 | X = a.
    ";
    let p: Program<Trop> = parse_program(src).unwrap();
    let out = naive_eval(&p, &Database::new(), &BoolDatabase::new(), 100).unwrap();
    assert_eq!(out.get("D").unwrap().get(&vec![k("a")]), Trop::finite(3.0));
}

#[test]
fn company_control_threshold_in_surface_syntax() {
    let thr = UnaryFn::new("thr", |v: &NNReal| v.threshold(0.5));
    let parser = ProgramParser::<NNReal>::new().with_func(thr);
    let program = parser
        .parse("T(X, Y) :- S(X, Y) + thr(T(X, Z)) * S(Z, Y) | Company(Z) && Z != X.")
        .unwrap();
    let mut pops = Database::new();
    pops.insert(
        "S",
        Relation::from_pairs(
            2,
            vec![
                (vec![k("a"), k("b")], NNReal::of(0.7)),
                (vec![k("b"), k("c")], NNReal::of(0.8)),
            ],
        ),
    );
    let mut bools = BoolDatabase::new();
    bools.insert(
        "Company",
        bool_relation(1, vec![vec![k("a")], vec![k("b")], vec![k("c")]]),
    );
    let out = naive_eval(&program, &pops, &bools, 1000).unwrap();
    let t = out.get("T").unwrap();
    assert!(
        t.get(&vec![k("a"), k("c")]).get() > 0.5,
        "transitive control"
    );
}

#[test]
fn head_keyed_prefix_in_surface_syntax_via_default_eval() {
    // A key function in the rule *head*, straight from program text,
    // through `datalog_o::eval` — which now dispatches to the execution
    // engine for every program the parser accepts (no relational
    // fallback). Over Trop⁺ each key has one derivation, so ⊗ = + gives
    // prefix sums.
    let src = "
        W(0) :- V(0).
        W(I + 1) :- W(I) * V(I + 1).
    ";
    let p: Program<Trop> = parse_program(src).unwrap();
    let mut pops = Database::new();
    pops.insert(
        "V",
        Relation::from_pairs(
            1,
            (0..5i64).map(|i| {
                (
                    vec![datalog_o::core::Constant::Int(i)],
                    Trop::finite((i + 1) as f64),
                )
            }),
        ),
    );
    let out = datalog_o::eval(&p, &pops, &BoolDatabase::new())
        .expect("compiles")
        .unwrap();
    let w = out.get("W").unwrap();
    for (i, want) in [1.0, 3.0, 6.0, 10.0, 15.0].iter().enumerate() {
        assert_eq!(
            w.get(&vec![datalog_o::core::Constant::Int(i as i64)]),
            Trop::finite(*want),
            "W({i})"
        );
    }
}

#[test]
fn prefix_sum_in_surface_syntax() {
    let src = "
        W(I) :- V(0) | I = 0.
        W(I) :- W(I - 1) | I != 0 && I < 4.
        W(I) :- V(I)     | I != 0 && I < 4.
    ";
    let p: Program<LiftedReal> = parse_program(src).unwrap();
    let mut pops = Database::new();
    pops.insert(
        "V",
        Relation::from_pairs(
            1,
            (0..4).map(|i| {
                (
                    vec![datalog_o::core::Constant::Int(i)],
                    datalog_o::pops::lifted::lreal((i + 1) as f64),
                )
            }),
        ),
    );
    let out = naive_eval(&p, &pops, &BoolDatabase::new(), 1000).unwrap();
    assert_eq!(
        out.get("W")
            .unwrap()
            .get(&vec![datalog_o::core::Constant::Int(3)]),
        datalog_o::pops::lifted::lreal(10.0) // 1+2+3+4
    );
}
