//! The backend matrix: every oracle scenario from `paper_examples.rs`
//! and `textual_programs.rs` pushed through **all three** backends —
//! grounded naive, relational (naive + semi-naive), and the execution
//! engine (naive + parallel semi-naive + FIFO generation worklist +
//! priority frontier, the frontier strategies both sequential and with
//! the parallel batch path forced) — asserting identical output
//! databases. `cross_engine.rs` spot-checks a subset against external
//! oracles; this file is the exhaustive pairwise-agreement sweep, and
//! since the engine lost its head-key-function fallback it proves the
//! fast backend really is total over the language.
//!
//! Scenarios whose paper POPS is not naturally ordered (the lifted reals
//! of Ex. 4.2, `THREE` of Sec. 7) cannot run on the relational/engine
//! backends at all — the grounded backend is their reference — so the
//! matrix runs those programs over a naturally ordered carrier instead
//! (`MinNat`, `𝔹`), which exercises the identical rule shapes. POPS that
//! are naturally ordered but not complete distributive dioids (`ℝ₊`,
//! `Trop⁺_1`) run the three naive legs only.

use datalog_o::core::examples_lib as ex;
use datalog_o::core::{
    bool_relation, naive_eval_sparse, parse_program, parse_query, relational_naive_eval,
    relational_seminaive_eval, BoolDatabase, Database, Program, ProgramParser, Query, Relation,
    UnaryFn,
};
use datalog_o::core::{FactDelete, FactInsert};
use datalog_o::engine::engine_naive_eval_with_opts;
use datalog_o::pops::{
    Absorptive, Bool, CompleteDistributiveDioid, MinNat, NNReal, NaturallyOrdered,
    TotallyOrderedDioid, Trop, TropP,
};
use datalog_o::{
    engine_eval, engine_eval_interned, engine_eval_with_opts, engine_naive_eval,
    engine_query_eval_with_opts, engine_query_naive_eval, engine_query_seminaive_eval,
    engine_seminaive_eval, EngineOpts, JoinMode, Materialization, Strategy,
};

const CAP: usize = 100_000;

/// Tuning that forces the frontier drivers' parallel batch path even on
/// single-row batches (4 workers, fan-out threshold 1).
fn forced_parallel() -> EngineOpts {
    EngineOpts {
        threads: Some(4),
        par_threshold: 1,
        chunk_min: 2,
        ..EngineOpts::default()
    }
}

fn k(s: &str) -> datalog_o::core::Constant {
    s.into()
}

/// Asserts `got` carries exactly the relations of `reference` (empty
/// relations are equivalent to absent ones on both sides).
fn assert_same_db<P: datalog_o::pops::Pops>(
    scenario: &str,
    backend: &str,
    reference: &Database<P>,
    got: &Database<P>,
) {
    for (pred, r) in reference.iter() {
        let empty = Relation::new(r.arity());
        assert_eq!(
            r,
            got.get(pred).unwrap_or(&empty),
            "{scenario}: {backend} differs on {pred}"
        );
    }
    for (pred, r) in got.iter() {
        if reference.get(pred).is_none() {
            assert!(
                r.is_empty(),
                "{scenario}: {backend} derived extra atoms in {pred}"
            );
        }
    }
}

/// The full nine-leg matrix: grounded naive, relational
/// naive/semi-naive, engine naive/semi-naive, the engine's two frontier
/// strategies (FIFO generation worklist and bucketed priority), and
/// both frontier strategies again with the parallel batch path forced
/// (4 workers, fan-out threshold 1 — every batch fans out, however
/// small). Every `all` scenario runs over a totally ordered absorptive
/// dioid (`Trop`, `MinNat`, `𝔹`), so the frontier legs apply; POPS
/// without those markers use [`assert_matrix_naive`] below.
fn assert_matrix_all<P>(
    scenario: &str,
    program: &Program<P>,
    pops: &Database<P>,
    bools: &BoolDatabase,
) where
    P: NaturallyOrdered
        + CompleteDistributiveDioid
        + Absorptive
        + TotallyOrderedDioid
        + Send
        + Sync,
{
    let forced_parallel = forced_parallel();
    let grounded = naive_eval_sparse(program, pops, bools, CAP).unwrap();
    let legs: [(&str, Database<P>); 8] = [
        (
            "relational naive",
            relational_naive_eval(program, pops, bools, CAP).unwrap(),
        ),
        (
            "relational semi-naive",
            relational_seminaive_eval(program, pops, bools, CAP).unwrap(),
        ),
        (
            "engine naive",
            engine_naive_eval(program, pops, bools, CAP)
                .expect("compiles")
                .unwrap(),
        ),
        (
            "engine semi-naive",
            engine_seminaive_eval(program, pops, bools, CAP)
                .expect("compiles")
                .unwrap(),
        ),
        (
            "engine worklist",
            engine_eval(program, pops, bools, CAP, Strategy::Worklist)
                .expect("compiles")
                .unwrap(),
        ),
        (
            "engine priority",
            engine_eval(program, pops, bools, CAP, Strategy::Priority)
                .expect("compiles")
                .unwrap(),
        ),
        (
            "engine worklist (parallel)",
            engine_eval_with_opts(
                program,
                pops,
                bools,
                CAP,
                Strategy::Worklist,
                &forced_parallel,
            )
            .expect("compiles")
            .unwrap(),
        ),
        (
            "engine priority (parallel)",
            engine_eval_with_opts(
                program,
                pops,
                bools,
                CAP,
                Strategy::Priority,
                &forced_parallel,
            )
            .expect("compiles")
            .unwrap(),
        ),
    ];
    for (backend, got) in &legs {
        assert_same_db(scenario, backend, &grounded, got);
    }
    // Join-strategy legs: merge joins forced on and forced off must
    // both be bit-identical to the planner-auto legs above (and the
    // grounded oracle) on every dioid strategy — the join mode is a
    // performance knob, never a semantics knob.
    for mode in [JoinMode::Merge, JoinMode::Hash] {
        let opts = EngineOpts {
            join_mode: Some(mode),
            ..EngineOpts::default()
        };
        for strategy in [Strategy::SemiNaive, Strategy::Worklist, Strategy::Priority] {
            let got = engine_eval_with_opts(program, pops, bools, CAP, strategy, &opts)
                .expect("compiles")
                .unwrap();
            assert_same_db(
                scenario,
                &format!("engine {strategy:?} ({} join)", mode.label()),
                &grounded,
                &got,
            );
        }
        let naive = engine_naive_eval_with_opts(program, pops, bools, CAP, &opts)
            .expect("compiles")
            .unwrap();
        assert_same_db(
            scenario,
            &format!("engine naive ({} join)", mode.label()),
            &grounded,
            &naive,
        );
    }
}

/// The three naive legs, for POPS without `⊖` (no complete distributive
/// dioid structure): grounded, relational naive, engine naive.
fn assert_matrix_naive<P>(
    scenario: &str,
    program: &Program<P>,
    pops: &Database<P>,
    bools: &BoolDatabase,
) where
    P: NaturallyOrdered + Send + Sync,
{
    let grounded = naive_eval_sparse(program, pops, bools, CAP).unwrap();
    let rel = relational_naive_eval(program, pops, bools, CAP).unwrap();
    let eng = engine_naive_eval(program, pops, bools, CAP)
        .expect("compiles")
        .unwrap();
    assert_same_db(scenario, "relational naive", &grounded, &rel);
    assert_same_db(scenario, "engine naive", &grounded, &eng);
    for mode in [JoinMode::Merge, JoinMode::Hash] {
        let opts = EngineOpts {
            join_mode: Some(mode),
            ..EngineOpts::default()
        };
        let got = engine_naive_eval_with_opts(program, pops, bools, CAP, &opts)
            .expect("compiles")
            .unwrap();
        assert_same_db(
            scenario,
            &format!("engine naive ({} join)", mode.label()),
            &grounded,
            &got,
        );
    }
}

/// One `#[test]` per oracle scenario. `all` runs the nine-leg matrix,
/// `naive` the three naive legs; the block must evaluate to
/// `(Program<P>, Database<P>, BoolDatabase)`.
macro_rules! backend_matrix {
    ($(all $name:ident => $setup:block)*) => {
        $(#[test]
        fn $name() {
            let (program, pops, bools) = $setup;
            assert_matrix_all(stringify!($name), &program, &pops, &bools);
        })*
    };
    ($(naive $name:ident => $setup:block)*) => {
        $(#[test]
        fn $name() {
            let (program, pops, bools) = $setup;
            assert_matrix_naive(stringify!($name), &program, &pops, &bools);
        })*
    };
}

backend_matrix! {
    // Example 4.1 — SSSP over Trop⁺ on the Fig. 2(a) graph.
    all sssp_trop_example_4_1 => {
        let (program, edb) = ex::sssp_trop("a");
        (program, edb, BoolDatabase::new())
    }

    // Example 1.1 — APSP over Trop⁺ (the paper's opening program).
    all apsp_trop_example_1_1 => {
        let (program, edb) = ex::apsp_trop(&[
            ("a", "b", 1.0),
            ("b", "a", 2.0),
            ("b", "c", 3.0),
            ("c", "d", 4.0),
            ("a", "c", 5.0),
        ]);
        (program, edb, BoolDatabase::new())
    }

    // Example 4.2 — bill of material, over MinNat (the naturally ordered
    // carrier; the lifted-real original is grounded-only).
    all bom_minnat_example_4_2 => {
        let program: Program<MinNat> = ex::bom_program();
        let mut pops = Database::new();
        pops.insert(
            "C",
            Relation::from_pairs(
                1,
                vec![
                    (vec![k("a")], MinNat::finite(1)),
                    (vec![k("b")], MinNat::finite(1)),
                    (vec![k("c")], MinNat::finite(1)),
                    (vec![k("d")], MinNat::finite(10)),
                ],
            ),
        );
        (program, pops, ex::fig2b_bool_edges())
    }

    // Quadratic transitive closure with a Boolean edge guard.
    all quadratic_tc_bool_guarded => {
        let (program, edb) = ex::quadratic_tc_bool(&[("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")]);
        (program, edb, BoolDatabase::new())
    }

    // Sec. 4.5 — keys to values (ShortestLength over Trop⁺).
    all shortest_length_sec_4_5 => {
        let (program, edb) = ex::shortest_length(&[("a", "b", 3), ("a", "b", 7), ("a", "c", 5), ("b", "c", 2)]);
        (program, edb, BoolDatabase::new())
    }

    // Sec. 4.5 — the prefix program in head-keyed form over Trop⁺: the
    // scenario the engine used to reject outright.
    all prefix_head_keyed_sec_4_5 => {
        let (program, edb) = ex::prefix_sum_keyed::<Trop>(&[2.0, 4.0, 1.5, 3.0, 0.5], Trop::finite);
        (program, edb, BoolDatabase::new())
    }

    // Sec. 4.5 — the surface-syntax prefix program (body key function
    // `W(I - 1)` plus comparisons), over MinNat instead of the
    // grounded-only lifted reals.
    all prefix_surface_syntax_minnat => {
        let src = "
            W(I) :- V(0) | I = 0.
            W(I) :- W(I - 1) | I != 0 && I < 4.
            W(I) :- V(I)     | I != 0 && I < 4.
        ";
        let program: Program<MinNat> = parse_program(src).unwrap();
        let mut pops = Database::new();
        pops.insert(
            "V",
            Relation::from_pairs(
                1,
                (0..4i64).map(|i| (vec![i.into()], MinNat::finite(1 + i as u64))),
            ),
        );
        (program, pops, BoolDatabase::new())
    }

    // Textual single-source reachability, over 𝔹.
    all reach_surface_syntax_bool => {
        let src = "Reach(X) :- 1 | X = s.\nReach(X) :- Reach(Z) * E(Z, X).";
        let program: Program<Bool> = parse_program(src).unwrap();
        let mut pops = Database::new();
        pops.insert(
            "E",
            bool_relation(
                2,
                [("s", "a"), ("a", "b"), ("b", "a"), ("c", "d")]
                    .iter()
                    .map(|(x, y)| vec![k(x), k(y)]),
            ),
        );
        (program, pops, BoolDatabase::new())
    }

    // Textual single-source hop counts, over MinNat.
    all reach_surface_syntax_minnat => {
        let src = "Reach(X) :- 1 | X = s.\nReach(X) :- Reach(Z) * E(Z, X).";
        let program: Program<MinNat> = parse_program(src).unwrap();
        let mut pops = Database::new();
        pops.insert(
            "E",
            Relation::from_pairs(
                2,
                [("s", "a"), ("a", "b"), ("b", "a"), ("c", "d")]
                    .iter()
                    .map(|(x, y)| (vec![k(x), k(y)], MinNat::finite(1))),
            ),
        );
        (program, pops, BoolDatabase::new())
    }

    // Textual BOM over MinNat (the lifted-real surface program's shape).
    all bom_surface_syntax_minnat => {
        let src = "T(X) :- C(X).\nT(X) :- T(Y) | E(X, Y).";
        let program: Program<MinNat> = parse_program(src).unwrap();
        let mut pops = Database::new();
        pops.insert(
            "C",
            Relation::from_pairs(
                1,
                vec![(vec![k("c")], MinNat::finite(1)), (vec![k("d")], MinNat::finite(10))],
            ),
        );
        let mut bools = BoolDatabase::new();
        bools.insert("E", bool_relation(2, vec![vec![k("c"), k("d")]]));
        (program, pops, bools)
    }

    // Two textual rules with one head merge into one sum-sum-product.
    all multiple_rules_same_head_trop => {
        let src = "D(X) :- $5 | X = a.\nD(X) :- $3 | X = a.";
        let program: Program<Trop> = parse_program(src).unwrap();
        (program, Database::new(), BoolDatabase::new())
    }

    // Example 4.1's indicator form `{1 | X = s}` over MinNat.
    all single_source_indicator_minnat => {
        let program: Program<MinNat> = ex::single_source_program("s");
        let mut edb = Database::new();
        edb.insert(
            "E",
            Relation::from_pairs(
                2,
                vec![
                    (vec![k("s"), k("t")], MinNat::finite(2)),
                    (vec![k("t"), k("u")], MinNat::finite(3)),
                ],
            ),
        );
        (program, edb, BoolDatabase::new())
    }

    // Sec. 7 — one alternating-fixpoint step of win-move as a positive 𝔹
    // program with a negated Boolean guard (`THREE` itself is not
    // naturally ordered; this is the engine-compatible step program).
    all win_move_step_bool => {
        use datalog_o::core::ast::{Atom, SumProduct, Term};
        use datalog_o::core::formula::Formula;
        let mut program = Program::<Bool>::new();
        program.rule(
            Atom::new("W", vec![Term::v(0)]),
            vec![SumProduct::new(vec![]).with_condition(
                Formula::atom("E", vec![Term::v(0), Term::v(1)])
                    .and(Formula::atom("PrevW", vec![Term::v(1)]).negate()),
            )],
        );
        let mut bools = BoolDatabase::new();
        bools.insert(
            "E",
            bool_relation(2, ex::fig4_edges().iter().map(|(x, y)| vec![k(x), k(y)])),
        );
        (program, Database::<Bool>::new(), bools)
    }
}

backend_matrix! {
    // Example 4.3 — company control over ℝ₊ with the monotone threshold
    // value function. ℝ₊ is naturally ordered but ⊕ = + is not
    // idempotent, so only the naive legs run. Dyadic share weights keep
    // float sums exact under any association order.
    naive company_control_example_4_3 => {
        let (program, pops, bools) = ex::company_control(
            &["a", "b", "c", "d"],
            &[
                ("a", "b", 0.75),
                ("b", "c", 0.375),
                ("a", "c", 0.25),
                ("c", "d", 0.625),
                ("b", "d", 0.25),
            ],
        );
        (program, pops, bools)
    }

    // The same scenario written in surface syntax with a registered
    // value function.
    naive company_control_surface_syntax => {
        let thr = UnaryFn::new("thr", |v: &NNReal| v.threshold(0.5));
        let parser = ProgramParser::<NNReal>::new().with_func(thr);
        let program = parser
            .parse("T(X, Y) :- S(X, Y) + thr(T(X, Z)) * S(Z, Y) | Company(Z) && Z != X.")
            .unwrap();
        let mut pops = Database::new();
        pops.insert(
            "S",
            Relation::from_pairs(
                2,
                vec![
                    (vec![k("a"), k("b")], NNReal::of(0.75)),
                    (vec![k("b"), k("c")], NNReal::of(0.875)),
                ],
            ),
        );
        let mut bools = BoolDatabase::new();
        bools.insert(
            "Company",
            bool_relation(1, vec![vec![k("a")], vec![k("b")], vec![k("c")]]),
        );
        (program, pops, bools)
    }

    // Example 4.1 over the bag semiring Trop⁺_1 (naturally ordered, not
    // a complete distributive dioid).
    naive sssp_tropp_bag_example_4_1 => {
        let program: Program<TropP<1>> = ex::single_source_program("a");
        let edb = ex::fig2a_graph(|w| TropP::<1>::from_costs(&[w]));
        (program, edb, BoolDatabase::new())
    }
}

/// The demand legs: `engine_query_eval` under every strategy —
/// sequential and with the parallel batch path forced — must return
/// exactly the query-restriction of the grounded reference's full
/// fixpoint, and every row of the demanded support must be value-exact
/// against it (magic sets never under- or over-derive a demanded row).
fn assert_query_matrix<P>(
    scenario: &str,
    program: &Program<P>,
    pops: &Database<P>,
    bools: &BoolDatabase,
    query: &Query,
) where
    P: NaturallyOrdered
        + CompleteDistributiveDioid
        + Absorptive
        + TotallyOrderedDioid
        + Send
        + Sync,
{
    let grounded = naive_eval_sparse(program, pops, bools, CAP).unwrap();
    let empty = Relation::new(query.arity());
    let expected = query.restrict(grounded.get(&query.pred).unwrap_or(&empty));
    let forced = forced_parallel();
    let defaults = EngineOpts::default();
    let legs: Vec<(String, datalog_o::QueryAnswer<P>)> = [
        (Strategy::SemiNaive, &defaults),
        (Strategy::Worklist, &defaults),
        (Strategy::Priority, &defaults),
        (Strategy::Worklist, &forced),
        (Strategy::Priority, &forced),
    ]
    .into_iter()
    .map(|(strategy, opts)| {
        (
            format!("{strategy:?} ({} threads)", opts.threads.unwrap_or(1)),
            engine_query_eval_with_opts(program, query, pops, bools, CAP, strategy, opts)
                .expect("compiles"),
        )
    })
    .chain(std::iter::once((
        "query semi-naive (weak bounds)".to_string(),
        engine_query_seminaive_eval(program, query, pops, bools, CAP, &defaults).expect("compiles"),
    )))
    .chain(std::iter::once((
        "query naive".to_string(),
        engine_query_naive_eval(program, query, pops, bools, CAP, &defaults).expect("compiles"),
    )))
    .collect();
    for (leg, qa) in &legs {
        assert!(qa.is_converged(), "{scenario}: {leg} diverged");
        assert_eq!(
            &expected,
            &qa.answers(),
            "{scenario}: {leg} answers differ from the grounded restriction for {query:?}"
        );
        for (pred, rel) in qa.support().iter() {
            let reference = grounded.get(pred);
            for (t, v) in rel.support() {
                assert_eq!(
                    reference.map(|r| r.get(t)),
                    Some(v.clone()),
                    "{scenario}: {leg} demanded row {pred}({t:?}) is not value-exact"
                );
            }
        }
    }
}

#[test]
fn demand_leg_sssp_point_query() {
    let (program, edb) = ex::sssp_trop("a");
    let query = parse_query("?- L(d).").unwrap();
    assert_query_matrix(
        "sssp_trop_example_4_1",
        &program,
        &edb,
        &BoolDatabase::new(),
        &query,
    );
}

#[test]
fn demand_leg_apsp_single_source_and_single_sink() {
    let (program, edb) = ex::apsp_trop(&[
        ("a", "b", 1.0),
        ("b", "a", 2.0),
        ("b", "c", 3.0),
        ("c", "d", 4.0),
        ("a", "c", 5.0),
    ]);
    let bools = BoolDatabase::new();
    // Source-bound (adornment bf) and sink-bound (fb) both restrict.
    for src in ["?- T(a, Y).", "?- T(X, d).", "?- T(b, c)."] {
        let query = parse_query(src).unwrap();
        assert_query_matrix("apsp_trop_example_1_1", &program, &edb, &bools, &query);
    }
}

#[test]
fn demand_leg_bom_point_lookup() {
    let program: Program<MinNat> = ex::bom_program();
    let mut pops = Database::new();
    pops.insert(
        "C",
        Relation::from_pairs(
            1,
            vec![
                (vec![k("a")], MinNat::finite(1)),
                (vec![k("b")], MinNat::finite(1)),
                (vec![k("c")], MinNat::finite(1)),
                (vec![k("d")], MinNat::finite(10)),
            ],
        ),
    );
    let bools = ex::fig2b_bool_edges();
    for part in ["a", "c", "d"] {
        let query = Query::point("T", vec![part.into()]);
        assert_query_matrix("bom_minnat_example_4_2", &program, &pops, &bools, &query);
    }
}

#[test]
fn demand_leg_reachability_bool() {
    let src = "Reach(X) :- 1 | X = s.\nReach(X) :- Reach(Z) * E(Z, X).";
    let program: Program<Bool> = parse_program(src).unwrap();
    let mut pops = Database::new();
    pops.insert(
        "E",
        bool_relation(
            2,
            [("s", "a"), ("a", "b"), ("b", "a"), ("c", "d")]
                .iter()
                .map(|(x, y)| vec![k(x), k(y)]),
        ),
    );
    let bools = BoolDatabase::new();
    // Both a reachable and an unreachable point query.
    for node in ["b", "d"] {
        let query = Query::point("Reach", vec![node.into()]);
        assert_query_matrix("reach_surface_syntax_bool", &program, &pops, &bools, &query);
    }
}

#[test]
fn demand_leg_quadratic_tc_falls_back_to_full() {
    // The quadratic rule collapses the adornment to all-free — the
    // query path must still answer correctly (full computation plus
    // restriction).
    let (program, edb) = ex::quadratic_tc_bool(&[("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")]);
    let query = parse_query("?- T(a, Y).").unwrap();
    assert_query_matrix(
        "quadratic_tc_bool_guarded",
        &program,
        &edb,
        &BoolDatabase::new(),
        &query,
    );
}

#[test]
fn demand_leg_head_keyed_prefix() {
    // Head-key-function program: demand propagation itself mints keys.
    let (program, edb) = ex::prefix_sum_keyed::<Trop>(&[2.0, 4.0, 1.5, 3.0, 0.5], Trop::finite);
    let query = parse_query("?- W(3).").unwrap();
    assert_query_matrix(
        "prefix_head_keyed_sec_4_5",
        &program,
        &edb,
        &BoolDatabase::new(),
        &query,
    );
}

#[test]
fn demand_leg_company_control_nnreal_naive() {
    // ℝ₊: naturally ordered, ⊕ not idempotent — the set-valued clamp is
    // what keeps cyclic demand convergent here. Naive legs only (no ⊖).
    let (program, pops, bools) = ex::company_control(
        &["a", "b", "c", "d"],
        &[
            ("a", "b", 0.75),
            ("b", "c", 0.375),
            ("a", "c", 0.25),
            ("c", "d", 0.625),
            ("b", "d", 0.25),
        ],
    );
    let grounded = naive_eval_sparse(&program, &pops, &bools, CAP).unwrap();
    let query = Query::new(
        "T",
        vec![
            datalog_o::core::QueryArg::bound("a"),
            datalog_o::core::QueryArg::Free,
        ],
    );
    let qa = engine_query_naive_eval(&program, &query, &pops, &bools, CAP, &EngineOpts::default())
        .expect("compiles");
    assert!(qa.is_converged());
    let expected = query.restrict(grounded.get("T").unwrap());
    assert_eq!(expected, qa.answers());
}

/// Satellite: divergence agreement. A non-stable program under a small
/// iteration cap must make **every** backend report `Diverged` with the
/// same cap — and the `EvalOutcome::unwrap` diagnostic (added in PR 1)
/// must name that cap — so a user cannot get a panic from one backend
/// and a silent wrong answer from another.
#[test]
fn divergence_agreement_nat_coefficient_blowup() {
    use datalog_o::core::ast::{Atom, Factor, SumProduct, Term};
    use datalog_o::pops::Nat;
    // X(u) :- 1 ⊕ 2·X(u) over ℕ: case (ii) of Sec. 4.2, diverges.
    let mut p = Program::<Nat>::new();
    p.rule(
        Atom::new("X", vec![Term::c("u")]),
        vec![
            SumProduct::new(vec![]).with_coeff(Nat(1)),
            SumProduct::new(vec![Factor::atom("X", vec![Term::c("u")])]).with_coeff(Nat(2)),
        ],
    );
    const SMALL_CAP: usize = 30;
    let pops = Database::new();
    let bools = BoolDatabase::new();
    let legs: [(&str, datalog_o::core::EvalOutcome<Nat>); 3] = [
        ("grounded", naive_eval_sparse(&p, &pops, &bools, SMALL_CAP)),
        (
            "relational",
            relational_naive_eval(&p, &pops, &bools, SMALL_CAP),
        ),
        (
            "engine",
            engine_naive_eval(&p, &pops, &bools, SMALL_CAP).expect("compiles"),
        ),
    ];
    for (backend, outcome) in legs {
        assert!(!outcome.is_converged(), "{backend} must diverge");
        let err = match std::panic::catch_unwind(move || outcome.unwrap()) {
            Err(e) => e,
            Ok(_) => panic!("{backend} unwrap must panic"),
        };
        let msg = err.downcast_ref::<String>().expect("formatted panic");
        assert!(
            msg.contains(&format!("iteration cap ({SMALL_CAP})")),
            "{backend} diagnostic must name the cap, got: {msg}"
        );
    }
}

/// Unbounded head-key minting is the other road to divergence (case (i):
/// the active domain grows forever). The semi-naive backends — including
/// the engine's dynamic interner — must agree on that too.
#[test]
fn divergence_agreement_unbounded_head_minting() {
    use datalog_o::core::ast::{Atom, Factor, KeyFn, SumProduct, Term};
    // N(0) :- $1.  N(i+1) :- N(i).  — no guard: mints a key per step.
    let mut p = Program::<MinNat>::new();
    p.rule(
        Atom::new("N", vec![Term::c(0)]),
        vec![SumProduct::new(vec![]).with_coeff(MinNat::finite(1))],
    );
    p.rule(
        Atom::new(
            "N",
            vec![Term::Apply(KeyFn::AddInt(1), Box::new(Term::v(0)))],
        ),
        vec![SumProduct::new(vec![Factor::atom("N", vec![Term::v(0)])])],
    );
    const SMALL_CAP: usize = 25;
    let pops = Database::new();
    let bools = BoolDatabase::new();
    let forced_parallel = forced_parallel();
    let legs: [(&str, datalog_o::core::EvalOutcome<MinNat>); 6] = [
        (
            "relational semi-naive",
            relational_seminaive_eval(&p, &pops, &bools, SMALL_CAP),
        ),
        (
            "engine semi-naive",
            engine_seminaive_eval(&p, &pops, &bools, SMALL_CAP).expect("compiles"),
        ),
        // The frontier drivers cap *batches* rather than global
        // iterations, but unbounded minting must still surface as the
        // same capped divergence, cap named in the diagnostic — with
        // the parallel batch path forced too.
        (
            "engine worklist",
            engine_eval(&p, &pops, &bools, SMALL_CAP, Strategy::Worklist).expect("compiles"),
        ),
        (
            "engine priority",
            engine_eval(&p, &pops, &bools, SMALL_CAP, Strategy::Priority).expect("compiles"),
        ),
        (
            "engine worklist (parallel)",
            engine_eval_with_opts(
                &p,
                &pops,
                &bools,
                SMALL_CAP,
                Strategy::Worklist,
                &forced_parallel,
            )
            .expect("compiles"),
        ),
        (
            "engine priority (parallel)",
            engine_eval_with_opts(
                &p,
                &pops,
                &bools,
                SMALL_CAP,
                Strategy::Priority,
                &forced_parallel,
            )
            .expect("compiles"),
        ),
    ];
    for (backend, outcome) in legs {
        assert!(!outcome.is_converged(), "{backend} must diverge");
        let err = match std::panic::catch_unwind(move || outcome.unwrap()) {
            Err(e) => e,
            Ok(_) => panic!("{backend} unwrap must panic"),
        };
        let msg = err.downcast_ref::<String>().expect("formatted panic");
        assert!(
            msg.contains(&format!("iteration cap ({SMALL_CAP})")),
            "{backend} diagnostic must name the cap, got: {msg}"
        );
    }
}

// ---------------------------------------------------------------------
// Telemetry legs: the `EvalStats` carried on every outcome obey their
// arithmetic invariants, agree across entry points, and are identical
// (modulo wall-clock fields, via `EvalStats::invariants`) at any thread
// count.

/// Shared instance for the stats legs: the 5-edge APSP graph used by
/// the demand legs, which exercises improvement (two a→c routes).
fn stats_workload() -> (Program<Trop>, Database<Trop>) {
    ex::apsp_trop(&[
        ("a", "b", 1.0),
        ("b", "a", 2.0),
        ("b", "c", 3.0),
        ("c", "d", 4.0),
        ("a", "c", 5.0),
    ])
}

/// Every drained merge — insertion, improvement, absorption, or
/// set-valued short-circuit — consumes at least one emitted
/// contribution, so the emit counters bound the merge counters on every
/// strategy, and the naive loop (which rebuilds rather than merges)
/// reports no row merges at all.
#[test]
fn stats_emits_cover_merges_across_strategies() {
    let (program, pops) = stats_workload();
    let bools = BoolDatabase::new();
    let legs = [
        (
            "naive",
            engine_naive_eval(&program, &pops, &bools, CAP).expect("compiles"),
        ),
        (
            "seminaive",
            engine_eval(&program, &pops, &bools, CAP, Strategy::SemiNaive).expect("compiles"),
        ),
        (
            "worklist",
            engine_eval(&program, &pops, &bools, CAP, Strategy::Worklist).expect("compiles"),
        ),
        (
            "priority",
            engine_eval(&program, &pops, &bools, CAP, Strategy::Priority).expect("compiles"),
        ),
    ];
    for (leg, out) in &legs {
        let s = out.stats();
        assert_eq!(&s.strategy, leg, "strategy name recorded");
        assert!(s.steps > 0, "{leg}: steps populated");
        assert!(
            s.counters.emits + s.counters.fresh_emits > 0,
            "{leg}: emits populated"
        );
        assert!(
            s.counters.emits + s.counters.fresh_emits
                >= s.counters.rows_inserted
                    + s.counters.rows_improved
                    + s.counters.merges_absorbed
                    + s.counters.set_valued_shortcircuits,
            "{leg}: merges exceed emissions: {:?}",
            s.counters
        );
        if *leg == "naive" {
            assert_eq!(s.counters.rows_inserted, 0, "naive counts no row merges");
        } else {
            assert!(s.counters.rows_inserted > 0, "{leg}: insertions populated");
        }
    }
}

/// On the merging strategies every IDB row is inserted exactly once
/// (later contributions improve or are absorbed), so the per-iteration
/// `inserted` deltas sum to the final support — the invariant that makes
/// the iteration trace a complete account of where the output came from.
#[test]
fn stats_iteration_inserts_sum_to_final_support() {
    let (program, pops) = stats_workload();
    let bools = BoolDatabase::new();
    let opts = EngineOpts::default();
    for strategy in [Strategy::SemiNaive, Strategy::Worklist, Strategy::Priority] {
        let out =
            engine_eval_interned(&program, &pops, &bools, CAP, strategy, &opts).expect("compiles");
        let support = out.output().support_size("T") as u64;
        let s = out.stats();
        assert_eq!(
            s.iterations_dropped, 0,
            "{strategy:?}: tiny run keeps all snapshots"
        );
        let inserted: u64 = s.iterations.iter().map(|it| it.inserted).sum();
        assert_eq!(
            inserted, support,
            "{strategy:?}: per-iteration inserts must sum to the final support"
        );
        assert_eq!(
            s.counters.rows_inserted, support,
            "{strategy:?}: totals agree"
        );
        assert_eq!(
            s.last_iter.as_ref().map(|it| it.step),
            Some(s.iterations.last().unwrap().step),
            "{strategy:?}: last_iter mirrors the newest snapshot"
        );
    }
}

// ---------------------------------------------------------------------
// Incremental legs: a live `Materialization` driven through edits must
// land on exactly the grounded oracle's fixpoint for the edited EDB
// after every step — the same reference the batch legs above use.

/// SSSP gradient with an edge retraction that **lengthens** the optimum
/// (the adversarial case for delete-rederive: the deleted edge carried
/// the unique shortest route, so the affected distances must settle on
/// strictly worse survivors, not resurrect the old values). Runs the
/// whole script under every dioid strategy.
#[test]
fn incremental_leg_sssp_gradient_retraction() {
    let (program, edb0) = ex::sssp_trop("a");
    let bools = BoolDatabase::new();
    for strategy in [Strategy::SemiNaive, Strategy::Worklist, Strategy::Priority] {
        let scenario = format!("incremental sssp ({strategy:?})");
        let mut edb = edb0.clone();
        let mut mat = Materialization::new(
            &program,
            &edb,
            &bools,
            CAP,
            strategy,
            &EngineOpts::default(),
        )
        .expect("compiles");
        // Fig. 2(a): a→b 1, b→a 2, b→c 3, c→d 4, a→c 5. L(c) = 4 via b.
        assert_eq!(mat.get("L", &[k("c")]), Some(&Trop::finite(4.0)));

        // Retract the b→c hop: every shortest path through it lengthens
        // — L(c) falls back to the direct a→c edge, L(d) follows.
        edb.get_or_insert("E", 2)
            .set(vec![k("b"), k("c")], Trop::INF);
        mat.delete(&[FactDelete::new("E", vec![k("b"), k("c")])])
            .expect("edit applies");
        assert_eq!(mat.get("L", &[k("c")]), Some(&Trop::finite(5.0)));
        assert_eq!(mat.get("L", &[k("d")]), Some(&Trop::finite(9.0)));
        let oracle = naive_eval_sparse(&program, &edb, &bools, CAP).unwrap();
        assert_same_db(
            &scenario,
            "after retraction",
            &oracle,
            &mat.output().materialize(),
        );

        // A new b→d shortcut improves the lengthened distance back down.
        edb.get_or_insert("E", 2)
            .merge(vec![k("b"), k("d")], Trop::finite(1.5));
        mat.insert(&[FactInsert::new(
            "E",
            vec![k("b"), k("d")],
            Trop::finite(1.5),
        )])
        .expect("edit applies");
        assert_eq!(mat.get("L", &[k("d")]), Some(&Trop::finite(2.5)));
        let oracle = naive_eval_sparse(&program, &edb, &bools, CAP).unwrap();
        assert_same_db(
            &scenario,
            "after shortcut",
            &oracle,
            &mat.output().materialize(),
        );

        // Reinsert the retracted edge at its old weight: the original
        // optimum is restored exactly.
        edb.get_or_insert("E", 2)
            .merge(vec![k("b"), k("c")], Trop::finite(3.0));
        mat.insert(&[FactInsert::new(
            "E",
            vec![k("b"), k("c")],
            Trop::finite(3.0),
        )])
        .expect("edit applies");
        assert_eq!(mat.get("L", &[k("c")]), Some(&Trop::finite(4.0)));
        let oracle = naive_eval_sparse(&program, &edb, &bools, CAP).unwrap();
        assert_same_db(
            &scenario,
            "after reinsert",
            &oracle,
            &mat.output().materialize(),
        );
    }
}

/// Company control (Ex. 4.3, ℝ₊) through a share sale: ⊕ = + is not
/// idempotent, so the maintenance runs in **naive mode** (no ⊖-delta,
/// no DRed value zero-out — full re-fixpoint from the marked state).
/// Dyadic share weights keep float sums exact under any association
/// order, so the grounded oracle comparison is bitwise.
#[test]
fn incremental_leg_company_control_share_sale() {
    let (program, edb0, bools) = ex::company_control(
        &["a", "b", "c", "d"],
        &[
            ("a", "b", 0.75),
            ("b", "c", 0.375),
            ("a", "c", 0.25),
            ("c", "d", 0.625),
            ("b", "d", 0.25),
        ],
    );
    let scenario = "incremental company control (naive mode)";
    let mut edb = edb0.clone();
    let mut mat = Materialization::new_naive(&program, &edb, &bools, CAP, &EngineOpts::default())
        .expect("compiles");
    let oracle = naive_eval_sparse(&program, &edb, &bools, CAP).unwrap();
    assert_same_db(
        scenario,
        "initial build",
        &oracle,
        &mat.output().materialize(),
    );

    // b sells its 37.5% stake in c: a's transitive control of c through
    // b collapses to the direct 25% holding.
    edb.get_or_insert("S", 2)
        .set(vec![k("b"), k("c")], NNReal::of(0.0));
    mat.delete_naive(&[FactDelete::new("S", vec![k("b"), k("c")])])
        .expect("edit applies");
    let oracle = naive_eval_sparse(&program, &edb, &bools, CAP).unwrap();
    assert_same_db(scenario, "after sale", &oracle, &mat.output().materialize());

    // a buys the stake: shares ⊕-accumulate, a(→c) = 0.25 + 0.375 and a
    // crosses the 50% control threshold of c, re-opening the c→d route.
    edb.get_or_insert("S", 2)
        .merge(vec![k("a"), k("c")], NNReal::of(0.375));
    mat.insert_naive(&[FactInsert::new(
        "S",
        vec![k("a"), k("c")],
        NNReal::of(0.375),
    )])
    .expect("edit applies");
    let oracle = naive_eval_sparse(&program, &edb, &bools, CAP).unwrap();
    assert_same_db(
        scenario,
        "after purchase",
        &oracle,
        &mat.output().materialize(),
    );
}

/// The tentpole invariance sweep: forced merge joins, forced hash
/// joins, and planner-auto are bit-identical to the grounded oracle at
/// 1, 2, and 4 threads on every dioid strategy; the deterministic
/// counters are thread-invariant within each (strategy, mode); each
/// forced mode actually takes its path; and the two join counters
/// always partition `index_probes`.
#[test]
fn join_modes_bit_identical_across_threads() {
    let (program, pops) = stats_workload();
    let bools = BoolDatabase::new();
    let grounded = naive_eval_sparse(&program, &pops, &bools, CAP).unwrap();
    for strategy in [Strategy::SemiNaive, Strategy::Worklist, Strategy::Priority] {
        for mode in [None, Some(JoinMode::Merge), Some(JoinMode::Hash)] {
            let mut seen = vec![];
            for threads in [1usize, 2, 4] {
                let opts = EngineOpts {
                    threads: Some(threads),
                    par_threshold: 1,
                    chunk_min: 2,
                    join_mode: mode,
                    ..EngineOpts::default()
                };
                let out = engine_eval_with_opts(&program, &pops, &bools, CAP, strategy, &opts)
                    .expect("compiles");
                let s = out.stats().clone();
                assert_eq!(
                    s.counters.merge_join_steps + s.counters.hash_join_steps,
                    s.counters.index_probes,
                    "{strategy:?}/{mode:?}: join counters must partition index_probes"
                );
                match mode {
                    Some(JoinMode::Merge) => {
                        assert!(
                            s.counters.merge_join_steps > 0,
                            "{strategy:?}: forced merge must probe arrangements"
                        );
                        assert_eq!(
                            s.counters.hash_join_steps, 0,
                            "{strategy:?}: forced merge must not probe hash indexes"
                        );
                    }
                    // Planner-auto keeps the packed hash path on this
                    // all-arity-2 workload, exactly like forced hash.
                    Some(JoinMode::Hash) | Some(JoinMode::Auto) | None => {
                        assert_eq!(
                            s.counters.merge_join_steps, 0,
                            "{strategy:?}/{mode:?}: no arrangements expected"
                        );
                        assert!(
                            s.counters.hash_join_steps > 0,
                            "{strategy:?}/{mode:?}: hash path must probe"
                        );
                    }
                }
                assert_same_db(
                    "join_modes_bit_identical",
                    &format!("{strategy:?}/{mode:?} @ {threads} threads"),
                    &grounded,
                    &out.unwrap(),
                );
                seen.push((threads, s.invariants()));
            }
            for pair in seen.windows(2) {
                let (t0, s0) = &pair[0];
                let (t1, s1) = &pair[1];
                assert_eq!(
                    s0, s1,
                    "{strategy:?}/{mode:?}: stats differ between {t0} and {t1} threads"
                );
            }
        }
    }
}

/// Planner-auto switches to merge joins past the packed-key width: an
/// arity-3 join probes through a sorted arrangement with no forcing,
/// and stays bit-identical to the grounded oracle at any thread count.
#[test]
fn planner_auto_arranges_wide_relations() {
    let src = "J(X, U) :- A(X, Y, Z) * B(Y, Z, U).";
    let program: Program<Trop> = parse_program(src).unwrap();
    let mut pops = Database::new();
    pops.insert(
        "A",
        Relation::from_pairs(
            3,
            vec![
                (vec![k("a"), k("b"), k("c")], Trop::finite(1.0)),
                (vec![k("a"), k("b"), k("d")], Trop::finite(2.0)),
                (vec![k("f"), k("b"), k("d")], Trop::finite(3.0)),
            ],
        ),
    );
    pops.insert(
        "B",
        Relation::from_pairs(
            3,
            vec![
                (vec![k("b"), k("c"), k("e")], Trop::finite(1.0)),
                (vec![k("b"), k("d"), k("e")], Trop::finite(4.0)),
                (vec![k("b"), k("d"), k("g")], Trop::finite(0.5)),
            ],
        ),
    );
    let bools = BoolDatabase::new();
    let grounded = naive_eval_sparse(&program, &pops, &bools, CAP).unwrap();
    for threads in [1usize, 2, 4] {
        let opts = EngineOpts {
            threads: Some(threads),
            par_threshold: 1,
            chunk_min: 2,
            ..EngineOpts::default()
        };
        let out = engine_eval_with_opts(&program, &pops, &bools, CAP, Strategy::SemiNaive, &opts)
            .expect("compiles");
        let s = out.stats().clone();
        assert!(
            s.counters.merge_join_steps > 0,
            "auto mode must arrange the arity-3 probe side"
        );
        assert_eq!(
            s.counters.hash_join_steps, 0,
            "no packed-width probes in this program"
        );
        assert_same_db(
            "planner_auto_arranges_wide",
            &format!("auto @ {threads} threads"),
            &grounded,
            &out.unwrap(),
        );
    }
}

/// The deterministic counters — everything except wall-clock timings,
/// thread counts, and fan-out bookkeeping — are bit-identical at any
/// thread count and across the materializing / interned entry points.
#[test]
fn stats_invariants_identical_across_threads_and_entry_points() {
    let (program, pops) = stats_workload();
    let bools = BoolDatabase::new();
    for strategy in [Strategy::SemiNaive, Strategy::Worklist, Strategy::Priority] {
        let mut seen = vec![];
        for threads in [1usize, 2, 4] {
            let opts = EngineOpts {
                threads: Some(threads),
                par_threshold: 1,
                chunk_min: 2,
                ..EngineOpts::default()
            };
            let materialized = engine_eval_with_opts(&program, &pops, &bools, CAP, strategy, &opts)
                .expect("compiles");
            let interned = engine_eval_interned(&program, &pops, &bools, CAP, strategy, &opts)
                .expect("compiles");
            assert_eq!(
                materialized.stats().invariants(),
                interned.stats().invariants(),
                "{strategy:?} @ {threads} threads: entry points disagree on stats"
            );
            seen.push((threads, materialized.stats().invariants()));
        }
        for pair in seen.windows(2) {
            let (t0, s0) = &pair[0];
            let (t1, s1) = &pair[1];
            assert_eq!(
                s0, s1,
                "{strategy:?}: stats differ between {t0} and {t1} threads"
            );
        }
    }
}
