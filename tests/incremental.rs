//! The incremental-maintenance differential harness: every edit script
//! — random and adversarial — is applied step by step to a live
//! [`Materialization`] *and* mirrored on a classic [`Database`], and
//! after **every** step the materialization must equal the from-scratch
//! fixpoint of the edited EDB, across evaluation strategies and thread
//! counts, values exact per row.
//!
//! The adversarial shapes target the places where incremental
//! maintenance over dioids can silently go wrong:
//!
//! * insert-only (the no-retraction fast path),
//! * delete-only (DRed marking + rederive),
//! * interleaved inserts and deletes (state handoff between the paths),
//! * delete-then-reinsert (a zeroed-out fact must come back bit-equal),
//! * deleting the only shortest path (the surviving optimum must
//!   *lengthen* — a value a pointwise `⊖` could never produce).

use datalog_o::core::examples_lib as ex;
use datalog_o::core::{
    parse_program, parse_query, BoolDatabase, Constant, Database, Edit, Program, Relation, Tuple,
};
use datalog_o::pops::Trop;
use datalog_o::{engine_eval_with_opts, EngineOpts, Materialization, Strategy};

const CAP: usize = 100_000;

fn k(s: &str) -> Constant {
    s.into()
}

fn apsp_program() -> Program<Trop> {
    parse_program("T(X, Y) :- E(X, Y) + T(X, Z) * E(Z, Y).").unwrap()
}

fn edge_db(edges: &[(&str, &str, f64)]) -> Database<Trop> {
    let mut db = Database::new();
    db.insert(
        "E",
        Relation::from_pairs(
            2,
            edges
                .iter()
                .map(|(u, v, w)| (vec![k(u), k(v)], Trop::finite(*w))),
        ),
    );
    db
}

fn insert(u: &str, v: &str, w: f64) -> Edit<Trop> {
    Edit::insert("E", vec![k(u), k(v)], Trop::finite(w))
}

fn delete(u: &str, v: &str) -> Edit<Trop> {
    Edit::delete("E", vec![k(u), k(v)])
}

/// Applies one edit to the classic mirror exactly as the engine defines
/// edit semantics: insert `⊕`-merges, delete removes the fact.
fn mirror(edb: &mut Database<Trop>, edit: &Edit<Trop>) {
    match edit {
        Edit::Insert(f) => edb
            .get_or_insert(&f.pred, f.tuple.len())
            .merge(f.tuple.clone(), f.value),
        Edit::Delete(f) => edb
            .get_or_insert(&f.pred, f.tuple.len())
            .set(f.tuple.clone(), Trop::INF),
    }
}

/// Runs `script` through a [`Materialization`] and asserts that after
/// every step it is bit-identical to the from-scratch fixpoint of the
/// mirrored EDB under each of `strategies`.
fn assert_differential(
    scenario: &str,
    program: &Program<Trop>,
    edb: &Database<Trop>,
    script: &[Edit<Trop>],
    strategies: &[Strategy],
    opts: &EngineOpts,
) {
    let bools = BoolDatabase::new();
    let mut mat =
        Materialization::new(program, edb, &bools, CAP, Strategy::Auto, opts).expect("compiles");
    let mut mirror_edb = edb.clone();
    for (step, edit) in script.iter().enumerate() {
        mat.apply(std::slice::from_ref(edit)).expect("edit applies");
        mirror(&mut mirror_edb, edit);
        let live = mat.output().materialize();
        for &strategy in strategies {
            let scratch = engine_eval_with_opts(program, &mirror_edb, &bools, CAP, strategy, opts)
                .expect("compiles")
                .converged()
                .unwrap_or_else(|| panic!("{scenario}: oracle diverged at step {step}"))
                .0;
            for (pred, reference) in scratch.iter() {
                let empty = Relation::new(reference.arity());
                assert_eq!(
                    reference,
                    live.get(pred).unwrap_or(&empty),
                    "{scenario}: step {step} ({edit:?}) differs from {strategy:?} oracle on {pred}"
                );
            }
            for (pred, r) in live.iter() {
                if scratch.get(pred).is_none() {
                    assert!(
                        r.is_empty(),
                        "{scenario}: step {step} kept extra atoms in {pred}"
                    );
                }
            }
        }
    }
}

const ALL_STRATEGIES: [Strategy; 3] = [Strategy::SemiNaive, Strategy::Worklist, Strategy::Priority];

/// The Fig. 2(a)-flavoured base graph every adversarial script starts
/// from: a short expensive edge shadowed by a cheap two-hop path.
fn base_edges() -> Vec<(&'static str, &'static str, f64)> {
    vec![
        ("a", "b", 1.0),
        ("b", "c", 2.0),
        ("a", "c", 9.0),
        ("c", "d", 1.0),
        ("b", "d", 7.0),
    ]
}

#[test]
fn insert_only_scripts_match_from_scratch() {
    let script = vec![
        insert("d", "e", 2.0), // new node, extends closure
        insert("a", "c", 1.5), // improves an existing optimum
        insert("a", "c", 5.0), // worse parallel edge: ⊕-absorbed, no-op
        insert("e", "a", 0.5), // closes a cycle
        insert("c", "c", 0.0), // zero-weight self-loop
    ];
    assert_differential(
        "insert-only",
        &apsp_program(),
        &edge_db(&base_edges()),
        &script,
        &ALL_STRATEGIES,
        &EngineOpts::default(),
    );
}

#[test]
fn delete_only_scripts_match_from_scratch() {
    let script = vec![
        delete("b", "d"), // redundant edge: optimum unchanged
        delete("b", "c"), // optimum a→c lengthens to the direct edge
        delete("a", "c"), // disconnects c and d from a entirely
        delete("a", "c"), // deleting an absent fact is a no-op
        delete("a", "b"), // empties the reachable set
    ];
    assert_differential(
        "delete-only",
        &apsp_program(),
        &edge_db(&base_edges()),
        &script,
        &ALL_STRATEGIES,
        &EngineOpts::default(),
    );
}

#[test]
fn interleaved_scripts_match_from_scratch() {
    let script = vec![
        insert("d", "a", 1.0),
        delete("b", "c"),
        insert("b", "c", 0.5),
        delete("a", "b"),
        insert("a", "d", 2.0),
        delete("c", "d"),
        insert("c", "d", 4.0),
    ];
    assert_differential(
        "interleaved",
        &apsp_program(),
        &edge_db(&base_edges()),
        &script,
        &ALL_STRATEGIES,
        &EngineOpts::default(),
    );
}

#[test]
fn delete_then_reinsert_restores_exact_values() {
    let script = vec![
        delete("b", "c"),
        insert("b", "c", 2.0), // same weight: fixpoint must return bit-equal
        delete("a", "b"),
        insert("a", "b", 3.0), // worse weight: downstream paths lengthen
        delete("a", "b"),
        insert("a", "b", 1.0), // back to the original optimum
    ];
    assert_differential(
        "delete-then-reinsert",
        &apsp_program(),
        &edge_db(&base_edges()),
        &script,
        &ALL_STRATEGIES,
        &EngineOpts::default(),
    );
}

#[test]
fn deleting_the_only_shortest_path_lengthens_the_optimum() {
    // a→b→c (cost 3) is the unique optimum; the direct edge costs 9.
    // Deleting b→c must *worsen* T(a,c) to 9 — the value moves up the
    // natural order, which no pointwise subtraction could produce.
    let program = apsp_program();
    let edb = edge_db(&base_edges());
    let bools = BoolDatabase::new();
    let opts = EngineOpts::default();
    let mut mat =
        Materialization::new(&program, &edb, &bools, CAP, Strategy::Auto, &opts).expect("compiles");
    let ac: Tuple = vec![k("a"), k("c")];
    assert_eq!(mat.get("T", &ac), Some(&Trop::finite(3.0)));
    mat.delete(&[datalog_o::core::FactDelete::new("E", vec![k("b"), k("c")])])
        .expect("edit applies");
    assert_eq!(
        mat.get("T", &ac),
        Some(&Trop::finite(9.0)),
        "optimum must lengthen to the surviving direct edge"
    );
    // And the full state still matches from-scratch.
    assert_differential(
        "only-shortest-path",
        &program,
        &edb,
        &[delete("b", "c")],
        &ALL_STRATEGIES,
        &opts,
    );
}

/// A tiny deterministic LCG — no external crates, stable across runs.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// A random edit script over a fixed node universe: inserts twice as
/// likely as deletes, weights in 1..=8, self-loops allowed.
fn random_script(seed: u64, len: usize, nodes: &[&'static str]) -> Vec<Edit<Trop>> {
    let mut rng = Lcg(seed);
    (0..len)
        .map(|_| {
            let u = nodes[(rng.next() % nodes.len() as u64) as usize];
            let v = nodes[(rng.next() % nodes.len() as u64) as usize];
            if rng.next().is_multiple_of(3) {
                delete(u, v)
            } else {
                insert(u, v, (1 + rng.next() % 8) as f64)
            }
        })
        .collect()
}

#[test]
fn random_edit_scripts_match_from_scratch() {
    let nodes = ["a", "b", "c", "d", "e", "f"];
    for seed in [3, 17, 99] {
        let script = random_script(seed, 24, &nodes);
        assert_differential(
            &format!("random-{seed}"),
            &apsp_program(),
            &edge_db(&base_edges()),
            &script,
            &[Strategy::SemiNaive],
            &EngineOpts::default(),
        );
    }
}

#[test]
fn edits_are_bit_identical_at_any_thread_count() {
    // The same random script at 1, 2, and 4 workers — with the fan-out
    // threshold forced down so the parallel path actually runs — must
    // produce identical databases *after every step*.
    let program = apsp_program();
    let edb = edge_db(&base_edges());
    let bools = BoolDatabase::new();
    let script = random_script(42, 16, &["a", "b", "c", "d", "e"]);
    let opts_for = |threads: usize| EngineOpts {
        threads: Some(threads),
        par_threshold: 1,
        chunk_min: 2,
        ..EngineOpts::default()
    };
    let mut mats: Vec<Materialization<Trop>> = [1usize, 2, 4]
        .iter()
        .map(|&t| {
            Materialization::new(&program, &edb, &bools, CAP, Strategy::Auto, &opts_for(t))
                .expect("compiles")
        })
        .collect();
    for (step, edit) in script.iter().enumerate() {
        let mut snapshots = vec![];
        for mat in &mut mats {
            mat.apply(std::slice::from_ref(edit)).expect("edit applies");
            snapshots.push(mat.output().materialize());
        }
        assert_eq!(
            snapshots[0], snapshots[1],
            "step {step}: threads 1 vs 2 differ"
        );
        assert_eq!(
            snapshots[0], snapshots[2],
            "step {step}: threads 1 vs 4 differ"
        );
    }
}

#[test]
fn sssp_gradient_scripts_match_from_scratch() {
    // A single-source program (head arity 1) over the Fig. 2(a) graph:
    // deletes force rederivation chains through the source condition,
    // inserts restore them, and one delete targets an absent edge.
    let (program, edb) = ex::sssp_trop("a");
    let script = vec![
        insert("a", "d", 10.0),
        delete("b", "d"),
        delete("c", "d"), // only the new shortcut remains
        insert("b", "d", 1.0),
        delete("a", "b"),
    ];
    assert_differential(
        "sssp-gradient",
        &program,
        &edb,
        &script,
        &ALL_STRATEGIES,
        &EngineOpts::default(),
    );
}

#[test]
fn queries_answer_against_the_current_epoch() {
    let program = apsp_program();
    let edb = edge_db(&base_edges());
    let bools = BoolDatabase::new();
    let opts = EngineOpts::default();
    let mut mat =
        Materialization::new(&program, &edb, &bools, CAP, Strategy::Auto, &opts).expect("compiles");
    let query = parse_query("?- T(\"a\", Y).").unwrap();

    let before = mat.query(&query).expect("query compiles");
    assert_eq!(
        before.answers().get(&vec![k("a"), k("c")]),
        Trop::finite(3.0)
    );
    assert_eq!(mat.epoch(), 0);

    mat.apply(&[delete("b", "c"), insert("a", "e", 0.25)])
        .expect("edit applies");
    assert_eq!(mat.epoch(), 2);
    let after = mat.query(&query).expect("query compiles");
    assert_eq!(
        after.answers().get(&vec![k("a"), k("c")]),
        Trop::finite(9.0),
        "query must see the post-delete optimum"
    );
    assert_eq!(
        after.answers().get(&vec![k("a"), k("e")]),
        Trop::finite(0.25),
        "query must see the inserted edge"
    );
}

#[test]
fn per_edit_stats_attribute_work_to_each_edit() {
    let program = apsp_program();
    let edb = edge_db(&base_edges());
    let bools = BoolDatabase::new();
    let mut mat = Materialization::new(
        &program,
        &edb,
        &bools,
        CAP,
        Strategy::Auto,
        &EngineOpts::default(),
    )
    .expect("compiles");
    assert_eq!(mat.last_stats().strategy, "incremental-build");
    assert!(mat.last_stats().counters.rows_inserted > 0);

    let stats = mat
        .insert(&[datalog_o::core::FactInsert::new(
            "E",
            vec![k("d"), k("e")],
            Trop::finite(2.0),
        )])
        .expect("edit applies");
    assert_eq!(stats.strategy, "incremental-insert");
    assert!(
        stats.counters.rows_inserted >= 1,
        "the edit derived new facts"
    );
    assert!(
        !stats.rules.is_empty(),
        "per-rule profile rides along on edits"
    );

    let stats = mat
        .delete(&[datalog_o::core::FactDelete::new("E", vec![k("d"), k("e")])])
        .expect("edit applies");
    assert_eq!(stats.strategy, "incremental-delete");
    assert!(stats.counters.emits > 0, "marking + rederive ran plans");
}

/// `rebuild()` reuses the retained interner: constant ids minted by
/// earlier epochs (including constants introduced by edits) resolve to
/// the same ids after the recovery, so interned keys held by callers
/// stay valid across a rebuild.
#[test]
fn rebuild_keeps_minted_constant_ids_stable() {
    use datalog_o::core::FactInsert;
    use datalog_o::EvalBudget;
    let program = apsp_program();
    let edb = edge_db(&base_edges());
    let bools = BoolDatabase::new();
    let mut mat = Materialization::new(
        &program,
        &edb,
        &bools,
        CAP,
        Strategy::SemiNaive,
        &EngineOpts::default(),
    )
    .expect("compiles");

    // Edits introduce constants the original EDB never mentioned.
    mat.insert(&[FactInsert::new(
        "E",
        vec![k("zz1"), k("zz2")],
        Trop::finite(1.0),
    )])
    .expect("edit applies");
    mat.insert(&[FactInsert::new(
        "E",
        vec![k("zz2"), k("a")],
        Trop::finite(2.0),
    )])
    .expect("edit applies");
    let probe: Vec<Constant> = vec![k("a"), k("b"), k("zz1"), k("zz2")];
    let ids_before: Vec<u32> = probe
        .iter()
        .map(|c| mat.output().interner().lookup(c).expect("interned"))
        .collect();

    // A healthy-handle rebuild (refresh) keeps every id.
    mat.rebuild().expect("ungoverned rebuild");
    let ids_refreshed: Vec<u32> = probe
        .iter()
        .map(|c| mat.output().interner().lookup(c).expect("still interned"))
        .collect();
    assert_eq!(ids_before, ids_refreshed, "refresh rebuild remints ids");

    // Poison the handle, then recover: ids still stable.
    mat.set_budget(EvalBudget::default().with_max_rows(1));
    mat.insert(&[FactInsert::new(
        "E",
        vec![k("zz3"), k("a")],
        Trop::finite(0.5),
    )])
    .expect_err("one-row ceiling trips");
    assert!(mat.poisoned().is_some());
    mat.set_budget(EvalBudget::unlimited());
    mat.rebuild().expect("recovery rebuild");
    assert!(mat.poisoned().is_none());
    let ids_after: Vec<u32> = probe
        .iter()
        .map(|c| mat.output().interner().lookup(c).expect("still interned"))
        .collect();
    assert_eq!(ids_before, ids_after, "recovery rebuild remints ids");

    // And the recovered fixpoint still matches from-scratch.
    let edb_now = mat.edb().clone();
    let oracle = engine_eval_with_opts(
        &program,
        &edb_now,
        &bools,
        CAP,
        Strategy::SemiNaive,
        &EngineOpts::default(),
    )
    .expect("compiles")
    .converged()
    .expect("oracle converges")
    .0;
    let live = mat.output().materialize();
    for (pred, reference) in oracle.iter() {
        let empty = Relation::new(reference.arity());
        assert_eq!(
            reference,
            live.get(pred).unwrap_or(&empty),
            "rebuilt {pred} differs from from-scratch"
        );
    }
}

/// Edits must not churn state the edit never touches: with two
/// independent closures in one program, editing one EDB leaves the
/// other IDB's lazy indexes *and* its row storage untouched — pinned
/// by the engine's per-relation `index_builds` / `version` counters.
/// (Before differential snapshot maintenance, every edit re-cloned and
/// re-indexed every relation.)
#[test]
fn edits_leave_untouched_relations_indexes_alone() {
    let program: Program<Trop> = parse_program(
        "P(X, Z) :- EP(X, Z) + P(X, Y) * P(Y, Z).\n\
         Q(X, Z) :- EQ(X, Z) + Q(X, Y) * Q(Y, Z).",
    )
    .unwrap();
    let mut edb = Database::new();
    edb.insert(
        "EP",
        Relation::from_pairs(
            2,
            vec![
                (vec![k("a"), k("b")], Trop::finite(1.0)),
                (vec![k("b"), k("c")], Trop::finite(1.0)),
            ],
        ),
    );
    edb.insert(
        "EQ",
        Relation::from_pairs(
            2,
            vec![
                (vec![k("x"), k("y")], Trop::finite(2.0)),
                (vec![k("y"), k("z")], Trop::finite(2.0)),
            ],
        ),
    );
    let bools = BoolDatabase::new();
    let mut mat = Materialization::new(
        &program,
        &edb,
        &bools,
        CAP,
        Strategy::Auto,
        &EngineOpts::default(),
    )
    .expect("compiles");

    // Build the initial snapshot, then record Q's counters.
    let _ = mat.output();
    let q_builds = mat.index_builds_for("Q");
    let q_version = mat.version_for("Q");
    let p_version = mat.version_for("P");

    // A stream of edits that only ever touches the P side.
    mat.apply(&[
        Edit::insert("EP", vec![k("c"), k("d")], Trop::finite(1.0)),
        Edit::delete("EP", vec![k("a"), k("b")]),
        Edit::insert("EP", vec![k("a"), k("b")], Trop::finite(0.5)),
    ])
    .expect("edits apply");
    let snap = mat.output().materialize();
    assert_eq!(
        snap.get("P").unwrap().get(&vec![k("a"), k("d")]),
        Trop::finite(2.5),
        "P reflects the edits"
    );
    assert_eq!(
        snap.get("Q").unwrap().get(&vec![k("x"), k("z")]),
        Trop::finite(4.0),
        "Q is still complete"
    );

    assert_ne!(
        mat.version_for("P"),
        p_version,
        "the edited relation's version must move"
    );
    assert_eq!(
        mat.index_builds_for("Q"),
        q_builds,
        "edits to EP must not rebuild Q's indexes"
    );
    assert_eq!(
        mat.version_for("Q"),
        q_version,
        "edits to EP must not rewrite Q's rows"
    );
}

/// A poisoned handle keeps the failed edit's mid-fixpoint state
/// read-only next to the poison: `partial()` is `Some` (best-effort,
/// not exact), its values sit at-or-below the post-edit fixpoint for an
/// interrupted insert, and a successful rebuild clears it.
#[test]
fn poisoned_handle_exposes_partial_beside_the_poison() {
    use datalog_o::core::FactInsert;
    use datalog_o::pops::Pops;
    use datalog_o::EvalBudget;
    let program = apsp_program();
    let edb = edge_db(&base_edges());
    let bools = BoolDatabase::new();
    let mut mat = Materialization::new(
        &program,
        &edb,
        &bools,
        CAP,
        Strategy::SemiNaive,
        &EngineOpts::default(),
    )
    .expect("compiles");
    assert!(mat.partial().is_none(), "healthy handle has no partial");

    mat.set_budget(EvalBudget::default().with_max_rows(1));
    mat.insert(&[FactInsert::new(
        "E",
        vec![k("d"), k("a")],
        Trop::finite(0.5),
    )])
    .expect_err("one-row ceiling trips");
    assert!(mat.poisoned().is_some());
    let partial = mat.partial().expect("poisoned handle exposes its partial");
    assert!(
        !partial.is_exact(),
        "incremental partials are best-effort, never exact"
    );

    // An interrupted *insert* leaves a pointwise lower bound of the
    // post-edit fixpoint (the maintenance loop only grows values).
    let oracle = engine_eval_with_opts(
        &program,
        mat.edb(),
        &bools,
        CAP,
        Strategy::SemiNaive,
        &EngineOpts::default(),
    )
    .expect("from-scratch on the retained EDB")
    .converged()
    .expect("oracle converges")
    .0;
    let snap = partial.materialize();
    for (pred, rel) in snap.iter() {
        for (t, v) in rel.support() {
            let fv = oracle
                .get(pred)
                .map(|r| r.get(t))
                .unwrap_or_else(Trop::bottom);
            assert!(
                v.leq(&fv),
                "partial {pred}({t:?}) = {v:?} above post-edit fixpoint {fv:?}"
            );
        }
    }

    // Recovery clears the partial with the poison.
    mat.set_budget(EvalBudget::unlimited());
    mat.rebuild().expect("recovery rebuild");
    assert!(
        mat.partial().is_none(),
        "rebuild clears the stashed partial"
    );
}
