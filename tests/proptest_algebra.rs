//! Property tests: the algebraic laws of Sec. 2 and Sec. 6 on the
//! *infinite* structures (the finite ones are checked exhaustively by
//! `dlo_pops::checker`).

use datalog_o::pops::{
    stability, Bool, CompleteDistributiveDioid, Lifted, LiftedReal, MaxMin, MaxPlus, MinNat,
    NNReal, Nat, Pops, PreSemiring, Trop, TropEta, TropP,
};
use proptest::prelude::*;

// --- strategies -------------------------------------------------------------

fn trop() -> impl Strategy<Value = Trop> {
    prop_oneof![
        (0u32..100).prop_map(|c| Trop::finite(c as f64 / 2.0)),
        Just(Trop::INF),
    ]
}

fn trop_p2() -> impl Strategy<Value = TropP<2>> {
    proptest::collection::vec(0u32..40, 0..4)
        .prop_map(|cs| TropP::<2>::from_costs(&cs.iter().map(|&c| c as f64).collect::<Vec<_>>()))
}

fn trop_eta() -> impl Strategy<Value = TropEta<6>> {
    proptest::collection::vec(0u64..30, 1..5).prop_map(|cs| TropEta::<6>::from_costs(&cs))
}

fn minnat() -> impl Strategy<Value = MinNat> {
    prop_oneof![(0u64..50).prop_map(MinNat::finite), Just(MinNat::INF)]
}

fn maxplus() -> impl Strategy<Value = MaxPlus> {
    prop_oneof![
        (-50i32..50).prop_map(|x| MaxPlus::finite(x as f64)),
        Just(MaxPlus::NEG_INF),
    ]
}

fn maxmin() -> impl Strategy<Value = MaxMin> {
    (0u32..=100).prop_map(|x| MaxMin::of(x as f64 / 100.0))
}

fn nnreal() -> impl Strategy<Value = NNReal> {
    (0u32..1000).prop_map(|x| NNReal::of(x as f64 / 8.0))
}

fn lifted_real() -> impl Strategy<Value = LiftedReal> {
    prop_oneof![
        Just(Lifted::Bot),
        (-100i32..100).prop_map(|x| Lifted::Val(datalog_o::pops::Real::of(x as f64 / 4.0))),
    ]
}

// --- generic law bundles -----------------------------------------------------

fn semiring_laws<P: PreSemiring>(a: &P, b: &P, c: &P) {
    assert_eq!(a.add(b), b.add(a), "⊕ comm");
    assert_eq!(a.mul(b), b.mul(a), "⊗ comm");
    assert_eq!(a.add(b).add(c), a.add(&b.add(c)), "⊕ assoc");
    assert_eq!(a.mul(b).mul(c), a.mul(&b.mul(c)), "⊗ assoc");
    assert_eq!(a.mul(&b.add(c)), a.mul(b).add(&a.mul(c)), "distributivity");
    assert_eq!(&a.add(&P::zero()), a, "0 identity");
    assert_eq!(&a.mul(&P::one()), a, "1 identity");
}

fn pops_laws<P: Pops>(a: &P, b: &P, c: &P) {
    assert!(P::bottom().leq(a), "⊥ minimum");
    assert!(a.leq(a), "reflexive");
    if a.leq(b) && b.leq(a) {
        assert_eq!(a, b, "antisymmetry");
    }
    if a.leq(b) && b.leq(c) {
        assert!(a.leq(c), "transitivity");
    }
    if a.leq(b) {
        assert!(a.add(c).leq(&b.add(c)), "⊕ monotone");
        assert!(a.mul(c).leq(&b.mul(c)), "⊗ monotone");
    }
}

fn dioid_minus_laws<P: CompleteDistributiveDioid>(a: &P, b: &P, c: &P) {
    assert_eq!(a.add(a), a.clone(), "idempotent");
    // (61): a ⊕ (b ⊖ a) ⊒ b.
    assert!(b.leq(&a.add(&b.minus(a))), "(61)");
    // (59): a ⊑ b ⟹ a ⊕ (b ⊖ a) = b.
    if a.leq(b) {
        assert_eq!(a.add(&b.minus(a)), b.clone(), "(59)");
    }
    // (60): (a ⊕ b) ⊖ (a ⊕ c) = b ⊖ (a ⊕ c).
    assert_eq!(a.add(b).minus(&a.add(c)), b.minus(&a.add(c)), "(60)");
    // b ⊖ a = 0 ⟺ b ⊑ a (the semi-naïve stopping criterion).
    assert_eq!(b.minus(a).is_zero(), b.leq(a), "⊖ zero test");
}

macro_rules! law_suite {
    ($name:ident, $strat:expr, semiring) => {
        proptest! {
            #[test]
            fn $name((a, b, c) in ($strat, $strat, $strat)) {
                semiring_laws(&a, &b, &c);
                let zero = <_ as PreSemiring>::zero();
                prop_assert_eq!(a.mul(&zero), zero, "absorption");
            }
        }
    };
    ($name:ident, $strat:expr, pops) => {
        proptest! {
            #[test]
            fn $name((a, b, c) in ($strat, $strat, $strat)) {
                pops_laws(&a, &b, &c);
            }
        }
    };
    ($name:ident, $strat:expr, dioid) => {
        proptest! {
            #[test]
            fn $name((a, b, c) in ($strat, $strat, $strat)) {
                dioid_minus_laws(&a, &b, &c);
            }
        }
    };
}

law_suite!(trop_semiring, trop(), semiring);
law_suite!(trop_pops, trop(), pops);
law_suite!(trop_dioid, trop(), dioid);
law_suite!(trop_p2_semiring, trop_p2(), semiring);
law_suite!(trop_p2_pops, trop_p2(), pops);
law_suite!(trop_eta_semiring, trop_eta(), semiring);
law_suite!(trop_eta_pops, trop_eta(), pops);
law_suite!(minnat_semiring, minnat(), semiring);
law_suite!(minnat_dioid, minnat(), dioid);
law_suite!(maxplus_semiring, maxplus(), semiring);
law_suite!(maxplus_dioid, maxplus(), dioid);
law_suite!(maxmin_semiring, maxmin(), semiring);
law_suite!(maxmin_dioid, maxmin(), dioid);
law_suite!(nnreal_semiring, nnreal(), semiring);
law_suite!(nnreal_pops, nnreal(), pops);

proptest! {
    /// Lifted POPS: pre-semiring laws hold but absorption fails at ⊥;
    /// ⊥ absorbs both operations.
    #[test]
    fn lifted_real_laws((a, b, c) in (lifted_real(), lifted_real(), lifted_real())) {
        semiring_laws(&a, &b, &c);
        pops_laws(&a, &b, &c);
        prop_assert_eq!(a.add(&Lifted::Bot), Lifted::Bot);
        prop_assert_eq!(a.mul(&Lifted::Bot), Lifted::Bot);
    }

    /// Natural order on naturally ordered semirings: x ⊑ x ⊕ y always.
    #[test]
    fn natural_order_grows_with_add(a in trop(), b in trop()) {
        prop_assert!(a.leq(&a.add(&b)));
    }

    /// Stability: every Trop element 0-stable, every TropP<2> element
    /// 2-stable, every TropEta element stable (index ≤ η+1 for integers).
    #[test]
    fn stability_classes(t in trop(), p in trop_p2(), e in trop_eta()) {
        prop_assert!(stability::is_p_stable(&t, 0));
        prop_assert!(stability::is_p_stable(&p, 2));
        prop_assert!(stability::element_stability_index(&e, 10).is_some());
    }

    /// Eq. (15)/(16): computing through bags/sets then reducing once agrees
    /// with reducing at each step — probed via associativity mixes.
    #[test]
    fn trop_p_reduction_identities(
        (a, b, c, d) in (trop_p2(), trop_p2(), trop_p2(), trop_p2())
    ) {
        prop_assert_eq!(a.add(&b).mul(&c.add(&d)),
            a.mul(&c).add(&a.mul(&d)).add(&b.mul(&c)).add(&b.mul(&d)));
    }

    /// Bool never lies (sanity anchor for the macros).
    #[test]
    fn bool_laws(a in any::<bool>(), b in any::<bool>(), c in any::<bool>()) {
        let (a, b, c) = (Bool(a), Bool(b), Bool(c));
        semiring_laws(&a, &b, &c);
        pops_laws(&a, &b, &c);
        dioid_minus_laws(&a, &b, &c);
    }

    /// Nat is naturally ordered but unstable for u ≥ 1 except u = 0.
    /// (The probe window stays below u64 saturation, where the saturating
    /// representation would fake stability at u64::MAX — see nat.rs.)
    #[test]
    fn nat_stability_dichotomy(u in 0u64..16) {
        let ix = stability::element_stability_index(&Nat(u), 14);
        if u == 0 {
            prop_assert_eq!(ix, Some(0));
        } else {
            prop_assert_eq!(ix, None);
        }
    }
}
