//! Property tests for the grammar/Parikh substrate (Sec. 5.2–5.3) and the
//! stability micro-theory.

use datalog_o::pops::{stability, TropEta, TropP};
use datalog_o::provenance::{
    check_lemma_5_6, formal_iterates, trees_upto, FExpr, FormalPoly, Grammar, Sym,
};
use proptest::prelude::*;

/// Strategy: a small random grammar (≤ 3 nonterminals, ≤ 3 productions
/// each, RHS arity ≤ 2) with distinct terminals per production.
fn grammar_strategy() -> impl Strategy<Value = Grammar> {
    (1usize..4)
        .prop_flat_map(|nvars| {
            proptest::collection::vec(
                proptest::collection::vec(proptest::collection::vec(0usize..nvars, 0..3), 1..4),
                nvars..=nvars,
            )
        })
        .prop_map(|per_var| {
            let mut g = Grammar::new(per_var.len());
            let mut sym = 0u32;
            for (v, prods) in per_var.into_iter().enumerate() {
                for children in prods {
                    g.add(v, Sym(sym), children);
                    sym += 1;
                }
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lemma 5.6 on random grammars: the formal iterate equals the sum of
    /// yields of parse trees of bounded depth.
    #[test]
    fn lemma_5_6_random(g in grammar_strategy()) {
        prop_assume!(check_lemma_5_6(&g, 0, 10).is_ok());
        if let Err((i, q)) = check_lemma_5_6(&g, 3, 2_000_000) {
            prop_assert!(false, "mismatch at var {} q {}", i, q);
        }
    }

    /// Tree counts are monotone in depth and match coefficients totals.
    #[test]
    fn tree_counts_monotone(g in grammar_strategy()) {
        for v in 0..g.num_vars() {
            let t2 = trees_upto(&g, v, 2, 500_000).map(|t| t.len());
            let t3 = trees_upto(&g, v, 3, 500_000).map(|t| t.len());
            if let (Some(a), Some(b)) = (t2, t3) {
                prop_assert!(a <= b);
            }
        }
    }

    /// The formal semiring ℕ[Σ] satisfies the semiring laws.
    #[test]
    fn formal_poly_semiring_laws(
        sa in 0u32..4, sb in 0u32..4, sc in 0u32..4,
        ka in 1u128..5, kb in 1u128..5
    ) {
        let a = FormalPoly::monomial(
            datalog_o::provenance::Expo::of(Sym(sa)), ka);
        let b = FormalPoly::monomial(
            datalog_o::provenance::Expo::of(Sym(sb)), kb);
        let c = FormalPoly::sym(Sym(sc));
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
        prop_assert_eq!(a.add(&FormalPoly::zero()), a.clone());
        prop_assert_eq!(a.mul(&FormalPoly::one()), a.clone());
        prop_assert!(a.mul(&FormalPoly::zero()).is_empty());
    }

    /// Formal iterates form an ascending chain of monomial sets: every
    /// monomial of f^(q)(0) persists in f^(q+1)(0) with count ≥ — in fact
    /// tree counts only grow.
    #[test]
    fn formal_iterates_coefficients_grow(g in grammar_strategy()) {
        let sys: Vec<FExpr> = g.to_formal_system();
        let its = formal_iterates(&sys, 4);
        for q in 1..4 {
            for (i, poly) in its[q].iter().enumerate() {
                for (v, c) in poly.terms() {
                    prop_assert!(its[q + 1][i].coeff(v) >= *c);
                }
            }
        }
    }

    /// The stability helpers agree: is_p_stable(u, index(u)) and not one
    /// below (minimality), over TropP and TropEta samples.
    #[test]
    fn stability_index_is_minimal(costs in proptest::collection::vec(0u64..30, 1..4)) {
        let fcosts: Vec<f64> = costs.iter().map(|&c| c as f64).collect();
        let u = TropP::<3>::from_costs(&fcosts);
        let ix = stability::element_stability_index(&u, 50).unwrap();
        prop_assert!(stability::is_p_stable(&u, ix));
        if ix > 0 {
            prop_assert!(!stability::is_p_stable(&u, ix - 1));
        }
        let e = TropEta::<12>::from_costs(&costs);
        let ixe = stability::element_stability_index(&e, 100).unwrap();
        prop_assert!(stability::is_p_stable(&e, ixe));
        if ixe > 0 {
            prop_assert!(!stability::is_p_stable(&e, ixe - 1));
        }
    }
}
