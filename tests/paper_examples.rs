//! Integration: every numbered example of the paper, end to end through
//! the umbrella crate (parser → grounder → evaluator → POPS).

use datalog_o::core::examples_lib as ex;
use datalog_o::core::{
    ground, naive_eval, naive_eval_trace, parse_program, BoolDatabase, EvalOutcome, GroundAtom,
    Program,
};
use datalog_o::pops::lifted::lreal;
use datalog_o::pops::{Bool, LiftedReal, Three, Trop, TropP};

fn tup(names: &[&str]) -> Vec<datalog_o::core::Constant> {
    names.iter().map(|n| (*n).into()).collect()
}

#[test]
fn example_1_1_apsp_shapes() {
    // APSP over Trop+ on Fig. 2(a); spot-check against hand-computed paths.
    let (prog, edb) = ex::apsp_trop(&[
        ("a", "b", 1.0),
        ("b", "a", 2.0),
        ("b", "c", 3.0),
        ("c", "d", 4.0),
        ("a", "c", 5.0),
    ]);
    let out = naive_eval(&prog, &edb, &BoolDatabase::new(), 1000).unwrap();
    let t = out.get("T").unwrap();
    assert_eq!(t.get(&tup(&["a", "d"])), Trop::finite(8.0));
    assert_eq!(t.get(&tup(&["a", "a"])), Trop::finite(3.0)); // a→b→a
    assert_eq!(t.get(&tup(&["d", "a"])), Trop::INF);
}

#[test]
fn example_4_1_all_four_pops_from_one_source_text() {
    // The same surface text runs over B and Trop+ (ParseValue for both).
    let src = "L(X) :- 1 | X = a.\nL(X) :- L(Z) * E(Z, X).";
    let pb: Program<Bool> = parse_program(src).unwrap();
    let pt: Program<Trop> = parse_program(src).unwrap();
    let out_b = naive_eval(
        &pb,
        &ex::fig2a_graph(|_| Bool(true)),
        &BoolDatabase::new(),
        100,
    )
    .unwrap();
    let out_t = naive_eval(
        &pt,
        &ex::fig2a_graph(Trop::finite),
        &BoolDatabase::new(),
        100,
    )
    .unwrap();
    // Reachability support = finite-distance support.
    let rb: Vec<_> = out_b
        .get("L")
        .unwrap()
        .support()
        .map(|(t, _)| t.clone())
        .collect();
    let rt: Vec<_> = out_t
        .get("L")
        .unwrap()
        .support()
        .map(|(t, _)| t.clone())
        .collect();
    assert_eq!(rb, rt);

    // Trop+_1 and Trop+_eta agree with the paper's bags/sets.
    let pp: Program<TropP<1>> = ex::single_source_program("a");
    let out_p = naive_eval(
        &pp,
        &ex::fig2a_graph(|w| TropP::<1>::from_costs(&[w])),
        &BoolDatabase::new(),
        100,
    )
    .unwrap();
    assert_eq!(
        out_p.get("L").unwrap().get(&tup(&["a"])),
        TropP::<1>::from_costs(&[0.0, 3.0])
    );
}

#[test]
fn example_4_2_both_pops() {
    let (prog_n, pops_n, bools_n) = ex::bom_naturals();
    assert!(!naive_eval(&prog_n, &pops_n, &bools_n, 40).is_converged());

    let (prog, pops, bools) = ex::bom_lifted_reals();
    let sys = ground(&prog, &pops, &bools);
    let trace = naive_eval_trace(&sys, 100);
    assert!(trace.converged);
    assert_eq!(trace.iterates.len() - 1, 2);
    // Row T1 of the paper: (⊥, ⊥, ⊥, 10).
    let t1 = &trace.iterates[1];
    let ix = |n: &str| sys.index[&GroundAtom::new("T", tup(&[n]))];
    assert_eq!(t1[ix("a")], LiftedReal::Bot);
    assert_eq!(t1[ix("d")], lreal(10.0));
    // Fixpoint row.
    let tf = trace.iterates.last().unwrap();
    assert_eq!(tf[ix("c")], lreal(11.0));
    assert_eq!(tf[ix("b")], LiftedReal::Bot);
}

#[test]
fn example_4_3_company_control_is_transitive() {
    let (prog, pops, bools) = ex::company_control(
        &["a", "b", "c"],
        &[("a", "b", 0.6), ("b", "c", 0.6), ("a", "c", 0.0)],
    );
    let out = naive_eval(&prog, &pops, &bools, 1000).unwrap();
    let t = out.get("T").unwrap();
    // a controls b directly; through b it holds b's 0.6 of c.
    assert!(t.get(&tup(&["a", "b"])).get() > 0.5);
    assert!(t.get(&tup(&["a", "c"])).get() > 0.5);
}

#[test]
fn sec_4_5_prefix_sum_and_shortest_length() {
    let (prog, edb) = ex::prefix_sum(&[1.0, 2.0, 3.0]);
    let out = naive_eval(&prog, &edb, &BoolDatabase::new(), 100).unwrap();
    let w = out.get("W").unwrap();
    assert_eq!(w.get(&vec![2i64.into()]), lreal(6.0));

    let (prog, edb) = ex::shortest_length(&[("x", "y", 9), ("x", "y", 4)]);
    let out = naive_eval(&prog, &edb, &BoolDatabase::new(), 100).unwrap();
    assert_eq!(
        out.get("ShortestLength").unwrap().get(&tup(&["x", "y"])),
        Trop::finite(4.0)
    );
}

#[test]
fn sec_7_win_move_through_core_engine() {
    // The datalog° THREE program through the generic engine (with `not` as
    // an interpreted function) matches the dedicated wellfounded crate.
    let edges = ex::fig4_edges();
    let (prog, bools) = ex::win_move_three(&edges);
    let out = naive_eval(
        &prog,
        &datalog_o::core::Database::<Three>::new(),
        &bools,
        100,
    )
    .unwrap();
    let win = out.get("Win").unwrap();
    assert_eq!(win.get(&tup(&["c"])), Three::True);
    assert_eq!(win.get(&tup(&["e"])), Three::True);
    assert_eq!(win.get(&tup(&["d"])), Three::False);
    assert_eq!(win.get(&tup(&["f"])), Three::False);
    // a, b undefined: ⊥ is not stored in the output relation.
    assert_eq!(win.get(&tup(&["a"])), Three::Undef);
    assert_eq!(win.get(&tup(&["b"])), Three::Undef);

    // Same answer as the wellfounded crate's dedicated evaluator.
    let p = datalog_o::wellfounded::win_move_program(&datalog_o::wellfounded::fig4_adjacency());
    let (lfp, _) = datalog_o::wellfounded::fitting_lfp(&p);
    for n in ["a", "b", "c", "d", "e", "f"] {
        let ix = p.atom_index(&format!("W({n})")).unwrap();
        assert_eq!(win.get(&tup(&[n])), lfp[ix], "node {n}");
    }
}

#[test]
fn eq_29_one_rule_program_diverges_iff_unstable() {
    // x :- 1 ⊕ c·x over ℕ diverges for c = 2 ...
    use datalog_o::core::ast::{Atom, Factor, SumProduct, Term};
    use datalog_o::pops::Nat;
    let mut p = Program::<Nat>::new();
    p.rule(
        Atom::new("X", vec![Term::c("u")]),
        vec![
            SumProduct::new(vec![]).with_coeff(Nat(1)),
            SumProduct::new(vec![Factor::atom("X", vec![Term::c("u")])]).with_coeff(Nat(2)),
        ],
    );
    assert!(!naive_eval(&p, &Default::default(), &BoolDatabase::new(), 50).is_converged());

    // ... and the same program over Trop+ converges (0-stable).
    let mut pt = Program::<Trop>::new();
    pt.rule(
        Atom::new("X", vec![Term::c("u")]),
        vec![
            SumProduct::new(vec![]).with_coeff(Trop::finite(1.0)),
            SumProduct::new(vec![Factor::atom("X", vec![Term::c("u")])])
                .with_coeff(Trop::finite(2.0)),
        ],
    );
    match naive_eval(&pt, &Default::default(), &BoolDatabase::new(), 50) {
        EvalOutcome::Converged { output, steps, .. } => {
            assert!(steps <= 2);
            assert_eq!(
                output.get("X").unwrap().get(&tup(&["u"])),
                Trop::finite(1.0)
            );
        }
        _ => panic!("must converge over Trop+"),
    }
}
