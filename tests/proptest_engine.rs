//! Property tests over the engine: randomized programs and instances.
//!
//! * Theorem 6.4: semi-naïve ≡ naïve on random graphs over the complete
//!   distributive dioids;
//! * sparse ≡ dense grounding on naturally ordered semirings;
//! * `LinearLFP` ≡ naïve on random linear systems;
//! * parser/pretty-printer round trips;
//! * engine vs Dijkstra on weighted random graphs.

use datalog_o::core::ast::{Atom, Factor, KeyFn, SumProduct, Term};
use datalog_o::core::formula::{CmpOp, Formula};
use datalog_o::core::{
    bool_relation, ground, ground_sparse, naive_eval_system, parse_program, relational_naive_eval,
    relational_seminaive_eval, render_program, seminaive_eval_system, BoolDatabase, Database,
    EvalOutcome, Program, Relation,
};
use datalog_o::core::{Edit, Query, QueryArg};
use datalog_o::pops::{
    Absorptive, Bool, CompleteDistributiveDioid, MaxMin, MinNat, NaturallyOrdered, Pops,
    TotallyOrderedDioid, Trop,
};
use datalog_o::semilin::{linear_lfp_auto, AffineSystem};
use datalog_o::{
    engine_eval, engine_eval_with_opts, engine_naive_eval, engine_query_eval_with_opts,
    engine_seminaive_eval, EngineOpts, JoinMode, Materialization, Strategy as EngineStrategy,
};
use proptest::prelude::*;

/// Tuning that forces the frontier drivers' parallel batch path even on
/// single-row batches (`threads` workers, fan-out threshold 1).
fn forced_parallel(threads: usize) -> EngineOpts {
    EngineOpts {
        threads: Some(threads),
        par_threshold: 1,
        chunk_min: 2,
        ..EngineOpts::default()
    }
}

/// Strategy: a random edge list over `n ≤ 8` integer nodes.
fn edges_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize, u8)>)> {
    (3usize..8).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec(((0..n), (0..n), 1u8..9), 1..=3 * n),
        )
    })
}

fn trop_edb(edges: &[(usize, usize, u8)]) -> Database<Trop> {
    let mut db = Database::new();
    db.insert(
        "E",
        Relation::from_pairs(
            2,
            edges.iter().map(|&(u, v, w)| {
                (
                    vec![(u as i64).into(), (v as i64).into()],
                    Trop::finite(w as f64),
                )
            }),
        ),
    );
    db
}

fn minnat_edb(edges: &[(usize, usize, u8)]) -> Database<MinNat> {
    let mut db = Database::new();
    db.insert(
        "E",
        Relation::from_pairs(
            2,
            edges.iter().map(|&(u, v, w)| {
                (
                    vec![(u as i64).into(), (v as i64).into()],
                    MinNat::finite(w as u64),
                )
            }),
        ),
    );
    db
}

fn maxmin_edb(edges: &[(usize, usize, u8)]) -> Database<MaxMin> {
    let mut db = Database::new();
    db.insert(
        "E",
        Relation::from_pairs(
            2,
            edges.iter().map(|&(u, v, w)| {
                (
                    vec![(u as i64).into(), (v as i64).into()],
                    MaxMin::of(w as f64 / 10.0),
                )
            }),
        ),
    );
    db
}

/// A randomized single-IDB program exercising the whole key-function
/// surface: shifts in rule **heads** (the engine's dynamic-interning
/// path), shifts in bodies (lookup/deferred-check paths), comparisons,
/// and Boolean guards.
///
/// ```text
/// R(x)          :- V(x ⟨+ seed_shift⟩).
/// R(x + d)      :- R(x)            | x ⋖ bound [ ∧ B(x) ] [ ∧ x ≠ 0 ]   (counter form)
/// R(y + d)      :- R(x) ⊗ E(x, y)  |           [ ∧ B(x) ] [ ∧ x ≠ 0 ]   (walk form)
/// ```
///
/// Counter recursion is guarded by a comparison in the shift's
/// direction, and walk recursion derives keys only from the finite edge
/// set, so every instance converges on the 0-stable dioids tested.
#[derive(Clone, Debug)]
struct KeyedSpec {
    head_shift: i64,
    seed_shift: i64,
    use_edge: bool,
    use_guard: bool,
    neq_zero: bool,
    bound: i64,
}

fn keyed_spec_strategy() -> impl Strategy<Value = KeyedSpec> {
    ((-2i64..=2, -1i64..=1, 0u8..2, 0u8..2), (0u8..2, 3i64..8)).prop_map(
        |((head_shift, seed_shift, use_edge, use_guard), (neq_zero, bound))| KeyedSpec {
            head_shift,
            seed_shift,
            use_edge: use_edge == 1,
            use_guard: use_guard == 1,
            neq_zero: neq_zero == 1,
            bound,
        },
    )
}

fn shifted(var: u32, shift: i64) -> Term {
    if shift == 0 {
        Term::v(var)
    } else {
        Term::Apply(KeyFn::AddInt(shift), Box::new(Term::v(var)))
    }
}

fn keyed_program<P: Pops>(spec: &KeyedSpec) -> Program<P> {
    let mut p = Program::new();
    p.rule(
        Atom::new("R", vec![Term::v(0)]),
        vec![SumProduct::new(vec![Factor::atom(
            "V",
            vec![shifted(0, spec.seed_shift)],
        )])],
    );
    let (head, factors) = if spec.use_edge {
        (
            Atom::new("R", vec![shifted(1, spec.head_shift)]),
            vec![
                Factor::atom("R", vec![Term::v(0)]),
                Factor::atom("E", vec![Term::v(0), Term::v(1)]),
            ],
        )
    } else {
        (
            Atom::new("R", vec![shifted(0, spec.head_shift)]),
            vec![Factor::atom("R", vec![Term::v(0)])],
        )
    };
    let mut condition = Formula::True;
    if !spec.use_edge && spec.head_shift != 0 {
        // Bound the counter in the direction it runs, or it mints keys
        // forever.
        condition = if spec.head_shift > 0 {
            Formula::cmp(Term::v(0), CmpOp::Lt, Term::c(spec.bound))
        } else {
            Formula::cmp(Term::v(0), CmpOp::Gt, Term::c(-spec.bound))
        };
    }
    if spec.use_guard {
        condition = condition.and(Formula::atom("B", vec![Term::v(0)]));
    }
    if spec.neq_zero {
        condition = condition.and(Formula::cmp(Term::v(0), CmpOp::Ne, Term::c(0)));
    }
    p.rule(
        head,
        vec![SumProduct::new(factors).with_condition(condition)],
    );
    p
}

fn keyed_edb<P: Pops>(
    n: usize,
    edges: &[(usize, usize, u8)],
    lift: impl Fn(u8) -> P,
) -> Database<P> {
    let mut db = Database::new();
    db.insert(
        "E",
        Relation::from_pairs(
            2,
            edges
                .iter()
                .map(|&(u, v, w)| (vec![(u as i64).into(), (v as i64).into()], lift(w))),
        ),
    );
    db.insert(
        "V",
        Relation::from_pairs(
            1,
            (0..n).map(|i| (vec![(i as i64).into()], lift(1 + (i % 5) as u8))),
        ),
    );
    db
}

fn keyed_bools(n: usize) -> BoolDatabase {
    let mut db = BoolDatabase::new();
    db.insert(
        "B",
        bool_relation(1, (0..n).step_by(2).map(|i| vec![(i as i64).into()])),
    );
    db
}

/// Engine ≡ relational on one POPS, naïve-vs-naïve and
/// semi-naïve-vs-semi-naïve, comparing the *full* outcome (database and
/// step count).
fn assert_keyed_agreement<P>(
    spec: &KeyedSpec,
    n: usize,
    edges: &[(usize, usize, u8)],
    lift: impl Fn(u8) -> P,
) -> Result<(), TestCaseError>
where
    P: NaturallyOrdered
        + CompleteDistributiveDioid
        + Absorptive
        + TotallyOrderedDioid
        + Send
        + Sync,
{
    let prog = keyed_program::<P>(spec);
    let edb = keyed_edb(n, edges, lift);
    let bools = keyed_bools(n);
    let rel_n = relational_naive_eval(&prog, &edb, &bools, 50_000);
    let eng_n = engine_naive_eval(&prog, &edb, &bools, 50_000).expect("compiles");
    prop_assert_eq!(&rel_n, &eng_n, "naive backends disagree, spec {:?}", spec);
    let rel_s = relational_seminaive_eval(&prog, &edb, &bools, 50_000);
    let eng_s = engine_seminaive_eval(&prog, &edb, &bools, 50_000).expect("compiles");
    prop_assert_eq!(
        &rel_s,
        &eng_s,
        "semi-naive backends disagree, spec {:?}",
        spec
    );
    // The frontier strategies reach the same fixpoint; their step
    // counts (pops/batches) differ from global iterations by design, so
    // compare the output databases only.
    let reference = match &rel_s {
        EvalOutcome::Converged { output, .. } => output,
        EvalOutcome::Diverged { .. } => {
            prop_assert!(false, "keyed programs are bounded, spec {:?}", spec);
            unreachable!()
        }
    };
    for strategy in [EngineStrategy::Worklist, EngineStrategy::Priority] {
        let out = engine_eval(&prog, &edb, &bools, 5_000_000, strategy).expect("compiles");
        let db = match out {
            EvalOutcome::Converged { output, .. } => output,
            EvalOutcome::Diverged { .. } => {
                prop_assert!(false, "{:?} diverged on bounded keyed program", strategy);
                unreachable!()
            }
        };
        prop_assert_eq!(
            reference,
            &db,
            "engine {:?} disagrees with relational semi-naive, spec {:?}",
            strategy,
            spec
        );
        // Parallel frontier determinism on the minting path: the same
        // strategy at thread counts 1/2/4 (fan-out forced down to
        // single-row batches) must return the bit-identical full outcome
        // — database, step count, and minted-id order all included.
        let baseline = engine_eval_with_opts(
            &prog,
            &edb,
            &bools,
            5_000_000,
            strategy,
            &EngineOpts {
                threads: Some(1),
                ..EngineOpts::default()
            },
        )
        .expect("compiles");
        for threads in [2usize, 4] {
            let got = engine_eval_with_opts(
                &prog,
                &edb,
                &bools,
                5_000_000,
                strategy,
                &forced_parallel(threads),
            )
            .expect("compiles");
            prop_assert_eq!(
                &baseline,
                &got,
                "{:?} differs at {} threads, spec {:?}",
                strategy,
                threads,
                spec
            );
        }
    }
    prop_assert!(
        matches!(rel_n, EvalOutcome::Converged { .. }),
        "keyed programs are bounded, spec {:?}",
        spec
    );
    Ok(())
}

/// `eval_query` answers must be exactly the query-restriction of the
/// full fixpoint — values and (decoded) minted keys alike — under every
/// strategy, with the full query outcome (answers, demanded support,
/// step count) bit-identical at `DLO_ENGINE_THREADS` ∈ {1, 2, 4}.
fn assert_query_restriction<P>(
    label: &str,
    prog: &datalog_o::core::Program<P>,
    edb: &Database<P>,
    bools: &BoolDatabase,
    query: &Query,
) -> Result<(), TestCaseError>
where
    P: NaturallyOrdered
        + CompleteDistributiveDioid
        + Absorptive
        + TotallyOrderedDioid
        + Send
        + Sync,
{
    let full = engine_seminaive_eval(prog, edb, bools, 100_000)
        .expect("compiles")
        .converged()
        .expect("bounded")
        .0;
    let empty = Relation::new(query.arity());
    let expected = query.restrict(full.get(&query.pred).unwrap_or(&empty));
    for strategy in [
        EngineStrategy::SemiNaive,
        EngineStrategy::Worklist,
        EngineStrategy::Priority,
    ] {
        let baseline = engine_query_eval_with_opts(
            prog,
            query,
            edb,
            bools,
            5_000_000,
            strategy,
            &EngineOpts {
                threads: Some(1),
                ..EngineOpts::default()
            },
        )
        .expect("compiles");
        prop_assert!(
            baseline.is_converged(),
            "{label}: {strategy:?} query run diverged"
        );
        prop_assert_eq!(
            &expected,
            &baseline.answers(),
            "{}: {:?} answers are not the full-fixpoint restriction of {:?}",
            label,
            strategy,
            query
        );
        // Demanded support rows are value-exact against the full run.
        for (pred, rel) in baseline.support().iter() {
            let reference = full.get(pred);
            for (t, v) in rel.support() {
                prop_assert_eq!(
                    reference.map(|r| r.get(t)),
                    Some(v.clone()),
                    "{}: {:?} demanded row {}({:?}) not value-exact",
                    label,
                    strategy,
                    pred,
                    t
                );
            }
        }
        for threads in [2usize, 4] {
            let got = engine_query_eval_with_opts(
                prog,
                query,
                edb,
                bools,
                5_000_000,
                strategy,
                &forced_parallel(threads),
            )
            .expect("compiles");
            prop_assert_eq!(
                baseline.steps(),
                got.steps(),
                "{}: {:?} step counts differ at {} threads",
                label,
                strategy,
                threads
            );
            prop_assert_eq!(
                baseline.answers(),
                got.answers(),
                "{}: {:?} answers differ at {} threads",
                label,
                strategy,
                threads
            );
            prop_assert_eq!(
                baseline.support_with_demand(),
                got.support_with_demand(),
                "{}: {:?} demanded support differs at {} threads",
                label,
                strategy,
                threads
            );
        }
    }
    Ok(())
}

/// A random graph plus a random edit script over its node space:
/// `(n, edges, ops)` where each op is `(kind, u, v, w)` — `kind == 0`
/// deletes, anything else inserts.
type EditedGraph = (usize, Vec<(usize, usize, u8)>, Vec<(u8, usize, usize, u8)>);

/// Strategy producing an [`EditedGraph`]. The compat proptest does not
/// shrink, so failures are replayed from the seeded case index instead
/// of a minimized script.
fn edited_graph_strategy() -> impl Strategy<Value = EditedGraph> {
    (3usize..8).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec(((0..n), (0..n), 1u8..9), 1..=2 * n),
            proptest::collection::vec((0u8..3, 0..n, 0..n, 1u8..9), 1..=6),
        )
    })
}

/// Decodes graph ops into `E`-targeted [`Edit`]s.
fn graph_script<P: Pops>(ops: &[(u8, usize, usize, u8)], lift: impl Fn(u8) -> P) -> Vec<Edit<P>> {
    ops.iter()
        .map(|&(kind, u, v, w)| {
            let t = vec![(u as i64).into(), (v as i64).into()];
            if kind == 0 {
                Edit::delete("E", t)
            } else {
                Edit::insert("E", t, lift(w))
            }
        })
        .collect()
}

/// Decodes ops into edits over the keyed program's two POPS EDBs (`E`
/// and `V`). Specs without the edge factor compile no `E` slot, so
/// their `E` ops are remapped onto `V`.
fn keyed_script<P: Pops>(
    ops: &[(u8, usize, usize, u8)],
    use_edge: bool,
    lift: impl Fn(u8) -> P,
) -> Vec<Edit<P>> {
    ops.iter()
        .map(|&(kind, u, v, w)| {
            let edge = use_edge && v % 2 == 0;
            let t = if edge {
                vec![(u as i64).into(), (v as i64).into()]
            } else {
                vec![(u as i64).into()]
            };
            let pred = if edge { "E" } else { "V" };
            if kind == 0 {
                Edit::delete(pred, t)
            } else {
                Edit::insert(pred, t, lift(w))
            }
        })
        .collect()
}

/// The keyed program plus an active-domain pin: `D(x) :- A(x)` over a
/// constant, never-edited unary `A`. A `Materialization`'s interner is
/// append-only (deleting a fact does not forget its constants), while a
/// from-scratch run only quantifies over constants of the *current*
/// EDB — so a body-shift rule like `R(x) :- V(x + 1)` could bind `x = c`
/// incrementally but not from scratch after the last fact naming `c` is
/// deleted. Pinning every bindable constant into `A` (nodes are `< 8`,
/// counter bounds `< 8`, shifts `≤ 2`, so `[-12, 12]` covers all minted
/// and seeded keys) gives both evaluations the same domain and keeps
/// the differential test about maintenance, not the documented
/// append-only-interner caveat.
fn pinned_keyed_program<P: Pops>(spec: &KeyedSpec) -> Program<P> {
    let mut p = keyed_program(spec);
    p.rule(
        Atom::new("D", vec![Term::v(0)]),
        vec![SumProduct::new(vec![Factor::atom("A", vec![Term::v(0)])])],
    );
    p
}

fn pinned_keyed_edb<P: Pops>(
    n: usize,
    edges: &[(usize, usize, u8)],
    lift: impl Fn(u8) -> P,
) -> Database<P> {
    let mut db = keyed_edb(n, edges, lift);
    db.insert(
        "A",
        Relation::from_pairs(1, (-12i64..=12).map(|i| (vec![i.into()], P::one()))),
    );
    db
}

/// Applies `script` one edit at a time to a [`Materialization`] and a
/// mirrored classic EDB, asserting after **every** step that the live
/// materialization decodes to exactly the from-scratch engine fixpoint
/// on the mirrored EDB. Inserts are `⊕`-merges; deletes remove the key
/// (mirrored as `set(⊥)`).
fn assert_edit_script_differential<P>(
    label: &str,
    prog: &Program<P>,
    mut edb: Database<P>,
    bools: &BoolDatabase,
    script: &[Edit<P>],
) -> Result<(), TestCaseError>
where
    P: NaturallyOrdered + CompleteDistributiveDioid + Send + Sync,
{
    let opts = EngineOpts::default();
    let mut mat =
        Materialization::new(prog, &edb, bools, 100_000, EngineStrategy::SemiNaive, &opts)
            .expect("compiles");
    for (step, edit) in script.iter().enumerate() {
        match edit {
            Edit::Insert(f) => {
                edb.get_or_insert(&f.pred, f.tuple.len())
                    .merge(f.tuple.clone(), f.value.clone());
                mat.insert(std::slice::from_ref(f)).expect("edit applies");
            }
            Edit::Delete(f) => {
                edb.get_or_insert(&f.pred, f.tuple.len())
                    .set(f.tuple.clone(), P::bottom());
                mat.delete(std::slice::from_ref(f)).expect("edit applies");
            }
        }
        let oracle = engine_seminaive_eval(prog, &edb, bools, 100_000)
            .expect("compiles")
            .converged()
            .expect("bounded program")
            .0;
        let got = mat.output().materialize();
        for (pred, r) in oracle.iter() {
            let empty = Relation::new(r.arity());
            prop_assert_eq!(
                r,
                got.get(pred).unwrap_or(&empty),
                "{}: step {} ({:?} {:?}): {} diverges from from-scratch",
                label,
                step,
                edit.pred(),
                edit,
                pred
            );
        }
        for (pred, r) in got.iter() {
            if oracle.get(pred).is_none() {
                prop_assert!(
                    r.is_empty(),
                    "{}: step {}: stale rows in {}",
                    label,
                    step,
                    pred
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Incremental maintenance on random graphs: applying a random edit
    /// script (inserts ⊕-merging edges, deletes retracting them) to a
    /// live APSP [`Materialization`] matches the from-scratch fixpoint
    /// of the edited EDB after every step, on Trop, MinNat, and Bool.
    #[test]
    fn incremental_edits_match_from_scratch(
        (_n, edges, ops) in edited_graph_strategy(),
    ) {
        let bools = BoolDatabase::new();
        assert_edit_script_differential(
            "apsp/trop",
            &datalog_o::core::examples_lib::apsp_program::<Trop>(),
            trop_edb(&edges),
            &bools,
            &graph_script(&ops, |w| Trop::finite(w as f64)),
        )?;
        assert_edit_script_differential(
            "apsp/minnat",
            &datalog_o::core::examples_lib::apsp_program::<MinNat>(),
            minnat_edb(&edges),
            &bools,
            &graph_script(&ops, |w| MinNat::finite(w as u64)),
        )?;
        let mut edb_b = Database::new();
        edb_b.insert(
            "E",
            Relation::from_pairs(
                2,
                edges.iter().map(|&(u, v, _)| {
                    (vec![(u as i64).into(), (v as i64).into()], Bool(true))
                }),
            ),
        );
        assert_edit_script_differential(
            "apsp/bool",
            &datalog_o::core::examples_lib::apsp_program::<Bool>(),
            edb_b,
            &bools,
            &graph_script(&ops, |_| Bool(true)),
        )?;
    }

    /// Incremental maintenance on random keyed programs — the minting
    /// surface. Edits to `V` and `E` mint fresh head keys mid-edit;
    /// the decoded materialization must still equal the from-scratch
    /// fixpoint after every step (minted-id stability: stale or
    /// misaligned interner rows would decode to wrong tuples).
    #[test]
    fn incremental_edits_match_on_keyed_programs(
        spec in keyed_spec_strategy(),
        (n, edges, ops) in edited_graph_strategy(),
    ) {
        let bools = keyed_bools(n);
        assert_edit_script_differential(
            "keyed/trop",
            &pinned_keyed_program::<Trop>(&spec),
            pinned_keyed_edb(n, &edges, |w| Trop::finite(w as f64)),
            &bools,
            &keyed_script(&ops, spec.use_edge, |w| Trop::finite(w as f64)),
        )?;
        assert_edit_script_differential(
            "keyed/minnat",
            &pinned_keyed_program::<MinNat>(&spec),
            pinned_keyed_edb(n, &edges, |w| MinNat::finite(w as u64)),
            &bools,
            &keyed_script(&ops, spec.use_edge, |w| MinNat::finite(w as u64)),
        )?;
        assert_edit_script_differential(
            "keyed/bool",
            &pinned_keyed_program::<Bool>(&spec),
            pinned_keyed_edb(n, &edges, |_| Bool(true)),
            &bools,
            &keyed_script(&ops, spec.use_edge, |_| Bool(true)),
        )?;
    }

    /// Random key-function programs (head + body shifts, comparisons,
    /// Boolean guards): the engine's native head-key path agrees with
    /// the relational backend on Trop, Bool, and MinNat — databases and
    /// step counts both.
    #[test]
    fn engine_agrees_on_random_keyed_programs(
        spec in keyed_spec_strategy(),
        (n, edges) in edges_strategy(),
    ) {
        assert_keyed_agreement::<Trop>(&spec, n, &edges, |w| Trop::finite(w as f64))?;
        assert_keyed_agreement::<MinNat>(&spec, n, &edges, |w| MinNat::finite(w as u64))?;
        assert_keyed_agreement::<Bool>(&spec, n, &edges, |_| Bool(true))?;
    }

    /// Demand restriction on random graph programs (Trop/MinNat/Bool):
    /// single-source and point queries against the linear SSSP and
    /// all-pairs programs answer exactly the full fixpoint's
    /// restriction, bit-identically at 1/2/4 threads.
    #[test]
    fn query_answers_restrict_graph_programs((n, edges) in edges_strategy()) {
        let bools = BoolDatabase::new();
        let mid = (n / 2) as i64;
        let edb_t = trop_edb(&edges);
        let sssp = dlo_bench::single_source_int_program::<Trop>(0);
        assert_query_restriction("sssp/point", &sssp, &edb_t, &bools,
            &Query::point("L", vec![mid.into()]))?;
        let apsp = datalog_o::core::examples_lib::apsp_program::<Trop>();
        assert_query_restriction("apsp/source", &apsp, &edb_t, &bools,
            &Query::new("T", vec![QueryArg::bound(0i64), QueryArg::Free]))?;
        assert_query_restriction("apsp/sink", &apsp, &edb_t, &bools,
            &Query::new("T", vec![QueryArg::Free, QueryArg::bound(mid)]))?;
        let edb_m = minnat_edb(&edges);
        let apsp_m = datalog_o::core::examples_lib::apsp_program::<MinNat>();
        assert_query_restriction("apsp/minnat", &apsp_m, &edb_m, &bools,
            &Query::new("T", vec![QueryArg::bound(0i64), QueryArg::Free]))?;
        let mut edb_b = Database::new();
        edb_b.insert(
            "E",
            Relation::from_pairs(
                2,
                edges.iter().map(|&(u, v, _)| {
                    (vec![(u as i64).into(), (v as i64).into()], Bool(true))
                }),
            ),
        );
        let apsp_b = datalog_o::core::examples_lib::apsp_program::<Bool>();
        assert_query_restriction("apsp/bool", &apsp_b, &edb_b, &bools,
            &Query::new("T", vec![QueryArg::bound(0i64), QueryArg::Free]))?;
    }

    /// Demand restriction on random keyed programs (head/body key
    /// shifts, comparisons, Boolean guards — the minting surface):
    /// point queries over Trop, MinNat, and Bool.
    #[test]
    fn query_answers_restrict_keyed_programs(
        spec in keyed_spec_strategy(),
        (n, edges) in edges_strategy(),
    ) {
        let q = Query::point("R", vec![(n as i64 / 2).into()]);
        {
            let prog = keyed_program::<Trop>(&spec);
            let edb = keyed_edb(n, &edges, |w| Trop::finite(w as f64));
            assert_query_restriction("keyed/trop", &prog, &edb, &keyed_bools(n), &q)?;
        }
        {
            let prog = keyed_program::<MinNat>(&spec);
            let edb = keyed_edb(n, &edges, |w| MinNat::finite(w as u64));
            assert_query_restriction("keyed/minnat", &prog, &edb, &keyed_bools(n), &q)?;
        }
        {
            let prog = keyed_program::<Bool>(&spec);
            let edb = keyed_edb(n, &edges, |_| Bool(true));
            assert_query_restriction("keyed/bool", &prog, &edb, &keyed_bools(n), &q)?;
        }
    }

    /// Theorem 6.4 over Trop: semi-naïve = naïve (SSSP, APSP).
    #[test]
    fn seminaive_equals_naive_trop((_n, edges) in edges_strategy()) {
        prop_assume!(!edges.iter().all(|(u, v, _)| u == v));
        let edb = trop_edb(&edges);
        for prog in [
            dlo_bench::single_source_int_program::<Trop>(0),
            datalog_o::core::examples_lib::apsp_program::<Trop>(),
        ] {
            let sys = ground_sparse(&prog, &edb, &BoolDatabase::new());
            let naive = naive_eval_system(&sys, 100_000).unwrap();
            let (semi, _) = seminaive_eval_system(&sys, 100_000);
            prop_assert_eq!(naive, semi.unwrap());
        }
    }

    /// Theorem 6.4 over MinNat and MaxMin (other distributive dioids),
    /// including the quadratic TC rule.
    #[test]
    fn seminaive_equals_naive_other_dioids((_n, edges) in edges_strategy()) {
        let edb = minnat_edb(&edges);
        let prog = datalog_o::core::examples_lib::quadratic_tc_program::<MinNat>();
        let sys = ground_sparse(&prog, &edb, &BoolDatabase::new());
        let naive = naive_eval_system(&sys, 100_000).unwrap();
        let (semi, _) = seminaive_eval_system(&sys, 100_000);
        prop_assert_eq!(naive, semi.unwrap());

        let edbm = maxmin_edb(&edges);
        let progm = datalog_o::core::examples_lib::apsp_program::<MaxMin>();
        let sysm = ground_sparse(&progm, &edbm, &BoolDatabase::new());
        let naivem = naive_eval_system(&sysm, 100_000).unwrap();
        let (semim, _) = seminaive_eval_system(&sysm, 100_000);
        prop_assert_eq!(naivem, semim.unwrap());
    }

    /// The relational backend (naive and semi-naive) agrees with the
    /// grounded backend on random graphs over Trop and MinNat, for both
    /// the linear SSSP/APSP programs and the quadratic TC rule.
    #[test]
    fn relational_backends_equal_grounded((_n, edges) in edges_strategy()) {
        let edb = trop_edb(&edges);
        let bools = BoolDatabase::new();
        for prog in [
            dlo_bench::single_source_int_program::<Trop>(0),
            datalog_o::core::examples_lib::apsp_program::<Trop>(),
            datalog_o::core::examples_lib::quadratic_tc_program::<Trop>(),
        ] {
            let grounded = naive_eval_system(
                &ground_sparse(&prog, &edb, &bools), 100_000).unwrap();
            let rel = relational_naive_eval(&prog, &edb, &bools, 100_000).unwrap();
            let semi = relational_seminaive_eval(&prog, &edb, &bools, 100_000).unwrap();
            for (pred, r) in grounded.iter() {
                let empty = Relation::new(r.arity());
                prop_assert_eq!(r, rel.get(pred).unwrap_or(&empty));
                prop_assert_eq!(r, semi.get(pred).unwrap_or(&empty));
            }
            for (pred, r) in rel.iter() {
                if grounded.get(pred).is_none() {
                    prop_assert!(r.is_empty());
                }
            }
        }
    }

    /// The execution engine (interned + indexed + parallel semi-naïve)
    /// agrees with the relational backend on random programs over Trop
    /// and Bool: same fixpoint, and the semi-naïve step count never
    /// exceeds the naïve count by more than the final no-change check.
    #[test]
    fn engine_agrees_with_relational((_n, edges) in edges_strategy()) {
        let bools = BoolDatabase::new();
        let edb_t = trop_edb(&edges);
        for prog in [
            dlo_bench::single_source_int_program::<Trop>(0),
            datalog_o::core::examples_lib::apsp_program::<Trop>(),
            datalog_o::core::examples_lib::quadratic_tc_program::<Trop>(),
        ] {
            let (naive, naive_steps) = relational_naive_eval(&prog, &edb_t, &bools, 100_000)
                .converged().expect("relational converges");
            let (eng, eng_steps) = engine_seminaive_eval(&prog, &edb_t, &bools, 100_000).expect("compiles")
                .converged().expect("engine converges");
            for (pred, r) in naive.iter() {
                let empty = Relation::new(r.arity());
                prop_assert_eq!(r, eng.get(pred).unwrap_or(&empty));
            }
            for (pred, r) in eng.iter() {
                if naive.get(pred).is_none() {
                    prop_assert!(r.is_empty());
                }
            }
            prop_assert!(eng_steps <= naive_steps + 1,
                "engine took {} steps, naive {}", eng_steps, naive_steps);
        }
        let mut edb_b = Database::new();
        edb_b.insert(
            "E",
            Relation::from_pairs(
                2,
                edges.iter().map(|&(u, v, _)| {
                    (vec![(u as i64).into(), (v as i64).into()], Bool(true))
                }),
            ),
        );
        for prog in [
            datalog_o::core::examples_lib::apsp_program::<Bool>(),
            datalog_o::core::examples_lib::quadratic_tc_program::<Bool>(),
        ] {
            let (naive, naive_steps) = relational_naive_eval(&prog, &edb_b, &bools, 100_000)
                .converged().expect("relational converges");
            let (eng, eng_steps) = engine_seminaive_eval(&prog, &edb_b, &bools, 100_000).expect("compiles")
                .converged().expect("engine converges");
            for (pred, r) in naive.iter() {
                let empty = Relation::new(r.arity());
                prop_assert_eq!(r, eng.get(pred).unwrap_or(&empty));
            }
            prop_assert!(eng_steps <= naive_steps + 1,
                "engine took {} steps, naive {}", eng_steps, naive_steps);
        }
    }

    /// The frontier strategies (FIFO worklist, bucketed priority) reach
    /// the same fixpoints as the global semi-naive engine on random
    /// graph programs over the totally ordered absorptive dioids —
    /// Trop (APSP/SSSP/quadratic TC), MinNat, and Bool.
    #[test]
    fn frontier_strategies_agree_with_seminaive((_n, edges) in edges_strategy()) {
        let bools = BoolDatabase::new();
        fn check<P>(prog: &datalog_o::core::Program<P>, edb: &Database<P>,
                    bools: &BoolDatabase) -> Result<(), TestCaseError>
        where
            P: NaturallyOrdered + CompleteDistributiveDioid + Absorptive
                + TotallyOrderedDioid + Send + Sync,
        {
            let semi = engine_seminaive_eval(prog, edb, bools, 100_000).expect("compiles")
                .converged().expect("bounded").0;
            for strategy in [EngineStrategy::Worklist, EngineStrategy::Priority] {
                let seq = engine_eval(prog, edb, bools, 10_000_000, strategy).expect("compiles");
                let got = seq.clone().converged().expect("bounded").0;
                prop_assert_eq!(&semi, &got, "{:?} differs from semi-naive", strategy);
                // The forced-parallel frontier (4 workers, single-row
                // fan-out threshold) is bit-identical to the sequential
                // run — full outcome, step counts included.
                let par = engine_eval_with_opts(prog, edb, bools, 10_000_000, strategy,
                    &forced_parallel(4)).expect("compiles");
                prop_assert_eq!(&seq, &par,
                    "{:?} sequential vs forced-parallel outcomes differ", strategy);
            }
            Ok(())
        }
        let edb_t = trop_edb(&edges);
        for prog in [
            dlo_bench::single_source_int_program::<Trop>(0),
            datalog_o::core::examples_lib::apsp_program::<Trop>(),
            datalog_o::core::examples_lib::quadratic_tc_program::<Trop>(),
        ] {
            check(&prog, &edb_t, &bools)?;
        }
        let edb_m = minnat_edb(&edges);
        check(&datalog_o::core::examples_lib::quadratic_tc_program::<MinNat>(), &edb_m, &bools)?;
        let mut edb_b = Database::new();
        edb_b.insert(
            "E",
            Relation::from_pairs(
                2,
                edges.iter().map(|&(u, v, _)| {
                    (vec![(u as i64).into(), (v as i64).into()], Bool(true))
                }),
            ),
        );
        check(&datalog_o::core::examples_lib::apsp_program::<Bool>(), &edb_b, &bools)?;
    }

    /// Sparse and dense grounding agree on naturally ordered semirings.
    #[test]
    fn sparse_equals_dense((_n, edges) in edges_strategy()) {
        let edb = trop_edb(&edges);
        let prog = dlo_bench::single_source_int_program::<Trop>(0);
        let bools = BoolDatabase::new();
        let d = naive_eval_system(&ground(&prog, &edb, &bools), 100_000).unwrap();
        let s = naive_eval_system(&ground_sparse(&prog, &edb, &bools), 100_000).unwrap();
        prop_assert_eq!(d, s);
    }

    /// LinearLFP (Algorithm 2) = naïve on random linear groundings.
    #[test]
    fn linear_lfp_equals_naive((_n, edges) in edges_strategy()) {
        let edb = trop_edb(&edges);
        let prog = dlo_bench::single_source_int_program::<Trop>(0);
        let sys = ground_sparse(&prog, &edb, &BoolDatabase::new());
        let asys = AffineSystem::from_ground_system(&sys).expect("linear");
        let (naive, _) = asys.naive_lfp(100_000).unwrap();
        prop_assert_eq!(linear_lfp_auto(&asys), naive);
    }

    /// The engine computes true shortest distances (Dijkstra oracle).
    #[test]
    fn sssp_matches_dijkstra((n, edges) in edges_strategy()) {
        let g = dlo_bench::GraphInstance {
            n,
            edges: edges.iter().map(|&(u, v, w)| (u, v, w as f64)).collect(),
        };
        let (prog, edb) = g.sssp();
        let sys = ground_sparse(&prog, &edb, &BoolDatabase::new());
        let out = naive_eval_system(&sys, 100_000).unwrap();
        let oracle = dlo_bench::dijkstra(&g, 0);
        let l = out.get("L");
        for (i, d) in oracle.iter().enumerate() {
            let got = l.map(|r| r.get(&vec![g.node(i)])).unwrap_or(Trop::INF).get();
            prop_assert_eq!(got, *d, "node {}", i);
        }
    }

    /// Pretty-printer round trip: parse(render(p)) == p for programs built
    /// from random rule text fragments.
    #[test]
    fn parser_roundtrip(
        n_rules in 1usize..4,
        seeds in proptest::collection::vec(0u32..1000, 1..4)
    ) {
        // Assemble a random-but-valid program text.
        let mut src = String::new();
        for (i, s) in seeds.iter().take(n_rules).enumerate() {
            match s % 4 {
                0 => src.push_str(&format!("R{i}(X) :- E(X, Z) * R{i}(Z).\n")),
                1 => src.push_str(&format!("R{i}(X, Y) :- E(X, Y) + R{i}(X, Z) * E(Z, Y).\n")),
                2 => src.push_str(&format!("R{i}(X) :- $2 | X = a.\n")),
                _ => src.push_str(&format!(
                    "R{i}(X) :- E(X, Y) | (B(Y) && X != {s}) || !(C(X)).\n"
                )),
            }
        }
        let p: Program<Trop> = parse_program(&src).unwrap();
        let rendered = render_program(&p);
        let p2: Program<Trop> = parse_program(&rendered).unwrap();
        prop_assert_eq!(p, p2, "rendered:\n{}", rendered);
    }

    /// Boolean semantics sanity: support of the Trop fixpoint equals the
    /// Boolean fixpoint's support (finite distance ⟺ reachable).
    #[test]
    fn trop_support_equals_bool_reachability((_n, edges) in edges_strategy()) {
        let prog_t = dlo_bench::single_source_int_program::<Trop>(0);
        let prog_b = dlo_bench::single_source_int_program::<Bool>(0);
        let edb_t = trop_edb(&edges);
        let mut edb_b = Database::new();
        edb_b.insert(
            "E",
            Relation::from_pairs(
                2,
                edges.iter().map(|&(u, v, _)| {
                    (vec![(u as i64).into(), (v as i64).into()], Bool(true))
                }),
            ),
        );
        let out_t = naive_eval_system(&ground_sparse(&prog_t, &edb_t, &BoolDatabase::new()), 100_000).unwrap();
        let out_b = naive_eval_system(&ground_sparse(&prog_b, &edb_b, &BoolDatabase::new()), 100_000).unwrap();
        let sup_t: Vec<_> = out_t.get("L").map(|r| r.support().map(|(t, _)| t.clone()).collect()).unwrap_or_default();
        let sup_b: Vec<_> = out_b.get("L").map(|r| r.support().map(|(t, _)| t.clone()).collect()).unwrap_or_default();
        prop_assert_eq!(sup_t, sup_b);
    }

    /// Join-strategy invariance on random graphs: forced merge joins,
    /// forced hash joins, and planner-auto return the bit-identical
    /// full outcome on every dioid strategy, sequential and with the
    /// parallel batch path forced — the join mode is a performance
    /// knob, never a semantics knob.
    #[test]
    fn join_modes_agree_on_random_graphs((_n, edges) in edges_strategy()) {
        let bools = BoolDatabase::new();
        let edb = trop_edb(&edges);
        for prog in [
            datalog_o::core::examples_lib::apsp_program::<Trop>(),
            datalog_o::core::examples_lib::quadratic_tc_program::<Trop>(),
        ] {
            for strategy in [EngineStrategy::SemiNaive, EngineStrategy::Worklist,
                             EngineStrategy::Priority] {
                let baseline = engine_eval_with_opts(&prog, &edb, &bools, 10_000_000, strategy,
                    &EngineOpts {
                        join_mode: Some(JoinMode::Hash),
                        ..EngineOpts::default()
                    }).expect("compiles");
                for mode in [JoinMode::Merge, JoinMode::Auto] {
                    for threads in [1usize, 4] {
                        let mut opts = forced_parallel(threads);
                        opts.join_mode = Some(mode);
                        let got = engine_eval_with_opts(&prog, &edb, &bools, 10_000_000,
                            strategy, &opts).expect("compiles");
                        prop_assert_eq!(&baseline, &got,
                            "{:?}: {:?} join @ {} threads differs from sequential hash join",
                            strategy, mode, threads);
                    }
                }
            }
        }
    }

    /// Telemetry on random graphs: emits bound merges on every
    /// strategy, and the deterministic stats (timings masked by
    /// `EvalStats::invariants`) are bit-identical across thread counts.
    #[test]
    fn stats_deterministic_across_threads((_n, edges) in edges_strategy()) {
        let prog = datalog_o::core::examples_lib::apsp_program::<Trop>();
        let edb = trop_edb(&edges);
        let bools = BoolDatabase::new();
        for strategy in [EngineStrategy::SemiNaive, EngineStrategy::Worklist,
                         EngineStrategy::Priority] {
            let mut baseline = None;
            for threads in [1usize, 2, 4] {
                let out = engine_eval_with_opts(&prog, &edb, &bools, 10_000_000, strategy,
                    &forced_parallel(threads)).expect("compiles");
                let s = out.stats();
                prop_assert!(
                    s.counters.emits + s.counters.fresh_emits
                        >= s.counters.rows_inserted + s.counters.rows_improved
                            + s.counters.merges_absorbed,
                    "{:?}: merges exceed emissions", strategy);
                let inv = s.invariants();
                match &baseline {
                    None => baseline = Some(inv),
                    Some(b) => prop_assert_eq!(b, &inv,
                        "{:?}: stats differ at {} threads", strategy, threads),
                }
            }
        }
    }
}
