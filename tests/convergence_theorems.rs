//! Integration: the convergence theory of Sec. 3/5 exercised across
//! crates — measured stability indexes against every bound of
//! Theorem 1.2 / 5.12 and Lemma 5.20 on randomized workloads.

use datalog_o::core::{
    ground_sparse, naive_eval_system, BoolDatabase, Database, EvalOutcome, Relation,
};
use datalog_o::fixpoint::{general_bound, linear_bound, trop_p_matrix_bound, zero_stable_bound};
use datalog_o::pops::{stability, Bool, MaxPlus, Trop, TropEta, TropP};
use datalog_o::semilin::{matrix_stability_index, trop_p_cycle, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_graph(rng: &mut StdRng, n: usize, m: usize) -> Vec<(usize, usize, f64)> {
    let mut edges = vec![];
    for _ in 0..m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            edges.push((u, v, rng.gen_range(1..10) as f64));
        }
    }
    edges
}

fn trop_p_edb<const P: usize>(edges: &[(usize, usize, f64)]) -> Database<TropP<P>> {
    let mut db = Database::new();
    db.insert(
        "E",
        Relation::from_pairs(
            2,
            edges.iter().map(|&(u, v, w)| {
                (
                    vec![(u as i64).into(), (v as i64).into()],
                    TropP::<P>::from_costs(&[w]),
                )
            }),
        ),
    );
    db
}

/// Theorem 1.2, linear bound: random linear programs over Trop+_p converge
/// within Σ (p+1)^i.
#[test]
fn linear_programs_respect_linear_bound() {
    const P: usize = 2;
    let mut rng = StdRng::seed_from_u64(0xfeed);
    for trial in 0..10 {
        let n = rng.gen_range(3..7);
        let edges = random_graph(&mut rng, n, 2 * n);
        let prog = dlo_bench::single_source_int_program::<TropP<P>>(0);
        let sys = ground_sparse(&prog, &trop_p_edb::<P>(&edges), &BoolDatabase::new());
        match naive_eval_system(&sys, 1_000_000) {
            EvalOutcome::Converged { steps, .. } => {
                assert!(
                    (steps as u128) <= linear_bound(P, sys.num_vars()),
                    "trial {trial}: steps {steps} > bound"
                );
                // Linear programs also respect the matrix bound (p+1)N-1 + 1.
                assert!(
                    (steps as u128) <= trop_p_matrix_bound(P, sys.num_vars()) + 1,
                    "trial {trial}"
                );
            }
            _ => panic!("stable semiring must converge (Thm 5.10)"),
        }
    }
}

/// Theorem 1.2, general bound: quadratic programs over Trop+_p.
#[test]
fn quadratic_programs_respect_general_bound() {
    const P: usize = 1;
    let mut rng = StdRng::seed_from_u64(0xbead);
    for _ in 0..6 {
        let n = rng.gen_range(3..5);
        let edges = random_graph(&mut rng, n, 2 * n);
        let prog = datalog_o::core::examples_lib::quadratic_tc_program::<TropP<P>>();
        let sys = ground_sparse(&prog, &trop_p_edb::<P>(&edges), &BoolDatabase::new());
        match naive_eval_system(&sys, 1_000_000) {
            EvalOutcome::Converged { steps, .. } => {
                assert!((steps as u128) <= general_bound(P, sys.num_vars()));
            }
            _ => panic!("must converge"),
        }
    }
}

/// Corollary 5.19: 0-stable POPS converge within N steps (B and Trop+).
#[test]
fn zero_stable_converges_within_n() {
    let mut rng = StdRng::seed_from_u64(0xabc);
    for _ in 0..10 {
        let n = rng.gen_range(4..12);
        let edges = random_graph(&mut rng, n, 3 * n);
        // Trop+ SSSP.
        let prog = dlo_bench::single_source_int_program::<Trop>(0);
        let mut edb = Database::new();
        edb.insert(
            "E",
            Relation::from_pairs(
                2,
                edges.iter().map(|&(u, v, w)| {
                    (vec![(u as i64).into(), (v as i64).into()], Trop::finite(w))
                }),
            ),
        );
        let sys = ground_sparse(&prog, &edb, &BoolDatabase::new());
        let EvalOutcome::Converged { steps, .. } = naive_eval_system(&sys, 100_000) else {
            panic!("0-stable must converge");
        };
        assert!((steps as u128) <= zero_stable_bound(sys.num_vars()));

        // Boolean quadratic TC.
        let progb = datalog_o::core::examples_lib::quadratic_tc_program::<Bool>();
        let mut edbb = Database::new();
        edbb.insert(
            "E",
            Relation::from_pairs(
                2,
                edges
                    .iter()
                    .map(|&(u, v, _)| (vec![(u as i64).into(), (v as i64).into()], Bool(true))),
            ),
        );
        let sysb = ground_sparse(&progb, &edbb, &BoolDatabase::new());
        let EvalOutcome::Converged { steps, .. } = naive_eval_system(&sysb, 100_000) else {
            panic!("B must converge");
        };
        assert!((steps as u128) <= zero_stable_bound(sysb.num_vars()));
    }
}

/// Theorem 1.2 (converse direction): an unstable core diverges — MaxPlus
/// with a positive cycle.
#[test]
fn unstable_core_diverges_on_cycles() {
    let prog = dlo_bench::single_source_int_program::<MaxPlus>(0);
    let mut edb = Database::new();
    edb.insert(
        "E",
        Relation::from_pairs(
            2,
            [(0i64, 1i64), (1, 0)].iter().map(|&(u, v)| {
                (
                    vec![u.into(), v.into()],
                    MaxPlus::finite(1.0), // positive gain cycle
                )
            }),
        ),
    );
    let sys = ground_sparse(&prog, &edb, &BoolDatabase::new());
    assert!(!naive_eval_system(&sys, 200).is_converged());
    // The element driving it is indeed unstable:
    assert_eq!(
        stability::element_stability_index(&MaxPlus::finite(1.0), 100),
        None
    );
    // With non-positive gains the same program converges (0-stable zone).
    let mut edb2 = Database::new();
    edb2.insert(
        "E",
        Relation::from_pairs(
            2,
            [(0i64, 1i64), (1, 0)]
                .iter()
                .map(|&(u, v)| (vec![u.into(), v.into()], MaxPlus::finite(-1.0))),
        ),
    );
    let sys2 = ground_sparse(&prog, &edb2, &BoolDatabase::new());
    assert!(naive_eval_system(&sys2, 200).is_converged());
}

/// Theorem 5.10: stable but non-uniformly-stable semirings always
/// converge, in value-dependent time (Trop+_eta).
#[test]
fn trop_eta_converges_with_value_dependent_steps() {
    type T = TropEta<32>;
    let cycle = |w: u64| -> Database<T> {
        let mut db = Database::new();
        db.insert(
            "E",
            Relation::from_pairs(
                2,
                [(0i64, 1i64), (1, 0)]
                    .iter()
                    .map(|&(u, v)| (vec![u.into(), v.into()], T::singleton(w))),
            ),
        );
        db
    };
    let prog = dlo_bench::single_source_int_program::<T>(0);
    let steps = |w: u64| -> usize {
        let sys = ground_sparse(&prog, &cycle(w), &BoolDatabase::new());
        match naive_eval_system(&sys, 1_000_000) {
            EvalOutcome::Converged { steps, .. } => steps,
            _ => panic!("stable semiring must converge (Thm 5.10)"),
        }
    };
    let (s16, s4, s1) = (steps(16), steps(4), steps(1));
    assert!(
        s16 < s4 && s4 < s1,
        "steps must grow as weights shrink: {s16} {s4} {s1}"
    );
}

/// Lemma 5.20 tightness at scale, plus the naïve-vs-matrix relationship:
/// SSSP on the cycle takes exactly as long as the matrix stabilizes.
#[test]
fn cycle_matrix_and_program_agree_on_worst_case() {
    const P: usize = 1;
    for n in [3usize, 5, 8] {
        let a = trop_p_cycle::<P>(n);
        let q = matrix_stability_index(&a, 100_000).unwrap();
        assert_eq!(q as u128, trop_p_matrix_bound(P, n));

        // The corresponding datalog° program on the same cycle.
        let edges: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect();
        let prog = dlo_bench::single_source_int_program::<TropP<P>>(0);
        let sys = ground_sparse(&prog, &trop_p_edb::<P>(&edges), &BoolDatabase::new());
        let EvalOutcome::Converged { steps, .. } = naive_eval_system(&sys, 100_000) else {
            panic!()
        };
        // Program steps track the matrix index up to the +1 seeding step.
        assert!(
            steps >= q.saturating_sub(1) && steps <= q + 1,
            "n={n}: {steps} vs {q}"
        );
        let _ = Matrix::<TropP<P>>::identity(2);
    }
}
