//! # dlo-semilin — linear algebra over semirings and POPS
//!
//! Implements Sec. 5.5 of *Convergence of Datalog over (Pre-) Semirings*:
//!
//! * [`matrix`] — dense matrices over a semiring, matrix-vector ICOs;
//! * [`closure`] — partial closures `A^(q)`, matrix stability indexes, the
//!   adversarial `Trop⁺_p` cycle of Lemma 5.20, naïve linear solving;
//! * [`fwk`] — the Floyd–Warshall–Kleene `O(N³)` closure for star
//!   semirings;
//! * [`affine`] / [`linear_lfp`](mod@linear_lfp) — affine functions with explicit monomial
//!   sets (the POPS subtlety of Sec. 2.2) and Algorithm 2 (`LinearLFP`,
//!   Theorem 5.22) in `O(pN + N³)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affine;
pub mod closure;
pub mod fwk;
pub mod linear_lfp;
pub mod matrix;
pub mod newton;

pub use affine::{AffineFn, AffineSystem};
pub use closure::{
    closure_fixpoint, linear_naive_lfp, matrix_stability_index, partial_closure, trop_p_cycle,
};
pub use fwk::{fwk_closure, fwk_solve};
pub use linear_lfp::{linear_lfp, linear_lfp_auto};
pub use matrix::Matrix;
pub use newton::{jacobian, newton_lfp};
