//! Affine functions over a POPS with *explicit* monomial sets (Sec. 5.5).
//!
//! On a POPS where `0` is not absorbing, a linear function cannot be
//! represented as a full coefficient row — "absent" and "coefficient 0"
//! differ (Sec. 2.2, Theorem 5.22 proof). [`AffineFn`] therefore keeps an
//! explicit sparse term list plus an optional constant.

use dlo_core::ground::GroundSystem;
use dlo_pops::Pops;

/// A linear (affine) function `f(x) = ⊕_{j ∈ V} a_j ⊗ x_j (⊕ konst)` with
/// an explicit monomial set `V`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AffineFn<P> {
    /// Sparse coefficient list, sorted by variable, one entry per variable.
    pub terms: Vec<(usize, P)>,
    /// The constant monomial, if present (`None` ≠ `Some(0)` on a POPS!).
    pub konst: Option<P>,
}

impl<P: Pops> AffineFn<P> {
    /// The empty function (the empty sum, evaluating to `0`).
    pub fn new() -> Self {
        AffineFn {
            terms: vec![],
            konst: None,
        }
    }

    /// A constant function.
    pub fn constant(c: P) -> Self {
        AffineFn {
            terms: vec![],
            konst: Some(c),
        }
    }

    /// Adds `a ⊗ x_j` (merging with an existing `x_j` term via `⊕`).
    pub fn add_term(&mut self, j: usize, a: P) {
        match self.terms.binary_search_by_key(&j, |(v, _)| *v) {
            Ok(pos) => {
                let merged = self.terms[pos].1.add(&a);
                self.terms[pos].1 = merged;
            }
            Err(pos) => self.terms.insert(pos, (j, a)),
        }
    }

    /// Adds a constant monomial (merging via `⊕`).
    pub fn add_const(&mut self, c: P) {
        self.konst = Some(match self.konst.take() {
            None => c,
            Some(k) => k.add(&c),
        });
    }

    /// The coefficient of `x_j`, if the monomial is present.
    pub fn coeff_of(&self, j: usize) -> Option<&P> {
        self.terms
            .binary_search_by_key(&j, |(v, _)| *v)
            .ok()
            .map(|pos| &self.terms[pos].1)
    }

    /// This function with the `x_j` monomial removed.
    pub fn without(&self, j: usize) -> Self {
        AffineFn {
            terms: self
                .terms
                .iter()
                .filter(|(v, _)| *v != j)
                .cloned()
                .collect(),
            konst: self.konst.clone(),
        }
    }

    /// `s ⊗ f`: scales every monomial.
    pub fn scale(&self, s: &P) -> Self {
        AffineFn {
            terms: self.terms.iter().map(|(v, a)| (*v, s.mul(a))).collect(),
            konst: self.konst.as_ref().map(|k| s.mul(k)),
        }
    }

    /// Substitutes `x_j := c(x)` (an affine function not mentioning `x_j`).
    pub fn substitute(&self, j: usize, c: &AffineFn<P>) -> Self {
        debug_assert!(c.coeff_of(j).is_none(), "substitution must eliminate x_j");
        let Some(a) = self.coeff_of(j).cloned() else {
            return self.clone();
        };
        let mut out = self.without(j);
        for (v, cv) in &c.terms {
            out.add_term(*v, a.mul(cv));
        }
        if let Some(k) = &c.konst {
            out.add_const(a.mul(k));
        }
        out
    }

    /// Evaluates at `x`.
    pub fn eval(&self, x: &[P]) -> P {
        let mut acc = match &self.konst {
            None => P::zero(),
            Some(k) => k.clone(),
        };
        for (v, a) in &self.terms {
            acc = acc.add(&a.mul(&x[*v]));
        }
        acc
    }
}

/// A system of affine functions `x_i :- f_i(x)` — a grounded *linear*
/// datalog° program.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AffineSystem<P> {
    /// One function per variable.
    pub fns: Vec<AffineFn<P>>,
}

impl<P: Pops> AffineSystem<P> {
    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.fns.len()
    }

    /// One application of the ICO.
    pub fn apply(&self, x: &[P]) -> Vec<P> {
        self.fns.iter().map(|f| f.eval(x)).collect()
    }

    /// Naïve iteration from `⊥` with a cap.
    pub fn naive_lfp(&self, cap: usize) -> Option<(Vec<P>, usize)> {
        let mut x = vec![P::bottom(); self.dim()];
        for steps in 0..=cap {
            let next = self.apply(&x);
            if next == x {
                return Some((x, steps));
            }
            x = next;
        }
        None
    }

    /// Extracts the affine system from a grounded program; `None` if the
    /// grounding is non-linear or uses interpreted value functions.
    pub fn from_ground_system(sys: &GroundSystem<P>) -> Option<Self> {
        let mut fns = Vec::with_capacity(sys.num_vars());
        for poly in &sys.polys {
            let mut f = AffineFn::new();
            match poly {
                None => {
                    // Never-derived atom: constant ⊥ (stays undefined).
                    f.add_const(P::bottom());
                }
                Some(poly) => {
                    for m in &poly.monomials {
                        match m.occs.len() {
                            0 => f.add_const(m.coeff.clone()),
                            1 => {
                                if m.occs[0].func.is_some() {
                                    return None;
                                }
                                f.add_term(m.occs[0].var, m.coeff.clone());
                            }
                            _ => return None,
                        }
                    }
                }
            }
            fns.push(f);
        }
        Some(AffineSystem { fns })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlo_pops::lifted::lreal;
    use dlo_pops::{LiftedReal, Nat, Trop};

    #[test]
    fn affine_eval_with_explicit_monomials() {
        // Over R⊥: f(x) = 2·x0 + 5 vs g(x) = 0·x0 + 5 vs h(x) = 5.
        let mut f = AffineFn::<LiftedReal>::new();
        f.add_term(0, lreal(2.0));
        f.add_const(lreal(5.0));
        let mut g = AffineFn::<LiftedReal>::new();
        g.add_term(0, lreal(0.0));
        g.add_const(lreal(5.0));
        let h = AffineFn::<LiftedReal>::constant(lreal(5.0));
        let bot = vec![LiftedReal::Bot];
        // Sec. 2.2 subtlety: g(⊥) = ⊥ ≠ h(⊥) = 5.
        assert_eq!(f.eval(&bot), LiftedReal::Bot);
        assert_eq!(g.eval(&bot), LiftedReal::Bot);
        assert_eq!(h.eval(&bot), lreal(5.0));
        let v = vec![lreal(3.0)];
        assert_eq!(f.eval(&v), lreal(11.0));
        assert_eq!(g.eval(&v), lreal(5.0));
    }

    #[test]
    fn add_term_merges_duplicates() {
        let mut f = AffineFn::<Nat>::new();
        f.add_term(2, Nat(3));
        f.add_term(2, Nat(4));
        assert_eq!(f.coeff_of(2), Some(&Nat(7)));
        assert_eq!(f.terms.len(), 1);
    }

    #[test]
    fn substitution_eliminates_variable() {
        // f(x) = min(x0 + 1, x1 + 2); substitute x1 := min(x0 + 5, 7).
        let mut f = AffineFn::<Trop>::new();
        f.add_term(0, Trop::finite(1.0));
        f.add_term(1, Trop::finite(2.0));
        let mut c = AffineFn::<Trop>::new();
        c.add_term(0, Trop::finite(5.0));
        c.add_const(Trop::finite(7.0));
        let g = f.substitute(1, &c);
        assert!(g.coeff_of(1).is_none());
        // g(x0) = min(x0+1, x0+7, 9) = min(x0+1, 9).
        assert_eq!(g.eval(&[Trop::finite(0.0), Trop::INF]), Trop::finite(1.0));
        assert_eq!(g.eval(&[Trop::finite(20.0), Trop::INF]), Trop::finite(9.0));
    }
}
