//! Dense square matrices over a semiring (Sec. 5.5).
//!
//! A linear ICO is a matrix-vector map `F(x) = A·x ⊕ b`; the naïve
//! algorithm computes `A^(q)·b`, so matrix powers and partial closures
//! `A^(q) = I ⊕ A ⊕ … ⊕ A^q` are the central objects.

use dlo_pops::PreSemiring;
use std::fmt;

/// A dense `n × n` matrix over a (pre-)semiring.
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix<S> {
    n: usize,
    data: Vec<S>,
}

impl<S: PreSemiring> Matrix<S> {
    /// The all-zero matrix.
    pub fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![S::zero(); n * n],
        }
    }

    /// The identity matrix `I_n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m.set(i, i, S::one());
        }
        m
    }

    /// Builds a matrix from an entry function.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> S) -> Self {
        let mut data = Vec::with_capacity(n * n);
        for i in 0..n {
            for j in 0..n {
                data.push(f(i, j));
            }
        }
        Matrix { n, data }
    }

    /// The dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> &S {
        &self.data[i * self.n + j]
    }

    /// Sets entry `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, v: S) {
        self.data[i * self.n + j] = v;
    }

    /// `⊕`-combines `v` into entry `(i, j)`.
    pub fn merge(&mut self, i: usize, j: usize, v: &S) {
        let cur = self.get(i, j).add(v);
        self.set(i, j, cur);
    }

    /// Matrix sum.
    pub fn add(&self, rhs: &Self) -> Self {
        assert_eq!(self.n, rhs.n);
        Matrix {
            n: self.n,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a.add(b))
                .collect(),
        }
    }

    /// Matrix product.
    pub fn mul(&self, rhs: &Self) -> Self {
        assert_eq!(self.n, rhs.n);
        let n = self.n;
        Matrix::from_fn(n, |i, j| {
            let mut acc = S::zero();
            for k in 0..n {
                acc = acc.add(&self.get(i, k).mul(rhs.get(k, j)));
            }
            acc
        })
    }

    /// Matrix–vector product.
    pub fn mul_vec(&self, x: &[S]) -> Vec<S> {
        assert_eq!(self.n, x.len());
        (0..self.n)
            .map(|i| {
                let mut acc = S::zero();
                for (k, xk) in x.iter().enumerate() {
                    acc = acc.add(&self.get(i, k).mul(xk));
                }
                acc
            })
            .collect()
    }
}

impl<S: PreSemiring> fmt::Debug for Matrix<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.n {
            let row: Vec<String> = (0..self.n)
                .map(|j| format!("{:?}", self.get(i, j)))
                .collect();
            writeln!(f, "[{}]", row.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlo_pops::{Nat, Trop};

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::<Nat>::from_fn(3, |i, j| Nat((i * 3 + j) as u64));
        let i3 = Matrix::<Nat>::identity(3);
        assert_eq!(a.mul(&i3), a);
        assert_eq!(i3.mul(&a), a);
        assert_eq!(a.add(&Matrix::zeros(3)), a);
    }

    #[test]
    fn nat_matrix_product() {
        let a = Matrix::<Nat>::from_fn(2, |i, j| Nat((i + j) as u64)); // [0 1; 1 2]
        let sq = a.mul(&a);
        // [0 1;1 2]² = [1 2; 2 5]
        assert_eq!(*sq.get(0, 0), Nat(1));
        assert_eq!(*sq.get(0, 1), Nat(2));
        assert_eq!(*sq.get(1, 0), Nat(2));
        assert_eq!(*sq.get(1, 1), Nat(5));
    }

    #[test]
    fn trop_matrix_product_is_min_plus() {
        // Adjacency: 0→1 cost 2, 1→0 cost 3.
        let mut a = Matrix::<Trop>::zeros(2);
        a.set(0, 1, Trop::finite(2.0));
        a.set(1, 0, Trop::finite(3.0));
        let sq = a.mul(&a);
        assert_eq!(*sq.get(0, 0), Trop::finite(5.0)); // 0→1→0
        assert_eq!(*sq.get(0, 1), Trop::INF); // no 2-hop 0→1
    }

    #[test]
    fn mul_vec_matches_mul() {
        let a = Matrix::<Nat>::from_fn(3, |i, j| Nat(((i * j) % 4) as u64));
        let x = vec![Nat(1), Nat(2), Nat(3)];
        let as_mat = Matrix::from_fn(3, |i, _| x[i]);
        let mv = a.mul_vec(&x);
        let mm = a.mul(&as_mat);
        for (i, v) in mv.iter().enumerate() {
            assert_eq!(v, mm.get(i, 0));
        }
    }
}
