//! Newton's method for polynomial fixpoints over idempotent commutative
//! semirings (Esparza–Kiefer–Luttenberger \[19\], Hopkins–Kozen \[41\];
//! discussed at length in the paper's introduction and Sec. 8).
//!
//! Each Newton step linearizes the system at the current iterate and
//! solves the linear fixpoint exactly:
//!
//! ```text
//! ν⁰     = F(0)
//! ν^{i+1} = (DF|_{ν^i})* ⊗ F(ν^i)
//! ```
//!
//! where `DF` is the formal Jacobian (`∂f_i/∂x_j` = sum over occurrences
//! of `x_j`, each with the occurrence deleted) and `A*` is computed by the
//! Floyd–Warshall–Kleene closure. For commutative **idempotent** semirings
//! Newton reaches the least fixpoint in at most `N` iterations — but each
//! iteration costs an `O(N³)` closure (the "Hessian materialization"
//! analogy of the paper's intro), which is why the paper (and \[69\])
//! expect plain (semi-)naïve iteration to win in practice. The benchmark
//! harness reproduces that shape.

use crate::fwk::fwk_closure;
use crate::matrix::Matrix;
use dlo_core::ground::GroundSystem;
use dlo_pops::{Dioid, Pops, StarSemiring};

/// The formal Jacobian `DF` evaluated at `x`:
/// `DF\[i\]\[j\] = ⊕_{monomials m of f_i} ⊕_{occurrences k of x_j in m}
/// coeff(m) ⊗ Π_{other occurrences l} x(v_l)`.
///
/// Only systems without interpreted value functions are differentiable
/// this way; returns `None` otherwise.
pub fn jacobian<P: Pops>(sys: &GroundSystem<P>, x: &[P]) -> Option<Matrix<P>> {
    let n = sys.num_vars();
    let mut j = Matrix::<P>::zeros(n);
    for (i, poly) in sys.polys.iter().enumerate() {
        let Some(poly) = poly else { continue };
        for m in &poly.monomials {
            for k in 0..m.occs.len() {
                if m.occs[k].func.is_some() {
                    return None;
                }
                let col = m.occs[k].var;
                let mut acc = m.coeff.clone();
                for (l, occ) in m.occs.iter().enumerate() {
                    if l != k {
                        acc = acc.mul(&x[occ.var]);
                    }
                }
                j.merge(i, col, &acc);
            }
        }
    }
    Some(j)
}

/// Runs Newton's method on a grounded datalog° program over an idempotent
/// commutative semiring with star. Returns `(lfp, newton_iterations)`, or
/// `None` if the system uses value functions or fails to settle in `cap`
/// Newton steps.
pub fn newton_lfp<P: Dioid + Pops + StarSemiring>(
    sys: &GroundSystem<P>,
    cap: usize,
) -> Option<(Vec<P>, usize)> {
    // ν⁰ = F(0). (In a dioid ⊥ = 0.)
    let mut v = sys.apply_ico(&sys.bottom());
    for iters in 0..=cap {
        let fv = sys.apply_ico(&v);
        if fv == v {
            return Some((v, iters));
        }
        let j = jacobian(sys, &v)?;
        v = fwk_closure(&j).mul_vec(&fv);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlo_core::examples_lib as ex;
    use dlo_core::{ground_sparse, naive_eval_system, BoolDatabase, EvalOutcome};
    use dlo_pops::{Bool, Trop};

    #[test]
    fn newton_equals_naive_on_linear_tc() {
        let (prog, edb) = ex::linear_tc_bool(&[("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")]);
        let sys = ground_sparse(&prog, &edb, &BoolDatabase::new());
        let EvalOutcome::Converged { output, steps, .. } = naive_eval_system(&sys, 10_000) else {
            panic!()
        };
        let (nv, nit) = newton_lfp(&sys, 100).unwrap();
        assert_eq!(sys.to_database(&nv), output);
        assert!(nit <= steps, "Newton {nit} must not exceed naive {steps}");
        // On a linear system one linearization solves it exactly.
        assert!(nit <= 1, "linear system: one Newton step, got {nit}");
    }

    #[test]
    fn newton_equals_naive_on_quadratic_tc() {
        // Example 6.6's non-linear rule: genuinely quadratic.
        let (prog, edb) =
            ex::quadratic_tc_bool(&[("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "a")]);
        let sys = ground_sparse(&prog, &edb, &BoolDatabase::new());
        let naive = naive_eval_system(&sys, 10_000).unwrap();
        let (nv, nit) = newton_lfp(&sys, 100).unwrap();
        assert_eq!(sys.to_database(&nv), naive);
        assert!(nit <= sys.num_vars(), "≤ N Newton iterations (idempotent)");
    }

    #[test]
    fn newton_on_trop_sssp() {
        let (prog, edb) = ex::sssp_trop("a");
        let sys = ground_sparse(&prog, &edb, &BoolDatabase::new());
        let naive = naive_eval_system(&sys, 10_000).unwrap();
        let (nv, _) = newton_lfp(&sys, 100).unwrap();
        assert_eq!(sys.to_database(&nv), naive);
        let _ = Trop::INF;
    }

    #[test]
    fn jacobian_of_quadratic_monomial() {
        // f(x) = x0·x1 over B: J = [[x1, x0]].
        use dlo_core::ground::poly::{Monomial, Polynomial, VarOcc};
        use dlo_core::GroundAtom;
        let mut sys = GroundSystem::<Bool> {
            atoms: vec![
                GroundAtom::new("X", vec![0i64.into()]),
                GroundAtom::new("X", vec![1i64.into()]),
            ],
            index: Default::default(),
            polys: vec![
                Some(Polynomial {
                    monomials: vec![Monomial {
                        coeff: Bool(true),
                        occs: vec![VarOcc { var: 0, func: None }, VarOcc { var: 1, func: None }],
                    }],
                }),
                None,
            ],
        };
        sys.index.insert(sys.atoms[0].clone(), 0);
        sys.index.insert(sys.atoms[1].clone(), 1);
        let j = jacobian(&sys, &[Bool(false), Bool(true)]).unwrap();
        assert_eq!(*j.get(0, 0), Bool(true)); // ∂/∂x0 = x1 = true
        assert_eq!(*j.get(0, 1), Bool(false)); // ∂/∂x1 = x0 = false
    }

    #[test]
    fn value_functions_are_not_differentiable() {
        let (prog, bools) = ex::win_move_three(&ex::fig4_edges());
        let sys = dlo_core::ground(&prog, &dlo_core::Database::new(), &bools);
        // THREE is a dioid but the `not` factors block the Jacobian.
        assert!(jacobian(&sys, &sys.bottom()).is_none());
    }
}
