//! The Floyd–Warshall–Kleene closure (Sec. 5.5, \[52, 72\]).
//!
//! For a semiring with a star operation (`a* = a^(p)` on a p-stable
//! semiring), the closure `A* = I ⊕ A ⊕ A² ⊕ …` is computable in `O(N³)`
//! star/⊕/⊗ operations by Gaussian-style elimination — exponentially faster
//! than naïve iteration when the matrix stability index is large
//! (`(p+1)N − 1` over `Trop⁺_p`, Lemma 5.20).

use crate::matrix::Matrix;
use dlo_pops::StarSemiring;

/// Computes `A* = I ⊕ A ⊕ A² ⊕ …` by Floyd–Warshall–Kleene elimination.
pub fn fwk_closure<S: StarSemiring>(a: &Matrix<S>) -> Matrix<S> {
    let n = a.dim();
    let mut m = a.clone();
    // Lehmann's algorithm: M_{k+1}[i][j] = M_k[i][j] ⊕ M_k[i][k] ⊗
    // (M_k[k][k])* ⊗ M_k[k][j] for ALL i, j, reading the old row/column k
    // (snapshotted) — valid in any semiring whose star satisfies
    // a* = 1 ⊕ a ⊗ a*, which p-stability gives (a^(p) = 1 ⊕ a ⊗ a^(p)).
    for k in 0..n {
        let s = m.get(k, k).star();
        let row_k: Vec<S> = (0..n).map(|j| m.get(k, j).clone()).collect();
        let col_k: Vec<S> = (0..n).map(|i| m.get(i, k).clone()).collect();
        for (i, ci) in col_k.iter().enumerate() {
            let ik = ci.mul(&s);
            for (j, rj) in row_k.iter().enumerate() {
                let delta = ik.mul(rj);
                m.merge(i, j, &delta);
            }
        }
    }
    // A* includes the identity.
    m.add(&Matrix::identity(n))
}

/// Solves `x = A·x ⊕ b` as `x = A*·b` (Sec. 5.5).
pub fn fwk_solve<S: StarSemiring>(a: &Matrix<S>, b: &[S]) -> Vec<S> {
    fwk_closure(a).mul_vec(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::{closure_fixpoint, linear_naive_lfp, trop_p_cycle};
    use dlo_pops::{Bool, PreSemiring, Trop, TropP};

    #[test]
    fn fwk_equals_iterative_closure_on_bool() {
        let mut a = Matrix::<Bool>::zeros(4);
        for (i, j) in [(0, 1), (1, 2), (2, 0), (2, 3)] {
            a.set(i, j, Bool(true));
        }
        let (iter, _) = closure_fixpoint(&a, 100).unwrap();
        assert_eq!(fwk_closure(&a), iter);
    }

    #[test]
    fn fwk_equals_iterative_closure_on_trop() {
        let edges = [
            (0usize, 1usize, 1.0),
            (1, 2, 3.0),
            (0, 2, 5.0),
            (2, 3, 4.0),
            (3, 1, 2.0),
            (3, 0, 7.0),
        ];
        let mut a = Matrix::<Trop>::zeros(4);
        for &(i, j, w) in &edges {
            a.set(i, j, Trop::finite(w));
        }
        let (iter, _) = closure_fixpoint(&a, 1000).unwrap();
        assert_eq!(fwk_closure(&a), iter);
    }

    #[test]
    fn fwk_equals_iterative_closure_on_trop_p_cycle() {
        // The adversarial case: iterative needs (p+1)N-1 steps, FWK is N³.
        let a = trop_p_cycle::<2>(4);
        let (iter, q) = closure_fixpoint(&a, 1000).unwrap();
        assert_eq!(q, 11);
        assert_eq!(fwk_closure(&a), iter);
    }

    #[test]
    fn fwk_solve_equals_naive_linear_lfp() {
        let mut a = Matrix::<TropP<1>>::zeros(3);
        a.set(0, 1, TropP::from_costs(&[1.0]));
        a.set(1, 2, TropP::from_costs(&[2.0, 5.0]));
        a.set(2, 0, TropP::from_costs(&[1.0]));
        let b = vec![
            TropP::<1>::from_costs(&[0.0]),
            TropP::<1>::zero(),
            TropP::<1>::zero(),
        ];
        let (naive, _) = linear_naive_lfp(&a, &b, 1000).unwrap();
        assert_eq!(fwk_solve(&a, &b), naive);
    }
}
