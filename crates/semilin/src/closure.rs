//! Matrix partial closures and stability (Lemma 5.20, Corollary 5.21).
//!
//! `A^(q) = I ⊕ A ⊕ A² ⊕ … ⊕ A^q`. A matrix is `q`-stable when
//! `A^(q) = A^(q+1)`; the naïve algorithm on the linear ICO
//! `F(x) = A·x ⊕ b` converges in exactly `stability(A) + 1` steps for
//! every `b` (Sec. 5.5). Over `Trop⁺_p` the worst case is
//! `(p+1)·N − 1`, attained by the `N`-cycle (Lemma 5.20).

use crate::matrix::Matrix;
use dlo_pops::{Semiring, TropP};

/// Computes the partial closure `A^(q)`.
pub fn partial_closure<S: Semiring>(a: &Matrix<S>, q: usize) -> Matrix<S> {
    let n = a.dim();
    let mut acc = Matrix::<S>::identity(n);
    let mut pow = Matrix::<S>::identity(n);
    for _ in 0..q {
        pow = pow.mul(a);
        acc = acc.add(&pow);
    }
    acc
}

/// Iterates `A^(q)` until it stabilizes; returns `(A*, q)` where `q` is the
/// stability index of `A` (Sec. 5.5), or `None` past the cap.
pub fn closure_fixpoint<S: Semiring>(a: &Matrix<S>, cap: usize) -> Option<(Matrix<S>, usize)> {
    let n = a.dim();
    let mut acc = Matrix::<S>::identity(n);
    let mut pow = Matrix::<S>::identity(n);
    for q in 0..=cap {
        pow = pow.mul(a);
        let next = acc.add(&pow);
        if next == acc {
            return Some((acc, q));
        }
        acc = next;
    }
    None
}

/// The stability index of a matrix: least `q` with `A^(q) = A^(q+1)`.
pub fn matrix_stability_index<S: Semiring>(a: &Matrix<S>, cap: usize) -> Option<usize> {
    closure_fixpoint(a, cap).map(|(_, q)| q)
}

/// The adversarial `N`-cycle over `Trop⁺_p` from the proof of Lemma 5.20:
/// edges `1→2→…→N→1`, each the bag `{{1, ∞, …, ∞}}`. Its stability index
/// is exactly `(p+1)·N − 1`.
pub fn trop_p_cycle<const P: usize>(n: usize) -> Matrix<TropP<P>> {
    let mut m = Matrix::<TropP<P>>::zeros(n);
    for i in 0..n {
        m.set(i, (i + 1) % n, TropP::<P>::from_costs(&[1.0]));
    }
    m
}

/// Solves the linear fixpoint `x = A·x ⊕ b` by naïve (Kleene) iteration,
/// returning `(x, steps)` or `None` past the cap.
pub fn linear_naive_lfp<S: Semiring>(
    a: &Matrix<S>,
    b: &[S],
    cap: usize,
) -> Option<(Vec<S>, usize)> {
    let mut x = vec![S::zero(); b.len()];
    for steps in 0..=cap {
        let mut next = a.mul_vec(&x);
        for (n, bi) in next.iter_mut().zip(b) {
            *n = n.add(bi);
        }
        if next == x {
            return Some((x, steps));
        }
        x = next;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlo_fixpoint::trop_p_matrix_bound;
    use dlo_pops::{Bool, PreSemiring, Trop};

    #[test]
    fn boolean_reachability_closure() {
        // Path graph 0→1→2: A* has reachability (reflexive-transitive).
        let mut a = Matrix::<Bool>::zeros(3);
        a.set(0, 1, Bool(true));
        a.set(1, 2, Bool(true));
        let (star, q) = closure_fixpoint(&a, 10).unwrap();
        assert_eq!(*star.get(0, 2), Bool(true));
        assert_eq!(*star.get(2, 0), Bool(false));
        assert_eq!(*star.get(1, 1), Bool(true)); // I included
        assert!(q <= 2, "N-1 bound for 0-stable (Cor. 5.19): q = {q}");
    }

    #[test]
    fn trop_apsp_closure_matches_floyd_warshall() {
        // Fig. 2(a) weights.
        let names = ["a", "b", "c", "d"];
        let edges = [
            (0, 1, 1.0),
            (1, 2, 3.0),
            (0, 2, 5.0),
            (2, 3, 4.0),
            (3, 1, 2.0),
        ];
        let mut a = Matrix::<Trop>::zeros(4);
        for &(i, j, w) in &edges {
            a.set(i, j, Trop::finite(w));
        }
        let (star, _) = closure_fixpoint(&a, 100).unwrap();
        // Classic Floyd–Warshall oracle.
        let inf = f64::INFINITY;
        let mut d = [[inf; 4]; 4];
        for (i, row) in d.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        for &(i, j, w) in &edges {
            d[i][j] = w;
        }
        for k in 0..4 {
            for i in 0..4 {
                for j in 0..4 {
                    if d[i][k] + d[k][j] < d[i][j] {
                        d[i][j] = d[i][k] + d[k][j];
                    }
                }
            }
        }
        for i in 0..4 {
            for j in 0..4 {
                let got = star.get(i, j).get();
                assert_eq!(got, d[i][j], "({}, {})", names[i], names[j]);
            }
        }
    }

    #[test]
    fn lemma_5_20_cycle_attains_p_plus_1_n_minus_1() {
        fn check<const P: usize>(n: usize) {
            let a = trop_p_cycle::<P>(n);
            let q = matrix_stability_index(&a, 1000).unwrap();
            assert_eq!(
                q as u128,
                trop_p_matrix_bound(P, n),
                "cycle over Trop_{P} with N={n}"
            );
        }
        check::<0>(3);
        check::<1>(3); // 2·3-1 = 5
        check::<2>(4); // 3·4-1 = 11
        check::<3>(5); // 4·5-1 = 19
    }

    #[test]
    fn random_trop_p_matrices_respect_the_bound() {
        // Deterministic pseudo-random fill; every index must be ≤ (p+1)N-1.
        const P: usize = 2;
        for n in 2..6 {
            let mut seed = 0x9e3779b97f4a7c15u64;
            let mut rng = move || {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                seed
            };
            let a = Matrix::<TropP<P>>::from_fn(n, |_, _| {
                if rng() % 3 == 0 {
                    TropP::<P>::from_costs(&[(rng() % 7) as f64])
                } else {
                    TropP::<P>::zero()
                }
            });
            let q = matrix_stability_index(&a, 10_000).unwrap();
            assert!(q as u128 <= trop_p_matrix_bound(P, n));
        }
    }

    #[test]
    fn linear_naive_lfp_solves_sssp() {
        // x = A x ⊕ b with b = source indicator: SSSP from node 0.
        let mut a = Matrix::<Trop>::zeros(3);
        a.set(1, 0, Trop::finite(1.0)); // dist(1) = dist(0) + 1  (edge 0→1)
        a.set(2, 1, Trop::finite(2.0)); // dist(2) = dist(1) + 2
        let b = vec![Trop::finite(0.0), Trop::INF, Trop::INF];
        let (x, _steps) = linear_naive_lfp(&a, &b, 100).unwrap();
        assert_eq!(
            x,
            vec![Trop::finite(0.0), Trop::finite(1.0), Trop::finite(3.0)]
        );
    }
}
