//! `LinearLFP` — Algorithm 2 of the paper (Theorem 5.22).
//!
//! Computes the least fixpoint of `N` affine functions over a `p`-stable
//! POPS (with strict `⊗`) in `O(pN + N³)` semiring operations by recursive
//! variable elimination, instead of the naïve algorithm's up to
//! `(p+1)N − 1` iterations of `N²` work each.
//!
//! The elimination step for the last variable: if
//! `f_N = a_NN ⊗ x_N ⊕ b(x₁..x_{N−1})`, then the inner fixpoint in `x_N`
//! is `c(x) = a_NN^(p) ⊗ b(x) ⊕ ⊥` (the `⊕ ⊥` matters on POPS whose `⊥`
//! is not `0`, e.g. the lifted reals); if `f_N` does not mention `x_N`,
//! `c = f_N`. Substituting `c` for `x_N` in the remaining functions
//! reduces the dimension by one (Lemma 3.3 drives the correctness).

use crate::affine::{AffineFn, AffineSystem};
use dlo_pops::stability::powers_sum;
use dlo_pops::{Pops, UniformlyStable};

/// Runs Algorithm 2 on an affine system over a `p`-stable POPS.
///
/// `p` is the uniform stability index of the core semiring; for naturally
/// ordered p-stable semirings use [`linear_lfp_auto`].
pub fn linear_lfp<P: Pops>(system: &AffineSystem<P>, p: usize) -> Vec<P> {
    let n = system.dim();
    let mut fns = system.fns.clone();
    // cs[k] will hold the elimination function for variable k, which only
    // mentions variables < k.
    let mut cs: Vec<AffineFn<P>> = vec![AffineFn::new(); n];
    for k in (0..n).rev() {
        let f = fns[k].clone();
        let c = match f.coeff_of(k).cloned() {
            // f_k independent of x_k: c = f_k (first branch of Alg. 2).
            None => f,
            // f_k = a·x_k ⊕ b: c = a^(p) ⊗ b ⊕ ⊥ (second branch).
            Some(a) => {
                let b = f.without(k);
                let astar = powers_sum(&a, p);
                let mut c = b.scale(&astar);
                c.add_const(P::bottom());
                c
            }
        };
        for f in fns.iter_mut().take(k) {
            *f = f.substitute(k, &c);
        }
        cs[k] = c;
    }
    // Back substitution: c_k mentions only variables < k.
    let mut x = vec![P::bottom(); n];
    for k in 0..n {
        x[k] = cs[k].eval(&x);
    }
    x
}

/// [`linear_lfp`] with `p` taken from the [`UniformlyStable`] instance.
pub fn linear_lfp_auto<P: Pops + UniformlyStable>(system: &AffineSystem<P>) -> Vec<P> {
    linear_lfp(system, P::uniform_stability_index())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::linear_naive_lfp;
    use crate::matrix::Matrix;
    use dlo_pops::{PreSemiring, Trop, TropP};

    /// Builds the affine system for x = A x ⊕ b.
    fn system_from_matrix<P: Pops>(a: &Matrix<P>, b: &[P]) -> AffineSystem<P> {
        let n = a.dim();
        let fns = (0..n)
            .map(|i| {
                let mut f = AffineFn::new();
                for j in 0..n {
                    if !a.get(i, j).is_zero() {
                        f.add_term(j, a.get(i, j).clone());
                    }
                }
                if !b[i].is_zero() {
                    f.add_const(b[i].clone());
                }
                f
            })
            .collect();
        AffineSystem { fns }
    }

    #[test]
    fn linear_lfp_matches_naive_on_trop_sssp() {
        let mut a = Matrix::<Trop>::zeros(4);
        a.set(1, 0, Trop::finite(1.0));
        a.set(2, 1, Trop::finite(3.0));
        a.set(2, 0, Trop::finite(5.0));
        a.set(3, 2, Trop::finite(4.0));
        a.set(1, 3, Trop::finite(2.0));
        let b = vec![Trop::finite(0.0), Trop::INF, Trop::INF, Trop::INF];
        let sys = system_from_matrix(&a, &b);
        let (naive, _) = linear_naive_lfp(&a, &b, 1000).unwrap();
        assert_eq!(linear_lfp_auto(&sys), naive);
    }

    #[test]
    fn linear_lfp_matches_naive_on_trop_p_cycles() {
        // The adversarial cycle where naïve needs (p+1)N-1 steps.
        const P: usize = 2;
        let a = crate::closure::trop_p_cycle::<P>(5);
        let mut b = vec![TropP::<P>::zero(); 5];
        b[0] = TropP::<P>::one();
        let sys = system_from_matrix(&a, &b);
        let (naive, steps) = linear_naive_lfp(&a, &b, 10_000).unwrap();
        assert!(steps >= 5);
        assert_eq!(linear_lfp_auto(&sys), naive);
    }

    #[test]
    fn linear_lfp_on_lifted_reals_bill_of_material() {
        use dlo_core::examples_lib::bom_lifted_reals;
        use dlo_core::ground;
        use dlo_pops::lifted::lreal;
        use dlo_pops::LiftedReal;
        // BOM is a linear program over R⊥ (p = 0 for the trivial core).
        let (prog, pops, bools) = bom_lifted_reals();
        let gsys = ground(&prog, &pops, &bools);
        let asys = AffineSystem::from_ground_system(&gsys).expect("BOM is linear");
        let alg2 = linear_lfp(&asys, 0);
        let (naive, _) = asys.naive_lfp(100).unwrap();
        assert_eq!(alg2, naive);
        // And the paper's answer: T = (⊥, ⊥, 11, 10).
        let by_atom: Vec<(String, LiftedReal)> = gsys
            .atoms
            .iter()
            .zip(&alg2)
            .map(|(a, v)| (format!("{a}"), *v))
            .collect();
        let get = |name: &str| {
            by_atom
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("T(a)"), LiftedReal::Bot);
        assert_eq!(get("T(b)"), LiftedReal::Bot);
        assert_eq!(get("T(c)"), lreal(11.0));
        assert_eq!(get("T(d)"), lreal(10.0));
    }

    #[test]
    fn random_systems_match_naive() {
        // Deterministic xorshift-driven random sparse systems over Trop.
        let mut seed = 0xdeadbeefcafef00du64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for n in [2usize, 4, 7, 10] {
            let a = Matrix::<Trop>::from_fn(n, |_, _| {
                if rng() % 4 == 0 {
                    Trop::finite((rng() % 9) as f64)
                } else {
                    Trop::INF
                }
            });
            let b: Vec<Trop> = (0..n)
                .map(|_| {
                    if rng() % 2 == 0 {
                        Trop::finite((rng() % 5) as f64)
                    } else {
                        Trop::INF
                    }
                })
                .collect();
            let sys = system_from_matrix(&a, &b);
            let (naive, _) = linear_naive_lfp(&a, &b, 10_000).unwrap();
            assert_eq!(linear_lfp(&sys, 0), naive, "n = {n}");
        }
    }
}
