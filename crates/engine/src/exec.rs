//! The join executor: runs one [`Plan`] against engine state.
//!
//! A plan run is a nested-loop join over the compiled steps — but each
//! step, instead of scanning a `BTreeMap` support and unifying
//! `Constant`s, either scans a flat row range or probes with an
//! interned key: through a hash-prefix index, or — when the relation
//! carries a sorted arrangement serving the step's mask — through the
//! arrangement's binary searches (a merge probe, dispatched per step
//! on whichever structure exists; both yield row ids in identical
//! ascending order). The *old* state `J(t-1)` is read through
//! the *new* state's storage plus the per-iteration `changed` map
//! (appended rows are skipped, updated rows patched back), so `J(t)` and
//! `J(t-1)` share one physical relation and one index set.
//!
//! Valuations are provably visited at most once per derivation (rows are
//! unique per relation and every column is probed, bound, or checked),
//! so no per-valuation dedup set is needed — unlike the relational
//! backend's `seen` tree.

use crate::arrange::Arrangement;
use crate::hash::FxHashMap;
use crate::intern::Interner;
use crate::plan::{CFormula, CTerm, HeadOp, Plan, ProbeCol, Source, Step};
use crate::storage::ColumnRel;
use dlo_core::ast::KeyFn;
use dlo_core::formula::CmpOp;
use dlo_pops::{Bool, Pops};

/// Sentinel for an unbound valuation slot.
const UNBOUND: u32 = u32::MAX;

/// One cell of an emitted head key whose row includes a head-computed
/// constant: either an id the (frozen) interner already knows, or an
/// integer first derived this iteration. The interner cannot be extended
/// while plans run in parallel, so `Fresh` cells travel by value and the
/// driver mints ids for them between iterations — deterministically,
/// because fresh accumulators are ordered (`Ord` below) and drained in
/// sorted order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum HeadVal {
    /// An already-interned constant.
    Id(u32),
    /// An integer produced by a head key function with no id yet.
    Fresh(i64),
}

/// Work counters for one plan run (or one chunked task of one), summed
/// by the telemetry layer in deterministic task order. The counted
/// events are fixed by the plan and the state it reads — chunking only
/// partitions the first step's candidate rows — so totals are
/// bit-identical at any thread count.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecCounters {
    /// Index probes issued (hash or arranged — the split is below).
    pub probes: u64,
    /// Probes answered by a sorted arrangement's binary searches.
    pub merge_probes: u64,
    /// Probes answered by a hash-prefix index.
    pub hash_probes: u64,
    /// Candidate tuples scanned (full-scan ranges + probe posting
    /// lists, before per-row checks).
    pub scanned: u64,
    /// Fully interned head-key emissions.
    pub emits: u64,
    /// Emissions routed to the fresh accumulator for minting.
    pub fresh_emits: u64,
}

impl ExecCounters {
    /// Adds `other` into `self`, field-wise.
    pub fn add(&mut self, other: &ExecCounters) {
        self.probes += other.probes;
        self.merge_probes += other.merge_probes;
        self.hash_probes += other.hash_probes;
        self.scanned += other.scanned;
        self.emits += other.emits;
        self.fresh_emits += other.fresh_emits;
    }
}

/// Everything a plan run reads: interned EDBs, the active domain, and
/// the three IDB states of Theorem 6.5.
pub struct EvalCtx<'a, P> {
    /// The (frozen) constant table.
    pub interner: &'a Interner,
    /// Active-domain constant ids, ascending by constant order.
    pub adom: &'a [u32],
    /// `P`-EDB relations by `pops_edbs` table index (`None` = absent).
    pub pops_edb: &'a [Option<ColumnRel<P>>],
    /// Boolean relations by `bool_edbs` table index (`None` = absent).
    pub bool_edb: &'a [Option<ColumnRel<Bool>>],
    /// Per-IDB *new* state `J(t)`.
    pub idb_new: &'a [ColumnRel<P>],
    /// Per-IDB rows changed in the step `J(t-1) → J(t)`:
    /// `row ↦ Some(old value)` for updates, `row ↦ None` for appends.
    pub idb_changed: &'a [FxHashMap<u32, Option<P>>],
    /// Per-IDB delta `δ(t-1)` (values are the `⊖` differences).
    pub idb_delta: &'a [ColumnRel<P>],
}

/// A partially evaluated key term: an interned id or a computed integer
/// that may fall outside the interned domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Ev {
    Id(u32),
    Int(i64),
}

fn eval_cterm(t: &CTerm, slots: &[u32], interner: &Interner) -> Option<Ev> {
    match t {
        CTerm::Slot(s) => {
            let v = slots[*s];
            (v != UNBOUND).then_some(Ev::Id(v))
        }
        CTerm::Const(id) => Some(Ev::Id(*id)),
        CTerm::Apply(f, inner) => {
            let iv = match eval_cterm(inner, slots, interner)? {
                Ev::Id(id) => interner.as_int(id)?,
                Ev::Int(i) => i,
            };
            match f {
                KeyFn::AddInt(d) => Some(Ev::Int(iv + d)),
            }
        }
    }
}

fn ev_to_id(ev: Ev, interner: &Interner) -> Option<u32> {
    match ev {
        Ev::Id(id) => Some(id),
        Ev::Int(i) => interner.lookup_int(i),
    }
}

fn ev_to_int(ev: Ev, interner: &Interner) -> Option<i64> {
    match ev {
        Ev::Id(id) => interner.as_int(id),
        Ev::Int(i) => Some(i),
    }
}

fn ev_eq(l: Ev, r: Ev, interner: &Interner) -> bool {
    match (l, r) {
        (Ev::Id(a), Ev::Id(b)) => a == b,
        (Ev::Id(a), Ev::Int(i)) | (Ev::Int(i), Ev::Id(a)) => interner.as_int(a) == Some(i),
        (Ev::Int(a), Ev::Int(b)) => a == b,
    }
}

/// Evaluates a compiled condition under a full valuation — the interned
/// mirror of `Formula::eval` (unbound/ill-typed terms make atoms and
/// comparisons false).
pub(crate) fn eval_cformula<P: Pops>(f: &CFormula, slots: &[u32], ctx: &EvalCtx<'_, P>) -> bool {
    match f {
        CFormula::True => true,
        CFormula::False => false,
        CFormula::BoolAtom { pred, args } => {
            let Some(rel) = &ctx.bool_edb[*pred] else {
                return false;
            };
            if rel.arity() != args.len() {
                return false;
            }
            let mut key: Vec<u32> = Vec::with_capacity(args.len());
            for a in args {
                let Some(ev) = eval_cterm(a, slots, ctx.interner) else {
                    return false;
                };
                let Some(id) = ev_to_id(ev, ctx.interner) else {
                    return false;
                };
                key.push(id);
            }
            rel.rowid(&key).is_some()
        }
        CFormula::Not(g) => !eval_cformula(g, slots, ctx),
        CFormula::And(a, b) => eval_cformula(a, slots, ctx) && eval_cformula(b, slots, ctx),
        CFormula::Or(a, b) => eval_cformula(a, slots, ctx) || eval_cformula(b, slots, ctx),
        CFormula::Cmp(l, op, r) => {
            let (Some(lv), Some(rv)) = (
                eval_cterm(l, slots, ctx.interner),
                eval_cterm(r, slots, ctx.interner),
            ) else {
                return false;
            };
            match op {
                CmpOp::Eq => ev_eq(lv, rv, ctx.interner),
                CmpOp::Ne => !ev_eq(lv, rv, ctx.interner),
                CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                    let (Some(a), Some(b)) =
                        (ev_to_int(lv, ctx.interner), ev_to_int(rv, ctx.interner))
                    else {
                        return false;
                    };
                    match op {
                        CmpOp::Lt => a < b,
                        CmpOp::Le => a <= b,
                        CmpOp::Gt => a > b,
                        CmpOp::Ge => a >= b,
                        _ => unreachable!(),
                    }
                }
            }
        }
    }
}

/// Runs `plan` against `ctx`, calling `emit(head_key, value)` once per
/// surviving valuation whose head key is fully interned, and
/// `emit_fresh` for valuations whose head contains a key-function result
/// outside the interned domain (the driver mints ids for those between
/// iterations). `range0` optionally restricts the first step's candidate
/// rows to `[lo, hi)` — the parallel driver's chunking hook. Probe,
/// scan, and emit counts are accumulated into `counters`.
pub fn run_plan<'a, P: Pops>(
    plan: &Plan<P>,
    ctx: &EvalCtx<'a, P>,
    range0: Option<(usize, usize)>,
    counters: &mut ExecCounters,
    emit: &mut dyn FnMut(&[u32], P),
    emit_fresh: &mut dyn FnMut(&[HeadVal], P),
) {
    // Resolve each probing step's arrangement once per plan run: the
    // step → relation mapping is fixed for the run, and looking the
    // arrangement up per probe (a hash get plus a prefix-sharing scan)
    // would sit on the hot join path.
    let step_arr: Vec<Option<&'a Arrangement>> = plan
        .steps
        .iter()
        .map(|s| {
            if s.mask == 0 {
                return None;
            }
            resolve_step(ctx, s).and_then(|rel| rel.arrangement_for(s.mask))
        })
        .collect();
    let mut runner = Runner {
        plan,
        ctx,
        range0,
        slots: vec![UNBOUND; plan.nslots],
        values: vec![None; plan.nfactors],
        row_keys: vec![None; plan.steps.len()],
        probe_scratch: Vec::new(),
        arr_rows: vec![Vec::new(); plan.steps.len()],
        step_arr,
        counters,
        emit,
        emit_fresh,
    };
    for &(s, id) in &plan.pre_bound {
        runner.slots[s] = id;
    }
    runner.step(0);
}

/// How a step's relation is read.
enum StepRel<'a, P> {
    Pops(&'a ColumnRel<P>),
    /// New-state storage read *as* the old state: `changed` patches.
    PopsOld(&'a ColumnRel<P>, &'a FxHashMap<u32, Option<P>>),
    Guard(&'a ColumnRel<Bool>),
}

impl<'a, P: Pops> StepRel<'a, P> {
    fn arity(&self) -> usize {
        match self {
            StepRel::Pops(r) | StepRel::PopsOld(r, _) => r.arity(),
            StepRel::Guard(r) => r.arity(),
        }
    }
    fn len(&self) -> usize {
        match self {
            StepRel::Pops(r) | StepRel::PopsOld(r, _) => r.len(),
            StepRel::Guard(r) => r.len(),
        }
    }
    fn probe(&self, mask: u32, key: &[u32]) -> &'a [u32] {
        match self {
            StepRel::Pops(r) | StepRel::PopsOld(r, _) => r.probe(mask, key),
            StepRel::Guard(r) => r.probe(mask, key),
        }
    }
    /// The sorted arrangement serving `mask`, if one is built — the
    /// merge-probe dispatch, resolved once per plan run.
    fn arrangement_for(&self, mask: u32) -> Option<&'a Arrangement> {
        match self {
            StepRel::Pops(r) | StepRel::PopsOld(r, _) => r.arrangement_for(mask),
            StepRel::Guard(r) => r.arrangement_for(mask),
        }
    }
    /// The row key and factor value of row `r`; `None` when the row does
    /// not exist in this state (appended after `J(t-1)`).
    fn row(&self, r: u32) -> Option<(&'a [u32], Option<&'a P>)> {
        match self {
            StepRel::Pops(rel) => Some((rel.row(r), Some(rel.val(r)))),
            StepRel::PopsOld(rel, changed) => match changed.get(&r) {
                Some(None) => None,
                Some(Some(old)) => Some((rel.row(r), Some(old))),
                None => Some((rel.row(r), Some(rel.val(r)))),
            },
            StepRel::Guard(rel) => Some((rel.row(r), None)),
        }
    }
}

struct Runner<'r, 'a, P: Pops> {
    plan: &'r Plan<P>,
    ctx: &'r EvalCtx<'a, P>,
    range0: Option<(usize, usize)>,
    slots: Vec<u32>,
    values: Vec<Option<&'a P>>,
    row_keys: Vec<Option<&'a [u32]>>,
    /// Reusable probe-key buffer: one plan run probes indexes once per
    /// candidate row across every step, so a fresh `Vec` per probe is
    /// pure allocator traffic on the hot join path. Taken and restored
    /// around each probe (the probed row list borrows the relation, not
    /// the key, so the buffer is free again before recursing).
    probe_scratch: Vec<u32>,
    /// Per-step-depth row buffers for arranged probes: an arrangement
    /// collects matches across spine batches into caller-owned storage
    /// (unlike a hash probe, which returns a borrowed posting list), and
    /// giving each depth its own buffer keeps the recursion
    /// allocation-free in steady state.
    arr_rows: Vec<Vec<u32>>,
    /// Per-step arrangement dispatch, resolved once in [`run_plan`]:
    /// `Some` routes the step's probes through the sorted arrangement,
    /// `None` through the hash-prefix index.
    step_arr: Vec<Option<&'a Arrangement>>,
    counters: &'r mut ExecCounters,
    emit: &'r mut dyn FnMut(&[u32], P),
    emit_fresh: &'r mut dyn FnMut(&[HeadVal], P),
}

/// Resolves the relation a step reads from the evaluation context (the
/// mapping is fixed for a whole plan run).
fn resolve_step<'a, P: Pops>(ctx: &EvalCtx<'a, P>, step: &Step) -> Option<StepRel<'a, P>> {
    match step.source {
        Source::PopsEdb(i) => ctx.pops_edb[i].as_ref().map(StepRel::Pops),
        Source::IdbNew(i) => Some(StepRel::Pops(&ctx.idb_new[i])),
        Source::IdbOld(i) => Some(StepRel::PopsOld(&ctx.idb_new[i], &ctx.idb_changed[i])),
        Source::IdbDelta(i) => Some(StepRel::Pops(&ctx.idb_delta[i])),
        Source::BoolEdb(i) => ctx.bool_edb[i].as_ref().map(StepRel::Guard),
    }
}

impl<'a, P: Pops> Runner<'_, 'a, P> {
    fn resolve(&self, step: &Step) -> Option<StepRel<'a, P>> {
        resolve_step(self.ctx, step)
    }

    fn step(&mut self, i: usize) {
        let Some(step) = self.plan.steps.get(i) else {
            self.fill(0);
            return;
        };
        // Missing relation: the factor is all-0 / the guard all-false.
        let Some(rel) = self.resolve(step) else {
            return;
        };
        if rel.arity() != step.arity {
            return;
        }

        let visit = |this: &mut Self, r: u32| {
            let Some((key, value)) = rel.row(r) else {
                return; // row absent from the old state
            };
            for &(col, slot) in &step.binds {
                this.slots[slot] = key[col];
            }
            let ok = step.checks.iter().all(|(col, t)| {
                eval_cterm(t, &this.slots, this.ctx.interner)
                    .and_then(|ev| ev_to_id(ev, this.ctx.interner))
                    == Some(key[*col])
            });
            if ok {
                if let Some(factor) = &step.factor {
                    this.values[factor.index] = value;
                }
                this.row_keys[i] = Some(key);
                this.step(i + 1);
            }
            for &(_, slot) in &step.binds {
                this.slots[slot] = UNBOUND;
            }
        };

        if step.mask == 0 {
            let (mut lo, mut hi) = (0, rel.len());
            if i == 0 {
                if let Some((a, b)) = self.range0 {
                    lo = a.min(hi);
                    hi = b.min(hi);
                }
            }
            self.counters.scanned += (hi - lo) as u64;
            for r in lo..hi {
                visit(self, r as u32);
            }
            return;
        }

        let mut key = std::mem::take(&mut self.probe_scratch);
        key.clear();
        for p in &step.probe {
            let id = match p {
                ProbeCol::Const(id) => Some(*id),
                ProbeCol::Slot(s) => Some(self.slots[*s]),
                ProbeCol::Term(t) => eval_cterm(t, &self.slots, self.ctx.interner)
                    .and_then(|ev| ev_to_id(ev, self.ctx.interner)),
            };
            match id {
                Some(id) => key.push(id),
                None => {
                    self.probe_scratch = key;
                    return; // un-interned probe value: no match
                }
            }
        }
        if let Some(arr) = self.step_arr[i] {
            // Arranged path: collect matches across spine batches into
            // this depth's buffer, sorted ascending — the exact order
            // the hash posting lists hold, so both paths emit
            // identically. (Single-batch matches of ≤ 1 row, the common
            // join fan-out, skip the sort outright.)
            let mut rows = std::mem::take(&mut self.arr_rows[i]);
            rows.clear();
            arr.probe_into(&key, &mut rows);
            if rows.len() > 1 {
                rows.sort_unstable();
            }
            self.probe_scratch = key;
            let (mut lo, mut hi) = (0, rows.len());
            if i == 0 {
                if let Some((a, b)) = self.range0 {
                    lo = a.min(hi);
                    hi = b.min(hi);
                }
            }
            self.counters.probes += 1;
            self.counters.merge_probes += 1;
            self.counters.scanned += (hi - lo) as u64;
            for &r in &rows[lo..hi] {
                visit(self, r);
            }
            self.arr_rows[i] = rows;
        } else {
            let mut rows = rel.probe(step.mask, &key);
            // The row list borrows `rel`, not `key` — hand the buffer
            // back before recursing so deeper steps reuse it.
            self.probe_scratch = key;
            if i == 0 {
                if let Some((a, b)) = self.range0 {
                    rows = &rows[a.min(rows.len())..b.min(rows.len())];
                }
            }
            self.counters.probes += 1;
            self.counters.hash_probes += 1;
            self.counters.scanned += rows.len() as u64;
            for &r in rows {
                visit(self, r);
            }
        }
    }

    /// Enumerates the active domain for slots no step binds (the
    /// relational backend's leftover-variable enumeration).
    fn fill(&mut self, j: usize) {
        let Some(&slot) = self.plan.fill.get(j) else {
            self.leaf();
            return;
        };
        for k in 0..self.ctx.adom.len() {
            self.slots[slot] = self.ctx.adom[k];
            self.fill(j + 1);
        }
        self.slots[slot] = UNBOUND;
    }

    fn leaf(&mut self) {
        // Deferred wildcard checks: the matched row's column must equal
        // the now-evaluable key-function term.
        for (si, col, t) in &self.plan.post_checks {
            let expected = eval_cterm(t, &self.slots, self.ctx.interner)
                .and_then(|ev| ev_to_id(ev, self.ctx.interner));
            let actual = self.row_keys[*si].map(|key| key[*col]);
            if expected.is_none() || expected != actual {
                return;
            }
        }
        if !eval_cformula(&self.plan.condition, &self.slots, self.ctx) {
            return;
        }
        let mut acc = self.plan.coeff.clone().unwrap_or_else(P::one);
        for fi in 0..self.plan.nfactors {
            let Some(v) = self.values[fi] else { return };
            let v = match &self.plan.factor_funcs[fi] {
                Some(func) => func.apply(v),
                None => v.clone(),
            };
            acc = acc.mul(&v);
            if acc.is_zero() {
                return; // 0 absorbs on naturally ordered semirings
            }
        }
        // Assemble the head key. The all-interned case (every program
        // without head key functions) stays on the flat `u32` path; a
        // computed cell outside the interned domain upgrades the key to
        // `HeadVal`s and routes through `emit_fresh`.
        let mut key: Vec<u32> = Vec::with_capacity(self.plan.head_cols.len());
        let mut fresh: Option<Vec<HeadVal>> = None;
        for h in &self.plan.head_cols {
            let hv = match h {
                HeadOp::Slot(s) => HeadVal::Id(self.slots[*s]),
                HeadOp::Const(id) => HeadVal::Id(*id),
                HeadOp::Computed(t) => {
                    // Unevaluable head terms (type mismatch) drop the
                    // derivation, mirroring the relational `eval_args`.
                    let Some(ev) = eval_cterm(t, &self.slots, self.ctx.interner) else {
                        return;
                    };
                    match ev_to_id(ev, self.ctx.interner) {
                        Some(id) => HeadVal::Id(id),
                        None => match ev {
                            Ev::Int(i) => HeadVal::Fresh(i),
                            Ev::Id(_) => unreachable!("ids always resolve"),
                        },
                    }
                }
            };
            match (&mut fresh, hv) {
                (None, HeadVal::Id(id)) => key.push(id),
                (None, hv) => {
                    let mut up: Vec<HeadVal> = key.iter().map(|&id| HeadVal::Id(id)).collect();
                    up.push(hv);
                    fresh = Some(up);
                }
                (Some(up), hv) => up.push(hv),
            }
        }
        match fresh {
            None => {
                self.counters.emits += 1;
                (self.emit)(&key, acc)
            }
            Some(up) => {
                self.counters.fresh_emits += 1;
                (self.emit_fresh)(&up, acc)
            }
        }
    }
}
