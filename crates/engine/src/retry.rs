//! Retry with deterministic budget escalation: run under a budget
//! class, and when the run is stopped by a **recoverable** governance
//! limit (budget ceiling or deadline — not cancellation, divergence, or
//! a worker panic), climb one rung up the [`BudgetClass`] ladder and
//! try again, **warm-started** from the aborted attempt.
//!
//! The warm start reuses the aborted attempt's interner as the next
//! attempt's starting vocabulary (the interned-EDB chaining path), so a
//! retry never re-interns the constants the failed attempt already
//! minted and every attempt of a ladder resolves the same constant to
//! the same id. The fixpoint itself is recomputed from the EDB — the
//! partial IDB values are *not* injected as seeds, which keeps every
//! successful attempt **bit-identical to a cold ungoverned run** at any
//! thread count (the property `tests/robustness.rs` pins); the saved
//! work is the interner and the caller-visible id stability.
//!
//! Escalation is deterministic: the ladder of budgets is fixed up
//! front ([`RetryPolicy::from_class`] takes it from
//! [`BudgetClass::ladder`]), each recoverable abort consumes exactly
//! one rung, and the optional backoff hook observes the attempt index
//! without influencing the schedule — sleeping (or jittering) between
//! rungs is the caller's business, never the engine's.

use crate::driver::EngineOpts;
use crate::output::{AbortedEval, InternedOutcome};
use crate::worklist::{engine_eval_partial_interned_edb, engine_eval_partial_with_opts, Strategy};
use dlo_core::ast::Program;
use dlo_core::eval::{BudgetClass, EvalBudget, EvalError};
use dlo_core::relation::{BoolDatabase, Database};
use dlo_pops::{
    Absorptive, CompleteDistributiveDioid, NaturallyOrdered, Pops, TotallyOrderedDioid,
};

/// The escalation schedule for [`eval_with_retry`]: an ordered ladder
/// of budgets (attempt `i` runs under `ladder[i]`), a cap on attempts,
/// and an optional between-attempts backoff hook.
pub struct RetryPolicy {
    ladder: Vec<EvalBudget>,
    max_attempts: usize,
    backoff: Option<Box<dyn FnMut(usize) + Send>>,
}

impl std::fmt::Debug for RetryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetryPolicy")
            .field("ladder", &self.ladder)
            .field("max_attempts", &self.max_attempts)
            .field("backoff", &self.backoff.is_some())
            .finish()
    }
}

impl RetryPolicy {
    /// The ladder starting at `class` and climbing to `Unbounded`
    /// (e.g. `Interactive` → 3 attempts: interactive, batch, unbounded).
    pub fn from_class(class: BudgetClass) -> RetryPolicy {
        let ladder = class.ladder();
        RetryPolicy {
            max_attempts: ladder.len(),
            ladder,
            backoff: None,
        }
    }

    /// An explicit budget ladder (must be non-empty; attempts beyond
    /// its length reuse the last rung up to `max_attempts`).
    pub fn with_ladder(mut self, ladder: Vec<EvalBudget>) -> RetryPolicy {
        assert!(
            !ladder.is_empty(),
            "retry ladder must have at least one rung"
        );
        self.max_attempts = self.max_attempts.max(ladder.len());
        self.ladder = ladder;
        self
    }

    /// Caps the total number of attempts (clamped to at least 1).
    pub fn with_max_attempts(mut self, max_attempts: usize) -> RetryPolicy {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// Installs a hook called before each retry with the index of the
    /// attempt about to start (so `1` precedes the first retry). The
    /// engine never sleeps on its own: put `std::thread::sleep` (or
    /// nothing) here.
    pub fn with_backoff(mut self, hook: impl FnMut(usize) + Send + 'static) -> RetryPolicy {
        self.backoff = Some(Box::new(hook));
        self
    }

    fn budget_for(&self, attempt: usize) -> EvalBudget {
        self.ladder
            .get(attempt)
            .unwrap_or_else(|| self.ladder.last().expect("non-empty ladder"))
            .clone()
    }
}

/// One attempt's outcome inside a [`RetryReport`].
#[derive(Clone, Debug)]
pub struct AttemptLog {
    /// The budget this attempt ran under.
    pub budget: EvalBudget,
    /// `"converged"`, `"diverged"`, or the error kind that stopped the
    /// attempt (`"deadline"`, `"budget"`, …).
    pub outcome: String,
    /// Settled rows of the attempt's partial at abort (0 on success).
    pub settled_rows: u64,
    /// Steps completed (loop phases in the driver's own semantics).
    pub steps: u64,
    /// Whether the attempt was warm-started from a previous partial's
    /// interner (always `false` for attempt 0).
    pub warm_start: bool,
}

/// The per-attempt audit trail of an [`eval_with_retry`] run, returned
/// next to the final outcome (or inside the [`RetryFailure`]).
#[derive(Clone, Debug, Default)]
pub struct RetryReport {
    /// One entry per attempt, in order.
    pub attempts: Vec<AttemptLog>,
}

impl RetryReport {
    /// Total attempts made.
    pub fn attempts_made(&self) -> usize {
        self.attempts.len()
    }
}

/// All rungs exhausted (or a non-recoverable error): the last attempt's
/// [`AbortedEval`] — error plus abort-time partial — with the audit
/// trail of every attempt before it.
#[derive(Debug)]
pub struct RetryFailure<P> {
    /// The final attempt's error and partial state.
    pub last: Box<AbortedEval<P>>,
    /// What was tried, in order.
    pub report: RetryReport,
}

impl<P: Pops> RetryFailure<P> {
    /// The typed error of the last attempt.
    pub fn error(&self) -> &EvalError {
        self.last.error()
    }
}

impl<P: Pops> std::fmt::Display for RetryFailure<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (after {} attempt(s))",
            self.last.error(),
            self.report.attempts.len()
        )
    }
}

impl<P: Pops> From<RetryFailure<P>> for EvalError {
    fn from(failure: RetryFailure<P>) -> EvalError {
        EvalError::from(*failure.last)
    }
}

/// Whether escalating the budget can help: only budget ceilings and
/// deadlines are recoverable — cancellation is a caller's decision,
/// divergence and compile errors never improve with more budget, and a
/// worker panic is a bug to surface.
fn recoverable(error: &EvalError) -> bool {
    matches!(error.kind(), "budget" | "deadline")
}

/// Evaluates `program` under `policy`'s budget ladder: attempt 0 runs
/// cold under `ladder[0]`, and every recoverable governed abort climbs
/// one rung and retries warm-started from the aborted attempt's
/// interner (see the module docs — the result is still bit-identical to
/// a cold run). `base_opts` carries everything but the budget (threads,
/// trace sink, cancel token); the ladder overrides the budget per
/// attempt.
///
/// # Errors
///
/// [`RetryFailure`] when the rungs are exhausted or an attempt stops
/// for a non-recoverable reason (compile error, divergence-as-error,
/// cancellation, worker panic) — carrying the last attempt's partial
/// state and the full per-attempt report.
#[allow(clippy::type_complexity)]
pub fn eval_with_retry<P>(
    program: &Program<P>,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
    strategy: Strategy,
    base_opts: &EngineOpts,
    mut policy: RetryPolicy,
) -> Result<(InternedOutcome<P>, RetryReport), RetryFailure<P>>
where
    P: NaturallyOrdered
        + CompleteDistributiveDioid
        + Absorptive
        + TotallyOrderedDioid
        + Send
        + Sync,
{
    let mut report = RetryReport::default();
    let mut warm: Option<Box<AbortedEval<P>>> = None;
    for attempt in 0..policy.max_attempts {
        let budget = policy.budget_for(attempt);
        let opts = EngineOpts {
            budget: budget.clone(),
            ..base_opts.clone()
        };
        if attempt > 0 {
            if let Some(hook) = policy.backoff.as_mut() {
                hook(attempt);
            }
        }
        let ran = match &warm {
            None => {
                engine_eval_partial_with_opts(program, pops_edb, bool_edb, cap, strategy, &opts)
            }
            Some(prev) => engine_eval_partial_interned_edb(
                program,
                prev.partial().interned(),
                pops_edb,
                bool_edb,
                cap,
                strategy,
                &opts,
            ),
        };
        match ran {
            Ok(outcome) => {
                report.attempts.push(AttemptLog {
                    budget,
                    outcome: if outcome.is_converged() {
                        "converged".to_string()
                    } else {
                        "diverged".to_string()
                    },
                    settled_rows: 0,
                    steps: outcome.stats().steps,
                    warm_start: attempt > 0,
                });
                return Ok((outcome, report));
            }
            Err(aborted) => {
                let error = aborted.error();
                report.attempts.push(AttemptLog {
                    budget,
                    outcome: error.kind().to_string(),
                    settled_rows: aborted.partial().settled().settled_rows(),
                    steps: error.stats().map_or(0, |s| s.steps),
                    warm_start: attempt > 0,
                });
                if !recoverable(error) || attempt + 1 >= policy.max_attempts {
                    return Err(RetryFailure {
                        last: aborted,
                        report,
                    });
                }
                warm = Some(aborted);
            }
        }
    }
    unreachable!("max_attempts ≥ 1: the loop returns from its last iteration")
}
