//! Worklist and priority-frontier evaluation: per-row change propagation
//! instead of global Δ iterations, with frontier batches fanned over the
//! worker pool.
//!
//! The semi-naïve loop in [`crate::driver`] re-runs every delta plan
//! against the *whole* Δ relation each round, so a program whose
//! fixpoint has a long dependency chain (1k-node chain TC ⇒ ~1000
//! rounds) pays the full per-round machinery — accumulator allocation,
//! sorted drains, Δ re-indexing — a thousand times. Over **absorptive**
//! POPS (`dlo_pops::Absorptive`: `x ⊕ 1 = 1`, i.e. every element is
//! 0-stable) the paper guarantees much more structure than the global
//! loop exploits: by Corollary 5.19 every polynomial over a 0-stable
//! semiring is `N`-stable, so each ground fact's value strictly improves
//! at most a bounded number of times before it settles. That licenses a
//! **worklist**: keep a per-`(relation, row)` change queue, and when a
//! row's value strictly improves (in the natural order), re-fire only
//! the rules that row can feed.
//!
//! Two queue disciplines, picked by [`Strategy`] or by trait bounds:
//!
//! * **FIFO worklist** ([`engine_worklist_eval`], needs `Absorptive`) —
//!   the queue is drained one **generation** at a time: every row
//!   pending when the drain starts forms one batch (Bellman-Ford-style
//!   rounds restricted to changed rows); a row improved again by a later
//!   generation is simply re-queued.
//! * **Priority frontier** ([`engine_priority_eval`], needs
//!   `Absorptive + TotallyOrderedDioid`) — a *bucketed best-first*
//!   queue keyed by value: the ⊑-greatest pending bucket is drained as
//!   one batch. Because `⊗` can only move values down the chain
//!   (`x ⊗ y ⊑ x ⊗ 1 = x` by monotonicity + absorption), no future
//!   derivation can improve a popped best-value row: every fact is
//!   popped **settled**, Dijkstra-style, and the whole fixpoint is one
//!   near-linear pass over the derivations. Stale queue entries (rows
//!   improved after being pushed) are skipped lazily by comparing the
//!   bucket value against the row's current value.
//!
//! ## Parallel batches
//!
//! A frontier batch is an embarrassingly parallel unit: every row in it
//! is already merged into `new` (the priority discipline even guarantees
//! it is *settled*), the interner is frozen while plans run, and the
//! per-occurrence plans only read state. So each batch's
//! (settled-row × worklist-plan) work is partitioned into tasks — one
//! per plan, with large Δ scans split into first-step row chunks exactly
//! like [`crate::driver`]'s global loop — and fanned over the scoped
//! worker pool of [`crate::par`]. Each task buffers its emissions in an
//! ordered `EmitBuf`; the merge walks tasks **in task order** and
//! appends, so the staged emission sequence is byte-for-byte the one the
//! sequential inner loop produces and results are bit-identical at any
//! `DLO_ENGINE_THREADS` (every stock absorptive dioid's `⊕` is exact, so
//! association is immaterial; the task-order merge additionally pins the
//! fold order per key). Batches whose estimated first-step work falls
//! below [`crate::driver::EngineOpts::par_threshold`] run the sequential
//! inner loop directly — sparse frontiers (the gradient workload pops
//! 1–2 rows per batch) never pay a spawn.
//!
//! Both disciplines fire the per-occurrence plans of
//! [`crate::plan::CompiledProgram::worklist_plans`]: the changed row is
//! staged as a one-batch Δ relation carrying its **full current value**
//! (not a `⊖` difference — no `CompleteDistributiveDioid` bound needed),
//! and every other occurrence reads the live `new` state. On idempotent
//! `⊕` the occasional re-derivation merges to the same value, so the
//! scheme is sound without the prefix-new/suffix-old split of
//! Theorem 6.5.
//!
//! Head key functions work exactly as in the global drivers: the
//! interner is frozen while plans run, fresh integer cells accumulate in
//! ordered buffers, and ids are minted between batches
//! (`driver::mint_key`); minted rows enter `new` as appends and
//! are pushed like any other improvement.
//!
//! `steps` in the returned outcome counts processed frontier batches —
//! FIFO generations for the worklist driver, value buckets for the
//! priority one — and the `cap` bounds that count (divergence through
//! unbounded head-key minting is still caught). Step counts are **not**
//! comparable across strategies; fixpoints are.

use crate::driver::{
    abort_with_partial, chunk_tasks, empty_aborted, ensure_probes, finish, merge_fresh, mint_key,
    seminaive_run, setup_checked, setup_interned_checked, Engine, EngineOpts,
};
use crate::exec::{run_plan, EvalCtx, ExecCounters, HeadVal};
use crate::govern::{Abort, Checkpoint, Governor};
use crate::hash::FxHashMap;
use crate::intern::Interner;
use crate::output::{AbortedEval, InternedOutcome, InternedOutput, SettledMark};
use crate::par;
use crate::plan::{Plan, Source};
use crate::storage::ColumnRel;
use crate::telemetry::Collector;
use dlo_core::ast::Program;
use dlo_core::eval::{EvalError, EvalOutcome};
use dlo_core::relation::{BoolDatabase, Database};
use dlo_pops::{
    Absorptive, CompleteDistributiveDioid, NaturallyOrdered, Pops, TotallyOrderedDioid,
};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Which evaluation loop [`engine_eval`] runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Strategy {
    /// The strongest discipline the trait bounds allow — for the
    /// totally ordered absorptive dioids [`engine_eval`] is bounded
    /// over, that is the priority frontier.
    #[default]
    Auto,
    /// The global parallel semi-naïve loop (Theorem 6.5).
    SemiNaive,
    /// The FIFO generation worklist (sound for any absorptive POPS).
    Worklist,
    /// The bucketed best-first frontier (Dijkstra semantics; needs a
    /// total natural order on top of absorption).
    Priority,
}

/// A frontier queue: how improved rows wait to be re-fired.
trait Frontier<P: Pops> {
    /// Records that `(pred, row)` improved to `val`.
    fn push(&mut self, pred: usize, row: u32, val: &P);
    /// Moves the next batch of work into `batch` (cleared by the
    /// caller); `false` when the frontier is drained.
    fn pop_into(&mut self, new: &[ColumnRel<P>], batch: &mut Vec<(usize, u32)>) -> bool;
    /// Pending entries (stale ones included — a deterministic queue
    /// measure, reported per batch in the stats).
    fn depth(&self) -> usize;
}

/// FIFO discipline, drained in **generations**: one batch is everything
/// queued when the drain starts. Rows are de-duplicated by an enqueued
/// flag — a row improved twice between generations is processed once, at
/// its newest value — so a batch never holds the same row twice (the
/// delta-staging invariant) and each generation is a full parallel unit.
struct FifoFrontier {
    queue: VecDeque<(u32, u32)>,
    queued: Vec<Vec<bool>>,
}

impl FifoFrontier {
    fn new(nidb: usize) -> Self {
        FifoFrontier {
            queue: VecDeque::new(),
            queued: vec![vec![]; nidb],
        }
    }
}

impl<P: Pops> Frontier<P> for FifoFrontier {
    fn push(&mut self, pred: usize, row: u32, _val: &P) {
        let flags = &mut self.queued[pred];
        if row as usize >= flags.len() {
            flags.resize(row as usize + 1, false);
        }
        if !flags[row as usize] {
            flags[row as usize] = true;
            self.queue.push_back((pred as u32, row));
        }
    }

    fn pop_into(&mut self, _new: &[ColumnRel<P>], batch: &mut Vec<(usize, u32)>) -> bool {
        while let Some((pred, row)) = self.queue.pop_front() {
            self.queued[pred as usize][row as usize] = false;
            batch.push((pred as usize, row));
        }
        !batch.is_empty()
    }

    fn depth(&self) -> usize {
        self.queue.len()
    }
}

/// Bucket key ordered best-first: the ⊑-greatest value is the
/// `BTreeMap`'s first key.
struct BestFirst<P>(P);

impl<P: TotallyOrderedDioid> PartialEq for BestFirst<P> {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl<P: TotallyOrderedDioid> Eq for BestFirst<P> {}
impl<P: TotallyOrderedDioid> PartialOrd for BestFirst<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P: TotallyOrderedDioid> Ord for BestFirst<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: chain_cmp's `Greater` (further up ⊑, better) sorts
        // first.
        other.0.chain_cmp(&self.0)
    }
}

/// Bucketed best-first discipline. Entries are pushed on every strict
/// improvement; an entry is *live* iff its bucket value still equals the
/// row's current value (lazy deletion — a superseding entry always sits
/// in a strictly better bucket, so it is processed first and the stale
/// one skipped). Two entries for one row always carry distinct values,
/// so a batch never holds a row twice.
struct BucketFrontier<P> {
    buckets: BTreeMap<BestFirst<P>, Vec<(u32, u32)>>,
}

impl<P: TotallyOrderedDioid> BucketFrontier<P> {
    fn new() -> Self {
        BucketFrontier {
            buckets: BTreeMap::new(),
        }
    }
}

impl<P: TotallyOrderedDioid> Frontier<P> for BucketFrontier<P> {
    fn push(&mut self, pred: usize, row: u32, val: &P) {
        self.buckets
            .entry(BestFirst(val.clone()))
            .or_default()
            .push((pred as u32, row));
    }

    fn pop_into(&mut self, new: &[ColumnRel<P>], batch: &mut Vec<(usize, u32)>) -> bool {
        while let Some((key, rows)) = self.buckets.pop_first() {
            for (pred, row) in rows {
                if new[pred as usize].val(row) == &key.0 {
                    batch.push((pred as usize, row));
                }
            }
            if !batch.is_empty() {
                return true;
            }
        }
        false
    }

    fn depth(&self) -> usize {
        self.buckets.values().map(|rows| rows.len()).sum()
    }
}

/// Per-IDB emission buffer: flat keys (arity stride) plus values, so one
/// batch's emissions append without per-derivation allocation. Plans run
/// against an immutable borrow of the state, so emissions are buffered
/// here and `⊕`-merged into `new` after the batch's plans finish.
struct EmitBuf<P> {
    arity: usize,
    keys: Vec<u32>,
    vals: Vec<P>,
}

impl<P> EmitBuf<P> {
    fn new(arity: usize) -> Self {
        EmitBuf {
            arity,
            keys: Vec::new(),
            vals: Vec::new(),
        }
    }

    fn push(&mut self, key: &[u32], v: P) {
        self.keys.extend_from_slice(key);
        self.vals.push(v);
    }

    /// Appends another buffer's emissions (the parallel merge step:
    /// task-local buffers are concatenated in task order, reproducing
    /// the sequential emission sequence exactly).
    fn append(&mut self, mut other: EmitBuf<P>) {
        debug_assert_eq!(self.arity, other.arity, "buffers keyed per predicate");
        self.keys.extend_from_slice(&other.keys);
        self.vals.append(&mut other.vals);
    }
}

/// Merges every buffered emission into `new`, minting interner ids for
/// fresh head keys, and pushes each strictly improved row. Set-valued
/// (magic) predicates take the demand path instead: a new binding is
/// inserted at `1` and pushed once; an existing one is left untouched —
/// demand rows are settled the moment they exist, on any POPS.
///
/// `settled` is the run's settled-row marking: an improvement to an
/// *existing* row defensively unmarks it (under the priority
/// discipline a popped row can never improve — Cor. 5.19 — so the
/// unmark never fires there; it keeps the marking sound by
/// construction rather than by theorem).
#[allow(clippy::too_many_arguments)]
fn apply_emissions<P: Pops, F: Frontier<P>>(
    interner: &mut Interner,
    new: &mut [ColumnRel<P>],
    set_valued: &[bool],
    bufs: &mut [EmitBuf<P>],
    fresh: &mut [BTreeMap<Box<[HeadVal]>, P>],
    frontier: &mut F,
    settled: &mut SettledMark,
    col: &mut Collector,
) {
    for (pred, buf) in bufs.iter_mut().enumerate() {
        let arity = buf.arity;
        let sv = set_valued[pred];
        let mut vals = std::mem::take(&mut buf.vals);
        let c = &mut col.stats.counters;
        for (i, v) in vals.drain(..).enumerate() {
            let key = &buf.keys[i * arity..(i + 1) * arity];
            if sv {
                if new[pred].rowid(key).is_none() {
                    let row = new[pred].insert_row(key, P::one());
                    frontier.push(pred, row, new[pred].val(row));
                    c.rows_inserted += 1;
                } else {
                    c.set_valued_shortcircuits += 1;
                }
                continue;
            }
            let len_before = new[pred].len();
            let (row, changed) = new[pred].merge_changed(key, v);
            if changed {
                frontier.push(pred, row, new[pred].val(row));
                if new[pred].len() > len_before {
                    c.rows_inserted += 1;
                } else {
                    c.rows_improved += 1;
                    settled.unmark(pred, row);
                }
            } else {
                c.merges_absorbed += 1;
            }
        }
        buf.vals = vals; // hand the capacity back for the next batch
        buf.keys.clear();
    }
    let t_mint = Instant::now();
    let minted_before = interner.len();
    for (pred, facc) in fresh.iter_mut().enumerate() {
        let sv = set_valued[pred];
        let c = &mut col.stats.counters;
        while let Some((key, v)) = facc.pop_first() {
            let key = mint_key(interner, &key);
            if sv {
                if new[pred].rowid(&key).is_none() {
                    let row = new[pred].insert_row(&key, P::one());
                    frontier.push(pred, row, new[pred].val(row));
                    c.rows_inserted += 1;
                } else {
                    c.set_valued_shortcircuits += 1;
                }
                continue;
            }
            let len_before = new[pred].len();
            let (row, changed) = new[pred].merge_changed(&key, v);
            if changed {
                frontier.push(pred, row, new[pred].val(row));
                if new[pred].len() > len_before {
                    c.rows_inserted += 1;
                } else {
                    c.rows_improved += 1;
                    settled.unmark(pred, row);
                }
            } else {
                c.merges_absorbed += 1;
            }
        }
    }
    col.stats.counters.minted_ids += (interner.len() - minted_before) as u64;
    col.stats.phases.mint += t_mint.elapsed().as_nanos() as u64;
}

/// Runs a batch's plans (in the given order) against the frontier state,
/// staging emissions into `bufs`/`fresh` in (task-index, emit-order).
///
/// Below `opts.par_threshold` estimated first-step rows the plans run
/// inline; above it, (plan × row-chunk) tasks fan out over
/// [`par::run_indexed`] and task-local buffers are concatenated in task
/// order — chunks partition a plan's first-step candidates in row order,
/// so the concatenation is exactly the sequential emission sequence and
/// the staged state is independent of the thread count.
#[allow(clippy::too_many_arguments)]
fn run_frontier_plans<P>(
    engine: &Engine<P>,
    plans: &[&Plan<P>],
    new: &[ColumnRel<P>],
    changed: &[FxHashMap<u32, Option<P>>],
    delta: &[ColumnRel<P>],
    bufs: &mut [EmitBuf<P>],
    fresh: &mut [BTreeMap<Box<[HeadVal]>, P>],
    opts: &EngineOpts,
    col: &mut Collector,
) -> Result<(), Abort>
where
    P: Pops + Send + Sync,
{
    let ctx = EvalCtx {
        interner: &engine.interner,
        adom: &engine.adom,
        pops_edb: &engine.pops_edb,
        bool_edb: &engine.bool_edb,
        idb_new: new,
        idb_changed: changed,
        idb_delta: delta,
    };
    let threads = opts.effective_threads();
    // Single-threaded runs skip even the estimate pass: the frontier
    // fires thousands of (often tiny) batches per run, so per-batch
    // bookkeeping must cost nothing when fan-out is off the table.
    let run_sequential = |bufs: &mut [EmitBuf<P>],
                          fresh: &mut [BTreeMap<Box<[HeadVal]>, P>],
                          col: &mut Collector|
     -> Result<(), Abort> {
        for plan in plans {
            let buf = &mut bufs[plan.head_pred];
            let facc = &mut fresh[plan.head_pred];
            let mut counters = ExecCounters::default();
            let t = Instant::now();
            catch_unwind(AssertUnwindSafe(|| {
                run_plan(
                    plan,
                    &ctx,
                    None,
                    &mut counters,
                    &mut |key, v| buf.push(key, v),
                    &mut |key, v| merge_fresh(facc, key, v),
                );
            }))
            .map_err(|p| Abort::WorkerPanic {
                message: par::payload_message(p),
            })?;
            col.add_plan(plan.pid, counters, t.elapsed().as_nanos() as u64);
        }
        Ok(())
    };
    if threads <= 1 {
        return run_sequential(bufs, fresh, col);
    }

    // First-step work estimates (for a worklist plan, step 0 is the
    // forced-first Δ occurrence; seed plans scan EDBs) and the task
    // list, both via the driver's shared fan-out heuristic.
    let estimates: Vec<(usize, bool)> = plans
        .iter()
        .map(|plan| engine.step0_estimate(plan, new, delta))
        .collect();
    let total: usize = estimates.iter().map(|(e, _)| e).sum();
    if total < opts.par_threshold {
        return run_sequential(bufs, fresh, col);
    }

    let tasks = chunk_tasks(&estimates, threads, opts.chunk_min);
    let results = par::run_indexed(tasks.len(), threads, |ti| {
        let (pi, range) = tasks[ti];
        let plan = plans[pi];
        let mut buf = EmitBuf::new(engine.compiled.idbs[plan.head_pred].1);
        let mut local_fresh: BTreeMap<Box<[HeadVal]>, P> = BTreeMap::new();
        let mut counters = ExecCounters::default();
        let t = Instant::now();
        run_plan(
            plan,
            &ctx,
            range,
            &mut counters,
            &mut |key, v| buf.push(key, v),
            &mut |key, v| merge_fresh(&mut local_fresh, key, v),
        );
        let nanos = t.elapsed().as_nanos() as u64;
        (plan.pid, plan.head_pred, buf, local_fresh, counters, nanos)
    })
    .map_err(|message| Abort::WorkerPanic { message })?;
    col.parallel_batch(tasks.len());
    // Deterministic merge: `run_indexed` returns results in task order,
    // and appends reproduce the sequential emission sequence (counter
    // sums are additive over a plan's chunks, so they are too).
    for (pid, pred, local, local_fresh, counters, nanos) in results {
        col.add_plan(pid, counters, nanos);
        bufs[pred].append(local);
        let facc = &mut fresh[pred];
        for (key, v) in local_fresh {
            merge_fresh(facc, &key, v);
        }
    }
    Ok(())
}

/// The shared frontier loop over a prepared [`Engine`]: seed with
/// `J(1) = F(0)`, then drain the queue batch by batch, firing the
/// per-occurrence worklist plans of every touched predicate — in
/// parallel when the batch is dense enough.
///
/// On a demand-rewritten program ([`dlo_core::demand`]) the seed phase
/// contributes exactly the magic seed fact — every other sum-product
/// carries a magic guard factor and finds it empty — so the frontier
/// starts at the **query constants** instead of the whole EDB delta,
/// and magic-fact derivation interleaves between batches exactly like
/// head-key minting: a popped row fires the worklist plans whose Δ
/// occurrence it is, demand rows and answer rows alike.
fn run_frontier<P, F>(
    mut engine: Engine<P>,
    cap: usize,
    opts: &EngineOpts,
    strategy: &str,
    setup_ns: u64,
    make_frontier: impl FnOnce(usize) -> F,
) -> Result<InternedOutcome<P>, Box<AbortedEval<P>>>
where
    P: Pops + Send + Sync,
    F: Frontier<P>,
{
    let threads = opts.effective_threads();
    let mode = opts.effective_join_mode();
    engine.join_mode = mode;
    let mut col = Collector::new(
        strategy,
        threads,
        setup_ns,
        engine.compiled.plan_metas_for(mode),
        opts,
    );
    let nidb = engine.compiled.idbs.len();
    let mut frontier = make_frontier(nidb);
    // Settled-row tracking for graceful degradation: under the priority
    // discipline every popped row is settled (Cor. 5.19 — `⊗` cannot
    // move a best value back up), so marking rows on pop yields an
    // abort-time partial that is *exact* on the marked frontier. FIFO
    // generations give no such guarantee; their partial stays a
    // best-effort lower bound with nothing marked.
    let exact = strategy == "priority";
    let mut settled = if exact {
        SettledMark::exact_empty(nidb)
    } else {
        SettledMark::best_effort(nidb)
    };
    let loop_checkpoint = if exact {
        Checkpoint::Bucket
    } else {
        Checkpoint::Generation
    };

    // Index plumbing: the global drivers' `new` masks plus whatever the
    // worklist plans probe. EDB builds (including the seed/delta-plan
    // requirements collected at setup) fan out per relation over the
    // worker pool; Δ masks go onto the per-batch delta relations,
    // ensured once — `ColumnRel::clear` keeps them registered.
    let wreqs = engine.compiled.worklist_index_requirements();
    let mut new_masks: Vec<Vec<u32>> = engine.idb_new_masks.clone();
    let mut delta_masks: Vec<Vec<u32>> = vec![vec![]; nidb];
    for &(source, mask) in &wreqs {
        match source {
            Source::IdbNew(i) | Source::IdbOld(i) => {
                if !new_masks[i].contains(&mask) {
                    new_masks[i].push(mask);
                }
            }
            Source::IdbDelta(i) => {
                if !delta_masks[i].contains(&mask) {
                    delta_masks[i].push(mask);
                }
            }
            Source::PopsEdb(_) | Source::BoolEdb(_) => {}
        }
    }
    let gov = Governor::new(opts, setup_ns);
    // Pre-index phase checkpoint: a cancelled or already-over-deadline
    // run (setup is backdated into the governor) stops before paying
    // for the EDB index build.
    if let Err(a) = gov.check(0, &mut col) {
        let rels = engine.empty_idbs();
        return Err(abort_with_partial(
            a,
            Checkpoint::Phase,
            engine,
            rels,
            settled,
            col,
            0,
            0,
        ));
    }
    let t = Instant::now();
    if let Err(a) = engine.build_edb_indexes(&wreqs, threads) {
        let rels = engine.empty_idbs();
        return Err(abort_with_partial(
            a,
            Checkpoint::Phase,
            engine,
            rels,
            settled,
            col,
            0,
            0,
        ));
    }
    col.edb_index_phase(t.elapsed().as_nanos() as u64);
    let t_eval = Instant::now();
    let t_arr = Instant::now();
    let mut arranged = false;
    let mut new = engine.empty_idbs();
    for (pred, rel) in new.iter_mut().enumerate() {
        arranged |= ensure_probes(rel, &new_masks[pred], mode);
    }
    let mut delta = engine.empty_idbs();
    for (pred, rel) in delta.iter_mut().enumerate() {
        arranged |= ensure_probes(rel, &delta_masks[pred], mode);
    }
    if arranged {
        col.arrange_phase(t_arr.elapsed().as_nanos() as u64);
    }
    // Never populated: with an empty changed map, `Old` reads ≡ `New`
    // reads, which is exactly the worklist plans' contract (every
    // non-Δ occurrence sees the live state).
    let changed: Vec<FxHashMap<u32, Option<P>>> = vec![FxHashMap::default(); nidb];
    let mut bufs: Vec<EmitBuf<P>> = engine
        .compiled
        .idbs
        .iter()
        .map(|(_, arity)| EmitBuf::new(*arity))
        .collect();
    let mut fresh: Vec<BTreeMap<Box<[HeadVal]>, P>> = (0..nidb).map(|_| BTreeMap::new()).collect();

    // Seed: run the all-New plans against the empty state (only IDB-free
    // sum-products contribute, eq. 65) and enqueue every inserted row.
    if let Err(a) = gov.check(0, &mut col) {
        return Err(abort_with_partial(
            a,
            Checkpoint::Phase,
            engine,
            new,
            settled,
            col,
            0,
            t_eval.elapsed().as_nanos() as u64,
        ));
    }
    let seed_before = col.stats.counters;
    {
        let seed_plans: Vec<&Plan<P>> = engine.compiled.seed_plans.iter().collect();
        if let Err(a) = run_frontier_plans(
            &engine,
            &seed_plans,
            &new,
            &changed,
            &delta,
            &mut bufs,
            &mut fresh,
            opts,
            &mut col,
        ) {
            return Err(abort_with_partial(
                a,
                Checkpoint::Phase,
                engine,
                new,
                settled,
                col,
                0,
                t_eval.elapsed().as_nanos() as u64,
            ));
        }
    }
    apply_emissions(
        &mut engine.interner,
        &mut new,
        &engine.compiled.set_valued,
        &mut bufs,
        &mut fresh,
        &mut frontier,
        &mut settled,
        &mut col,
    );
    drain_rel_merges(&mut new, &mut delta, &mut col);
    col.end_step(0, 0, frontier.depth() as u64, &seed_before);

    let mut batch: Vec<(usize, u32)> = Vec::new();
    let mut touched: Vec<usize> = Vec::new();
    // Reused plan-list scratch: sparse frontiers process thousands of
    // 1–2 row batches per run, so the loop body allocates nothing.
    let mut batch_plans: Vec<&Plan<P>> = Vec::new();
    let mut steps = 0usize;
    loop {
        batch.clear();
        if !frontier.pop_into(&new, &mut batch) {
            let stats = col.finish(steps, true, t_eval.elapsed().as_nanos() as u64);
            return Ok(InternedOutcome::Converged {
                output: finish(engine, new),
                steps,
                stats,
            });
        }
        if steps == cap {
            let stats = col.finish(cap, false, t_eval.elapsed().as_nanos() as u64);
            return Ok(InternedOutcome::Diverged {
                last: finish(engine, new),
                cap,
                stats,
            });
        }
        // Settled-on-pop: a popped row's value is final the moment the
        // frontier hands it over (priority only) — independent of
        // whether its derivations ever fire — so marking precedes the
        // governance check and a mid-run abort still counts this batch.
        if exact {
            for &(pred, row) in &batch {
                settled.mark(pred, row);
            }
        }
        if let Err(a) = gov.check(steps as u64, &mut col) {
            return Err(abort_with_partial(
                a,
                loop_checkpoint,
                engine,
                new,
                settled,
                col,
                steps,
                t_eval.elapsed().as_nanos() as u64,
            ));
        }
        steps += 1;
        let before = col.stats.counters;

        // Stage the batch as per-pred Δ relations carrying full current
        // values (a batch never holds the same row twice: both
        // disciplines de-duplicate — see their docs).
        touched.clear();
        for &(pred, row) in &batch {
            if delta[pred].is_empty() {
                touched.push(pred);
            }
            let val = new[pred].val(row).clone();
            delta[pred].append_row(new[pred].row(row), val);
        }
        batch_plans.clear();
        batch_plans.extend(
            touched
                .iter()
                .flat_map(|&pred| engine.compiled.worklist_plans_for(pred).iter()),
        );
        if let Err(a) = run_frontier_plans(
            &engine,
            &batch_plans,
            &new,
            &changed,
            &delta,
            &mut bufs,
            &mut fresh,
            opts,
            &mut col,
        ) {
            return Err(abort_with_partial(
                a,
                loop_checkpoint,
                engine,
                new,
                settled,
                col,
                steps,
                t_eval.elapsed().as_nanos() as u64,
            ));
        }
        for &pred in &touched {
            delta[pred].clear();
        }
        apply_emissions(
            &mut engine.interner,
            &mut new,
            &engine.compiled.set_valued,
            &mut bufs,
            &mut fresh,
            &mut frontier,
            &mut settled,
            &mut col,
        );
        drain_rel_merges(&mut new, &mut delta, &mut col);
        col.end_step(steps, batch.len() as u64, frontier.depth() as u64, &before);
    }
}

/// Drains the spine-merge counters of the frontier's `new` and staged
/// Δ relations into the run's `arrange_batches_merged` total (the
/// frontier keeps its IDB state in loose vectors rather than an
/// [`crate::driver::IdbState`], so it cannot reuse
/// [`crate::driver::drain_arrange_merges`]). All maintenance is
/// coordinator-side, so the total is thread-invariant.
fn drain_rel_merges<P: Pops>(
    new: &mut [ColumnRel<P>],
    delta: &mut [ColumnRel<P>],
    col: &mut Collector,
) {
    let mut merges = 0;
    for rel in new.iter_mut().chain(delta.iter_mut()) {
        merges += rel.take_arrange_merges();
    }
    col.stats.counters.arrange_batches_merged += merges;
}

/// FIFO-worklist evaluation: per-row change propagation over any
/// **absorptive** POPS, drained in generations that fan out over the
/// worker pool. Reaches the same fixpoint as
/// [`crate::driver::engine_seminaive_eval`] (cross-checked in
/// `tests/backend_matrix.rs` and `tests/proptest_engine.rs`); `steps`
/// counts generations, and `cap` bounds that count.
///
/// # Errors
///
/// As [`crate::engine_naive_eval`].
pub fn engine_worklist_eval<P>(
    program: &Program<P>,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
) -> Result<EvalOutcome<P>, EvalError>
where
    P: NaturallyOrdered + Absorptive + Send + Sync,
{
    engine_worklist_eval_with_opts(program, pops_edb, bool_edb, cap, &EngineOpts::default())
}

/// [`engine_worklist_eval`] with explicit tuning knobs (thread cap,
/// fan-out threshold, chunk size, budget, cancellation).
///
/// # Errors
///
/// As [`crate::engine_naive_eval`].
pub fn engine_worklist_eval_with_opts<P>(
    program: &Program<P>,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
    opts: &EngineOpts,
) -> Result<EvalOutcome<P>, EvalError>
where
    P: NaturallyOrdered + Absorptive + Send + Sync,
{
    let t = Instant::now();
    let engine = setup_checked(program, pops_edb, bool_edb, &[])?;
    let setup_ns = t.elapsed().as_nanos() as u64;
    Ok(
        run_frontier(engine, cap, opts, "worklist", setup_ns, FifoFrontier::new)
            .map_err(|b| EvalError::from(*b))?
            .materialize(),
    )
}

/// Priority-frontier evaluation: bucketed best-first scheduling over a
/// totally ordered absorptive dioid (Trop⁺, `MinNat`, `MaxMin`, `𝔹`).
/// Every fact is popped settled (Dijkstra semantics — see the module
/// docs for the absorption argument), so long-chain fixpoints run in one
/// near-linear pass instead of one global iteration per chain link; each
/// value bucket is processed as one (possibly parallel) batch. `steps`
/// counts frontier batches.
///
/// # Errors
///
/// As [`crate::engine_naive_eval`].
pub fn engine_priority_eval<P>(
    program: &Program<P>,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
) -> Result<EvalOutcome<P>, EvalError>
where
    P: NaturallyOrdered + Absorptive + TotallyOrderedDioid + Send + Sync,
{
    engine_priority_eval_with_opts(program, pops_edb, bool_edb, cap, &EngineOpts::default())
}

/// [`engine_priority_eval`] with explicit tuning knobs (thread cap,
/// fan-out threshold, chunk size, budget, cancellation).
///
/// # Errors
///
/// As [`crate::engine_naive_eval`].
pub fn engine_priority_eval_with_opts<P>(
    program: &Program<P>,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
    opts: &EngineOpts,
) -> Result<EvalOutcome<P>, EvalError>
where
    P: NaturallyOrdered + Absorptive + TotallyOrderedDioid + Send + Sync,
{
    let t = Instant::now();
    let engine = setup_checked(program, pops_edb, bool_edb, &[])?;
    let setup_ns = t.elapsed().as_nanos() as u64;
    Ok(run_frontier(engine, cap, opts, "priority", setup_ns, |_| {
        BucketFrontier::new()
    })
    .map_err(|b| EvalError::from(*b))?
    .materialize())
}

/// Evaluates with an explicit [`Strategy`], defaulting
/// ([`Strategy::Auto`]) to the strongest discipline the bounds license —
/// the priority frontier. The bounds are the union of what the three
/// strategies need, so this entry point exists for POPS like `Trop`,
/// `MinNat`, `MaxMin`, and `Bool` that support everything; callers whose
/// POPS is merely absorptive use [`engine_worklist_eval`], and everything
/// else stays on [`crate::driver::engine_seminaive_eval`].
///
/// # Errors
///
/// As [`crate::engine_naive_eval`].
pub fn engine_eval<P>(
    program: &Program<P>,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
    strategy: Strategy,
) -> Result<EvalOutcome<P>, EvalError>
where
    P: NaturallyOrdered
        + CompleteDistributiveDioid
        + Absorptive
        + TotallyOrderedDioid
        + Send
        + Sync,
{
    engine_eval_with_opts(
        program,
        pops_edb,
        bool_edb,
        cap,
        strategy,
        &EngineOpts::default(),
    )
}

/// [`engine_eval`] with explicit tuning knobs. Every strategy is
/// multi-threaded: the semi-naïve loop fans (plan × row-chunk) tasks per
/// global iteration, and the frontier drivers fan the same task shape
/// per batch (with the adaptive sequential fallback for sparse batches).
/// `opts.threads` caps the pool; `None` reads `DLO_ENGINE_THREADS` /
/// `available_parallelism`. Results are bit-identical at any setting.
///
/// # Errors
///
/// As [`crate::engine_naive_eval`].
pub fn engine_eval_with_opts<P>(
    program: &Program<P>,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
    strategy: Strategy,
    opts: &EngineOpts,
) -> Result<EvalOutcome<P>, EvalError>
where
    P: NaturallyOrdered
        + CompleteDistributiveDioid
        + Absorptive
        + TotallyOrderedDioid
        + Send
        + Sync,
{
    Ok(engine_eval_interned(program, pops_edb, bool_edb, cap, strategy, opts)?.materialize())
}

/// [`engine_eval`] returning the **decode-free**
/// [`InternedOutcome`]: the fixpoint stays in interned columnar form
/// and `Database` materialization is deferred until asked for —
/// pipelines that feed results back into the engine, or only inspect a
/// few values, skip the rank-sorted decode entirely (the largest
/// post-fixpoint phase on large outputs).
///
/// # Errors
///
/// As [`crate::engine_naive_eval`].
pub fn engine_eval_interned<P>(
    program: &Program<P>,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
    strategy: Strategy,
    opts: &EngineOpts,
) -> Result<InternedOutcome<P>, EvalError>
where
    P: NaturallyOrdered
        + CompleteDistributiveDioid
        + Absorptive
        + TotallyOrderedDioid
        + Send
        + Sync,
{
    let t = Instant::now();
    let engine = setup_checked(program, pops_edb, bool_edb, &[])?;
    let setup_ns = t.elapsed().as_nanos() as u64;
    strategy_run(engine, cap, strategy, opts, setup_ns)
}

/// [`engine_eval_interned`] over an **interned EDB**: the previous
/// run's [`crate::InternedOutput`] is the POPS database (shared
/// interner, relations reused without any `Constant` round-trip), with
/// `extra_pops` overlaying fresh classic-form relations for names the
/// interned output lacks. Chained engine runs — including
/// query-then-refine pipelines via
/// [`crate::query::QueryAnswer::into_interned`] — stay interned end to
/// end.
///
/// # Errors
///
/// As [`crate::engine_naive_eval`].
pub fn engine_eval_interned_edb<P>(
    program: &Program<P>,
    prev: &crate::output::InternedOutput<P>,
    extra_pops: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
    strategy: Strategy,
    opts: &EngineOpts,
) -> Result<InternedOutcome<P>, EvalError>
where
    P: NaturallyOrdered
        + CompleteDistributiveDioid
        + Absorptive
        + TotallyOrderedDioid
        + Send
        + Sync,
{
    let t = Instant::now();
    let engine = crate::driver::setup_interned_checked(program, prev, extra_pops, bool_edb, &[])?;
    let setup_ns = t.elapsed().as_nanos() as u64;
    strategy_run(engine, cap, strategy, opts, setup_ns)
}

/// Dispatches a prepared [`Engine`] to the loop `strategy` names,
/// keeping the partial-result channel: a governed abort returns the
/// boxed [`AbortedEval`] — the typed error plus the abort-time
/// instance (exact on the settled frontier under
/// [`Strategy::Priority`] / [`Strategy::Auto`], a best-effort lower
/// bound otherwise).
pub(crate) fn strategy_run_partial<P>(
    engine: Engine<P>,
    cap: usize,
    strategy: Strategy,
    opts: &EngineOpts,
    setup_ns: u64,
) -> Result<InternedOutcome<P>, Box<AbortedEval<P>>>
where
    P: NaturallyOrdered
        + CompleteDistributiveDioid
        + Absorptive
        + TotallyOrderedDioid
        + Send
        + Sync,
{
    match strategy {
        Strategy::SemiNaive => seminaive_run(engine, cap, opts, setup_ns),
        Strategy::Worklist => {
            run_frontier(engine, cap, opts, "worklist", setup_ns, FifoFrontier::new)
        }
        Strategy::Auto | Strategy::Priority => {
            run_frontier(engine, cap, opts, "priority", setup_ns, |_| {
                BucketFrontier::new()
            })
        }
    }
}

/// Dispatches a prepared [`Engine`] to the loop `strategy` names —
/// the shared tail of every multi-strategy entry point (classic,
/// interned-EDB, and demand-rewritten query evaluation). The classic
/// error contract: a governed abort surfaces as the bare
/// [`EvalError`], dropping the partial instance (use the `*_partial`
/// entry points to keep it).
pub(crate) fn strategy_run<P>(
    engine: Engine<P>,
    cap: usize,
    strategy: Strategy,
    opts: &EngineOpts,
    setup_ns: u64,
) -> Result<InternedOutcome<P>, EvalError>
where
    P: NaturallyOrdered
        + CompleteDistributiveDioid
        + Absorptive
        + TotallyOrderedDioid
        + Send
        + Sync,
{
    strategy_run_partial(engine, cap, strategy, opts, setup_ns).map_err(|b| EvalError::from(*b))
}

/// [`engine_eval_with_opts`] with **graceful degradation**: instead of
/// dropping the partially evaluated instance on a governed abort
/// (budget, deadline, cancellation, worker panic), the error channel
/// carries a boxed [`AbortedEval`] — the typed [`EvalError`] plus a
/// [`PartialOutput`](crate::output::PartialOutput) of the abort-time
/// state. Under [`Strategy::Priority`] / [`Strategy::Auto`] the
/// partial is **exact** on its settled frontier (settled-on-pop,
/// Cor. 5.19): every marked row already holds its final fixpoint
/// value. Under the other strategies nothing is marked and the partial
/// is a pointwise lower bound of the least fixpoint (`J(t) ⊑ lfp`).
/// Compile rejections ride the same channel with an empty partial.
///
/// The `Ok` side is unchanged — a run that converges (or hits the
/// divergence cap) behaves exactly like [`engine_eval_interned`].
///
/// # Errors
///
/// Never fails with a bare error: every failure is an [`AbortedEval`]
/// wrapping the same [`EvalError`] the classic entry points return.
pub fn engine_eval_partial_with_opts<P>(
    program: &Program<P>,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
    strategy: Strategy,
    opts: &EngineOpts,
) -> Result<InternedOutcome<P>, Box<AbortedEval<P>>>
where
    P: NaturallyOrdered
        + CompleteDistributiveDioid
        + Absorptive
        + TotallyOrderedDioid
        + Send
        + Sync,
{
    let t = Instant::now();
    let engine = match setup_checked(program, pops_edb, bool_edb, &[]) {
        Ok(engine) => engine,
        Err(error) => return Err(empty_aborted(error)),
    };
    let setup_ns = t.elapsed().as_nanos() as u64;
    strategy_run_partial(engine, cap, strategy, opts, setup_ns)
}

/// [`engine_eval_partial_with_opts`] over an **interned EDB** — the
/// warm-start primitive of [`crate::retry`]: feed a failed attempt's
/// [`PartialOutput::interned`](crate::output::PartialOutput::interned)
/// as `prev` (its interner is reused, so every id minted before the
/// abort keeps its meaning) with the original EDB as `extra_pops`, and
/// the retry resumes from a warm interner instead of starting cold.
/// Name resolution prefers `extra_pops`, exactly like
/// [`engine_eval_interned_edb`].
///
/// # Errors
///
/// As [`engine_eval_partial_with_opts`].
pub fn engine_eval_partial_interned_edb<P>(
    program: &Program<P>,
    prev: &InternedOutput<P>,
    extra_pops: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
    strategy: Strategy,
    opts: &EngineOpts,
) -> Result<InternedOutcome<P>, Box<AbortedEval<P>>>
where
    P: NaturallyOrdered
        + CompleteDistributiveDioid
        + Absorptive
        + TotallyOrderedDioid
        + Send
        + Sync,
{
    let t = Instant::now();
    let engine = match setup_interned_checked(program, prev, extra_pops, bool_edb, &[]) {
        Ok(engine) => engine,
        Err(error) => return Err(empty_aborted(error)),
    };
    let setup_ns = t.elapsed().as_nanos() as u64;
    strategy_run_partial(engine, cap, strategy, opts, setup_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::engine_seminaive_eval;
    use dlo_core::ast::{Atom, Factor, KeyFn, SumProduct, Term, UnaryFn};
    use dlo_core::eval::relational::relational_seminaive_eval;
    use dlo_core::examples_lib as ex;
    use dlo_core::relation::Relation;
    use dlo_core::tup;
    use dlo_pops::{MaxMin, MinNat, PreSemiring, Trop};

    /// Tuning that forces the parallel batch path even on tiny batches.
    fn forced_parallel() -> EngineOpts {
        EngineOpts {
            threads: Some(4),
            par_threshold: 1,
            chunk_min: 2,
            ..EngineOpts::default()
        }
    }

    /// Both frontier strategies and the forced-strategy dispatcher agree
    /// with the relational reference on output databases — and the
    /// forced-parallel frontier runs are bit-identical to the sequential
    /// ones, including step counts.
    fn assert_frontier_matches_relational<P>(
        program: &Program<P>,
        pops: &Database<P>,
        bools: &BoolDatabase,
    ) -> Database<P>
    where
        P: NaturallyOrdered
            + CompleteDistributiveDioid
            + Absorptive
            + TotallyOrderedDioid
            + Send
            + Sync,
    {
        let reference = relational_seminaive_eval(program, pops, bools, 100_000).unwrap();
        let fifo = engine_worklist_eval(program, pops, bools, 1_000_000)
            .expect("compiles")
            .unwrap();
        let prio = engine_priority_eval(program, pops, bools, 1_000_000)
            .expect("compiles")
            .unwrap();
        assert_eq!(reference, fifo, "FIFO worklist differs from relational");
        assert_eq!(reference, prio, "priority frontier differs from relational");
        for strategy in [
            Strategy::Auto,
            Strategy::SemiNaive,
            Strategy::Worklist,
            Strategy::Priority,
        ] {
            let seq = engine_eval(program, pops, bools, 1_000_000, strategy).expect("compiles");
            let par = engine_eval_with_opts(
                program,
                pops,
                bools,
                1_000_000,
                strategy,
                &forced_parallel(),
            )
            .expect("compiles");
            assert_eq!(
                seq, par,
                "engine_eval({strategy:?}) differs between sequential and forced-parallel"
            );
            assert_eq!(reference, seq.unwrap(), "engine_eval({strategy:?}) differs");
        }
        reference
    }

    #[test]
    fn sssp_and_apsp_match_relational() {
        let (program, edb) = ex::sssp_trop("a");
        let out = assert_frontier_matches_relational(&program, &edb, &BoolDatabase::new());
        assert_eq!(out.get("L").unwrap().get(&tup!["d"]), Trop::finite(8.0));

        let (program, edb) = ex::apsp_trop(&[
            ("a", "b", 1.0),
            ("b", "a", 2.0),
            ("b", "c", 3.0),
            ("c", "d", 4.0),
            ("a", "c", 5.0),
        ]);
        assert_frontier_matches_relational(&program, &edb, &BoolDatabase::new());
    }

    #[test]
    fn quadratic_tc_covers_both_occurrences() {
        // T ⊗ T: the worklist must fire a changed row in *each*
        // occurrence position (left factor and right factor).
        let (program, edb) =
            ex::quadratic_tc_bool(&[("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")]);
        assert_frontier_matches_relational(&program, &edb, &BoolDatabase::new());
    }

    #[test]
    fn priority_processes_chain_in_one_bucket_per_distance() {
        // APSP on a 50-node unit chain: T(i, j) has value j - i, so the
        // bucketed frontier drains exactly one batch per distinct
        // distance (1..=49) — Dijkstra semantics — where the global
        // semi-naïve loop needs one full iteration per distance *and*
        // re-scans every plan each time.
        let g_edges: Vec<(Vec<dlo_core::value::Constant>, Trop)> = (0..49i64)
            .map(|i| (vec![i.into(), (i + 1).into()], Trop::finite(1.0)))
            .collect();
        let mut edb = Database::new();
        edb.insert("E", Relation::from_pairs(2, g_edges));
        let program = ex::apsp_program::<Trop>();
        let (out, steps) = engine_priority_eval(&program, &edb, &BoolDatabase::new(), 1_000_000)
            .expect("compiles")
            .converged()
            .unwrap();
        assert_eq!(out.get("T").unwrap().support_size(), 49 * 50 / 2);
        assert_eq!(steps, 49, "one frontier batch per distinct distance");
    }

    #[test]
    fn priority_skips_stale_entries() {
        // a→b costs 10 directly but 2 via c. The direct edge seeds
        // T(a,b) = 10 into bucket 10; the improvement to 2 supersedes it
        // in bucket 2, and the stale bucket-10 entry must be skipped —
        // total: batch(1) = {(a,c),(c,b)}, batch(2) = {(a,b)}, done.
        let (program, edb) = ex::apsp_trop(&[("a", "b", 10.0), ("a", "c", 1.0), ("c", "b", 1.0)]);
        let (out, steps) = engine_priority_eval(&program, &edb, &BoolDatabase::new(), 1_000_000)
            .expect("compiles")
            .converged()
            .unwrap();
        assert_eq!(
            out.get("T").unwrap().get(&tup!["a", "b"]),
            Trop::finite(2.0)
        );
        assert_eq!(steps, 2, "the stale bucket-10 entry must not be a batch");
    }

    #[test]
    fn head_key_minting_works_under_both_disciplines() {
        use dlo_core::formula::{CmpOp, Formula};
        // The counter program: keys 1..=5 exist in no EDB and are minted
        // between frontier batches.
        let mut p = Program::<MinNat>::new();
        p.rule(
            Atom::new("N", vec![Term::c(0)]),
            vec![SumProduct::new(vec![]).with_coeff(MinNat::finite(1))],
        );
        p.rule(
            Atom::new(
                "N",
                vec![Term::Apply(KeyFn::AddInt(1), Box::new(Term::v(0)))],
            ),
            vec![SumProduct::new(vec![Factor::atom("N", vec![Term::v(0)])])
                .with_condition(Formula::cmp(Term::v(0), CmpOp::Lt, Term::c(5)))],
        );
        let out = assert_frontier_matches_relational(&p, &Database::new(), &BoolDatabase::new());
        assert_eq!(out.get("N").unwrap().support_size(), 6);
    }

    #[test]
    fn unbounded_minting_diverges_under_the_cap() {
        // N(i+1) :- N(i) with no guard: the active domain grows forever.
        // Both disciplines must hit the cap and report divergence, like
        // the global backends do — sequential and forced-parallel alike.
        let mut p = Program::<MinNat>::new();
        p.rule(
            Atom::new("N", vec![Term::c(0)]),
            vec![SumProduct::new(vec![]).with_coeff(MinNat::finite(1))],
        );
        p.rule(
            Atom::new(
                "N",
                vec![Term::Apply(KeyFn::AddInt(1), Box::new(Term::v(0)))],
            ),
            vec![SumProduct::new(vec![Factor::atom("N", vec![Term::v(0)])])],
        );
        let pops = Database::new();
        let bools = BoolDatabase::new();
        let seq = engine_worklist_eval(&p, &pops, &bools, 25).expect("compiles");
        assert!(!seq.is_converged());
        assert!(!engine_priority_eval(&p, &pops, &bools, 25)
            .expect("compiles")
            .is_converged());
        let par = engine_worklist_eval_with_opts(&p, &pops, &bools, 25, &forced_parallel())
            .expect("compiles");
        assert_eq!(seq, par, "capped divergence must be thread-invariant");
    }

    #[test]
    fn value_functions_ride_the_full_value_delta() {
        // A monotone value function on a recursive factor over MaxMin:
        // capacity capped at 0.5 along recursive hops. The semi-naïve
        // driver handles this with full-recompute delta plans; the
        // worklist handles it because Δ carries full values (func(Δ) is
        // exact, not a difference).
        let cap_fn = UnaryFn::new("cap", |v: &MaxMin| v.mul(&MaxMin::of(0.3)));
        let mut p = Program::<MaxMin>::new();
        p.rule(
            Atom::new("R", vec![Term::v(0)]),
            vec![
                SumProduct::new(vec![Factor::atom("S", vec![Term::v(0)])]),
                SumProduct::new(vec![
                    Factor::wrapped("R", vec![Term::v(1)], cap_fn),
                    Factor::atom("E", vec![Term::v(1), Term::v(0)]),
                ]),
            ],
        );
        let mut edb = Database::new();
        edb.insert(
            "S",
            Relation::from_pairs(1, vec![(tup!["s"], MaxMin::of(0.9))]),
        );
        edb.insert(
            "E",
            Relation::from_pairs(
                2,
                vec![
                    (tup!["s", "a"], MaxMin::of(0.4)),
                    (tup!["a", "b"], MaxMin::of(0.2)),
                ],
            ),
        );
        let out = assert_frontier_matches_relational(&p, &edb, &BoolDatabase::new());
        let r = out.get("R").unwrap();
        // ⊗ = min on MaxMin: R(a) = min(cap(0.9) = 0.3, 0.4) = 0.3,
        // R(b) = min(cap(0.3) = 0.3, 0.2) = 0.2.
        assert_eq!(r.get(&tup!["a"]), MaxMin::of(0.3));
        assert_eq!(r.get(&tup!["b"]), MaxMin::of(0.2));
    }

    #[test]
    fn fifo_requeues_improved_rows_across_generations() {
        // The triangle from `priority_skips_stale_entries` under FIFO
        // generations: generation 1 is the three seed rows (T(a,b)
        // processed at 10, improved to 2 by the batch), generation 2 is
        // the re-queued improved row.
        let (program, edb) = ex::apsp_trop(&[("a", "b", 10.0), ("a", "c", 1.0), ("c", "b", 1.0)]);
        let (out, steps) = engine_worklist_eval(&program, &edb, &BoolDatabase::new(), 1_000_000)
            .expect("compiles")
            .converged()
            .unwrap();
        assert_eq!(
            out.get("T").unwrap().get(&tup!["a", "b"]),
            Trop::finite(2.0)
        );
        assert_eq!(steps, 2, "one seed generation plus one re-fire generation");
    }

    #[test]
    fn empty_program_converges_with_zero_batches() {
        let p = Program::<Trop>::new();
        let (db, steps) = engine_priority_eval(&p, &Database::new(), &BoolDatabase::new(), 10)
            .expect("compiles")
            .converged()
            .unwrap();
        assert_eq!(steps, 0);
        assert!(db.iter().next().is_none());
    }

    #[test]
    fn random_graph_agrees_with_global_seminaive() {
        // A denser instance exercising batches with mixed improvements.
        let mut s = 0xfeed_u64;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut pairs = vec![];
        for _ in 0..200 {
            let u = (rng() % 40) as i64;
            let v = (rng() % 40) as i64;
            if u != v {
                pairs.push((vec![u.into(), v.into()], MinNat::finite(1 + rng() % 9)));
            }
        }
        let mut edb = Database::new();
        edb.insert("E", Relation::from_pairs(2, pairs));
        let program = ex::quadratic_tc_program::<MinNat>();
        let bools = BoolDatabase::new();
        let semi = engine_seminaive_eval(&program, &edb, &bools, 100_000)
            .expect("compiles")
            .unwrap();
        let fifo = engine_worklist_eval(&program, &edb, &bools, 10_000_000)
            .expect("compiles")
            .unwrap();
        let prio = engine_priority_eval(&program, &edb, &bools, 10_000_000)
            .expect("compiles")
            .unwrap();
        assert_eq!(semi, fifo);
        assert_eq!(semi, prio);
        assert!(
            semi.get("T").unwrap().support_size() > 500,
            "non-trivial TC"
        );
    }

    #[test]
    fn parallel_frontier_is_bit_identical_across_thread_counts() {
        // The dense random TC instance again, this time comparing full
        // outcomes (fixpoint AND batch counts) across thread counts with
        // the fan-out forced — chunk boundaries must not leak into the
        // staged emission order.
        let mut s = 0xabcd_u64;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut pairs = vec![];
        for _ in 0..300 {
            let u = (rng() % 50) as i64;
            let v = (rng() % 50) as i64;
            if u != v {
                pairs.push((
                    vec![u.into(), v.into()],
                    Trop::finite((1 + rng() % 9) as f64),
                ));
            }
        }
        let mut edb = Database::new();
        edb.insert("E", Relation::from_pairs(2, pairs));
        let program = ex::apsp_program::<Trop>();
        let bools = BoolDatabase::new();
        for strategy in [Strategy::Worklist, Strategy::Priority] {
            let baseline = engine_eval_with_opts(
                &program,
                &edb,
                &bools,
                10_000_000,
                strategy,
                &EngineOpts {
                    threads: Some(1),
                    ..EngineOpts::default()
                },
            )
            .expect("compiles");
            for threads in [2, 4] {
                let opts = EngineOpts {
                    threads: Some(threads),
                    par_threshold: 1,
                    chunk_min: 2,
                    ..EngineOpts::default()
                };
                let got =
                    engine_eval_with_opts(&program, &edb, &bools, 10_000_000, strategy, &opts)
                        .expect("compiles");
                assert_eq!(
                    baseline, got,
                    "{strategy:?} at {threads} threads differs from single-threaded"
                );
            }
        }
    }

    #[test]
    fn interned_outcome_defers_the_decode() {
        let (program, edb) = ex::sssp_trop("a");
        let bools = BoolDatabase::new();
        let (out, steps) = engine_eval_interned(
            &program,
            &edb,
            &bools,
            1_000_000,
            Strategy::Priority,
            &EngineOpts::default(),
        )
        .expect("compiles")
        .converged()
        .unwrap();
        assert!(steps > 0);
        assert_eq!(out.get("L", &["d".into()]), Some(&Trop::finite(8.0)));
        let reference = engine_priority_eval(&program, &edb, &bools, 1_000_000)
            .expect("compiles")
            .unwrap();
        assert_eq!(out.materialize(), reference);
    }
}
