//! Immutable sorted columnar runs with an LSM-style spine.
//!
//! An [`Arrangement`] is the sorted counterpart of a hash-prefix index:
//! the relation's rows re-ordered by a **column permutation** that puts
//! the probe columns first (ascending), so a bound-prefix probe becomes
//! two binary searches over a contiguous `u32` run instead of a hash
//! lookup through boxed keys. Rows live in immutable [`ArrangeBatch`]es
//! behind `Arc`s, organized as a small spine:
//!
//! * **Appends are cheap.** A new row becomes a size-1 batch; batches
//!   are merged size-tiered (merge while the newest batch has grown at
//!   least as large as its predecessor), so `n` appends cost `O(n log
//!   n)` total and the spine stays `O(log n)` deep — the classic
//!   Bentley–Saxe / LSM amortization, and the shape of the
//!   differential-dataflow spine the ROADMAP cites.
//! * **Snapshots are free.** Cloning an arrangement clones `Arc`s, not
//!   row data: a `Materialization` epoch can hand readers a frozen
//!   spine while the writer keeps appending fresh batches on its own
//!   clone.
//! * **Probes stay deterministic.** A probe collects matching row ids
//!   from every batch and sorts them ascending — exactly the order the
//!   hash path's incrementally-maintained posting lists produce — so
//!   merge-mode and hash-mode evaluation emit in the same sequence and
//!   stay bit-identical even on POPS with non-associative `⊕` (f64).
//!
//! Values are *not* copied into batches: probes return row ids into the
//! owning [`ColumnRel`](crate::storage::ColumnRel)'s flat storage, the
//! same contract as hash probes. Only permuted key copies are
//! materialized, which is what the binary search touches.

use std::cmp::Ordering;
use std::sync::Arc;

use crate::storage::ColMask;

/// The sort order induced by a probe mask: the bound columns ascending,
/// then the remaining columns ascending. Because bound columns come
/// first in ascending column order, the probe key (assembled ascending
/// by the executor) is directly comparable to a batch-key prefix, and
/// one arrangement serves every mask whose ascending column list is a
/// prefix of the permutation (`{c0}` rides on `{c0, c1}`'s order).
pub fn perm_for(arity: usize, mask: ColMask) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..arity as u32).filter(|c| mask & (1 << c) != 0).collect();
    perm.extend((0..arity as u32).filter(|c| mask & (1 << c) == 0));
    perm
}

/// One immutable sorted run: row ids plus permuted key copies, ordered
/// lexicographically by permuted key (ties broken by row id, which can
/// only matter transiently — a relation never stores duplicate keys).
#[derive(Debug)]
pub struct ArrangeBatch {
    /// Row ids into the owning relation, parallel to `keys`.
    rows: Vec<u32>,
    /// Flat row-major permuted key copies: `rows.len() * arity` words.
    keys: Vec<u32>,
}

impl ArrangeBatch {
    /// Number of rows in this run.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the run is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Compares row `i`'s leading columns to `key` column by column —
    /// hand-rolled rather than slice `cmp` because probe keys are 1–3
    /// words and this sits inside every binary-search step of every
    /// probe.
    #[inline]
    fn prefix_cmp(&self, arity: usize, i: usize, key: &[u32]) -> Ordering {
        let base = i * arity;
        for (j, k) in key.iter().enumerate() {
            match self.keys[base + j].cmp(k) {
                Ordering::Equal => {}
                o => return o,
            }
        }
        Ordering::Equal
    }

    /// First position whose key prefix is `≥ key`.
    fn lower_bound(&self, arity: usize, key: &[u32]) -> usize {
        let (mut lo, mut hi) = (0, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.prefix_cmp(arity, mid, key) == Ordering::Less {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// First position past `from` whose key prefix is `> key`. Join
    /// fan-outs are usually tiny, so this gallops: a short linear scan
    /// from `from` (already positioned by [`Self::lower_bound`]) covers
    /// the common case in O(match) instead of another O(log n) search,
    /// with a binary-search fallback for long runs.
    fn upper_bound(&self, arity: usize, key: &[u32], from: usize) -> usize {
        const LINEAR: usize = 8;
        let mut i = from;
        let stop = (from + LINEAR).min(self.len());
        while i < stop {
            if self.prefix_cmp(arity, i, key) != Ordering::Equal {
                return i;
            }
            i += 1;
        }
        let (mut lo, mut hi) = (i, self.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.prefix_cmp(arity, mid, key) == Ordering::Greater {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }
}

/// A relation's rows sorted by one column permutation, held as a spine
/// of immutable batches. Cloning shares the batches (`Arc`), not the
/// row data.
#[derive(Clone, Debug)]
pub struct Arrangement {
    arity: usize,
    perm: Vec<u32>,
    spine: Vec<Arc<ArrangeBatch>>,
}

impl Arrangement {
    /// An empty arrangement ordered for probes through `mask`.
    pub fn new(arity: usize, mask: ColMask) -> Self {
        assert!(arity > 0, "arrangements require arity ≥ 1");
        Arrangement {
            arity,
            perm: perm_for(arity, mask),
            spine: Vec::new(),
        }
    }

    /// Whether probes through `mask` can run against this sort order:
    /// true iff the mask's columns, ascending, are exactly the leading
    /// columns of the permutation.
    pub fn serves(&self, mask: ColMask) -> bool {
        let w = mask.count_ones() as usize;
        if w == 0 || w > self.arity {
            return false;
        }
        let mut j = 0;
        for c in 0..self.arity as u32 {
            if mask & (1 << c) != 0 {
                if self.perm.get(j) != Some(&c) {
                    return false;
                }
                j += 1;
            }
        }
        j == w
    }

    /// Total rows across the spine.
    pub fn len(&self) -> usize {
        self.spine.iter().map(|b| b.len()).sum()
    }

    /// Whether no rows are arranged.
    pub fn is_empty(&self) -> bool {
        self.spine.iter().all(|b| b.is_empty())
    }

    /// The spine's batches, newest last (exposed so tests can pin the
    /// copy-on-write contract via `Arc::ptr_eq`).
    pub fn batches(&self) -> &[Arc<ArrangeBatch>] {
        &self.spine
    }

    /// Drops every batch while keeping the sort order registered, so a
    /// cleared relation keeps maintaining the arrangement on refill.
    pub fn clear(&mut self) {
        self.spine.clear();
    }

    /// Replaces the spine with one batch holding every row of `keys`
    /// (flat row-major, `keys.len() / arity` rows) in sort order — the
    /// bulk path [`ensure_arranged`](crate::storage::ColumnRel::ensure_arranged)
    /// uses when an arrangement is first requested on a populated
    /// relation: one sort instead of `n` tiered merges.
    pub fn seed(&mut self, keys: &[u32]) {
        let arity = self.arity;
        let n = keys.len() / arity;
        let mut idx: Vec<u32> = (0..n as u32).collect();
        let perm = &self.perm;
        idx.sort_unstable_by(|&a, &b| {
            let ra = &keys[a as usize * arity..(a as usize + 1) * arity];
            let rb = &keys[b as usize * arity..(b as usize + 1) * arity];
            for &c in perm {
                match ra[c as usize].cmp(&rb[c as usize]) {
                    Ordering::Equal => continue,
                    o => return o,
                }
            }
            a.cmp(&b)
        });
        let mut flat = Vec::with_capacity(n * arity);
        for &r in &idx {
            let row = &keys[r as usize * arity..(r as usize + 1) * arity];
            for &c in perm {
                flat.push(row[c as usize]);
            }
        }
        self.spine = vec![Arc::new(ArrangeBatch {
            rows: idx,
            keys: flat,
        })];
    }

    /// Appends one row as a size-1 batch, then merges size-tiered.
    /// Returns the number of batch merges performed (telemetry:
    /// `arrange_batches_merged`).
    pub fn push(&mut self, row: &[u32], rowid: u32) -> u64 {
        debug_assert_eq!(row.len(), self.arity);
        let keys: Vec<u32> = self.perm.iter().map(|&c| row[c as usize]).collect();
        self.spine.push(Arc::new(ArrangeBatch {
            rows: vec![rowid],
            keys,
        }));
        let mut merges = 0;
        while self.spine.len() >= 2 {
            let n = self.spine.len();
            if self.spine[n - 1].len() < self.spine[n - 2].len() {
                break;
            }
            let b = self.spine.pop().expect("spine len ≥ 2");
            let a = self.spine.pop().expect("spine len ≥ 2");
            self.spine.push(Arc::new(self.merge(&a, &b)));
            merges += 1;
        }
        merges
    }

    fn merge(&self, a: &ArrangeBatch, b: &ArrangeBatch) -> ArrangeBatch {
        let arity = self.arity;
        let mut rows = Vec::with_capacity(a.len() + b.len());
        let mut keys = Vec::with_capacity((a.len() + b.len()) * arity);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            let ka = &a.keys[i * arity..(i + 1) * arity];
            let kb = &b.keys[j * arity..(j + 1) * arity];
            let take_a = match ka.cmp(kb) {
                Ordering::Less => true,
                Ordering::Greater => false,
                Ordering::Equal => a.rows[i] <= b.rows[j],
            };
            if take_a {
                rows.push(a.rows[i]);
                keys.extend_from_slice(ka);
                i += 1;
            } else {
                rows.push(b.rows[j]);
                keys.extend_from_slice(kb);
                j += 1;
            }
        }
        while i < a.len() {
            rows.push(a.rows[i]);
            keys.extend_from_slice(&a.keys[i * arity..(i + 1) * arity]);
            i += 1;
        }
        while j < b.len() {
            rows.push(b.rows[j]);
            keys.extend_from_slice(&b.keys[j * arity..(j + 1) * arity]);
            j += 1;
        }
        ArrangeBatch { rows, keys }
    }

    /// Collects into `out` the row ids whose leading `key.len()`
    /// permuted columns equal `key` — two binary searches per batch.
    /// `out` is *not* cleared and *not* sorted here; the caller sorts
    /// once after collecting across batches (see
    /// [`probe_arranged`](crate::storage::ColumnRel::probe_arranged)).
    pub fn probe_into(&self, key: &[u32], out: &mut Vec<u32>) {
        debug_assert!(!key.is_empty() && key.len() <= self.arity);
        for batch in &self.spine {
            let lo = batch.lower_bound(self.arity, key);
            let hi = batch.upper_bound(self.arity, key, lo);
            out.extend_from_slice(&batch.rows[lo..hi]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(arr: &Arrangement, key: &[u32]) -> Vec<u32> {
        let mut out = Vec::new();
        arr.probe_into(key, &mut out);
        out.sort_unstable();
        out
    }

    #[test]
    fn perm_puts_bound_columns_first_ascending() {
        assert_eq!(perm_for(3, 0b100), vec![2, 0, 1]);
        assert_eq!(perm_for(4, 0b0101), vec![0, 2, 1, 3]);
        assert_eq!(perm_for(2, 0b11), vec![0, 1]);
    }

    #[test]
    fn seeded_arrangement_answers_prefix_probes() {
        // Rows of arity 3, probed on column 1 (mask 0b010).
        let rows: Vec<u32> = vec![
            5, 7, 1, // r0
            2, 7, 9, // r1
            4, 3, 0, // r2
            5, 7, 0, // r3
        ];
        let mut arr = Arrangement::new(3, 0b010);
        arr.seed(&rows);
        assert_eq!(arr.len(), 4);
        assert_eq!(arr.batches().len(), 1);
        assert_eq!(probe(&arr, &[7]), vec![0, 1, 3]);
        assert_eq!(probe(&arr, &[3]), vec![2]);
        assert_eq!(probe(&arr, &[8]), Vec::<u32>::new());
        // Two-column probe rides the same order: perm = [1, 0, 2], so
        // mask {1} is its own prefix but {0,1} is not ({0,1} ascending
        // = [0,1] ≠ perm prefix [1,0]).
        assert!(arr.serves(0b010));
        assert!(!arr.serves(0b011));
        assert!(!arr.serves(0b001));
    }

    #[test]
    fn prefix_masks_share_one_sort_order() {
        // mask {0, 2} on arity 3 → perm [0, 2, 1]; mask {0} is a prefix.
        let arr = Arrangement::new(3, 0b101);
        assert!(arr.serves(0b101));
        assert!(arr.serves(0b001));
        assert!(!arr.serves(0b100)); // [2] ≠ leading [0]
        assert!(!arr.serves(0b111)); // [0,1,2] ≠ [0,2,1]
    }

    #[test]
    fn appends_tier_merge_and_probe_across_batches() {
        let mut arr = Arrangement::new(2, 0b01);
        let mut merges = 0;
        // 8 appends: sizes collapse 1,1→2, …; counters add up.
        for r in 0..8u32 {
            merges += arr.push(&[r % 3, r], r);
        }
        assert_eq!(arr.len(), 8);
        assert!(merges > 0);
        assert!(arr.batches().len() <= 4, "spine stays logarithmic");
        assert_eq!(probe(&arr, &[0]), vec![0, 3, 6]);
        assert_eq!(probe(&arr, &[1]), vec![1, 4, 7]);
        assert_eq!(probe(&arr, &[2]), vec![2, 5]);
    }

    #[test]
    fn seed_then_append_keeps_bulk_batch_until_tier_catches_up() {
        let rows: Vec<u32> = (0..6).flat_map(|r| vec![r % 2, r]).collect();
        let mut arr = Arrangement::new(2, 0b01);
        arr.seed(&rows);
        let seeded = Arc::clone(&arr.batches()[0]);
        arr.push(&[0, 6], 6);
        arr.push(&[1, 7], 7);
        // The bulk batch is untouched (shared, not rewritten) while the
        // small appends merge among themselves.
        assert!(Arc::ptr_eq(&arr.batches()[0], &seeded));
        assert_eq!(probe(&arr, &[0]), vec![0, 2, 4, 6]);
        assert_eq!(probe(&arr, &[1]), vec![1, 3, 5, 7]);
    }

    #[test]
    fn clones_share_batches_and_diverge_on_append() {
        let mut arr = Arrangement::new(2, 0b01);
        for r in 0..4u32 {
            arr.push(&[r, r], r);
        }
        let snap = arr.clone();
        assert!(Arc::ptr_eq(&arr.batches()[0], &snap.batches()[0]));
        arr.push(&[9, 9], 4);
        assert_eq!(probe(&snap, &[9]), Vec::<u32>::new());
        assert_eq!(probe(&arr, &[9]), vec![4]);
    }

    #[test]
    fn clear_keeps_order_registered() {
        let mut arr = Arrangement::new(2, 0b10);
        arr.push(&[1, 2], 0);
        arr.clear();
        assert!(arr.is_empty());
        assert!(arr.serves(0b10));
        arr.push(&[3, 2], 0);
        assert_eq!(probe(&arr, &[2]), vec![0]);
    }
}
