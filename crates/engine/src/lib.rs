//! # dlo-engine — an interned, indexed, parallel datalog° engine
//!
//! The production execution backend for datalog° over naturally ordered
//! POPS, justified by Theorem 6.5 of *Convergence of Datalog over (Pre-)
//! Semirings* (PODS 2022). Where the relational backend
//! (`dlo_core::eval::relational`) joins `BTreeMap` supports by unifying
//! `Constant`s tuple-at-a-time, this crate compiles each program once
//! and runs it on interned, columnar state:
//!
//! * [`intern`] — constants become `u32`s; rows are flat `Vec<u32>`
//!   slices, so join keys hash and compare without touching a single
//!   `Arc<str>`;
//! * [`storage`] — relations carry lazily built **hash-prefix indexes**
//!   per (relation, bound-column-set), maintained incrementally as the
//!   monotone `new` state grows;
//! * [`plan`] — a **rule compiler** greedily orders each sum-product's
//!   atoms by bound-variable coverage and resolves every argument to a
//!   column operation (probe / bind / check) at compile time;
//! * [`exec`] — the join executor, including the `changed`-map trick
//!   that serves `J(t)` and `J(t-1)` from one physical relation;
//! * [`driver`] — naïve and **parallel semi-naïve** loops (prefix-new /
//!   Δ / suffix-old per Theorem 6.5), fanning (plan × row-chunk) tasks
//!   over scoped threads and `⊕`-merging deterministically, with
//!   packed-`u64` head accumulators for arities ≤ 2;
//! * [`worklist`] — the **frontier drivers**: FIFO generation worklist
//!   and bucketed best-first priority scheduling, per-row change
//!   propagation instead of global iterations, each frontier batch
//!   fanned over the same worker pool with a deterministic
//!   (task-index, emit-order) merge;
//! * [`output`] — **decode-free result handles**
//!   ([`InternedOutput`]/[`InternedOutcome`]): the fixpoint stays
//!   interned and `Database` materialization is deferred until asked
//!   for;
//! * [`hash`] — the deterministic fast hasher behind every hot map.
//!
//! ## Three evaluation strategies
//!
//! [`worklist::Strategy`] names the three loops; which are *sound* is a
//! property of the POPS, expressed as `dlo_pops` trait bounds and
//! law-gated by `dlo_pops::checker`:
//!
//! | strategy | entry point | requires | sound because |
//! |---|---|---|---|
//! | semi-naïve | [`engine_seminaive_eval`] | `NaturallyOrdered + CompleteDistributiveDioid` | Theorem 6.5 (`⊖`-differentials) |
//! | FIFO worklist | [`engine_worklist_eval`] | `+ Absorptive` | Cor. 5.19: over a 0-stable (absorptive, `x ⊕ 1 = 1`) semiring every polynomial is `N`-stable, so each fact strictly improves finitely often and a per-fact change queue drains |
//! | priority frontier | [`engine_priority_eval`] | `+ TotallyOrderedDioid` | absorption makes `⊗` non-improving (`x ⊗ y ⊑ x`), so with a total order the ⊑-greatest pending fact can never be improved again: popped ⇒ settled (Dijkstra) |
//!
//! [`engine_eval`] takes a [`worklist::Strategy`] and is bounded over
//! the union, with `Auto` resolving to the priority frontier — callers
//! over `Trop`, `MinNat`, `MaxMin`, or `Bool` get Dijkstra semantics by
//! default and can force any of the three. On workloads where
//! round-based evaluation re-improves facts for many rounds (the
//! gradient SSSP instance of `BENCH_worklist.json`) the priority
//! frontier is asymptotically faster: Θ(n) settled pops vs Θ(n²) round
//! updates, measured at 230× on 2000 nodes. On unique-path workloads
//! (chain TC) derivation counts are strategy-invariant and the frontier
//! wins constant factors only.
//!
//! The FIFO worklist drains **generations** (everything queued when the
//! drain starts — Bellman-Ford rounds restricted to changed rows):
//! batches are large enough to parallelize and per-batch overhead is
//! amortized, which beats per-row pops on unique-path workloads, but on
//! re-improvement-heavy instances (the gradient graph) it inherits the
//! synchronous Θ(n²) update count — there the priority frontier, which
//! only ever fires settled rows, is the right discipline and is what
//! `Auto` picks.
//!
//! ## Parallelism: every strategy, one worker pool
//!
//! All three loops fan work over the scoped-thread pool in [`par`],
//! capped by `DLO_ENGINE_THREADS` (set `1` to force sequential
//! execution; the default is `std::thread::available_parallelism`) or
//! per call via [`EngineOpts::threads`]. The semi-naïve loop
//! parallelizes each global iteration; the frontier drivers parallelize
//! each **batch** (a FIFO generation or a priority value bucket),
//! splitting (settled-row × worklist-plan) work into chunked tasks, and
//! fall back to the sequential inner loop when a batch's estimated
//! first-step work is below [`EngineOpts::par_threshold`] — sparse
//! frontiers never pay a spawn. EDB index builds also fan out, one
//! relation per task. In every case results are **bit-identical at any
//! thread count**: tasks are merged in task order, emission order is
//! independent of chunk boundaries, and interner ids are minted
//! single-threaded between phases.
//!
//! Entry points mirror the other backends and cross-check against them
//! in `tests/cross_engine.rs` (and all strategies against each other in
//! `tests/backend_matrix.rs` / `tests/proptest_engine.rs`):
//!
//! ```
//! use dlo_core::{parse_program, BoolDatabase, Database, Program, Relation};
//! use dlo_engine::engine_seminaive_eval;
//! use dlo_pops::Trop;
//!
//! let program: Program<Trop> =
//!     parse_program("T(X, Y) :- E(X, Y) + T(X, Z) * E(Z, Y).").unwrap();
//! let mut edb = Database::new();
//! edb.insert("E", Relation::from_pairs(2, vec![
//!     (vec!["a".into(), "b".into()], Trop::finite(1.0)),
//!     (vec!["b".into(), "c".into()], Trop::finite(3.0)),
//! ]));
//! let out = engine_seminaive_eval(&program, &edb, &BoolDatabase::new(), 10_000).unwrap();
//! assert_eq!(out.get("T").unwrap().get(&vec!["a".into(), "c".into()]),
//!            Trop::finite(4.0));
//! ```
//!
//! The engine is **total over the language**: head key functions, body
//! key functions, conditions, Boolean guards, coefficients, and value
//! functions all evaluate natively — there is no relational fallback.
//!
//! ## Design note: head key functions and dynamic interning
//!
//! A key function in a rule *head* (`W(i+1) :- W(i) ⊗ V(i+1)`, Sec. 4.5)
//! derives constants that need not exist when the program is compiled,
//! so the interner cannot be frozen for the whole run. The resolution is
//! split-phase:
//!
//! * while a (possibly parallel) iteration runs, the interner **is**
//!   frozen — the executor emits head keys whose computed cells miss the
//!   table as [`exec::HeadVal::Fresh`] integers into ordered per-IDB
//!   accumulators;
//! * between iterations, the driver mints ids for those integers in
//!   sorted key order (deterministic, single-threaded) and inserts the
//!   rows. A fresh cell is by definition a constant no existing row
//!   contains, so minted rows are always appends: they enter the `new`
//!   state, the `δ` relation, and the `changed` map exactly like any
//!   other appended row, and incremental index maintenance covers them.
//!
//! Body-side key functions never mint — a computed probe value outside
//! the interned domain simply matches nothing, which is the semantics of
//! joining against finite supports. Minting is unaffected by the thread
//! count: fresh accumulators are merged in task order and drained
//! sorted, so results are bit-identical at any parallelism — under the
//! frontier drivers ids are minted between batches exactly as the
//! global drivers mint between iterations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod exec;
pub mod hash;
pub mod intern;
pub mod output;
pub mod par;
pub mod plan;
pub mod storage;
pub mod worklist;

pub use driver::{
    engine_naive_eval, engine_naive_eval_with_opts, engine_seminaive_eval,
    engine_seminaive_eval_interned, engine_seminaive_eval_with_opts, EngineOpts,
};
pub use intern::Interner;
pub use output::{InternedOutcome, InternedOutput};
pub use plan::{compile, CompileError, CompiledProgram, Plan};
pub use storage::ColumnRel;
pub use worklist::{
    engine_eval, engine_eval_interned, engine_eval_with_opts, engine_priority_eval,
    engine_priority_eval_with_opts, engine_worklist_eval, engine_worklist_eval_with_opts, Strategy,
};
