//! # dlo-engine — an interned, indexed, parallel datalog° engine
//!
//! The production execution backend for datalog° over naturally ordered
//! POPS, justified by Theorem 6.5 of *Convergence of Datalog over (Pre-)
//! Semirings* (PODS 2022). Where the relational backend
//! (`dlo_core::eval::relational`) joins `BTreeMap` supports by unifying
//! `Constant`s tuple-at-a-time, this crate compiles each program once
//! and runs it on interned, columnar state:
//!
//! * [`intern`] — constants become `u32`s; rows are flat `Vec<u32>`
//!   slices, so join keys hash and compare without touching a single
//!   `Arc<str>`;
//! * [`storage`] — relations carry lazily built **hash-prefix indexes**
//!   per (relation, bound-column-set), maintained incrementally as the
//!   monotone `new` state grows, plus **sorted columnar arrangements**
//!   ([`arrange`]) where the planner prefers merge probes;
//! * [`plan`] — a **rule compiler** greedily orders each sum-product's
//!   atoms by bound-variable coverage and resolves every argument to a
//!   column operation (probe / bind / check) at compile time;
//! * [`exec`] — the join executor, including the `changed`-map trick
//!   that serves `J(t)` and `J(t-1)` from one physical relation;
//! * [`driver`] — naïve and **parallel semi-naïve** loops (prefix-new /
//!   Δ / suffix-old per Theorem 6.5), fanning (plan × row-chunk) tasks
//!   over scoped threads and `⊕`-merging deterministically, with
//!   packed-`u64` head accumulators for arities ≤ 2;
//! * [`worklist`] — the **frontier drivers**: FIFO generation worklist
//!   and bucketed best-first priority scheduling, per-row change
//!   propagation instead of global iterations, each frontier batch
//!   fanned over the same worker pool with a deterministic
//!   (task-index, emit-order) merge;
//! * [`query`] — **demand-driven evaluation**: a `?- T("a", Y).` goal
//!   is magic-set rewritten (`dlo_core::demand`) and evaluated by any
//!   of the loops, with the frontier seeded from the query constants;
//! * [`incremental`] — **incremental maintenance**: a long-lived
//!   [`Materialization`] absorbs EDB edits — `⊕`-merge inserts by the
//!   telescoped differential, deletes by dioid-valued delete–rederive —
//!   without re-running the fixpoint from scratch;
//! * [`output`] — **decode-free result handles**
//!   ([`InternedOutput`]/[`InternedOutcome`]): the fixpoint stays
//!   interned and `Database` materialization is deferred until asked
//!   for;
//! * [`hash`] — the deterministic fast hasher behind every hot map.
//!
//! ## Choosing a strategy
//!
//! [`worklist::Strategy`] names the three loops; which are *sound* is a
//! property of the POPS, expressed as `dlo_pops` trait bounds and
//! law-gated by `dlo_pops::checker`:
//!
//! | strategy | entry point | requires | sound because |
//! |---|---|---|---|
//! | naïve | [`engine_naive_eval`] | `NaturallyOrdered` | Algorithm 1 (monotone ICO iteration) |
//! | semi-naïve | [`engine_seminaive_eval`] | `+ CompleteDistributiveDioid` | Theorem 6.5 (`⊖`-differentials) |
//! | FIFO worklist | [`engine_worklist_eval`] | `+ Absorptive` | Cor. 5.19: over a 0-stable (absorptive, `x ⊕ 1 = 1`) semiring every polynomial is `N`-stable, so each fact strictly improves finitely often and a per-fact change queue drains |
//! | priority frontier | [`engine_priority_eval`] | `+ TotallyOrderedDioid` | absorption makes `⊗` non-improving (`x ⊗ y ⊑ x`), so with a total order the ⊑-greatest pending fact can never be improved again: popped ⇒ settled (Dijkstra) |
//!
//! The practical selection guide:
//!
//! * **Know the query? Use query-seeded evaluation first** —
//!   [`engine_query_eval`] (or `datalog_o::eval_query` /
//!   `eval_frontier_query`). The magic-set rewrite is orthogonal to
//!   the strategy table: it shrinks *what* is computed, the strategy
//!   decides *how*. A single-source question against the all-pairs
//!   program is 160–430× faster than the full priority frontier on
//!   the committed `BENCH_magic.json` instances.
//! * **Full fixpoint, totally ordered absorptive dioid** (`Trop`,
//!   `MinNat`, `MaxMin`, `𝔹`): the **priority frontier** (what
//!   `Strategy::Auto` picks) — settled-on-pop beats rounds whenever
//!   facts would re-improve (gradient SSSP: Θ(n) vs Θ(n²), 230×).
//! * **Absorptive but not totally ordered** (products of dioids): the
//!   **FIFO worklist** — generation draining, still change-driven.
//! * **Complete distributive dioid without absorption** (`Nat`,
//!   `MaxPlus`): the **semi-naïve** loop — `⊖`-differentials need no
//!   stability.
//! * **Naturally ordered only** (`ℝ₊`, `TropP`): the **naïve** loop is
//!   all that is licensed (no `⊖`) — and [`engine_query_naive_eval`]
//!   still applies demand restriction to it.
//!
//! ## Design note: magic sets — Bool-valued demand guarding POPS rules
//!
//! [`query`]'s rewrite (`dlo_core::demand::magic_rewrite`) adds *magic
//! predicates* that track which bindings the query can reach, and
//! guards every rule with its head's magic atom. Demand is inherently
//! **set-valued**: a magic fact means "needed", so magic relations
//! live on the Bool lattice even when answers carry `Trop`/`ℝ₊`/…
//! values. The compiler flags them ([`CompiledProgram::set_valued`])
//! and every driver stores such rows at `1` on first insertion and
//! never merges into them again — over a non-idempotent `⊕` a cyclic
//! demand rule would otherwise pump `1 ⊕ 1 = 2 ⊕ …` forever.
//! **Absorption is not required for the rewrite's correctness** (the
//! guard multiplies by `1`, and demand over-approximates the
//! contributing derivations — see `dlo_core::demand`'s module docs
//! for the induction); it is only required, as always, for the
//! frontier *strategies* one might run the rewritten program under.
//! Under the frontier drivers the magic seed is the only seed-plan
//! contribution, so the queue starts at the **query constants**
//! instead of the whole EDB delta, and demand facts derive between
//! batches exactly like head-key minting — including through key
//! functions in magic heads, which mint demand for keys the interner
//! has never seen. A domain-enumeration guard keeps the
//! answers-are-a-restriction invariant exact: rules with variables no
//! join can bind (enumerated over the active domain) force the
//! all-free fallback, since magic guards would re-scope those
//! variables to the demanded set.
//!
//! ## Design note: incremental maintenance over non-idempotent `⊕`
//!
//! [`incremental`]'s two edit paths are deliberately asymmetric.
//! **Inserts need no retraction machinery on any POPS**: growing the
//! EDB grows the immediate-consequence operator pointwise, so the old
//! fixpoint is a pre-fixpoint of the new operator and the ordinary
//! semi-naïve continuation — seeded with the *telescoped EDB
//! differential* `F'(J) ⊖ F(J)`, computed by `@dlt`-variant plans that
//! replay Theorem 6.5's prefix-new/Δ/suffix-old split over EDB
//! occurrences — converges to the new least fixpoint in `O(|Δ|)`-driven
//! work. **Deletes are where idempotence would be quietly assumed**:
//! classical DRed over the Boolean lattice can re-derive a deleted
//! fact's value by finding *any* alternative derivation, but over a
//! non-idempotent `⊕` (counting `Nat`, `ℝ₊` sums) a fact's value folds
//! *every* derivation together, and over an absorptive dioid (`Trop`)
//! distinct support sets share the same value — neither lets the engine
//! subtract one lost derivation pointwise (there is no general `⊖`
//! inverse: `minus` solves `x ⊕ ? = y` only from below). The engine
//! therefore **overapproximates the affected set** — every IDB key
//! whose derivation-uses graph reaches a deleted EDB row, enumerated
//! *by key* from per-fact supporting-rule provenance (the compiled
//! delta plans themselves) — zeroes those rows out entirely, and
//! rederives them from the surviving support, which is exact because
//! survivors are untouched by construction and form a pre-fixpoint of
//! the shrunk operator. Key-level overapproximation is sound for any
//! naturally ordered POPS: value maps are monotone, so an instance that
//! contributed `0` before the delete still contributes `0` after, and
//! surviving keys self-absorb in the semi-naïve advance. Insert-only
//! workloads should prefer [`Materialization::insert`] alone — the
//! marking pass, the zero-out, and the rederive all exist purely to pay
//! for deletion.
//!
//! ## Design note: sorted arrangements — merge probes and epoch-shared snapshots
//!
//! [`arrange`] is the sorted counterpart of the hash-prefix index: a
//! relation's rows re-ordered by a **column permutation** (probe
//! columns first, ascending, then the rest), held as an LSM-style
//! spine of immutable `Arc`-shared batches with size-tiered merging.
//! Three contracts make it a drop-in second probe structure:
//!
//! * **Sort orders.** The permutation for mask `m` starts with `m`'s
//!   columns ascending, so the executor's probe key (always assembled
//!   ascending) compares directly against a batch-key prefix — one
//!   binary-search pair per batch answers the probe, and every mask
//!   whose ascending column list is a prefix of the permutation rides
//!   the same arrangement for free (`{c0}` on `{c0,c1}`'s order).
//!   Range and prefix scans fall out of the same search.
//! * **Spine merging.** Appends become size-1 batches, merged whenever
//!   the newest batch has caught up with its predecessor — `O(log n)`
//!   batches, `O(n log n)` total merge work (Bentley–Saxe), counted in
//!   `arrange_batches_merged`. A bulk `ensure` on a populated relation
//!   sorts once into a single batch instead.
//! * **Snapshot contract.** Batches are immutable behind `Arc`s, so
//!   cloning a relation (what a [`Materialization`] epoch snapshot
//!   does) shares every batch without copying row data; the writer's
//!   subsequent appends land in new batches the snapshot never sees.
//!   This pairs with the **append-only interner**: a snapshot's ids
//!   stay valid forever because ids are never reassigned, so frozen
//!   batches and a cloned interner together form a consistent frozen
//!   epoch. Values are *not* duplicated into batches — probes return
//!   row ids into the relation's flat storage, the hash-probe
//!   contract.
//!
//! **Determinism.** Arranged probes collect matching row ids across
//! all batches and sort them ascending — exactly the order hash
//! posting lists hold (built ascending, maintained by append) — so
//! merge-mode and hash-mode evaluation visit rows identically and stay
//! **bit-identical** on every POPS, including non-associative f64
//! `⊕`-folds. [`JoinMode`] is therefore purely a performance knob:
//! `Auto` (default) arranges relations of arity > 2 (where packed-u64
//! hash keys give out and boxed-slice hashing dominates), `Merge` /
//! `Hash` force either structure, resolved per run from
//! [`EngineOpts::join_mode`] or the `DLO_JOIN` environment variable.
//! `explain()` attributes the chosen strategy per rule, and the
//! `merge_join_steps` / `hash_join_steps` counters always sum to
//! `index_probes`.
//!
//! [`engine_eval`] takes a [`worklist::Strategy`] and is bounded over
//! the union, with `Auto` resolving to the priority frontier — callers
//! over `Trop`, `MinNat`, `MaxMin`, or `Bool` get Dijkstra semantics by
//! default and can force any of the three. On workloads where
//! round-based evaluation re-improves facts for many rounds (the
//! gradient SSSP instance of `BENCH_worklist.json`) the priority
//! frontier is asymptotically faster: Θ(n) settled pops vs Θ(n²) round
//! updates, measured at 230× on 2000 nodes. On unique-path workloads
//! (chain TC) derivation counts are strategy-invariant and the frontier
//! wins constant factors only.
//!
//! The FIFO worklist drains **generations** (everything queued when the
//! drain starts — Bellman-Ford rounds restricted to changed rows):
//! batches are large enough to parallelize and per-batch overhead is
//! amortized, which beats per-row pops on unique-path workloads, but on
//! re-improvement-heavy instances (the gradient graph) it inherits the
//! synchronous Θ(n²) update count — there the priority frontier, which
//! only ever fires settled rows, is the right discipline and is what
//! `Auto` picks.
//!
//! ## Parallelism: every strategy, one worker pool
//!
//! All three loops fan work over the scoped-thread pool in [`par`],
//! capped by `DLO_ENGINE_THREADS` (set `1` to force sequential
//! execution; the default is `std::thread::available_parallelism`) or
//! per call via [`EngineOpts::threads`]. The semi-naïve loop
//! parallelizes each global iteration; the frontier drivers parallelize
//! each **batch** (a FIFO generation or a priority value bucket),
//! splitting (settled-row × worklist-plan) work into chunked tasks, and
//! fall back to the sequential inner loop when a batch's estimated
//! first-step work is below [`EngineOpts::par_threshold`] — sparse
//! frontiers never pay a spawn. EDB index builds also fan out, one
//! relation per task. In every case results are **bit-identical at any
//! thread count**: tasks are merged in task order, emission order is
//! independent of chunk boundaries, and interner ids are minted
//! single-threaded between phases.
//!
//! ## Observability: stats on every outcome, traces on demand
//!
//! Every evaluation — any strategy, any entry point — returns its
//! telemetry on the outcome: [`EvalStats`] carries per-run totals
//! (emissions, index probes, tuples scanned, merge outcomes split into
//! inserted / improved / absorbed / set-valued short-circuits, minted
//! interner ids), wall-clock phase timers (setup, EDB indexing, the
//! fixpoint loop, id minting, decode), per-iteration snapshots, and a
//! **per-rule profile** attributing time and emissions to each
//! compiled plan. `stats()` on [`dlo_core::EvalOutcome`],
//! [`InternedOutcome`], and [`query::QueryAnswer`] exposes it;
//! `explain()` renders the profile as a report. Collection is
//! always-on: the counters ride the execution state the loops already
//! touch, and the benchmark guard (`telemetry_guard`) holds the
//! overhead under 5% on the committed worklist baseline.
//!
//! Structured tracing is opt-in: hand a [`TraceHandle`] (wrapping a
//! [`TraceSink`] — [`JsonlSink`] for files, [`MemorySink`] for tests)
//! through [`EngineOpts::trace`], or set `DLO_TRACE=out.jsonl` to
//! append one JSON object per event (`run_start`, `phase`,
//! `iteration`, `run_end`) with no dependencies — the writer/parser
//! pair lives in `dlo_core::eval::stats::json`. Events are emitted
//! from the coordinating thread only, in deterministic order.
//!
//! Determinism extends to the telemetry itself: everything except
//! wall-clock fields, the thread count, and fan-out bookkeeping is
//! **bit-identical at any `DLO_ENGINE_THREADS`** — counters are exact
//! additive sums aggregated in task order, not sampled.
//! [`EvalStats::invariants`] masks the timing fields, which is what
//! the cross-thread determinism tests compare.
//!
//! ## Design note: robustness & resource governance
//!
//! Every public entry point returns `Result<_, `[`EvalError`]`>` and
//! **no input or runtime condition panics across the API boundary**
//! (pinned by `tests/robustness.rs`'s proptest leg). The error taxonomy
//! separates three failure classes:
//!
//! * **Compile-time rejection** ([`EvalError::Compile`]): programs the
//!   columnar storage cannot represent (arity > 32, one head predicate
//!   at two arities) and queries the magic rewrite rejects. No
//!   evaluation ran, so these carry no stats.
//! * **Governed interruption**: an [`EvalBudget`] on
//!   [`EngineOpts::budget`] bounds wall-clock (deadline, measured from
//!   entry so compile/intern time counts), fixpoint phases
//!   (`max_steps`), emitted rows, and minted ids; a shared
//!   [`CancelToken`] on [`EngineOpts::cancel`] requests cooperative
//!   cancellation from another thread. [`EngineOpts::for_class`] picks
//!   a [`BudgetClass`] preset (`Interactive` / `Batch` / `Unbounded`)
//!   instead of hand-tuning ceilings. Checks run at every loop
//!   checkpoint — the seed phase, each global iteration, each worklist
//!   generation, each priority **bucket** pop — on the coordinating
//!   thread only, so governance costs a branch per checkpoint, the hot
//!   per-tuple loops are untouched (≤5% overhead, enforced by the
//!   `robustness_guard` bench gate), and a governed run stops within
//!   one checkpoint of crossing a line (the abort trace event records
//!   which granularity fired). The resulting
//!   [`EvalError::BudgetExhausted`] / [`EvalError::DeadlineExceeded`] /
//!   [`EvalError::Cancelled`] carries the final [`EvalStats`] snapshot
//!   (with `budget_checks` / `cancel_polls` counters and a trailing
//!   `abort` trace event), and the `*_partial` entry points surface the
//!   abort-time instance itself — see the graceful-degradation note
//!   below.
//! * **Contained worker panics** ([`EvalError::WorkerPanic`]): every
//!   parallel task body (and the sequential fallback) runs under
//!   `catch_unwind`, the lowest-indexed panicking task wins
//!   deterministically at any thread count, and the coordinating thread
//!   converts it into the typed error instead of unwinding or aborting
//!   the process.
//!
//! Divergence is *not* an error here: hitting the iteration cap still
//! returns `Ok` with [`dlo_core::EvalOutcome::Diverged`] (use
//! `into_result()` to convert it into [`EvalError::Diverged`] when a
//! capped run should be error-shaped). Long-lived [`Materialization`]s
//! add a **poisoned bit**: if an edit fails mid-flight in a way that may
//! have left interned state inconsistent, every subsequent call returns
//! [`EvalError::Poisoned`] until [`Materialization::rebuild`] re-derives
//! the fixpoint from the retained EDB — same fixpoint as a from-scratch
//! construction, with the retained interner reused so constant ids stay
//! stable across the recovery.
//!
//! ## Design note: graceful degradation — partial results on abort
//!
//! A governed abort no longer discards the work done. The `*_partial`
//! entry points ([`engine_eval_partial_with_opts`],
//! [`engine_eval_partial_interned_edb`],
//! [`query::engine_query_eval_partial_with_opts`]) return
//! [`AbortedEval`] / [`query::AbortedQuery`]: the typed error **plus**
//! a [`PartialOutput`] capturing the abort-time interned state and a
//! per-row [`SettledMark`]. How much that state means depends on the
//! strategy:
//!
//! * Under the **priority frontier**, absorption plus the total order
//!   make a popped row final: `x ⊗ y ⊑ x` means no later derivation
//!   can improve the ⊑-greatest pending fact (Cor. 5.19 — the same
//!   argument that licenses the strategy licenses **settled-on-pop**).
//!   The engine marks each popped row before its derivations fire, so
//!   the settled frontier of the partial is **exact**: every settled
//!   row carries precisely its least-fixpoint value, and
//!   [`PartialOutput::materialize_settled`] is a sub-instance of the
//!   answer (differentially pinned in `tests/robustness.rs` at 1, 2,
//!   and 4 threads). An interrupted Dijkstra yields correct shortest
//!   paths for everything it settled.
//! * Under the other strategies every intermediate `J(t)` still sits
//!   below the least fixpoint (`J(t) ⊑ lfp`, the loop invariant), so
//!   the partial is a **pointwise lower bound** — a progress snapshot,
//!   not an answer — and its mark says so ([`SettledMark::is_exact`]
//!   is `false`).
//!
//! On top of the partial channel, [`retry::eval_with_retry`] runs a
//! deterministic **budget-class escalation ladder**: a run stopped by a
//! recoverable limit (budget/deadline) is retried one [`BudgetClass`]
//! rung up, warm-started from the aborted attempt's interner via the
//! interned-EDB chain — ids already minted stay stable and are never
//! re-interned, while the fixpoint is recomputed so every successful
//! attempt stays bit-identical to a cold ungoverned run. A
//! [`retry::RetryReport`] logs each attempt; exhausted ladders return
//! [`retry::RetryFailure`] with the last partial attached. Long-lived
//! [`Materialization`]s expose the same state read-only: a poisoned
//! handle keeps its mid-flight partial on
//! [`Materialization::partial`] until a rebuild clears it.
//!
//! Entry points mirror the other backends and cross-check against them
//! in `tests/cross_engine.rs` (and all strategies against each other in
//! `tests/backend_matrix.rs` / `tests/proptest_engine.rs`):
//!
//! ```
//! use dlo_core::{parse_program, BoolDatabase, Database, Program, Relation};
//! use dlo_engine::engine_seminaive_eval;
//! use dlo_pops::Trop;
//!
//! let program: Program<Trop> =
//!     parse_program("T(X, Y) :- E(X, Y) + T(X, Z) * E(Z, Y).").unwrap();
//! let mut edb = Database::new();
//! edb.insert("E", Relation::from_pairs(2, vec![
//!     (vec!["a".into(), "b".into()], Trop::finite(1.0)),
//!     (vec!["b".into(), "c".into()], Trop::finite(3.0)),
//! ]));
//! let out = engine_seminaive_eval(&program, &edb, &BoolDatabase::new(), 10_000)
//!     .expect("compiles")
//!     .unwrap();
//! assert_eq!(out.get("T").unwrap().get(&vec!["a".into(), "c".into()]),
//!            Trop::finite(4.0));
//! ```
//!
//! The engine is **total over the language**: head key functions, body
//! key functions, conditions, Boolean guards, coefficients, and value
//! functions all evaluate natively — there is no relational fallback.
//!
//! ## Design note: head key functions and dynamic interning
//!
//! A key function in a rule *head* (`W(i+1) :- W(i) ⊗ V(i+1)`, Sec. 4.5)
//! derives constants that need not exist when the program is compiled,
//! so the interner cannot be frozen for the whole run. The resolution is
//! split-phase:
//!
//! * while a (possibly parallel) iteration runs, the interner **is**
//!   frozen — the executor emits head keys whose computed cells miss the
//!   table as [`exec::HeadVal::Fresh`] integers into ordered per-IDB
//!   accumulators;
//! * between iterations, the driver mints ids for those integers in
//!   sorted key order (deterministic, single-threaded) and inserts the
//!   rows. A fresh cell is by definition a constant no existing row
//!   contains, so minted rows are always appends: they enter the `new`
//!   state, the `δ` relation, and the `changed` map exactly like any
//!   other appended row, and incremental index maintenance covers them.
//!
//! Body-side key functions never mint — a computed probe value outside
//! the interned domain simply matches nothing, which is the semantics of
//! joining against finite supports. Minting is unaffected by the thread
//! count: fresh accumulators are merged in task order and drained
//! sorted, so results are bit-identical at any parallelism — under the
//! frontier drivers ids are minted between batches exactly as the
//! global drivers mint between iterations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrange;
pub mod driver;
pub mod exec;
pub(crate) mod govern;
pub mod hash;
pub mod incremental;
pub mod intern;
pub mod output;
pub mod par;
pub mod plan;
pub mod query;
pub mod retry;
pub mod storage;
pub(crate) mod telemetry;
pub mod worklist;

pub use dlo_core::eval::stats::{
    Counters, EvalStats, IterStat, JsonlSink, MemorySink, PhaseNanos, RuleProfile, TraceEvent,
    TraceHandle, TraceSink,
};
pub use dlo_core::eval::{BudgetClass, BudgetKind, CancelToken, EvalBudget, EvalError};
pub use driver::{
    engine_naive_eval, engine_naive_eval_with_opts, engine_seminaive_eval,
    engine_seminaive_eval_interned, engine_seminaive_eval_interned_edb,
    engine_seminaive_eval_with_opts, EngineOpts,
};
pub use incremental::Materialization;
pub use intern::Interner;
pub use output::{AbortedEval, InternedOutcome, InternedOutput, PartialOutput, SettledMark};
pub use plan::{compile, compile_demand, CompileError, CompiledProgram, Plan, PlanMeta};
pub use query::{
    engine_query_eval, engine_query_eval_interned_edb, engine_query_eval_partial_with_opts,
    engine_query_eval_with_opts, engine_query_naive_eval, engine_query_seminaive_eval,
    AbortedQuery, QueryAnswer,
};
pub use retry::{eval_with_retry, AttemptLog, RetryFailure, RetryPolicy, RetryReport};
pub use storage::{ColumnRel, JoinMode};
pub use worklist::{
    engine_eval, engine_eval_interned, engine_eval_interned_edb, engine_eval_partial_interned_edb,
    engine_eval_partial_with_opts, engine_eval_with_opts, engine_priority_eval,
    engine_priority_eval_with_opts, engine_worklist_eval, engine_worklist_eval_with_opts, Strategy,
};
