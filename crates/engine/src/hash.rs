//! A fast, deterministic hasher for the engine's hot maps.
//!
//! Every hot-path map in this crate is keyed by interned ids (`u32`) or
//! flat id slices (`Box<[u32]>`), probed once per candidate row of a
//! join. `std`'s default SipHash is DoS-resistant but costs tens of
//! nanoseconds per slice — measurably the largest single line item in
//! TC-style profiles — and its per-process random seed makes map
//! iteration order vary run to run (the drivers sort wherever order can
//! leak, but deterministic order is still the safer default). This is
//! the classic multiply-xor "Fx" scheme (as popularized by Firefox and
//! rustc): a couple of arithmetic ops per word, fully deterministic.
//!
//! Keys here are interned ids, never attacker-chosen strings, so hash
//! flooding is not a concern.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant (high-entropy odd number, the 64-bit golden
/// ratio) spreading each xored word across the hash.
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// The hasher state: one 64-bit accumulator.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

/// `HashMap` with the engine's deterministic fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spreading() {
        let h = |xs: &[u32]| {
            let mut hasher = FxHasher::default();
            for &x in xs {
                hasher.write_u32(x);
            }
            hasher.finish()
        };
        assert_eq!(h(&[1, 2, 3]), h(&[1, 2, 3]), "same input, same hash");
        assert_ne!(h(&[1, 2, 3]), h(&[3, 2, 1]), "order matters");
        assert_ne!(h(&[0]), h(&[1]));
        // Small consecutive ids (the common interned-key shape) spread.
        let hashes: std::collections::BTreeSet<u64> = (0u32..1000).map(|i| h(&[i])).collect();
        assert_eq!(hashes.len(), 1000, "no collisions on small ids");
    }

    #[test]
    fn maps_work_with_slice_keys() {
        let mut m: FxHashMap<Box<[u32]>, u32> = FxHashMap::default();
        m.insert(vec![1, 2].into(), 7);
        assert_eq!(m.get([1, 2].as_slice()), Some(&7));
        assert_eq!(m.get([2, 1].as_slice()), None);
    }
}
