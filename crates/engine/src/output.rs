//! Decode-free result handles: interned output without the `Database`
//! materialization cost.
//!
//! On large runs, materializing a [`Database`] — decoding every interned
//! row back to `Constant` tuples and bulk-building rank-sorted
//! `BTreeMap`s — is the single largest phase *after* the fixpoint itself
//! (it was the largest overall before the rank-sorted bulk build). A
//! pipeline that feeds results straight back into the engine, inspects a
//! handful of values, or only needs support counts pays that full price
//! for nothing. [`InternedOutput`] is the fix: it owns the final IDB
//! storage **and** the interner that gives the ids meaning, exposes the
//! cheap queries directly on interned state, and materializes a
//! `Database` (whole, or one predicate at a time) only when asked.
//!
//! The `*_interned` driver entry points ([`crate::engine_eval_interned`],
//! [`crate::engine_seminaive_eval_interned`]) return an
//! [`InternedOutcome`], the decode-free mirror of
//! `dlo_core::eval::EvalOutcome`; `.materialize()` converts between the
//! two, and the classic `Database`-returning entry points are now thin
//! wrappers over these.

use crate::intern::Interner;
use crate::storage::ColumnRel;
use dlo_core::eval::{EvalError, EvalOutcome, EvalStats};
use dlo_core::relation::{Database, Relation};
use dlo_core::value::{Constant, Tuple};
use dlo_pops::Pops;

/// A fixpoint result in interned, columnar form: the final IDB relations
/// plus the interner (including any ids minted for head-computed keys
/// during the run) that decodes them.
#[derive(Clone, Debug)]
pub struct InternedOutput<P> {
    interner: Interner,
    idbs: Vec<(String, usize)>,
    rels: Vec<ColumnRel<P>>,
}

impl<P: Pops> InternedOutput<P> {
    pub(crate) fn new(
        interner: Interner,
        idbs: Vec<(String, usize)>,
        rels: Vec<ColumnRel<P>>,
    ) -> Self {
        debug_assert_eq!(idbs.len(), rels.len());
        InternedOutput {
            interner,
            idbs,
            rels,
        }
    }

    /// The constant table the rows are interned against (EDB and program
    /// constants plus everything minted during the run).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Replaces one predicate's storage in place —
    /// [`Materialization`](crate::incremental) refreshes only the
    /// relations whose [`ColumnRel::version`] moved since the snapshot
    /// was taken, leaving untouched predicates' clones (and their
    /// `Arc`-shared arrangement batches) alive across edit epochs.
    pub(crate) fn update_relation(&mut self, idx: usize, rel: ColumnRel<P>) {
        self.rels[idx] = rel;
    }

    /// Replaces the interner — only needed when minting extended the
    /// constant table since the snapshot (the interner is append-only,
    /// so its length is its version).
    pub(crate) fn set_interner(&mut self, interner: Interner) {
        self.interner = interner;
    }

    /// The IDB predicates `(name, arity)` in compilation order.
    pub fn predicates(&self) -> impl Iterator<Item = (&str, usize)> {
        self.idbs.iter().map(|(n, a)| (n.as_str(), *a))
    }

    /// The interned storage of `pred`, if it is an IDB of the program.
    pub fn relation(&self, pred: &str) -> Option<&ColumnRel<P>> {
        self.idbs
            .iter()
            .position(|(n, _)| n == pred)
            .map(|i| &self.rels[i])
    }

    /// Support size of `pred` (0 when absent) — no decode.
    pub fn support_size(&self, pred: &str) -> usize {
        self.relation(pred).map_or(0, |r| r.len())
    }

    /// The value of `pred(tuple)`, if present: the tuple's constants are
    /// looked up in the interner (a constant the run never saw cannot
    /// name a row) and the packed row map is probed — no decode.
    pub fn get(&self, pred: &str, tuple: &[Constant]) -> Option<&P> {
        let rel = self.relation(pred)?;
        if tuple.len() != rel.arity() {
            return None;
        }
        let mut key: Vec<u32> = Vec::with_capacity(tuple.len());
        for c in tuple {
            key.push(self.interner.lookup(c)?);
        }
        rel.get(&key)
    }

    /// Decodes one predicate into a [`Relation`] (rank-sorted bulk
    /// build), leaving every other predicate interned.
    pub fn materialize_pred(&self, pred: &str) -> Option<Relation<P>> {
        let i = self.idbs.iter().position(|(n, _)| n == pred)?;
        let rank = rank_table(&self.interner);
        Some(decode_rel(
            &self.interner,
            &rank,
            self.idbs[i].1,
            &self.rels[i],
        ))
    }

    /// Decodes the full output into a [`Database`] — the one expensive
    /// operation on this type, deferred until a caller actually needs
    /// `Constant`-keyed relations.
    pub fn materialize(&self) -> Database<P> {
        decode_db(&self.interner, &self.idbs, &self.rels)
    }
}

/// Rank over *all* currently interned ids (minting may have extended the
/// table past the setup-time active domain): rank order is
/// order-isomorphic to `Constant` order, so packed-rank comparisons give
/// exactly the tuple order a `BTreeMap` bulk build wants.
fn rank_table(interner: &Interner) -> Vec<u32> {
    let mut ids: Vec<u32> = (0..interner.len() as u32).collect();
    ids.sort_unstable_by(|a, b| interner.get(*a).cmp(interner.get(*b)));
    let mut rank = vec![0u32; ids.len()];
    for (pos, &id) in ids.iter().enumerate() {
        rank[id as usize] = pos as u32;
    }
    rank
}

/// The full rank-sorted decode of interned IDB storage — shared by
/// [`InternedOutput::materialize`] and the classic `Database`-returning
/// driver entry points.
pub(crate) fn decode_db<P: Pops>(
    interner: &Interner,
    idbs: &[(String, usize)],
    rels: &[ColumnRel<P>],
) -> Database<P> {
    let rank = rank_table(interner);
    let mut db = Database::new();
    for ((name, arity), rel) in idbs.iter().zip(rels) {
        db.insert(name, decode_rel(interner, &rank, *arity, rel));
    }
    db
}

/// Decodes one interned relation with rows pre-ordered by interned rank,
/// so `Relation::from_distinct_pairs` sees sorted keys and its internal
/// sort degenerates to a linear scan.
fn decode_rel<P: Pops>(
    interner: &Interner,
    rank: &[u32],
    arity: usize,
    rel: &ColumnRel<P>,
) -> Relation<P> {
    let order: Vec<u32> = if arity <= 2 {
        let mut keyed: Vec<(u64, u32)> = (0..rel.len() as u32)
            .map(|r| {
                let packed = match rel.row(r) {
                    [] => 0u64,
                    [a] => rank[*a as usize] as u64,
                    [a, b] => ((rank[*a as usize] as u64) << 32) | rank[*b as usize] as u64,
                    _ => unreachable!("arity ≤ 2"),
                };
                (packed, r)
            })
            .collect();
        keyed.sort_unstable_by_key(|&(k, _)| k);
        keyed.into_iter().map(|(_, r)| r).collect()
    } else {
        let mut order: Vec<u32> = (0..rel.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            let ra = rel.row(a).iter().map(|&id| rank[id as usize]);
            let rb = rel.row(b).iter().map(|&id| rank[id as usize]);
            ra.cmp(rb)
        });
        order
    };
    let pairs = order.into_iter().map(|r| {
        let tuple: Tuple = rel
            .row(r)
            .iter()
            .map(|&id| interner.get(id).clone())
            .collect();
        (tuple, rel.val(r).clone())
    });
    Relation::from_distinct_pairs(arity, pairs)
}

/// The decode-free mirror of `dlo_core::eval::EvalOutcome`: same
/// convergence semantics, interned payload. Both variants carry the
/// run's [`EvalStats`]; [`InternedOutcome::materialize`] forwards them
/// (with the decode phase timed into [`EvalStats::phases`]).
#[derive(Clone, Debug)]
pub enum InternedOutcome<P> {
    /// The loop reached a fixpoint.
    Converged {
        /// The least fixpoint, interned.
        output: InternedOutput<P>,
        /// Processed steps (global iterations for the semi-naïve
        /// strategy, frontier batches for the worklist/priority ones —
        /// not comparable across strategies).
        steps: usize,
        /// Evaluation telemetry.
        stats: EvalStats,
    },
    /// The loop hit its cap.
    Diverged {
        /// The last state computed, interned (for inspection).
        last: InternedOutput<P>,
        /// The cap that was hit.
        cap: usize,
        /// Evaluation telemetry.
        stats: EvalStats,
    },
}

impl<P: Pops> InternedOutcome<P> {
    /// Whether the run converged.
    pub fn is_converged(&self) -> bool {
        matches!(self, InternedOutcome::Converged { .. })
    }

    /// The converged output and step count, or `None` on divergence.
    pub fn converged(self) -> Option<(InternedOutput<P>, usize)> {
        match self {
            InternedOutcome::Converged { output, steps, .. } => Some((output, steps)),
            InternedOutcome::Diverged { .. } => None,
        }
    }

    /// The interned payload, converged or not.
    pub fn output(&self) -> &InternedOutput<P> {
        match self {
            InternedOutcome::Converged { output, .. } => output,
            InternedOutcome::Diverged { last, .. } => last,
        }
    }

    /// The evaluation telemetry, converged or not.
    pub fn stats(&self) -> &EvalStats {
        match self {
            InternedOutcome::Converged { stats, .. } | InternedOutcome::Diverged { stats, .. } => {
                stats
            }
        }
    }

    /// The EXPLAIN/profile report for this run (see
    /// [`EvalStats::explain`]).
    pub fn explain(&self) -> String {
        self.stats().explain()
    }

    /// Decodes into the classic `Database`-carrying [`EvalOutcome`],
    /// timing the decode into the stats' `decode` phase.
    pub fn materialize(self) -> EvalOutcome<P> {
        match self {
            InternedOutcome::Converged {
                output,
                steps,
                mut stats,
            } => {
                let t = std::time::Instant::now();
                let db = output.materialize();
                stats.phases.decode += t.elapsed().as_nanos() as u64;
                EvalOutcome::Converged {
                    output: db,
                    steps,
                    stats,
                }
            }
            InternedOutcome::Diverged {
                last,
                cap,
                mut stats,
            } => {
                let t = std::time::Instant::now();
                let db = last.materialize();
                stats.phases.decode += t.elapsed().as_nanos() as u64;
                EvalOutcome::Diverged {
                    last: db,
                    cap,
                    stats,
                }
            }
        }
    }
}

/// Per-key settled/unsettled marks over an [`InternedOutput`]'s rows.
///
/// Under the priority strategy the frontier pops keys best-value-first
/// and absorption makes `⊗` non-improving, so a popped key can never
/// improve again (the Dijkstra-style argument of the source paper's
/// Cor. 5.19): every popped row is **settled** — its value already
/// equals the least fixpoint's. The mark is then `exact`. The other
/// strategies give no such per-key guarantee; their marks are empty
/// and `exact` is false, and the partial instance is only a pointwise
/// lower bound (`J(t) ⊑ lfp`).
#[derive(Clone, Debug, Default)]
pub struct SettledMark {
    exact: bool,
    /// Per IDB predicate (in the output's compilation order), a bitmap
    /// over row indices; short vectors mean "unsettled past the end".
    rows: Vec<Vec<bool>>,
    count: u64,
}

impl SettledMark {
    /// The no-guarantee mark every non-priority driver produces:
    /// nothing settled, not exact.
    pub(crate) fn best_effort(npreds: usize) -> SettledMark {
        SettledMark {
            exact: false,
            rows: vec![Vec::new(); npreds],
            count: 0,
        }
    }

    /// An exact (settled-on-pop) mark with no rows settled yet.
    pub(crate) fn exact_empty(npreds: usize) -> SettledMark {
        SettledMark {
            exact: true,
            rows: vec![Vec::new(); npreds],
            count: 0,
        }
    }

    /// Marks one row settled.
    pub(crate) fn mark(&mut self, pred: usize, row: u32) {
        let bits = &mut self.rows[pred];
        let i = row as usize;
        if bits.len() <= i {
            bits.resize(i + 1, false);
        }
        if !bits[i] {
            bits[i] = true;
            self.count += 1;
        }
    }

    /// Clears one row's settled bit (defensive: an improved re-push
    /// means the earlier pop had not settled it after all).
    pub(crate) fn unmark(&mut self, pred: usize, row: u32) {
        let bits = &mut self.rows[pred];
        let i = row as usize;
        if i < bits.len() && bits[i] {
            bits[i] = false;
            self.count -= 1;
        }
    }

    /// Whether the settled rows are guaranteed to carry their final
    /// fixpoint values (priority strategy only).
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// Number of settled rows.
    pub fn settled_rows(&self) -> u64 {
        self.count
    }

    /// Whether row `row` of predicate index `pred` is settled.
    pub fn is_settled(&self, pred: usize, row: u32) -> bool {
        self.rows
            .get(pred)
            .and_then(|bits| bits.get(row as usize))
            .copied()
            .unwrap_or(false)
    }
}

/// The abort-time state of a governed run that stopped early: the
/// partially evaluated instance (interned, decode-free), the per-key
/// [`SettledMark`], and the run's final [`EvalStats`].
///
/// Everything in here is a *pointwise lower bound* on the least
/// fixpoint (`J(t) ⊑ lfp`, the loop invariant of Algorithm 1); the
/// settled subset is additionally **exact** when the mark says so.
#[derive(Clone, Debug)]
pub struct PartialOutput<P> {
    interned: InternedOutput<P>,
    settled: SettledMark,
    stats: EvalStats,
}

impl<P: Pops> PartialOutput<P> {
    pub(crate) fn new(interned: InternedOutput<P>, settled: SettledMark, stats: EvalStats) -> Self {
        PartialOutput {
            interned,
            settled,
            stats,
        }
    }

    /// The partial instance, interned. Feeding this back through the
    /// `*_interned_edb` entry points (as the retry module does) reuses
    /// its interner, so a warm retry mints the same ids.
    pub fn interned(&self) -> &InternedOutput<P> {
        &self.interned
    }

    /// Consumes the handle, keeping the interned payload.
    pub fn into_interned(self) -> InternedOutput<P> {
        self.interned
    }

    /// The per-key settled marks.
    pub fn settled(&self) -> &SettledMark {
        &self.settled
    }

    /// The telemetry snapshot at the abort.
    pub fn stats(&self) -> &EvalStats {
        &self.stats
    }

    /// Whether the settled subset is exact (see [`SettledMark`]).
    pub fn is_exact(&self) -> bool {
        self.settled.exact
    }

    /// The value of `pred(tuple)` **if that key is settled** — i.e.
    /// guaranteed final under an exact mark. Returns `None` for
    /// unsettled keys even when the partial instance holds a (lower
    /// bound) value for them.
    pub fn settled_value(&self, pred: &str, tuple: &[Constant]) -> Option<&P> {
        let idx = self.interned.idbs.iter().position(|(n, _)| n == pred)?;
        let rel = &self.interned.rels[idx];
        let mut key: Vec<u32> = Vec::with_capacity(tuple.len());
        for c in tuple {
            key.push(self.interned.interner.lookup(c)?);
        }
        let row = rel.rowid(&key)?;
        if self.settled.is_settled(idx, row) {
            Some(rel.val(row))
        } else {
            None
        }
    }

    /// Decodes the whole partial instance — a pointwise lower bound on
    /// the least fixpoint, settled or not.
    pub fn materialize(&self) -> Database<P> {
        self.interned.materialize()
    }

    /// Decodes only the settled rows: under an exact mark this is a
    /// sub-instance of the least fixpoint, bit-identical on every key
    /// it contains. Empty when nothing is settled.
    pub fn materialize_settled(&self) -> Database<P> {
        let mut db = Database::new();
        for (idx, ((name, arity), rel)) in self
            .interned
            .idbs
            .iter()
            .zip(&self.interned.rels)
            .enumerate()
        {
            let mut out = Relation::new(*arity);
            for (row, key, val) in rel.iter() {
                if self.settled.is_settled(idx, row) {
                    let tuple: Tuple = key
                        .iter()
                        .map(|&id| self.interned.interner.get(id).clone())
                        .collect();
                    out.set(tuple, val.clone());
                }
            }
            db.insert(name, out);
        }
        db
    }
}

/// A governed run that stopped early, with its abort-time state: the
/// typed [`EvalError`] plus the [`PartialOutput`] the driver captured
/// at the failing checkpoint. Returned by the `*_partial` entry
/// points; the classic entry points drop the partial and surface only
/// the error.
#[derive(Clone, Debug)]
pub struct AbortedEval<P> {
    error: EvalError,
    partial: PartialOutput<P>,
}

impl<P: Pops> AbortedEval<P> {
    pub(crate) fn new(error: EvalError, partial: PartialOutput<P>) -> Self {
        AbortedEval { error, partial }
    }

    /// The typed failure.
    pub fn error(&self) -> &EvalError {
        &self.error
    }

    /// The abort-time partial state.
    pub fn partial(&self) -> &PartialOutput<P> {
        &self.partial
    }

    /// Splits the carrier.
    pub fn into_parts(self) -> (EvalError, PartialOutput<P>) {
        (self.error, self.partial)
    }
}

impl<P: Pops> From<AbortedEval<P>> for EvalError {
    fn from(aborted: AbortedEval<P>) -> EvalError {
        aborted.error
    }
}

impl<P: Pops> std::fmt::Display for AbortedEval<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} settled row(s) captured{})",
            self.error,
            self.partial.settled.settled_rows(),
            if self.partial.is_exact() {
                ", exact"
            } else {
                ", lower bound only"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::driver::engine_seminaive_eval_interned;
    use crate::driver::EngineOpts;
    use dlo_core::examples_lib as ex;
    use dlo_core::relation::BoolDatabase;
    use dlo_pops::Trop;

    #[test]
    fn interned_output_answers_without_decode_and_materializes_equal() {
        let (program, edb) = ex::sssp_trop("a");
        let bools = BoolDatabase::new();
        let (out, steps) =
            engine_seminaive_eval_interned(&program, &edb, &bools, 1000, &EngineOpts::default())
                .expect("compiles")
                .converged()
                .unwrap();
        assert!(steps > 0);
        // Cheap queries on interned state.
        assert_eq!(out.get("L", &["d".into()]), Some(&Trop::finite(8.0)));
        assert_eq!(out.get("L", &["never-seen".into()]), None);
        assert_eq!(out.support_size("L"), out.relation("L").unwrap().len());
        assert_eq!(out.support_size("absent"), 0);
        // Full and per-pred materialization agree with the classic path.
        let reference = crate::driver::engine_seminaive_eval(&program, &edb, &bools, 1000)
            .expect("compiles")
            .unwrap();
        assert_eq!(out.materialize(), reference);
        assert_eq!(
            out.materialize_pred("L").as_ref(),
            reference.get("L"),
            "single-pred decode matches"
        );
    }
}
