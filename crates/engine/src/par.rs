//! Minimal scoped-thread parallelism (no external thread-pool crates).
//!
//! One shared atomic counter hands task indexes to `min(threads, tasks)`
//! scoped workers; each worker returns its `(index, result)` pairs and
//! the caller reassembles them in task order, so the merge downstream is
//! deterministic. Thread count comes from `DLO_ENGINE_THREADS` (set `1`
//! to force sequential execution) or `std::thread::available_parallelism`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The worker count the engine will use.
pub fn max_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        if let Ok(v) = std::env::var("DLO_ENGINE_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Runs `f(0..n)` across `threads` scoped workers, returning results in
/// task order. Falls back to a plain sequential map when parallelism
/// cannot help.
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(n))
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T)> = vec![];
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, t) in h.join().expect("engine worker panicked") {
                slots[i] = Some(t);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every task index visited"))
        .collect()
}

/// Runs `f` over owned work items across `threads` scoped workers.
///
/// Unlike [`run_indexed`] the items may hold mutable borrows (the
/// parallel-index-build path hands each worker `&mut ColumnRel`s), so
/// work cannot be handed out through a shared counter; items are dealt
/// round-robin into per-worker buckets instead, which balances well when
/// item costs are not front-loaded. Results are discarded — use this for
/// effects on the items themselves, and only where those effects are
/// order-independent (index builds are: each item owns its relation).
pub fn run_each<T, F>(work: Vec<T>, threads: usize, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let n = work.len();
    if threads <= 1 || n <= 1 {
        for w in work {
            f(w);
        }
        return;
    }
    let nbuckets = threads.min(n);
    let mut buckets: Vec<Vec<T>> = (0..nbuckets).map(|_| Vec::new()).collect();
    for (i, w) in work.into_iter().enumerate() {
        buckets[i % nbuckets].push(w);
    }
    std::thread::scope(|scope| {
        for bucket in buckets {
            let f = &f;
            scope.spawn(move || {
                for w in bucket {
                    f(w);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_each_visits_every_item_with_mutable_borrows() {
        let mut cells = vec![0u32; 17];
        let work: Vec<(usize, &mut u32)> = cells.iter_mut().enumerate().collect();
        run_each(work, 4, |(i, cell)| *cell = i as u32 + 1);
        assert_eq!(cells, (1..=17).collect::<Vec<_>>());
        // Sequential fallback takes the same path.
        let mut one = vec![0u32];
        run_each(one.iter_mut().collect::<Vec<_>>(), 8, |c| *c = 9);
        assert_eq!(one, vec![9]);
    }

    #[test]
    fn results_arrive_in_task_order() {
        let out = run_indexed(100, 4, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_matches() {
        assert_eq!(run_indexed(5, 1, |i| i + 1), vec![1, 2, 3, 4, 5]);
        assert_eq!(run_indexed(0, 8, |i| i), Vec::<usize>::new());
    }
}
