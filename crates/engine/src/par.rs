//! Minimal scoped-thread parallelism (no external thread-pool crates).
//!
//! One shared atomic counter hands task indexes to `min(threads, tasks)`
//! scoped workers; each worker returns its `(index, result)` pairs and
//! the caller reassembles them in task order, so the merge downstream is
//! deterministic. Thread count comes from `DLO_ENGINE_THREADS` (set `1`
//! to force sequential execution) or `std::thread::available_parallelism`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The worker count the engine will use.
pub fn max_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        if let Ok(v) = std::env::var("DLO_ENGINE_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Runs `f(0..n)` across `threads` scoped workers, returning results in
/// task order. Falls back to a plain sequential map when parallelism
/// cannot help.
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(n))
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T)> = vec![];
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, t) in h.join().expect("engine worker panicked") {
                slots[i] = Some(t);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every task index visited"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_task_order() {
        let out = run_indexed(100, 4, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_matches() {
        assert_eq!(run_indexed(5, 1, |i| i + 1), vec![1, 2, 3, 4, 5]);
        assert_eq!(run_indexed(0, 8, |i| i), Vec::<usize>::new());
    }
}
