//! Minimal scoped-thread parallelism (no external thread-pool crates).
//!
//! One shared atomic counter hands task indexes to `min(threads, tasks)`
//! scoped workers; each worker returns its `(index, result)` pairs and
//! the caller reassembles them in task order, so the merge downstream is
//! deterministic. Thread count comes from `DLO_ENGINE_THREADS` (set `1`
//! to force sequential execution) or `std::thread::available_parallelism`.
//!
//! **Panic containment:** every task body runs under
//! [`std::panic::catch_unwind`], on the sequential fallback too, so a
//! panicking task never unwinds across the pool (which would abort the
//! scope and take the process down with it). Both entry points return
//! `Err(message)` carrying the payload of the *lowest-indexed*
//! panicking task — deterministic at any thread count — and the drivers
//! surface it as `EvalError::WorkerPanic`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The worker count the engine will use.
pub fn max_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        if let Ok(v) = std::env::var("DLO_ENGINE_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Renders a caught panic payload (strings pass through; anything else
/// gets a placeholder).
pub(crate) fn payload_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f(0..n)` across `threads` scoped workers, returning results in
/// task order, or the contained panic message of the lowest-indexed
/// panicking task. Falls back to a plain sequential map (with the same
/// containment) when parallelism cannot help.
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Result<Vec<T>, String>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                Ok(t) => out.push(t),
                Err(p) => return Err(payload_message(p)),
            }
        }
        return Ok(out);
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let mut first_panic: Option<(usize, String)> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(n))
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(usize, T)> = vec![];
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break Ok(local);
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(i))) {
                            Ok(t) => local.push((i, t)),
                            // Stop this worker at the panic; peers drain
                            // the remaining indexes normally.
                            Err(p) => break Err((i, payload_message(p), local)),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            // The scoped closure never unwinds (every task body is
            // contained above), so join() only fails if the *runtime*
            // killed the thread — propagate that as a panic message too
            // rather than unwinding across the pool.
            match h.join() {
                Ok(Ok(local)) => {
                    for (i, t) in local {
                        slots[i] = Some(t);
                    }
                }
                Ok(Err((i, msg, local))) => {
                    for (j, t) in local {
                        slots[j] = Some(t);
                    }
                    if first_panic.as_ref().is_none_or(|(fi, _)| i < *fi) {
                        first_panic = Some((i, msg));
                    }
                }
                Err(p) => {
                    let msg = payload_message(p);
                    if first_panic.is_none() {
                        first_panic = Some((usize::MAX, msg));
                    }
                }
            }
        }
    });
    if let Some((_, msg)) = first_panic {
        return Err(msg);
    }
    Ok(slots
        .into_iter()
        .map(|s| s.expect("every task index visited"))
        .collect())
}

/// Runs `f` over owned work items across `threads` scoped workers.
///
/// Unlike [`run_indexed`] the items may hold mutable borrows (the
/// parallel-index-build path hands each worker `&mut ColumnRel`s), so
/// work cannot be handed out through a shared counter; items are dealt
/// round-robin into per-worker buckets instead, which balances well when
/// item costs are not front-loaded. Results are discarded — use this for
/// effects on the items themselves, and only where those effects are
/// order-independent (index builds are: each item owns its relation).
/// A panicking item is contained like in [`run_indexed`]; the message of
/// the lowest-numbered panicking item is returned.
pub fn run_each<T, F>(work: Vec<T>, threads: usize, f: F) -> Result<(), String>
where
    T: Send,
    F: Fn(T) + Sync,
{
    let n = work.len();
    if threads <= 1 || n <= 1 {
        for w in work {
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(w))) {
                return Err(payload_message(p));
            }
        }
        return Ok(());
    }
    let nbuckets = threads.min(n);
    let mut buckets: Vec<Vec<(usize, T)>> = (0..nbuckets).map(|_| Vec::new()).collect();
    for (i, w) in work.into_iter().enumerate() {
        buckets[i % nbuckets].push((i, w));
    }
    let mut first_panic: Option<(usize, String)> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                let f = &f;
                scope.spawn(move || {
                    for (i, w) in bucket {
                        if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(w))) {
                            return Err((i, payload_message(p)));
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err((i, msg))) => {
                    if first_panic.as_ref().is_none_or(|(fi, _)| i < *fi) {
                        first_panic = Some((i, msg));
                    }
                }
                Err(p) => {
                    let msg = payload_message(p);
                    if first_panic.is_none() {
                        first_panic = Some((usize::MAX, msg));
                    }
                }
            }
        }
    });
    match first_panic {
        Some((_, msg)) => Err(msg),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_each_visits_every_item_with_mutable_borrows() {
        let mut cells = vec![0u32; 17];
        let work: Vec<(usize, &mut u32)> = cells.iter_mut().enumerate().collect();
        run_each(work, 4, |(i, cell)| *cell = i as u32 + 1).expect("no panics");
        assert_eq!(cells, (1..=17).collect::<Vec<_>>());
        // Sequential fallback takes the same path.
        let mut one = vec![0u32];
        run_each(one.iter_mut().collect::<Vec<_>>(), 8, |c| *c = 9).expect("no panics");
        assert_eq!(one, vec![9]);
    }

    #[test]
    fn results_arrive_in_task_order() {
        let out = run_indexed(100, 4, |i| i * i).expect("no panics");
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback_matches() {
        assert_eq!(run_indexed(5, 1, |i| i + 1).unwrap(), vec![1, 2, 3, 4, 5]);
        assert_eq!(run_indexed(0, 8, |i| i).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn panicking_task_is_contained_deterministically() {
        // The lowest panicking index wins at every thread count, and
        // the panic never unwinds out of the call.
        for threads in [1, 2, 4, 8] {
            let err = run_indexed(40, threads, |i| {
                if i == 7 || i == 23 {
                    panic!("task {i} exploded");
                }
                i
            })
            .expect_err("must contain the panic");
            assert_eq!(err, "task 7 exploded", "threads={threads}");
        }
    }

    #[test]
    fn panicking_item_in_run_each_is_contained() {
        for threads in [1, 3, 6] {
            let err = run_each((0..20).collect::<Vec<_>>(), threads, |i| {
                if i >= 11 {
                    panic!("item {i} exploded");
                }
            })
            .expect_err("must contain the panic");
            assert_eq!(err, "item 11 exploded", "threads={threads}");
        }
    }
}
