//! The rule compiler: sum-products → executable join plans.
//!
//! For each sum-product (and, for semi-naïve evaluation, each IDB
//! occurrence `k` of Theorem 6.5's prefix-new / Δ / suffix-old split)
//! the compiler emits a [`Plan`]: an ordered list of [`Step`]s whose
//! atom arguments are resolved to *column positions* against interned
//! constants — the executor never hashes a string or clones a
//! `Constant`.
//!
//! Atom order is chosen greedily by **bound-variable coverage**: after
//! pre-binding `Var = const` equalities from the condition's conjunctive
//! spine, the compiler repeatedly picks the atom with the most
//! already-bound columns (tie-breaking toward fewer new variables, then
//! textual order). In a delta plan the Δ occurrence is forced first so
//! the (small) delta relation drives the join. Each step records which
//! columns are probed through a hash-prefix index ([`Step::mask`]),
//! which bind fresh slots, and which merely check.
//!
//! Head arguments compile to [`HeadOp`]s: slot copies, interned
//! constants, or — for key functions applied in the head (Sec. 4.5) —
//! [`HeadOp::Computed`] terms evaluated at emit time. Computed heads can
//! derive constants that were never interned at compile time; the
//! executor emits those as *fresh* integer cells and the drivers mint
//! ids for them between iterations (see [`crate::intern`]). The only
//! programs the compiler rejects are ones its columnar storage cannot
//! represent at all: arity > 32, or one head predicate used at two
//! arities.

use crate::intern::Interner;
use crate::storage::{ColMask, JoinMode};
use dlo_core::ast::{Atom, KeyFn, Program, Rule, SumProduct, Term, UnaryFn, Var};
use dlo_core::formula::{CmpOp, Formula};
use dlo_pops::Pops;
use std::collections::HashMap;

/// Reserved predicate-name suffix naming an **EDB edit delta** in the
/// variant rules the incremental maintenance driver
/// ([`crate::incremental`]) appends to a program: `E@dlt` holds the
/// rows of the current edit batch. The surface parser cannot produce
/// `@` in a predicate name, so the suffix never collides with user
/// programs. A binder on such a relation is forced first by the greedy
/// join order (like an IDB Δ occurrence) so edit-seed joins are driven
/// by the tiny batch instead of scanning the big stored relations.
pub(crate) const EDB_DELTA_SUFFIX: &str = "@dlt";

/// Reserved suffix for the **pre-edit snapshot** of an edited EDB
/// relation (`E@old`), read by occurrences left of the `@dlt`
/// occurrence in a telescoped variant rule.
pub(crate) const EDB_OLD_SUFFIX: &str = "@old";

/// Why a program cannot be compiled for the engine. Both variants are
/// structural limits of the flat columnar storage (not language gaps
/// like the old head-key-function rejection); the drivers surface them
/// as panics rather than falling back to a slower backend.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// An atom exceeds the engine's 32-column limit.
    ArityTooLarge,
    /// The same head predicate is used at two different arities
    /// (columnar storage fixes one arity per relation).
    HeadArityMismatch,
}

/// Which relation a step reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// A `P`-EDB relation (by `pops_edbs` table index).
    PopsEdb(usize),
    /// An IDB read from the *new* state `J(t)`.
    IdbNew(usize),
    /// An IDB read from the *old* state `J(t-1)`.
    IdbOld(usize),
    /// An IDB read from the delta `δ(t-1)`.
    IdbDelta(usize),
    /// A Boolean EDB guard (by `bool_edbs` table index).
    BoolEdb(usize),
}

/// A compiled key term over valuation slots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CTerm {
    /// The value of a valuation slot.
    Slot(usize),
    /// An interned constant.
    Const(u32),
    /// A key function applied to a term.
    Apply(KeyFn, Box<CTerm>),
}

/// A compiled conditional over valuation slots and interned constants.
#[derive(Clone, Debug)]
pub enum CFormula {
    /// Always true.
    True,
    /// Always false.
    False,
    /// A positive Boolean-EDB atom (by `bool_edbs` table index).
    BoolAtom {
        /// Table index of the Boolean predicate.
        pred: usize,
        /// Compiled argument terms.
        args: Vec<CTerm>,
    },
    /// Negation.
    Not(Box<CFormula>),
    /// Conjunction.
    And(Box<CFormula>, Box<CFormula>),
    /// Disjunction.
    Or(Box<CFormula>, Box<CFormula>),
    /// A key comparison.
    Cmp(CTerm, CmpOp, CTerm),
}

/// Where a probe-key column's value comes from.
#[derive(Clone, Debug)]
pub enum ProbeCol {
    /// A fixed interned constant.
    Const(u32),
    /// A slot bound by an earlier step.
    Slot(usize),
    /// A computed term (key function over bound slots); evaluation
    /// failure or an un-interned result means *no row can match*.
    Term(CTerm),
}

/// The factor position a step's row value feeds.
#[derive(Clone, Copy, Debug)]
pub struct FactorSlot {
    /// Index into the sum-product's factor list.
    pub index: usize,
}

/// One join participant, fully column-resolved.
#[derive(Clone, Debug)]
pub struct Step {
    /// The relation read.
    pub source: Source,
    /// Expected arity (rows of a different arity cannot match).
    pub arity: usize,
    /// Bitmask of probed columns (`0` = full scan).
    pub mask: ColMask,
    /// Probe-key sources, one per set mask bit, ascending by column.
    pub probe: Vec<ProbeCol>,
    /// `(column, slot)` pairs bound from the matched row.
    pub binds: Vec<(usize, usize)>,
    /// `(column, term)` equality checks evaluable once this step's binds
    /// are in place (repeated variables, key functions over bound vars).
    pub checks: Vec<(usize, CTerm)>,
    /// Columns accepted now and re-verified at emit time
    /// (key-function terms whose variables bind only later).
    pub wildcards: Vec<usize>,
    /// The factor this step supplies a value for (`None` for guards).
    pub factor: Option<FactorSlot>,
}

/// A head column emit operation.
#[derive(Clone, Debug)]
pub enum HeadOp {
    /// Copy a valuation slot.
    Slot(usize),
    /// A fixed interned constant.
    Const(u32),
    /// A key function over bound slots, evaluated at emit time. An
    /// unevaluable term (e.g. `+1` on a string) drops the derivation —
    /// mirroring the relational backend's `eval_args` — and a result
    /// outside the interned domain is emitted as a *fresh* cell for the
    /// driver to mint (see [`crate::exec::HeadVal`]).
    Computed(CTerm),
}

/// An executable join plan for one sum-product variant.
#[derive(Clone)]
pub struct Plan<P> {
    /// Global plan id, unique across a program's seed/delta/worklist
    /// plans — the key the telemetry layer attributes observed costs
    /// to ([`CompiledProgram::plan_metas`] decodes it back to a rule).
    pub pid: usize,
    /// Index of the originating rule, in program source order.
    pub rule_idx: usize,
    /// Human-readable plan skeleton (`head :- f₁ * f₂ …`, with the Δ
    /// occurrence marked), for profile reports.
    pub label: String,
    /// Target IDB (by `idbs` table index).
    pub head_pred: usize,
    /// How to assemble the emitted head key.
    pub head_cols: Vec<HeadOp>,
    /// Number of valuation slots (head vars ∪ sum-product vars).
    pub nslots: usize,
    /// Number of factors (value positions).
    pub nfactors: usize,
    /// Slots pre-bound by `Var = const` equalities in the condition's
    /// conjunctive spine.
    pub pre_bound: Vec<(usize, u32)>,
    /// Ordered join steps.
    pub steps: Vec<Step>,
    /// Per-factor value transforms, by factor index.
    pub factor_funcs: Vec<Option<UnaryFn<P>>>,
    /// Slots bound by no step: enumerated over the active domain.
    pub fill: Vec<usize>,
    /// The full compiled condition, evaluated per valuation.
    pub condition: CFormula,
    /// Optional scalar coefficient.
    pub coeff: Option<P>,
    /// Deferred wildcard checks: `(step, column, term)`.
    pub post_checks: Vec<(usize, usize, CTerm)>,
}

/// Predicate tables and compiled plans for a program.
#[derive(Clone)]
pub struct CompiledProgram<P> {
    /// IDB predicates `(name, arity)` in first-head order.
    pub idbs: Vec<(String, usize)>,
    /// Referenced `P`-EDB predicate names.
    pub pops_edbs: Vec<String>,
    /// Referenced Boolean predicate names.
    pub bool_edbs: Vec<String>,
    /// All-`New` plans, one per (rule, sum-product): the naïve ICO, also
    /// used for semi-naïve seeding.
    pub seed_plans: Vec<Plan<P>>,
    /// Semi-naïve differential plans: the `k`-split variants of every
    /// sum-product with ≥ 1 plain IDB factor, plus one full-recompute
    /// plan per sum-product whose IDB factors carry value functions
    /// (those are not differentiable through ⊖). IDB-free sum-products
    /// are covered by seeding alone (eq. 65).
    pub delta_plans: Vec<Plan<P>>,
    /// Worklist plans, grouped by the Δ occurrence's IDB: for each
    /// sum-product and each IDB occurrence `k`, one plan with occurrence
    /// `k` reading Δ and **every other occurrence reading New** (no
    /// prefix/suffix split — the frontier drivers have no global
    /// iteration boundary to split against). `worklist_plans[p]` holds
    /// every plan whose Δ occurrence is predicate `p`; firing them all
    /// whenever a `p`-row improves covers every derivation that row
    /// participates in.
    ///
    /// Unlike [`Self::delta_plans`], value-function-wrapped IDB factors
    /// get the occurrence split too: worklist Δ relations carry **full
    /// current values**, not `⊖` differences, so `func(Δ)` is exact and
    /// the split is sound for idempotent `⊕` (re-derivations merge to
    /// the same value).
    ///
    /// The per-group order is fixed at compile time (rule order, then
    /// occurrence order) and doubles as the **task order** of the
    /// parallel frontier: a batch's plans are fired — inline or fanned
    /// over the worker pool — in exactly this sequence, so the merged
    /// emission stream is thread-count-invariant.
    ///
    /// Compiled unconditionally — even for runs that never fire them —
    /// because a `Plan` is a one-off microsecond compile artifact
    /// (O(rules × occurrences) of them per program), unlike *indexes*,
    /// which cost per-row maintenance forever and are therefore gated
    /// behind [`Self::worklist_index_requirements`].
    pub worklist_plans: Vec<Vec<Plan<P>>>,
    /// Per-IDB **set-valued** flags (`true` for the magic predicates of
    /// a demand rewrite, `dlo_core::demand`): the drivers store such
    /// rows with value `1` on first insertion and never merge into
    /// them again — demand lives on the Bool lattice {absent, present}
    /// even when the program's values do not, which is what keeps the
    /// magic rewrite convergent over non-idempotent `⊕` (`1 ⊕ 1` would
    /// otherwise pump forever around demand cycles).
    pub set_valued: Vec<bool>,
}

/// Telemetry metadata for one compiled plan, indexed by [`Plan::pid`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanMeta {
    /// Index of the originating rule, in program source order.
    pub rule_idx: usize,
    /// The plan's skeleton label (shared with [`Plan::label`]).
    pub label: String,
    /// Plan family: `"seed"`, `"delta"`, or `"worklist"`.
    pub kind: &'static str,
    /// Join strategy over the plan's probing steps under the resolved
    /// [`JoinMode`]: `"merge"` (all probes arranged), `"hash"` (all
    /// hash-indexed), `"mixed"`, or `"scan"` (no probing step at all).
    pub join: &'static str,
}

impl<P: Pops> CompiledProgram<P> {
    /// Total number of compiled plans (`pid`s run `0..total_plans()`).
    pub fn total_plans(&self) -> usize {
        self.seed_plans.len()
            + self.delta_plans.len()
            + self.worklist_plans.iter().map(|g| g.len()).sum::<usize>()
    }

    /// Per-plan telemetry metadata, ordered by [`Plan::pid`], with join
    /// strategies attributed under the default [`JoinMode`]. Drivers
    /// use [`Self::plan_metas_for`] with the mode they resolved.
    pub fn plan_metas(&self) -> Vec<PlanMeta> {
        self.plan_metas_for(JoinMode::default())
    }

    /// Per-plan telemetry metadata with each plan's join strategy
    /// resolved under `mode` — the per-occurrence merge-vs-hash choice
    /// `explain()` reports.
    pub fn plan_metas_for(&self, mode: JoinMode) -> Vec<PlanMeta> {
        let mut metas = vec![
            PlanMeta {
                rule_idx: 0,
                label: String::new(),
                kind: "seed",
                join: "scan",
            };
            self.total_plans()
        ];
        let fill = |metas: &mut Vec<PlanMeta>, plan: &Plan<P>, kind: &'static str| {
            metas[plan.pid] = PlanMeta {
                rule_idx: plan.rule_idx,
                label: plan.label.clone(),
                kind,
                join: plan_join(plan, mode),
            };
        };
        for plan in &self.seed_plans {
            fill(&mut metas, plan, "seed");
        }
        for plan in &self.delta_plans {
            fill(&mut metas, plan, "delta");
        }
        for plan in self.worklist_plans.iter().flatten() {
            fill(&mut metas, plan, "worklist");
        }
        metas
    }

    /// All `(source, mask)` index requirements across the seed and
    /// semi-naïve delta plans (what [`crate::driver`]'s loops read).
    pub fn index_requirements(&self) -> Vec<(Source, ColMask)> {
        let mut out = vec![];
        for plan in self.seed_plans.iter().chain(&self.delta_plans) {
            for step in &plan.steps {
                if step.mask != 0 && !out.contains(&(step.source, step.mask)) {
                    out.push((step.source, step.mask));
                }
            }
        }
        out
    }

    /// All `(source, mask)` index requirements of the worklist plans —
    /// kept separate from [`Self::index_requirements`] so the global
    /// semi-naïve loop never pays for indexes only the frontier drivers
    /// probe.
    pub fn worklist_index_requirements(&self) -> Vec<(Source, ColMask)> {
        let mut out = vec![];
        for plan in self.worklist_plans.iter().flatten() {
            for step in &plan.steps {
                if step.mask != 0 && !out.contains(&(step.source, step.mask)) {
                    out.push((step.source, step.mask));
                }
            }
        }
        out
    }

    /// The worklist plans fired when a row of IDB `pred` improves, in
    /// the compile-time order the frontier drivers use as their
    /// deterministic task order.
    pub fn worklist_plans_for(&self, pred: usize) -> &[Plan<P>] {
        &self.worklist_plans[pred]
    }
}

/// Compiles `program`, interning every program constant into `interner`.
pub fn compile<P: Pops>(
    program: &Program<P>,
    interner: &mut Interner,
) -> Result<CompiledProgram<P>, CompileError> {
    compile_demand(program, interner, &[])
}

/// [`compile`] with **demand metadata**: IDBs named in `set_valued`
/// (the magic predicates of `dlo_core::demand::magic_rewrite`) are
/// flagged for set-valued storage — the drivers insert their rows at
/// value `1` once and never merge again.
pub fn compile_demand<P: Pops>(
    program: &Program<P>,
    interner: &mut Interner,
    set_valued: &[String],
) -> Result<CompiledProgram<P>, CompileError> {
    let mut c = Compiler {
        interner,
        idbs: vec![],
        pops_edbs: vec![],
        bool_edbs: vec![],
    };
    for rule in &program.rules {
        let name = &rule.head.pred;
        match c.idbs.iter().find(|(n, _)| n == name) {
            // Columnar storage has one fixed arity per relation; a head
            // predicate used at two arities cannot be represented.
            Some((_, arity)) if *arity != rule.head.args.len() => {
                return Err(CompileError::HeadArityMismatch)
            }
            Some(_) => {}
            None => c.idbs.push((name.clone(), rule.head.args.len())),
        }
    }
    let mut seed_plans = vec![];
    let mut delta_plans = vec![];
    let mut worklist_plans: Vec<Vec<Plan<P>>> = vec![vec![]; c.idbs.len()];
    for (rule_idx, rule) in program.rules.iter().enumerate() {
        for sp in &rule.body {
            let idb_occurrences: Vec<usize> = sp
                .factors
                .iter()
                .enumerate()
                .filter(|(_, f)| c.idbs.iter().any(|(n, _)| n == &f.atom.pred))
                .map(|(fi, _)| fi)
                .collect();
            let wrapped_idb = idb_occurrences
                .iter()
                .any(|&fi| sp.factors[fi].func.is_some());
            seed_plans.push(c.compile_sp(rule_idx, rule, sp, &|_| OccSource::New, None)?);
            if idb_occurrences.is_empty() {
                continue; // eq. (65): constant sum-products never re-fire.
            }
            // Worklist variants: occurrence k reads Δ, everything else
            // reads New (including value-function-wrapped factors — Δ
            // carries full values, see `CompiledProgram::worklist_plans`).
            for (k, &fi) in idb_occurrences.iter().enumerate() {
                let sel = move |occ: usize| {
                    if occ == k {
                        OccSource::Delta
                    } else {
                        OccSource::New
                    }
                };
                let pred = c
                    .idb_id(&sp.factors[fi].atom.pred)
                    .expect("occurrence list filtered on IDBs");
                worklist_plans[pred].push(c.compile_sp(rule_idx, rule, sp, &sel, Some(k))?);
            }
            if wrapped_idb {
                // Value functions make the occurrence split unsound in
                // general; re-derive the whole sum-product against the
                // new state every iteration instead.
                delta_plans.push(c.compile_sp(rule_idx, rule, sp, &|_| OccSource::New, None)?);
            } else {
                for k in 0..idb_occurrences.len() {
                    let sel = move |occ: usize| match occ.cmp(&k) {
                        std::cmp::Ordering::Less => OccSource::New,
                        std::cmp::Ordering::Equal => OccSource::Delta,
                        std::cmp::Ordering::Greater => OccSource::Old,
                    };
                    delta_plans.push(c.compile_sp(rule_idx, rule, sp, &sel, Some(k))?);
                }
            }
        }
    }
    let set_valued_flags = c.idbs.iter().map(|(n, _)| set_valued.contains(n)).collect();
    // Assign global plan ids: seed, then delta, then worklist plans in
    // group order — the key telemetry attributes observed costs to.
    for (pid, plan) in seed_plans
        .iter_mut()
        .chain(delta_plans.iter_mut())
        .chain(worklist_plans.iter_mut().flatten())
        .enumerate()
    {
        plan.pid = pid;
    }
    Ok(CompiledProgram {
        idbs: c.idbs,
        pops_edbs: c.pops_edbs,
        bool_edbs: c.bool_edbs,
        seed_plans,
        delta_plans,
        worklist_plans,
        set_valued: set_valued_flags,
    })
}

/// Which state the `i`-th IDB occurrence of a sum-product reads.
#[derive(Clone, Copy, PartialEq, Eq)]
enum OccSource {
    New,
    Old,
    Delta,
}

struct Compiler<'a> {
    interner: &'a mut Interner,
    idbs: Vec<(String, usize)>,
    pops_edbs: Vec<String>,
    bool_edbs: Vec<String>,
}

impl Compiler<'_> {
    fn idb_id(&self, pred: &str) -> Option<usize> {
        self.idbs.iter().position(|(n, _)| n == pred)
    }

    fn pops_edb_id(&mut self, pred: &str) -> usize {
        match self.pops_edbs.iter().position(|n| n == pred) {
            Some(i) => i,
            None => {
                self.pops_edbs.push(pred.to_string());
                self.pops_edbs.len() - 1
            }
        }
    }

    fn bool_edb_id(&mut self, pred: &str) -> usize {
        match self.bool_edbs.iter().position(|n| n == pred) {
            Some(i) => i,
            None => {
                self.bool_edbs.push(pred.to_string());
                self.bool_edbs.len() - 1
            }
        }
    }

    fn compile_term(&mut self, t: &Term, slot_of: &HashMap<Var, usize>) -> CTerm {
        match t {
            Term::Var(v) => CTerm::Slot(slot_of[v]),
            Term::Const(c) => CTerm::Const(self.interner.intern(c)),
            Term::Apply(f, inner) => CTerm::Apply(*f, Box::new(self.compile_term(inner, slot_of))),
        }
    }

    fn compile_formula(&mut self, phi: &Formula, slot_of: &HashMap<Var, usize>) -> CFormula {
        match phi {
            Formula::True => CFormula::True,
            Formula::False => CFormula::False,
            Formula::BoolAtom(a) => CFormula::BoolAtom {
                pred: self.bool_edb_id(&a.pred),
                args: a
                    .args
                    .iter()
                    .map(|t| self.compile_term(t, slot_of))
                    .collect(),
            },
            Formula::Not(f) => CFormula::Not(Box::new(self.compile_formula(f, slot_of))),
            Formula::And(a, b) => CFormula::And(
                Box::new(self.compile_formula(a, slot_of)),
                Box::new(self.compile_formula(b, slot_of)),
            ),
            Formula::Or(a, b) => CFormula::Or(
                Box::new(self.compile_formula(a, slot_of)),
                Box::new(self.compile_formula(b, slot_of)),
            ),
            Formula::Cmp(l, op, r) => CFormula::Cmp(
                self.compile_term(l, slot_of),
                *op,
                self.compile_term(r, slot_of),
            ),
        }
    }

    /// Mirrors the relational backend's `equality_bindings`: pre-binds
    /// `Var = const` equalities on the conjunctive spine, first
    /// occurrence winning.
    fn equality_bindings(
        &mut self,
        phi: &Formula,
        slot_of: &HashMap<Var, usize>,
        out: &mut Vec<(usize, u32)>,
    ) {
        match phi {
            Formula::And(a, b) => {
                self.equality_bindings(a, slot_of, out);
                self.equality_bindings(b, slot_of, out);
            }
            Formula::Cmp(Term::Var(v), CmpOp::Eq, Term::Const(c))
            | Formula::Cmp(Term::Const(c), CmpOp::Eq, Term::Var(v)) => {
                let slot = slot_of[v];
                if !out.iter().any(|(s, _)| *s == slot) {
                    out.push((slot, self.interner.intern(c)));
                }
            }
            _ => {}
        }
    }

    fn term_vars_bound(t: &Term, bound: &[bool], slot_of: &HashMap<Var, usize>) -> bool {
        let mut vars = vec![];
        t.vars(&mut vars);
        vars.iter().all(|v| bound[slot_of[v]])
    }

    fn compile_sp<P: Pops>(
        &mut self,
        rule_idx: usize,
        rule: &Rule<P>,
        sp: &SumProduct<P>,
        occ_source: &dyn Fn(usize) -> OccSource,
        delta_k: Option<usize>,
    ) -> Result<Plan<P>, CompileError> {
        // The profile-report skeleton: head and factor predicate names
        // (values and conditions elided — `P` need not be printable),
        // with the Δ-driven occurrence marked.
        let mut label = format!("{} :- ", rule.head.pred);
        for (i, f) in sp.factors.iter().enumerate() {
            if i > 0 {
                label.push_str(" * ");
            }
            label.push_str(&f.atom.pred);
        }
        if let Some(k) = delta_k {
            label.push_str(&format!(" [\u{0394}@{k}]"));
        }
        // Slot layout: head vars first, then remaining sum-product vars
        // (the relational backend's `vars` order).
        let mut vars: Vec<Var> = vec![];
        rule.head.vars(&mut vars);
        for v in sp.vars() {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        let slot_of: HashMap<Var, usize> = vars.iter().enumerate().map(|(i, v)| (*v, i)).collect();
        let nslots = vars.len();

        let head_cols: Vec<HeadOp> = rule
            .head
            .args
            .iter()
            .map(|t| match t {
                Term::Var(v) => HeadOp::Slot(slot_of[v]),
                Term::Const(c) => HeadOp::Const(self.interner.intern(c)),
                t @ Term::Apply(..) => HeadOp::Computed(self.compile_term(t, &slot_of)),
            })
            .collect();

        let mut pre_bound = vec![];
        self.equality_bindings(&sp.condition, &slot_of, &mut pre_bound);

        // Binders: factors (with their IDB-occurrence source), then the
        // condition's conjunctive guard atoms.
        struct Binder<'b> {
            atom: &'b Atom,
            source: Source,
            factor: Option<FactorSlot>,
        }
        let mut binders: Vec<Binder> = vec![];
        let mut occ = 0usize;
        for (fi, f) in sp.factors.iter().enumerate() {
            if f.atom.args.len() > 32 {
                return Err(CompileError::ArityTooLarge);
            }
            let source = match self.idb_id(&f.atom.pred) {
                Some(p) => match occ_source(occ) {
                    OccSource::New => {
                        occ += 1;
                        Source::IdbNew(p)
                    }
                    OccSource::Old => {
                        occ += 1;
                        Source::IdbOld(p)
                    }
                    OccSource::Delta => {
                        occ += 1;
                        Source::IdbDelta(p)
                    }
                },
                None => Source::PopsEdb(self.pops_edb_id(&f.atom.pred)),
            };
            binders.push(Binder {
                atom: &f.atom,
                source,
                factor: Some(FactorSlot { index: fi }),
            });
        }
        for a in sp.condition.conjunctive_atoms() {
            if a.args.len() > 32 {
                return Err(CompileError::ArityTooLarge);
            }
            binders.push(Binder {
                atom: a,
                source: Source::BoolEdb(self.bool_edb_id(&a.pred)),
                factor: None,
            });
        }

        // Greedy ordering by bound-column coverage. The Δ occurrence is
        // forced first so the small delta relation drives the join.
        let mut bound = vec![false; nslots];
        for &(s, _) in &pre_bound {
            bound[s] = true;
        }
        let mut order: Vec<usize> = vec![];
        let mut remaining: Vec<usize> = (0..binders.len()).collect();
        // An EDB edit delta (`E@dlt`, see [`EDB_DELTA_SUFFIX`]) plays
        // the same role in an incremental-maintenance variant rule as
        // the IDB Δ does in a delta plan: tiny, and the reason the plan
        // fires at all — so it gets the same forced-first treatment.
        let forced = binders
            .iter()
            .position(|b| matches!(b.source, Source::IdbDelta(_)))
            .or_else(|| {
                binders.iter().position(|b| {
                    matches!(b.source, Source::PopsEdb(_))
                        && b.atom.pred.ends_with(EDB_DELTA_SUFFIX)
                })
            });
        if let Some(di) = forced {
            order.push(di);
            remaining.retain(|&i| i != di);
            bind_atom_vars(binders[di].atom, &slot_of, &mut bound);
        }
        while !remaining.is_empty() {
            let mut best = 0usize;
            let mut best_score = (usize::MAX, usize::MAX, usize::MAX);
            for (ri, &bi) in remaining.iter().enumerate() {
                let atom = binders[bi].atom;
                let mut probeable = 0usize;
                let mut new_vars: Vec<usize> = vec![];
                for t in &atom.args {
                    match t {
                        Term::Const(_) => probeable += 1,
                        Term::Var(v) => {
                            let s = slot_of[v];
                            if bound[s] {
                                probeable += 1;
                            } else if !new_vars.contains(&s) {
                                new_vars.push(s);
                            }
                        }
                        t @ Term::Apply(..) => {
                            if Self::term_vars_bound(t, &bound, &slot_of) {
                                probeable += 1;
                            }
                        }
                    }
                }
                // Lexicographic: most probeable cols, fewest new vars,
                // earliest textual position.
                let score = (usize::MAX - probeable, new_vars.len(), bi);
                if score < best_score {
                    best_score = score;
                    best = ri;
                }
            }
            let bi = remaining.remove(best);
            order.push(bi);
            bind_atom_vars(binders[bi].atom, &slot_of, &mut bound);
        }

        // Emit steps in the chosen order, tracking bound slots.
        let mut bound = vec![false; nslots];
        for &(s, _) in &pre_bound {
            bound[s] = true;
        }
        let mut steps: Vec<Step> = vec![];
        let mut post_checks: Vec<(usize, usize, CTerm)> = vec![];
        for &bi in &order {
            let binder = &binders[bi];
            let atom = binder.atom;
            let mut mask: ColMask = 0;
            let mut probe = vec![];
            let mut binds = vec![];
            let mut checks = vec![];
            let mut wildcards = vec![];
            let mut local_bound: Vec<usize> = vec![];
            for (col, t) in atom.args.iter().enumerate() {
                match t {
                    Term::Const(c) => {
                        mask |= 1 << col;
                        probe.push(ProbeCol::Const(self.interner.intern(c)));
                    }
                    Term::Var(v) => {
                        let s = slot_of[v];
                        if bound[s] {
                            mask |= 1 << col;
                            probe.push(ProbeCol::Slot(s));
                        } else if local_bound.contains(&s) {
                            checks.push((col, CTerm::Slot(s)));
                        } else {
                            binds.push((col, s));
                            local_bound.push(s);
                        }
                    }
                    t @ Term::Apply(..) => {
                        let ct = self.compile_term(t, &slot_of);
                        if Self::term_vars_bound(t, &bound, &slot_of) {
                            mask |= 1 << col;
                            probe.push(ProbeCol::Term(ct));
                        } else {
                            let mut tvars = vec![];
                            t.vars(&mut tvars);
                            if tvars
                                .iter()
                                .all(|v| bound[slot_of[v]] || local_bound.contains(&slot_of[v]))
                            {
                                checks.push((col, ct));
                            } else {
                                wildcards.push(col);
                                post_checks.push((steps.len(), col, ct));
                            }
                        }
                    }
                }
            }
            for &s in &local_bound {
                bound[s] = true;
            }
            steps.push(Step {
                source: binder.source,
                arity: atom.args.len(),
                mask,
                probe,
                binds,
                checks,
                wildcards,
                factor: binder.factor,
            });
        }

        let fill: Vec<usize> = (0..nslots).filter(|&s| !bound[s]).collect();
        let condition = self.compile_formula(&sp.condition, &slot_of);
        Ok(Plan {
            pid: 0, // assigned globally after compilation
            rule_idx,
            label,
            head_pred: self
                .idb_id(&rule.head.pred)
                .expect("head is an IDB by construction"),
            head_cols,
            nslots,
            nfactors: sp.factors.len(),
            pre_bound,
            steps,
            factor_funcs: sp.factors.iter().map(|f| f.func.clone()).collect(),
            fill,
            condition,
            coeff: sp.coeff.clone(),
            post_checks,
        })
    }
}

/// The join-strategy tag of one plan under `mode`: what each probing
/// step dispatches to, folded across steps.
fn plan_join<P: Pops>(plan: &Plan<P>, mode: JoinMode) -> &'static str {
    let mut merge = 0usize;
    let mut hash = 0usize;
    for step in &plan.steps {
        if step.mask == 0 {
            continue;
        }
        if mode.arranged(step.arity, step.mask) {
            merge += 1;
        } else {
            hash += 1;
        }
    }
    match (merge, hash) {
        (0, 0) => "scan",
        (_, 0) => "merge",
        (0, _) => "hash",
        _ => "mixed",
    }
}

fn bind_atom_vars(atom: &Atom, slot_of: &HashMap<Var, usize>, bound: &mut [bool]) {
    let mut vars = vec![];
    atom.vars(&mut vars);
    for v in vars {
        bound[slot_of[&v]] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlo_core::ast::{Factor, SumProduct};
    use dlo_core::parse_program;
    use dlo_pops::Trop;

    #[test]
    fn apsp_compiles_with_delta_variants() {
        let prog: dlo_core::Program<Trop> =
            parse_program("T(X, Y) :- E(X, Y) + T(X, Z) * E(Z, Y).").unwrap();
        let mut interner = Interner::new();
        let c = compile(&prog, &mut interner).unwrap();
        assert_eq!(c.idbs, vec![("T".to_string(), 2)]);
        assert_eq!(c.pops_edbs, vec!["E".to_string()]);
        // Two seed plans (one per sum-product), one delta variant (the
        // recursive sum-product has exactly one IDB occurrence).
        assert_eq!(c.seed_plans.len(), 2);
        assert_eq!(c.delta_plans.len(), 1);
        // The delta plan is driven by the Δ occurrence of T.
        let dp = &c.delta_plans[0];
        assert!(matches!(dp.steps[0].source, Source::IdbDelta(0)));
        // The trailing E(Z, Y) probes on the Z column bound by T(X, Z).
        assert!(matches!(dp.steps[1].source, Source::PopsEdb(0)));
        assert_eq!(dp.steps[1].mask, 0b01);
        assert!(dp.fill.is_empty());
    }

    #[test]
    fn quadratic_tc_gets_two_delta_variants() {
        let prog: dlo_core::Program<Trop> =
            parse_program("T(X, Y) :- E(X, Y) + T(X, Z) * T(Z, Y).").unwrap();
        let mut interner = Interner::new();
        let c = compile(&prog, &mut interner).unwrap();
        assert_eq!(c.delta_plans.len(), 2);
        // k = 0: Δ then New; k = 1: Δ (occurrence 1) then New-prefix.
        assert!(matches!(
            c.delta_plans[0].steps[0].source,
            Source::IdbDelta(0)
        ));
        assert!(matches!(
            c.delta_plans[0].steps[1].source,
            Source::IdbOld(0)
        ));
        assert!(matches!(
            c.delta_plans[1].steps[0].source,
            Source::IdbDelta(0)
        ));
        assert!(matches!(
            c.delta_plans[1].steps[1].source,
            Source::IdbNew(0)
        ));
    }

    #[test]
    fn worklist_plans_are_grouped_by_delta_pred() {
        // Quadratic TC: two IDB occurrences ⇒ two worklist plans, both
        // grouped under T, each driven by its Δ occurrence with the
        // *other* occurrence reading New (never Old — there is no global
        // iteration boundary in the frontier drivers).
        let prog: dlo_core::Program<Trop> =
            parse_program("T(X, Y) :- E(X, Y) + T(X, Z) * T(Z, Y).").unwrap();
        let mut interner = Interner::new();
        let c = compile(&prog, &mut interner).unwrap();
        assert_eq!(c.worklist_plans.len(), 1);
        let plans = &c.worklist_plans[0];
        assert_eq!(plans.len(), 2);
        for plan in plans {
            assert!(matches!(plan.steps[0].source, Source::IdbDelta(0)));
            assert!(matches!(plan.steps[1].source, Source::IdbNew(0)));
            assert!(!plan
                .steps
                .iter()
                .any(|s| matches!(s.source, Source::IdbOld(_))));
        }
        // The delta masks worklist plans probe are reported separately.
        let reqs = c.worklist_index_requirements();
        assert!(reqs
            .iter()
            .any(|(s, _)| matches!(s, Source::IdbNew(0) | Source::IdbDelta(0))));
    }

    #[test]
    fn equality_prebinding_reaches_probe_masks() {
        // Single-source: L(X) :- {1 | X = a} ⊕ Σ_z L(Z) ⊗ E(Z, X).
        let prog: dlo_core::Program<Trop> =
            parse_program("L(X) :- 1 | X = a.\nL(X) :- L(Z) * E(Z, X).").unwrap();
        let mut interner = Interner::new();
        let c = compile(&prog, &mut interner).unwrap();
        let indicator = &c.seed_plans[0];
        assert_eq!(indicator.pre_bound.len(), 1);
        assert!(indicator.steps.is_empty());
        assert!(indicator.fill.is_empty());
    }

    #[test]
    fn head_key_function_compiles_to_a_computed_emit() {
        use dlo_core::ast::{Atom, Program, Term};
        let mut p = Program::<Trop>::new();
        p.rule(
            Atom::new(
                "W",
                vec![Term::Apply(KeyFn::AddInt(1), Box::new(Term::v(0)))],
            ),
            vec![SumProduct::new(vec![Factor::atom("V", vec![Term::v(0)])])],
        );
        let mut interner = Interner::new();
        let c = compile(&p, &mut interner).expect("head key functions compile natively");
        let head = &c.seed_plans[0].head_cols;
        assert_eq!(head.len(), 1);
        match &head[0] {
            HeadOp::Computed(CTerm::Apply(KeyFn::AddInt(1), inner)) => {
                assert_eq!(**inner, CTerm::Slot(0));
            }
            other => panic!("expected a computed head op, got {other:?}"),
        }
    }
}
