//! Resource governance for the evaluation drivers: checkpointed
//! budget checks, cancellation polls, and the shared abort tail that
//! turns an interrupted run into a typed [`EvalError`].
//!
//! A [`Governor`] is created by each driver right next to its
//! [`Collector`] and consulted at every loop checkpoint — the
//! **phase** boundaries (before the EDB index build and at the seed
//! round), each naïve/semi-naïve **iteration** top, each FIFO worklist
//! **generation**, and each priority-frontier **bucket** pop. A
//! post-merge re-check would be redundant: the very next loop-top
//! checkpoint fires before any further join work starts. All
//! checks run on the coordinating thread — never inside the per-tuple
//! loops — so governance costs a couple of branches plus at most one
//! `Instant::now()` per checkpoint and the hot paths stay untouched.
//! The checks increment the `budget_checks` / `cancel_polls` counters,
//! which are therefore thread-invariant like every other counter, and
//! stay `0` when governance is off. Which checkpoint detected a stop
//! is recorded as the [`Checkpoint`] granularity on the abort trace
//! event, so traces distinguish a deadline caught at a coarse boundary
//! from one caught mid-loop.
//!
//! An interrupted run flows through [`abort_error`]: the collector
//! emits a [`TraceEvent::Abort`](dlo_core::eval::stats::TraceEvent)
//! (tagged with the checkpoint granularity and the settled-row count)
//! followed by the usual `RunEnd { converged: false }` (so JSONL sinks
//! flush), and the completed [`EvalStats`] snapshot rides inside the
//! returned error. The partially evaluated instance itself is no
//! longer dropped: the drivers capture it as a
//! [`PartialOutput`](crate::output::PartialOutput) next to the error —
//! exact on the settled frontier under the priority strategy, a
//! best-effort lower bound elsewhere.

use crate::driver::EngineOpts;
use crate::telemetry::Collector;
use dlo_core::eval::stats::EvalStats;
use dlo_core::eval::{BudgetKind, CancelToken, EvalBudget, EvalError};
use std::time::{Duration, Instant};

/// The loop granularity at which a governance checkpoint fired —
/// recorded on the abort trace event so a trace shows whether a stop
/// was caught at a coarse boundary (a whole seed phase blown past the
/// deadline) or mid-loop (one bucket over).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Checkpoint {
    /// A non-loop boundary: the seed phase before the first iteration.
    Phase,
    /// A naïve / semi-naïve global iteration.
    Iteration,
    /// A FIFO worklist generation.
    Generation,
    /// A priority-frontier bucket pop.
    Bucket,
}

impl Checkpoint {
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            Checkpoint::Phase => "phase",
            Checkpoint::Iteration => "iteration",
            Checkpoint::Generation => "generation",
            Checkpoint::Bucket => "bucket",
        }
    }
}

/// Why a governed run stopped early — the driver-internal precursor of
/// the run-phase [`EvalError`] variants ([`abort_error`] adds the final
/// stats snapshot once the collector is finished).
pub(crate) enum Abort {
    /// An [`EvalBudget`] ceiling other than the deadline was reached.
    Budget {
        resource: BudgetKind,
        limit: u64,
        used: u64,
    },
    /// The wall-clock deadline passed.
    Deadline {
        deadline: Duration,
        elapsed: Duration,
    },
    /// The run's [`CancelToken`] was flipped.
    Cancelled,
    /// A worker panicked inside the pool (contained by [`crate::par`]).
    WorkerPanic { message: String },
}

impl Abort {
    /// The `reason` string of the emitted
    /// [`TraceEvent::Abort`](dlo_core::eval::stats::TraceEvent).
    pub(crate) fn reason(&self) -> String {
        match self {
            Abort::Budget {
                resource,
                limit,
                used,
            } => format!("budget: {used} {resource} observed, limit {limit}"),
            Abort::Deadline { deadline, elapsed } => {
                format!("deadline: {elapsed:?} elapsed, deadline {deadline:?}")
            }
            Abort::Cancelled => "cancelled".to_string(),
            Abort::WorkerPanic { message } => format!("worker panic: {message}"),
        }
    }

    /// Attaches the finished stats snapshot, producing the public error.
    pub(crate) fn into_error(self, stats: EvalStats) -> EvalError {
        let stats = Box::new(stats);
        match self {
            Abort::Budget {
                resource,
                limit,
                used,
            } => EvalError::BudgetExhausted {
                resource,
                limit,
                used,
                stats,
            },
            Abort::Deadline { deadline, elapsed } => EvalError::DeadlineExceeded {
                deadline,
                elapsed,
                stats,
            },
            Abort::Cancelled => EvalError::Cancelled { stats },
            Abort::WorkerPanic { message } => EvalError::WorkerPanic { message, stats },
        }
    }
}

/// Per-run governance state: the budget, the optional cancel token, and
/// the run's start instant (backdated by `setup_ns` so the deadline
/// covers compile/intern time too, as documented on
/// [`EvalBudget::deadline`]).
pub(crate) struct Governor {
    budget: EvalBudget,
    cancel: Option<CancelToken>,
    start: Instant,
    limited: bool,
}

impl Governor {
    pub(crate) fn new(opts: &EngineOpts, setup_ns: u64) -> Governor {
        let now = Instant::now();
        Governor {
            budget: opts.budget.clone(),
            cancel: opts.cancel.clone(),
            start: now
                .checked_sub(Duration::from_nanos(setup_ns))
                .unwrap_or(now),
            limited: opts.budget.is_limited(),
        }
    }

    /// One phase-boundary check. `steps` is the number of phases the
    /// driver has **completed** (in its own step semantics: global
    /// iterations, generations, or frontier batches); a step budget of
    /// `n` therefore allows at most `n` phases to run. Row and minted-id
    /// ceilings compare the live counters the same way (`used ≥ limit`
    /// aborts), so a run stops within one phase of crossing a line —
    /// never mid-merge. Increments `cancel_polls` / `budget_checks` so
    /// governed runs are auditable from their stats alone.
    #[inline]
    pub(crate) fn check(&self, steps: u64, col: &mut Collector) -> Result<(), Abort> {
        if let Some(token) = &self.cancel {
            col.stats.counters.cancel_polls += 1;
            if token.is_cancelled() {
                return Err(Abort::Cancelled);
            }
        }
        if !self.limited {
            return Ok(());
        }
        col.stats.counters.budget_checks += 1;
        if let Some(deadline) = self.budget.deadline {
            let elapsed = self.start.elapsed();
            if elapsed > deadline {
                return Err(Abort::Deadline { deadline, elapsed });
            }
        }
        if let Some(limit) = self.budget.max_steps {
            if steps >= limit {
                return Err(Abort::Budget {
                    resource: BudgetKind::Steps,
                    limit,
                    used: steps,
                });
            }
        }
        if let Some(limit) = self.budget.max_rows {
            let used = col.stats.counters.emits;
            if used >= limit {
                return Err(Abort::Budget {
                    resource: BudgetKind::Rows,
                    limit,
                    used,
                });
            }
        }
        if let Some(limit) = self.budget.max_minted {
            let used = col.stats.counters.minted_ids;
            if used >= limit {
                return Err(Abort::Budget {
                    resource: BudgetKind::MintedIds,
                    limit,
                    used,
                });
            }
        }
        Ok(())
    }
}

/// The shared abort tail of every driver: emits the `Abort` trace event
/// (tagged with the [`Checkpoint`] granularity that fired and the
/// settled-row count, then `RunEnd` via [`Collector::finish`], so sinks
/// flush), completes the stats, and wraps them into the typed error.
pub(crate) fn abort_error(
    abort: Abort,
    checkpoint: Checkpoint,
    settled_rows: u64,
    mut col: Collector,
    steps: usize,
    eval_ns: u64,
) -> EvalError {
    col.abort(&abort.reason(), checkpoint.as_str(), settled_rows, steps);
    let stats = col.finish(steps, false, eval_ns);
    abort.into_error(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collector() -> Collector {
        Collector::new("test", 1, 0, vec![], &EngineOpts::default())
    }

    #[test]
    fn ungoverned_checks_are_free_and_count_nothing() {
        let gov = Governor::new(&EngineOpts::default(), 0);
        let mut col = collector();
        for s in 0..100 {
            assert!(gov.check(s, &mut col).is_ok());
        }
        assert_eq!(col.stats.counters.budget_checks, 0);
        assert_eq!(col.stats.counters.cancel_polls, 0);
    }

    #[test]
    fn step_budget_allows_exactly_that_many_phases() {
        let opts = EngineOpts {
            budget: EvalBudget::unlimited().with_max_steps(3),
            ..EngineOpts::default()
        };
        let gov = Governor::new(&opts, 0);
        let mut col = collector();
        for s in 0..3 {
            assert!(gov.check(s, &mut col).is_ok(), "phase {s} allowed");
        }
        match gov.check(3, &mut col) {
            Err(Abort::Budget {
                resource: BudgetKind::Steps,
                limit: 3,
                used: 3,
            }) => {}
            _ => panic!("step 3 must exhaust a 3-step budget"),
        }
        assert_eq!(col.stats.counters.budget_checks, 4);
    }

    #[test]
    fn cancellation_wins_over_budgets_and_is_polled() {
        let token = CancelToken::new();
        let opts = EngineOpts {
            budget: EvalBudget::unlimited().with_max_steps(0),
            cancel: Some(token.clone()),
            ..EngineOpts::default()
        };
        let gov = Governor::new(&opts, 0);
        let mut col = collector();
        token.cancel();
        assert!(matches!(gov.check(0, &mut col), Err(Abort::Cancelled)));
        assert_eq!(col.stats.counters.cancel_polls, 1);
        // The poll short-circuits before any budget check.
        assert_eq!(col.stats.counters.budget_checks, 0);
    }

    #[test]
    fn backdated_deadline_covers_setup_time() {
        let opts = EngineOpts {
            budget: EvalBudget::unlimited().with_deadline(Duration::from_millis(1)),
            ..EngineOpts::default()
        };
        // Pretend setup took 10ms: the deadline is already blown.
        let gov = Governor::new(&opts, 10_000_000);
        let mut col = collector();
        assert!(matches!(
            gov.check(0, &mut col),
            Err(Abort::Deadline { .. })
        ));
    }

    #[test]
    fn abort_reason_names_the_cause() {
        assert_eq!(Abort::Cancelled.reason(), "cancelled");
        let b = Abort::Budget {
            resource: BudgetKind::Rows,
            limit: 5,
            used: 9,
        };
        assert!(b.reason().contains("emitted rows"), "{}", b.reason());
        let w = Abort::WorkerPanic {
            message: "boom".into(),
        };
        assert!(w.reason().contains("boom"));
        assert!(matches!(
            w.into_error(EvalStats::default()),
            EvalError::WorkerPanic { .. }
        ));
    }
}
