//! Query-driven (demand-restricted) evaluation: magic sets end to end.
//!
//! The entry points here take a [`Query`] (`?- T("a", Y).`) next to the
//! program, run `dlo_core::demand::magic_rewrite`, and evaluate the
//! rewritten program natively: magic predicates compile into the same
//! interned, indexed columnar storage as ordinary relations (flagged
//! **set-valued** — stored at `1` once, never merged again, so demand
//! stays on the Bool lattice over any POPS), the magic seed's `Var =
//! const` bindings ride the existing equality pre-binding machinery in
//! the plan compiler, and under the frontier strategies the seed fact
//! is the *only* initial contribution — the frontier is **seeded from
//! the query constants** instead of the whole EDB delta, with
//! magic-fact derivation interleaved between batches exactly like
//! head-key minting.
//!
//! The result is a [`QueryAnswer`]: a decode-free handle exposing the
//! query-restricted rows, the full derived support (everything the
//! demanded fragment computed — the differential-testing surface: each
//! of its rows must carry exactly its full-fixpoint value), and the
//! raw [`InternedOutput`] for chaining into further engine runs.

use crate::driver::{
    empty_aborted, naive_run, seminaive_run, setup_checked, setup_interned_checked, EngineOpts,
};
use crate::output::{AbortedEval, InternedOutcome, InternedOutput, PartialOutput};
use crate::worklist::{strategy_run, strategy_run_partial, Strategy};
use dlo_core::ast::Program;
use dlo_core::demand::{magic_rewrite, DemandProgram};
use dlo_core::eval::{EvalError, EvalStats};
use dlo_core::query::Query;
use dlo_core::relation::{BoolDatabase, Database, Relation};
use dlo_core::value::Constant;
use dlo_pops::{
    Absorptive, CompleteDistributiveDioid, NaturallyOrdered, Pops, TotallyOrderedDioid,
};
use std::time::Instant;

/// The outcome of a query evaluation: the demand-restricted fixpoint in
/// interned form, plus the query metadata needed to read it.
///
/// Everything is deferred: [`Self::get`] probes interned state,
/// [`Self::answers`] decodes one predicate and restricts it to the
/// query bindings, [`Self::support`] decodes the whole demanded
/// fragment, and [`Self::into_interned`] hands the storage to a chained
/// run ([`crate::engine_eval_interned_edb`]) without any decode.
#[derive(Clone, Debug)]
pub struct QueryAnswer<P> {
    outcome: InternedOutcome<P>,
    query: Query,
    magic_preds: Vec<String>,
    dropped_preds: Vec<String>,
}

impl<P: Pops> QueryAnswer<P> {
    fn new(outcome: InternedOutcome<P>, dp: &DemandProgram<P>) -> Self {
        QueryAnswer {
            outcome,
            query: dp.query.clone(),
            magic_preds: dp.magic_preds.clone(),
            dropped_preds: dp.dropped_preds.clone(),
        }
    }

    /// Whether the demanded fixpoint converged under the cap.
    pub fn is_converged(&self) -> bool {
        self.outcome.is_converged()
    }

    /// Steps taken (global iterations or frontier batches, by
    /// strategy), or `None` if the run hit its cap.
    pub fn steps(&self) -> Option<usize> {
        match &self.outcome {
            InternedOutcome::Converged { steps, .. } => Some(*steps),
            InternedOutcome::Diverged { .. } => None,
        }
    }

    /// The evaluation telemetry of the demanded run (rewrite + setup
    /// time is folded into the `setup` phase).
    pub fn stats(&self) -> &EvalStats {
        self.outcome.stats()
    }

    /// The EXPLAIN/profile report for the demanded run (see
    /// [`EvalStats::explain`]) — per-plan attribution includes the
    /// generated magic rules.
    pub fn explain(&self) -> String {
        self.outcome.explain()
    }

    /// The query this answer was computed for.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The generated magic predicates (present in
    /// [`Self::support_with_demand`] and the interned output).
    pub fn magic_preds(&self) -> &[String] {
        &self.magic_preds
    }

    /// IDBs whose rules the rewrite dropped: no demand reaches them.
    pub fn dropped_preds(&self) -> &[String] {
        &self.dropped_preds
    }

    /// The value of `query_pred(tuple)` without any decode. Only
    /// meaningful for tuples matching the query's bound positions;
    /// rows outside the demanded fragment are simply absent.
    pub fn get(&self, tuple: &[Constant]) -> Option<&P> {
        if !self.query.matches(tuple) {
            return None;
        }
        self.outcome.output().get(&self.query.pred, tuple)
    }

    /// The **demanded relation restriction**: the queried predicate's
    /// rows matching the query's bound constants, decoded. This is the
    /// answer in the magic-sets sense — exactly the query-matching
    /// slice of the full fixpoint (cross-checked in
    /// `tests/backend_matrix.rs` and `tests/proptest_engine.rs`).
    pub fn answers(&self) -> Relation<P> {
        match self.outcome.output().materialize_pred(&self.query.pred) {
            Some(rel) => self.query.restrict(&rel),
            None => Relation::new(self.query.arity()),
        }
    }

    /// The **full derived support**: every non-magic IDB row the
    /// demanded fragment computed, decoded. A strict subset of the full
    /// fixpoint's support in general, but value-exact on every row it
    /// carries — the differential-testing surface.
    pub fn support(&self) -> Database<P> {
        let out = self.outcome.output();
        let mut db = Database::new();
        let names: Vec<String> = out
            .predicates()
            .map(|(n, _)| n.to_string())
            .filter(|n| !self.magic_preds.contains(n))
            .collect();
        for name in names {
            if let Some(rel) = out.materialize_pred(&name) {
                db.insert(&name, rel);
            }
        }
        db
    }

    /// [`Self::support`] including the magic (demand) relations —
    /// useful to inspect *what* was demanded.
    pub fn support_with_demand(&self) -> Database<P> {
        self.outcome.output().materialize()
    }

    /// The interned payload (magic relations included), borrowed.
    pub fn interned(&self) -> &InternedOutput<P> {
        self.outcome.output()
    }

    /// Consumes the answer into its [`InternedOutput`] for decode-free
    /// chaining into [`crate::engine_eval_interned_edb`]-style runs.
    pub fn into_interned(self) -> InternedOutput<P> {
        match self.outcome {
            InternedOutcome::Converged { output, .. } => output,
            InternedOutcome::Diverged { last, .. } => last,
        }
    }
}

/// A query evaluation that was interrupted by governance: the typed
/// error plus the abort-time [`PartialOutput`] of the **demanded**
/// fragment, tagged with the query metadata needed to read it — the
/// query-path counterpart of [`AbortedEval`].
///
/// Under the `Priority` strategy [`Self::partial_answers`] is *exact*
/// on the rows it carries: every settled row of the queried predicate
/// holds its final demanded-fixpoint value (Cor. 5.19 settled-on-pop).
/// Elsewhere the partial is a pointwise lower bound, useful as a
/// progress snapshot but not as an answer.
#[derive(Debug)]
pub struct AbortedQuery<P> {
    error: EvalError,
    partial: PartialOutput<P>,
    query: Query,
    magic_preds: Vec<String>,
    dropped_preds: Vec<String>,
}

impl<P: Pops> AbortedQuery<P> {
    fn from_eval(aborted: Box<AbortedEval<P>>, dp: &DemandProgram<P>) -> Box<Self> {
        let (error, partial) = aborted.into_parts();
        Box::new(AbortedQuery {
            error,
            partial,
            query: dp.query.clone(),
            magic_preds: dp.magic_preds.clone(),
            dropped_preds: dp.dropped_preds.clone(),
        })
    }

    /// The typed error that stopped the run.
    pub fn error(&self) -> &EvalError {
        &self.error
    }

    /// Consumes the handle into its error (the partial is dropped).
    pub fn into_error(self) -> EvalError {
        self.error
    }

    /// The abort-time state of the demanded fragment.
    pub fn partial(&self) -> &PartialOutput<P> {
        &self.partial
    }

    /// Whether the settled frontier is exact (`Priority` strategy).
    pub fn is_exact(&self) -> bool {
        self.partial.is_exact()
    }

    /// The query this aborted run was answering.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The generated magic predicates of the rewrite.
    pub fn magic_preds(&self) -> &[String] {
        &self.magic_preds
    }

    /// IDBs whose rules the rewrite dropped: no demand reaches them.
    pub fn dropped_preds(&self) -> &[String] {
        &self.dropped_preds
    }

    /// The **settled** rows of the queried predicate, restricted to the
    /// query's bound constants and decoded — a partial answer. Exact
    /// when [`Self::is_exact`] (each returned row carries its final
    /// value; rows that did not settle before the abort are simply
    /// absent); otherwise a pointwise lower bound.
    pub fn partial_answers(&self) -> Relation<P> {
        let db = self.partial.materialize_settled();
        match db.get(&self.query.pred) {
            Some(rel) => self.query.restrict(rel),
            None => Relation::new(self.query.arity()),
        }
    }
}

impl<P: Pops> std::fmt::Display for AbortedQuery<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (partial query answer: {} settled rows{})",
            self.error,
            self.partial.settled().settled_rows(),
            if self.is_exact() { ", exact" } else { "" },
        )
    }
}

impl<P: Pops> From<Box<AbortedQuery<P>>> for EvalError {
    fn from(aborted: Box<AbortedQuery<P>>) -> EvalError {
        aborted.error
    }
}

/// Runs the magic-set rewrite, mapping a rejected query (unknown
/// predicate, arity mismatch) to [`EvalError::Compile`].
fn rewrite_checked<P: Pops>(
    program: &Program<P>,
    query: &Query,
) -> Result<DemandProgram<P>, EvalError> {
    magic_rewrite(program, query).map_err(|e| EvalError::Compile {
        detail: format!("dlo_engine cannot evaluate this query: {e}"),
    })
}

/// Query-driven evaluation with an explicit [`Strategy`] (the
/// query-seeded counterpart of [`crate::engine_eval`]): magic-set
/// rewrite, then the chosen loop over the rewritten program. Under
/// `Auto`/`Priority` the frontier pops the magic seed first and demand
/// spreads Dijkstra-interleaved with answers.
///
/// # Errors
///
/// As [`crate::engine_naive_eval`], plus [`EvalError::Compile`] on
/// queries the rewrite rejects (unknown predicate, arity mismatch).
pub fn engine_query_eval<P>(
    program: &Program<P>,
    query: &Query,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
    strategy: Strategy,
) -> Result<QueryAnswer<P>, EvalError>
where
    P: NaturallyOrdered
        + CompleteDistributiveDioid
        + Absorptive
        + TotallyOrderedDioid
        + Send
        + Sync,
{
    engine_query_eval_with_opts(
        program,
        query,
        pops_edb,
        bool_edb,
        cap,
        strategy,
        &EngineOpts::default(),
    )
}

/// [`engine_query_eval`] with explicit tuning knobs. Results are
/// bit-identical at any thread count, exactly as for the full-fixpoint
/// entry points (enforced in `tests/proptest_engine.rs`).
///
/// # Errors
///
/// As [`engine_query_eval`].
pub fn engine_query_eval_with_opts<P>(
    program: &Program<P>,
    query: &Query,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
    strategy: Strategy,
    opts: &EngineOpts,
) -> Result<QueryAnswer<P>, EvalError>
where
    P: NaturallyOrdered
        + CompleteDistributiveDioid
        + Absorptive
        + TotallyOrderedDioid
        + Send
        + Sync,
{
    let t = Instant::now();
    let dp = rewrite_checked(program, query)?;
    let engine = setup_checked(&dp.program, pops_edb, bool_edb, &dp.magic_preds)?;
    let setup_ns = t.elapsed().as_nanos() as u64;
    Ok(QueryAnswer::new(
        strategy_run(engine, cap, strategy, opts, setup_ns)?,
        &dp,
    ))
}

/// [`engine_query_eval_with_opts`] surfacing graceful degradation: a
/// governed abort returns [`AbortedQuery`] — the typed error *plus* the
/// abort-time demanded state, whose settled rows are exact partial
/// answers under the `Priority` strategy (see
/// [`AbortedQuery::partial_answers`]).
///
/// # Errors
///
/// As [`engine_query_eval`], but every error arrives as a boxed
/// [`AbortedQuery`] (compile-stage failures carry an empty partial).
pub fn engine_query_eval_partial_with_opts<P>(
    program: &Program<P>,
    query: &Query,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
    strategy: Strategy,
    opts: &EngineOpts,
) -> Result<QueryAnswer<P>, Box<AbortedQuery<P>>>
where
    P: NaturallyOrdered
        + CompleteDistributiveDioid
        + Absorptive
        + TotallyOrderedDioid
        + Send
        + Sync,
{
    let t = Instant::now();
    let empty_dp = |e: EvalError| {
        let (error, partial) = empty_aborted::<P>(e).into_parts();
        Box::new(AbortedQuery {
            error,
            partial,
            query: query.clone(),
            magic_preds: vec![],
            dropped_preds: vec![],
        })
    };
    let dp = rewrite_checked(program, query).map_err(&empty_dp)?;
    let engine =
        setup_checked(&dp.program, pops_edb, bool_edb, &dp.magic_preds).map_err(&empty_dp)?;
    let setup_ns = t.elapsed().as_nanos() as u64;
    match strategy_run_partial(engine, cap, strategy, opts, setup_ns) {
        Ok(outcome) => Ok(QueryAnswer::new(outcome, &dp)),
        Err(aborted) => Err(AbortedQuery::from_eval(aborted, &dp)),
    }
}

/// Query-driven evaluation on the parallel semi-naïve loop — the
/// weakest-bounds strategy, for POPS without absorption or a total
/// chain order (the magic rewrite itself is sound for any POPS; see
/// `dlo_core::demand`).
///
/// # Errors
///
/// As [`engine_query_eval`].
pub fn engine_query_seminaive_eval<P>(
    program: &Program<P>,
    query: &Query,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
    opts: &EngineOpts,
) -> Result<QueryAnswer<P>, EvalError>
where
    P: NaturallyOrdered + CompleteDistributiveDioid + Send + Sync,
{
    let t = Instant::now();
    let dp = rewrite_checked(program, query)?;
    let engine = setup_checked(&dp.program, pops_edb, bool_edb, &dp.magic_preds)?;
    let setup_ns = t.elapsed().as_nanos() as u64;
    Ok(QueryAnswer::new(
        seminaive_run(engine, cap, opts, setup_ns).map_err(|b| EvalError::from(*b))?,
        &dp,
    ))
}

/// Query-driven evaluation on the naïve loop — for naturally ordered
/// POPS without `⊖` (e.g. ℝ₊'s company-control workload, which is why
/// the `magic_sets` bench's point-lookup leg exists at this bound).
///
/// # Errors
///
/// As [`engine_query_eval`].
pub fn engine_query_naive_eval<P>(
    program: &Program<P>,
    query: &Query,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
    opts: &EngineOpts,
) -> Result<QueryAnswer<P>, EvalError>
where
    P: NaturallyOrdered + Send + Sync,
{
    let t = Instant::now();
    let dp = rewrite_checked(program, query)?;
    let engine = setup_checked(&dp.program, pops_edb, bool_edb, &dp.magic_preds)?;
    let setup_ns = t.elapsed().as_nanos() as u64;
    Ok(QueryAnswer::new(
        naive_run(engine, cap, opts, setup_ns).map_err(|b| EvalError::from(*b))?,
        &dp,
    ))
}

/// [`engine_query_eval_with_opts`] over an **interned EDB** (see
/// [`crate::engine_eval_interned_edb`]): the query-then-refine shape
/// where a previous run's output is queried without ever leaving
/// interned form.
///
/// # Errors
///
/// As [`engine_query_eval`].
#[allow(clippy::too_many_arguments)]
pub fn engine_query_eval_interned_edb<P>(
    program: &Program<P>,
    query: &Query,
    prev: &InternedOutput<P>,
    extra_pops: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
    strategy: Strategy,
    opts: &EngineOpts,
) -> Result<QueryAnswer<P>, EvalError>
where
    P: NaturallyOrdered
        + CompleteDistributiveDioid
        + Absorptive
        + TotallyOrderedDioid
        + Send
        + Sync,
{
    let t = Instant::now();
    let dp = rewrite_checked(program, query)?;
    let engine = setup_interned_checked(&dp.program, prev, extra_pops, bool_edb, &dp.magic_preds)?;
    let setup_ns = t.elapsed().as_nanos() as u64;
    Ok(QueryAnswer::new(
        strategy_run(engine, cap, strategy, opts, setup_ns)?,
        &dp,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::engine_seminaive_eval;
    use crate::worklist::engine_priority_eval;
    use dlo_core::examples_lib as ex;
    use dlo_core::query::QueryArg;
    use dlo_core::tup;
    use dlo_pops::{MinNat, PreSemiring, Trop};

    #[test]
    fn sssp_point_query_answers_match_the_full_fixpoint() {
        let (program, edb) = ex::sssp_trop("a");
        let bools = BoolDatabase::new();
        let full = engine_priority_eval(&program, &edb, &bools, 1_000_000)
            .expect("compiles")
            .unwrap();
        let q = Query::point("L", vec!["d".into()]);
        for strategy in [Strategy::SemiNaive, Strategy::Worklist, Strategy::Priority] {
            let qa = engine_query_eval(&program, &q, &edb, &bools, 1_000_000, strategy)
                .expect("query compiles");
            assert!(qa.is_converged(), "{strategy:?}");
            let answers = qa.answers();
            assert_eq!(answers.get(&tup!["d"]), Trop::finite(8.0), "{strategy:?}");
            // Every demanded row is value-exact against the full run.
            for (pred, rel) in qa.support().iter() {
                let full_rel = full.get(pred).expect("demanded pred exists in full run");
                for (t, v) in rel.support() {
                    assert_eq!(full_rel.get(t), v.clone(), "{strategy:?} {pred}({t:?})");
                }
            }
            // Decode-free probe agrees with the decoded relation.
            assert_eq!(qa.get(&["d".into()]), Some(&Trop::finite(8.0)));
            assert_eq!(qa.get(&["a".into()]), None, "non-matching tuple");
        }
    }

    #[test]
    fn apsp_single_source_demands_one_row_per_target() {
        // All-pairs program, single-source question: the demanded T
        // support must stay O(n), not O(n²).
        let (program, edb) = ex::apsp_trop(&[
            ("a", "b", 1.0),
            ("b", "a", 2.0),
            ("b", "c", 3.0),
            ("c", "d", 4.0),
            ("a", "c", 5.0),
        ]);
        let bools = BoolDatabase::new();
        let q = Query::new("T", vec![QueryArg::bound("a"), QueryArg::Free]);
        let qa = engine_query_eval(&program, &q, &edb, &bools, 1_000_000, Strategy::Priority)
            .expect("query compiles");
        let answers = qa.answers();
        assert_eq!(answers.get(&tup!["a", "d"]), Trop::finite(8.0));
        // Demand restricted: only sources reachable demand-wise (just
        // "a" here — the magic rule propagates the *source* column,
        // which the recursive occurrence keeps fixed).
        let support = qa.support();
        let t = support.get("T").unwrap();
        assert!(t.support().all(|(tu, _)| tu[0] == "a".into()), "{t:?}");
        let full = engine_priority_eval(&program, &edb, &bools, 1_000_000)
            .expect("compiles")
            .unwrap();
        assert_eq!(&answers, &q.restrict(full.get("T").unwrap()));
    }

    #[test]
    fn set_valued_magic_survives_non_idempotent_sums() {
        // Company-control style: ℝ₊'s ⊕ is +, so without set-valued
        // clamping the cyclic magic rules would pump 1 ⊕ 1 ⊕ … forever.
        let (program, pops, bools) = ex::company_control(
            &["a", "b", "c", "d"],
            &[
                ("a", "b", 0.75),
                ("b", "c", 0.375),
                ("a", "c", 0.25),
                ("c", "d", 0.625),
                ("b", "d", 0.25),
            ],
        );
        let q = Query::new("T", vec![QueryArg::bound("a"), QueryArg::Free]);
        let qa = engine_query_naive_eval(&program, &q, &pops, &bools, 1000, &EngineOpts::default())
            .expect("query compiles");
        assert!(qa.is_converged(), "magic stays on the Bool lattice");
        let full = crate::driver::engine_naive_eval(&program, &pops, &bools, 1000)
            .expect("compiles")
            .unwrap();
        assert_eq!(&qa.answers(), &q.restrict(full.get("T").unwrap()));
        assert_eq!(
            qa.answers().get(&tup!["a", "d"]),
            full.get("T").unwrap().get(&tup!["a", "d"])
        );
        // The demand relation holds 1s only.
        let demand = qa.support_with_demand();
        let m = demand.get(qa.magic_preds()[0].as_str()).unwrap();
        assert!(m.support().all(|(_, v)| v.is_one()));
    }

    #[test]
    fn counter_queries_fall_back_to_all_free_and_stay_exact() {
        // The counter's recursive occurrence N(I) sees no bound
        // variable (the head term is a key function, which binds
        // nothing backwards), so the adornment meet weakens N to
        // all-free: the query path must compute the full reachable
        // fragment — minted keys included — and restrict.
        use dlo_core::ast::{Atom, Factor, KeyFn, SumProduct, Term};
        use dlo_core::formula::{CmpOp, Formula};
        let mut p = dlo_core::Program::<MinNat>::new();
        p.rule(
            Atom::new("N", vec![Term::c(0)]),
            vec![SumProduct::new(vec![]).with_coeff(MinNat::finite(1))],
        );
        p.rule(
            Atom::new(
                "N",
                vec![Term::Apply(KeyFn::AddInt(1), Box::new(Term::v(0)))],
            ),
            vec![SumProduct::new(vec![Factor::atom("N", vec![Term::v(0)])])
                .with_condition(Formula::cmp(Term::v(0), CmpOp::Lt, Term::c(5)))],
        );
        let pops = Database::new();
        let bools = BoolDatabase::new();
        let full = engine_seminaive_eval(&p, &pops, &bools, 100)
            .expect("compiles")
            .unwrap();
        let q = Query::point("N", vec![3i64.into()]);
        for strategy in [Strategy::SemiNaive, Strategy::Worklist, Strategy::Priority] {
            let qa = engine_query_eval(&p, &q, &pops, &bools, 1_000_000, strategy)
                .expect("query compiles");
            assert!(qa.magic_preds().is_empty(), "all-free fallback");
            assert_eq!(&qa.answers(), &q.restrict(full.get("N").unwrap()));
        }
    }

    #[test]
    fn magic_heads_mint_demand_keys_between_batches() {
        // R(X) :- S(X).  R(X) :- R(X - 1) ⊗ E(X).
        // X is bound by the plain E(X) factor, so the occurrence
        // R(X - 1) adorns bound and the magic rule's HEAD applies the
        // shift: m_R(X - 1) :- m_R(X) ⊗ @demand(E(X)). Querying R(7)
        // with E = {5, 7} demands key 6 — a constant no EDB or program
        // term mentions, minted between batches exactly like an
        // answer-side head key.
        use dlo_core::ast::{Atom, Factor, KeyFn, SumProduct, Term};
        let mut p = dlo_core::Program::<MinNat>::new();
        p.rule(
            Atom::new("R", vec![Term::v(0)]),
            vec![SumProduct::new(vec![Factor::atom("S", vec![Term::v(0)])])],
        );
        p.rule(
            Atom::new("R", vec![Term::v(0)]),
            vec![SumProduct::new(vec![
                Factor::atom(
                    "R",
                    vec![Term::Apply(KeyFn::AddInt(-1), Box::new(Term::v(0)))],
                ),
                Factor::atom("E", vec![Term::v(0)]),
            ])],
        );
        let mut pops = Database::new();
        pops.insert(
            "S",
            dlo_core::Relation::from_pairs(1, vec![(tup![3i64], MinNat::finite(1))]),
        );
        pops.insert(
            "E",
            dlo_core::Relation::from_pairs(
                1,
                vec![
                    (tup![4i64], MinNat::finite(1)),
                    (tup![5i64], MinNat::finite(1)),
                    (tup![7i64], MinNat::finite(1)),
                ],
            ),
        );
        let bools = BoolDatabase::new();
        let full = engine_seminaive_eval(&p, &pops, &bools, 100)
            .expect("compiles")
            .unwrap();
        // Positive query: R(5) is derivable (3 → 4 → 5).
        let q5 = Query::point("R", vec![5i64.into()]);
        // Past-the-data query: demand for R(7) asks for R(6) — key 6 is
        // minted as a demand constant, finds nothing, answers empty.
        let q7 = Query::point("R", vec![7i64.into()]);
        for strategy in [Strategy::SemiNaive, Strategy::Worklist, Strategy::Priority] {
            let qa5 = engine_query_eval(&p, &q5, &pops, &bools, 1_000_000, strategy)
                .expect("query compiles");
            assert!(!qa5.magic_preds().is_empty(), "rewrite applied");
            assert_eq!(&qa5.answers(), &q5.restrict(full.get("R").unwrap()));
            assert_eq!(qa5.answers().support_size(), 1, "{strategy:?}");

            let qa7 = engine_query_eval(&p, &q7, &pops, &bools, 1_000_000, strategy)
                .expect("query compiles");
            assert_eq!(&qa7.answers(), &q7.restrict(full.get("R").unwrap()));
            assert!(qa7.answers().is_empty(), "{strategy:?}: R(7) underivable");
            // The minted demand key 6 is really in the magic relation.
            let demand = qa7.support_with_demand();
            let m = demand.get(qa7.magic_preds()[0].as_str()).unwrap();
            assert_eq!(
                m.get(&tup![6i64]),
                MinNat::one(),
                "{strategy:?}: demand key 6 was minted"
            );
        }
    }

    #[test]
    fn domain_enumerated_programs_fall_back_to_full() {
        // A(X) :- B(X + 1): no join binds X, so evaluators enumerate it
        // over the active domain. A magic guard would re-scope X to the
        // demanded set — with a query constant (2) outside the domain
        // ({0, 5}), the query path would derive A(2) although the full
        // fixpoint has no such row. The rewrite must detect this and
        // fall back to unrestricted evaluation.
        use dlo_core::ast::{Atom, Factor, KeyFn, SumProduct, Term};
        use dlo_core::formula::{CmpOp, Formula};
        let mut p = dlo_core::Program::<MinNat>::new();
        p.rule(
            Atom::new("B", vec![Term::c(0)]),
            vec![SumProduct::new(vec![]).with_coeff(MinNat::finite(1))],
        );
        p.rule(
            Atom::new(
                "B",
                vec![Term::Apply(KeyFn::AddInt(1), Box::new(Term::v(0)))],
            ),
            vec![SumProduct::new(vec![Factor::atom("B", vec![Term::v(0)])])
                .with_condition(Formula::cmp(Term::v(0), CmpOp::Lt, Term::c(5)))],
        );
        p.rule(
            Atom::new("A", vec![Term::v(0)]),
            vec![SumProduct::new(vec![Factor::atom(
                "B",
                vec![Term::Apply(KeyFn::AddInt(1), Box::new(Term::v(0)))],
            )])],
        );
        let pops = Database::new();
        let bools = BoolDatabase::new();
        let full = engine_seminaive_eval(&p, &pops, &bools, 100)
            .expect("compiles")
            .unwrap();
        let q = Query::point("A", vec![2i64.into()]);
        for strategy in [Strategy::SemiNaive, Strategy::Worklist, Strategy::Priority] {
            let qa = engine_query_eval(&p, &q, &pops, &bools, 1_000_000, strategy)
                .expect("query compiles");
            assert!(qa.magic_preds().is_empty(), "domain-enumeration fallback");
            assert_eq!(
                &qa.answers(),
                &q.restrict(full.get("A").unwrap()),
                "{strategy:?}: answers must stay a restriction of the full fixpoint"
            );
            assert!(qa.answers().is_empty(), "2 is outside the active domain");
        }
    }

    #[test]
    fn chained_interned_runs_share_the_interner() {
        // Run APSP, then query the *output* for one source without any
        // Database round-trip: engine_query_eval_interned_edb over the
        // first run's InternedOutput, with a second program reading T
        // as its EDB.
        use crate::worklist::engine_eval_interned;
        use dlo_core::parse_program;
        let (program, edb) = ex::apsp_trop(&[
            ("a", "b", 1.0),
            ("b", "c", 3.0),
            ("c", "d", 4.0),
            ("a", "c", 5.0),
        ]);
        let bools = BoolDatabase::new();
        let (prev, _) = engine_eval_interned(
            &program,
            &edb,
            &bools,
            1_000_000,
            Strategy::Priority,
            &EngineOpts::default(),
        )
        .expect("compiles")
        .converged()
        .unwrap();
        // Refine: best cost to reach anything from X via the closed T.
        let refine: dlo_core::Program<Trop> = parse_program("Best(X) :- T(X, Y).").unwrap();
        let out = crate::worklist::engine_eval_interned_edb(
            &refine,
            &prev,
            &Database::new(),
            &bools,
            1_000_000,
            Strategy::Priority,
            &EngineOpts::default(),
        )
        .expect("compiles");
        let (iout, _) = out.converged().unwrap();
        assert_eq!(iout.get("Best", &["a".into()]), Some(&Trop::finite(1.0)));
        // Query the same chained setup goal-directedly.
        let q = Query::point("Best", vec!["c".into()]);
        let qa = engine_query_eval_interned_edb(
            &refine,
            &q,
            &prev,
            &Database::new(),
            &bools,
            1_000_000,
            Strategy::Priority,
            &EngineOpts::default(),
        )
        .expect("query compiles");
        assert_eq!(qa.answers().get(&tup!["c"]), Trop::finite(4.0));
        // And the classic round-trip path agrees.
        let materialized = prev.materialize();
        let mut edb2 = Database::new();
        edb2.insert("T", materialized.get("T").unwrap().clone());
        let classic = engine_seminaive_eval(&refine, &edb2, &bools, 1000)
            .expect("compiles")
            .unwrap();
        assert_eq!(iout.materialize(), classic);
    }

    #[test]
    fn dropped_rules_never_run() {
        let mut program = ex::apsp_program::<Trop>();
        program.rule(
            dlo_core::ast::Atom::new("Huge", vec![dlo_core::ast::Term::v(0)]),
            vec![dlo_core::ast::SumProduct::new(vec![
                dlo_core::ast::Factor::atom("F", vec![dlo_core::ast::Term::v(0)]),
            ])],
        );
        let (_, edb) = ex::apsp_trop(&[("a", "b", 1.0)]);
        let q = Query::new("T", vec![QueryArg::bound("a"), QueryArg::Free]);
        let qa = engine_query_eval(
            &program,
            &q,
            &edb,
            &BoolDatabase::new(),
            1_000_000,
            Strategy::Priority,
        )
        .expect("query compiles");
        assert_eq!(qa.dropped_preds(), &["Huge".to_string()]);
        assert!(qa.support().get("Huge").is_none());
        let _ = PreSemiring::is_one(&Trop::one()); // keep the trait import used
    }

    #[test]
    fn unknown_query_predicate_is_a_typed_compile_error() {
        let (program, edb) = ex::sssp_trop("a");
        let q = Query::point("Nope", vec!["a".into()]);
        let err = engine_query_eval(
            &program,
            &q,
            &edb,
            &BoolDatabase::new(),
            1000,
            Strategy::Priority,
        )
        .expect_err("unknown predicate must be rejected");
        assert_eq!(err.kind(), "compile");
        assert!(err.stats().is_none(), "no run happened");
        match err {
            EvalError::Compile { detail } => {
                assert!(detail.contains("cannot evaluate this query"), "{detail}");
            }
            other => panic!("expected Compile, got {other:?}"),
        }
    }
}
