//! Incremental maintenance: a live [`Materialization`] that absorbs
//! EDB edits without re-running the fixpoint from scratch.
//!
//! ## Inserts: telescoping the EDB differential
//!
//! For an edit `E ↦ E ⊕ ΔE` the new fixpoint's seed difference
//! telescopes over the EDB *occurrences* of each sum-product exactly
//! like Theorem 6.5 telescopes over IDB occurrences: for a body with
//! occurrences `E₁ … Eₙ` of edited relations,
//!
//! ```text
//! F'(J) ⊖ F(J) = ⊕ᵢ  (E@old …)  ⊗ ΔEᵢ ⊗ (E@new …)
//!                    └ j < i ┘            └ j > i ┘
//! ```
//!
//! which is exact under distributivity of `⊗` over `⊕` — no dioid
//! structure needed for the identity itself. [`Materialization::new`]
//! compiles these *variant rules* once (predicates renamed with the
//! reserved `@dlt`/`@old` suffixes, which resolve to engine EDB slots
//! populated per edit), so every edit reuses the same plans; the
//! `@dlt` binder is forced first by the join order, making the edit
//! seed `O(|Δ|·join)` instead of a full scan. Because the old fixpoint
//! `J` is a pre-fixpoint of the grown immediate-consequence operator
//! `F'`, the ordinary semi-naïve continuation from `J` with seed
//! `δ = F'(J) ⊖ F(J)` converges to the new least fixpoint — *insert-only
//! maintenance needs no retraction machinery at all*.
//!
//! ## Deletes: DRed generalized to dioid values
//!
//! Deletion is where non-idempotent / non-invertible `⊕` bites: a
//! deleted row's contributions are folded into downstream sums and
//! cannot be subtracted pointwise (no general `⊖` restores them, and
//! on absorptive dioids many distinct support sets share one value).
//! The classical delete–rederive answer carries over to POPS values:
//!
//! 1. **Overapproximate the affected set**: every IDB key whose
//!    *derivation-uses* graph reaches a deleted EDB row, found by
//!    running the same `@dlt` variant plans (batch rows at their old
//!    values) and then propagating key-sets through the compiled delta
//!    plans against the pre-edit state. This is per-fact supporting-rule
//!    provenance read off the plans themselves — purely syntactic, so
//!    it is sound for any POPS: joins enumerate instances by key, and a
//!    zero-valued instance stays zero when inputs shrink (value maps
//!    are monotone and deletions move values down the natural order).
//! 2. **Zero out**: drop every affected row (storage is rebuilt without
//!    them — the surviving rows keep their exact values, because no
//!    derivation reaching them ever touched a deleted fact).
//! 3. **Rederive from surviving support**: one full application
//!    `F'(surv)` of the original seed plans (restricted to predicates
//!    with affected keys), whose contributions re-enter through the
//!    standard semi-naïve advance, then run the delta loop to fixpoint.
//!    The survivors form a pre-fixpoint of `F'` below the new fixpoint,
//!    so the continuation converges to it; surviving keys self-absorb
//!    in the advance (`F'(surv)ₖ ⊖ survₖ = 0`), which is what makes the
//!    overapproximation harmless even when `⊕` is not idempotent.
//!
//! ## Naïve mode
//!
//! POPS without `⊖` (e.g. `NNReal` for company control) cannot run the
//! semi-naïve continuation, but both arguments above only need a
//! pre-fixpoint start: [`Materialization::insert_naive`] /
//! [`Materialization::delete_naive`] run the naïve loop `J ↦ F'(J)`
//! from the old state (respectively the survivors) with the original
//! seed plans only — the variant rules stay out, since naïve steps
//! recompute full sums and the differential would double-count.
//!
//! ## Contract
//!
//! * Edits target **POPS EDB relations** only (Boolean guard EDBs are
//!   static; re-build for those).
//! * [`dlo_core::edit::FactInsert`] `⊕`-merges a value into a tuple;
//!   [`dlo_core::edit::FactDelete`] removes the tuple's fact entirely.
//!   Lower a value by deleting then re-inserting.
//! * Results are **bit-identical to the from-scratch fixpoint on the
//!   edited EDB** at any `DLO_ENGINE_THREADS` (same task-order merges,
//!   sorted drains, and mint-between-phases as every other driver),
//!   with one documented caveat shared with the interned-EDB chain:
//!   the active domain only ever grows — constants introduced by
//!   earlier epochs remain enumerable by programs with unbound slots.
//! * Each edit produces its own [`EvalStats`] (per-phase, per-rule)
//!   via [`Materialization::last_stats`].
//! * Every public method returns `Result<_, `[`EvalError`]`>`. Invalid
//!   batches (unknown predicate, arity mismatch) are rejected **before
//!   any staging**, so they leave the handle untouched. An edit that
//!   fails *mid-flight* — step-cap overrun ([`EvalError::Diverged`]),
//!   budget/deadline exhaustion, cancellation, or a contained worker
//!   panic — leaves the interned state mid-fixpoint, so the handle is
//!   **poisoned**: every subsequent edit or query returns
//!   [`EvalError::Poisoned`] until [`Materialization::rebuild`] (or
//!   [`Materialization::rebuild_naive`]) re-derives the fixpoint from
//!   the retained classic EDB, bit-identical to a from-scratch build.
//!   The failed edit's EDB effect is retained: `rebuild()` completes
//!   the derivation the interrupted edit began.

use crate::driver::{
    apply_contrib, drain_arrange_merges, ensure_delta_indexes, ensure_probes, mint_key, run_plans,
    setup_checked, setup_interned_checked, Engine, EngineOpts, IdbState,
};
use crate::govern::{abort_error, Abort, Checkpoint, Governor};
use crate::hash::FxHashMap;
use crate::output::{InternedOutput, PartialOutput, SettledMark};
use crate::plan::{Plan, Source, EDB_DELTA_SUFFIX, EDB_OLD_SUFFIX};
use crate::query::{engine_query_eval_interned_edb, QueryAnswer};
use crate::storage::{ColMask, ColumnRel};
use crate::telemetry::Collector;
use crate::worklist::Strategy;
use dlo_core::ast::{Program, Rule};
use dlo_core::edit::{Edit, FactDelete, FactInsert};
use dlo_core::eval::stats::EvalStats;
use dlo_core::eval::{CancelToken, EvalBudget, EvalError};
use dlo_core::query::Query;
use dlo_core::relation::{BoolDatabase, Database};
use dlo_core::value::Constant;
use dlo_pops::{
    Absorptive, CompleteDistributiveDioid, NaturallyOrdered, Pops, TotallyOrderedDioid,
};
use std::collections::HashSet;
use std::time::Instant;

/// Engine EDB-slot bookkeeping for one editable predicate.
struct EditSlot {
    /// Predicate name in the source program.
    name: String,
    /// Arity (from its factor occurrences).
    arity: usize,
    /// `pops_edb` index of the live relation.
    cur: usize,
    /// `pops_edb` index of the `name@dlt` edit-batch relation.
    dlt: Option<usize>,
    /// `pops_edb` index of the `name@old` pre-edit snapshot (only
    /// registered when some sum-product mentions the predicate at two
    /// or more occurrences).
    old: Option<usize>,
}

/// A long-lived materialized fixpoint over an interned engine state,
/// absorbing EDB edits incrementally (see the module docs for the
/// algorithm and its correctness argument).
///
/// Built by [`Materialization::new`] (semi-naïve differential edits,
/// needs `⊖`) or [`Materialization::new_naive`] (naïve-loop edits, any
/// naturally ordered POPS). [`Materialization::query`] delegates to the
/// magic-set demand path against the current epoch.
pub struct Materialization<P: Pops> {
    /// The original program (used by the query rewrite; the engine runs
    /// the augmented maintenance program).
    program: Program<P>,
    engine: Engine<P>,
    state: IdbState<P>,
    /// Original-rule full-application plans (initial build, naïve
    /// edits, delete rederive).
    seed_plans: Vec<Plan<P>>,
    /// Variant-rule telescoped plans reading `@dlt`/`@old` (insert
    /// differential seed, delete affected-set seed).
    edit_plans: Vec<Plan<P>>,
    /// Original-rule semi-naïve delta plans (continuation loops and
    /// affected-set propagation).
    delta_plans: Vec<Plan<P>>,
    /// Probe masks required per `pops_edb` slot, so relations staged or
    /// rebuilt between edits carry the indexes the plans expect.
    pops_masks: Vec<Vec<ColMask>>,
    slots: Vec<EditSlot>,
    /// The authoritative classic-form EDB at the current epoch (feeds
    /// the query path and differential testing).
    edb: Database<P>,
    bool_edb: BoolDatabase,
    cap: usize,
    strategy: Strategy,
    opts: EngineOpts,
    epoch: u64,
    snapshot: Option<InternedOutput<P>>,
    /// Per-IDB [`ColumnRel::version`]s captured when `snapshot` was
    /// last refreshed — [`Materialization::output`] re-clones only the
    /// relations whose version moved, so edits that never touch a
    /// predicate leave its snapshot clone (and the `Arc`-shared
    /// arrangement batches inside it) alive across epochs.
    snap_versions: Vec<u64>,
    /// Interner length at the last snapshot refresh (the interner is
    /// append-only, so its length is its version).
    snap_interner_len: usize,
    last_stats: EvalStats,
    /// Set when an edit failed mid-flight (the interned state may be
    /// mid-fixpoint): every subsequent edit/query returns
    /// [`EvalError::Poisoned`] until a rebuild.
    poisoned: Option<String>,
    /// The mid-fixpoint interned state captured when the handle was
    /// poisoned, exposed read-only by [`Materialization::partial`] for
    /// diagnostics while the poison stands.
    partial: Option<PartialOutput<P>>,
}

/// A failed maintenance loop: why it stopped, plus the completed step
/// count at the stop (the collector still needs finishing).
enum LoopFail {
    /// Governed interruption or contained worker panic.
    Abort(Abort, usize),
    /// Step-cap overrun: the program diverges on the edited EDB.
    Diverged(usize),
}

/// Finishes the collector for a failed loop and builds the public
/// error (the caller decides whether the failure poisons the handle).
fn fail_error(cap: usize, fail: LoopFail, col: Collector, eval_ns: u64) -> EvalError {
    match fail {
        LoopFail::Abort(a, steps) => abort_error(a, Checkpoint::Iteration, 0, col, steps, eval_ns),
        LoopFail::Diverged(steps) => {
            let stats = col.finish(steps, false, eval_ns);
            EvalError::Diverged {
                cap,
                diagnostic: format!(
                    "maintenance did not converge within {cap} steps: the program diverges on the edited EDB"
                ),
                stats: Box::new(stats),
            }
        }
    }
}

/// Appends the telescoped variant rules: for each sum-product and each
/// EDB occurrence `i`, a copy reading `E@dlt` at `i`, `E@old` at
/// earlier EDB occurrences, and the live relations elsewhere. Factor
/// order (and with it `⊗` order) is preserved, which is what makes the
/// telescoping identity exact for non-commutative value assembly.
type MaintenanceProgram<P> = (Program<P>, Vec<(String, usize)>);

fn maintenance_program<P: Pops>(program: &Program<P>) -> Result<MaintenanceProgram<P>, EvalError> {
    let reserved = |pred: &str| EvalError::Compile {
        detail: format!("predicate {pred:?} uses the reserved '@' namespace"),
    };
    let idbs: HashSet<&str> = program.rules.iter().map(|r| r.head.pred.as_str()).collect();
    let mut editable: Vec<(String, usize)> = vec![];
    let mut out = program.clone();
    for rule in &program.rules {
        if rule.head.pred.contains('@') {
            return Err(reserved(&rule.head.pred));
        }
        for sp in &rule.body {
            for f in &sp.factors {
                if f.atom.pred.contains('@') {
                    return Err(reserved(&f.atom.pred));
                }
            }
            let edb_occs: Vec<usize> = sp
                .factors
                .iter()
                .enumerate()
                .filter(|(_, f)| !idbs.contains(f.atom.pred.as_str()))
                .map(|(i, _)| i)
                .collect();
            for (fi, f) in sp.factors.iter().enumerate() {
                if edb_occs.contains(&fi) && !editable.iter().any(|(n, _)| *n == f.atom.pred) {
                    editable.push((f.atom.pred.clone(), f.atom.args.len()));
                }
            }
            for (vi, &fi) in edb_occs.iter().enumerate() {
                let mut vsp = sp.clone();
                vsp.factors[fi].atom.pred =
                    format!("{}{}", vsp.factors[fi].atom.pred, EDB_DELTA_SUFFIX);
                for &fj in &edb_occs[..vi] {
                    vsp.factors[fj].atom.pred =
                        format!("{}{}", vsp.factors[fj].atom.pred, EDB_OLD_SUFFIX);
                }
                out.rules.push(Rule {
                    head: rule.head.clone(),
                    body: vec![vsp],
                });
            }
        }
    }
    Ok((out, editable))
}

impl<P: Pops + Send + Sync> Materialization<P> {
    /// Shared construction: compile the maintenance program, partition
    /// plans, and resolve the edit slots. The fixpoint itself is run by
    /// the public constructors.
    fn prepare(
        program: &Program<P>,
        pops_edb: &Database<P>,
        bool_edb: &BoolDatabase,
        cap: usize,
        strategy: Strategy,
        opts: &EngineOpts,
        prev: Option<&InternedOutput<P>>,
    ) -> Result<Self, EvalError> {
        for (name, _) in pops_edb.iter() {
            if name.contains('@') {
                return Err(EvalError::Compile {
                    detail: format!("EDB predicate {name:?} uses the reserved '@' namespace"),
                });
            }
        }
        let (aug, editable) = maintenance_program(program)?;
        let n_rules = program.rules.len();
        let join_mode = opts.effective_join_mode();
        let mut engine = match prev {
            // Rebuild path: carry the retained interner forward (the
            // EDB relations themselves come from `pops_edb` — `prev`
            // holds no relations), so constant ids minted by earlier
            // epochs stay stable across the recovery.
            Some(prev) => setup_interned_checked(&aug, prev, pops_edb, bool_edb, &[])?,
            None => setup_checked(&aug, pops_edb, bool_edb, &[])?,
        };
        engine.join_mode = join_mode;
        engine
            .build_edb_indexes(&[], opts.effective_threads())
            .map_err(|a| a.into_error(EvalStats::default()))?;
        let seed_plans: Vec<Plan<P>> = engine
            .compiled
            .seed_plans
            .iter()
            .filter(|p| p.rule_idx < n_rules)
            .cloned()
            .collect();
        let edit_plans: Vec<Plan<P>> = engine
            .compiled
            .seed_plans
            .iter()
            .filter(|p| p.rule_idx >= n_rules)
            .cloned()
            .collect();
        let delta_plans: Vec<Plan<P>> = engine
            .compiled
            .delta_plans
            .iter()
            .filter(|p| p.rule_idx < n_rules)
            .cloned()
            .collect();
        let mut pops_masks: Vec<Vec<ColMask>> = vec![vec![]; engine.pops_edb.len()];
        for &(source, mask) in &engine.edb_reqs {
            if let Source::PopsEdb(i) = source {
                if !pops_masks[i].contains(&mask) {
                    pops_masks[i].push(mask);
                }
            }
        }
        let pos = |name: &str| engine.compiled.pops_edbs.iter().position(|n| n == name);
        let slots: Vec<EditSlot> = editable
            .into_iter()
            .map(|(name, arity)| EditSlot {
                cur: pos(&name).expect("every editable predicate is a compiled EDB"),
                dlt: pos(&format!("{name}{EDB_DELTA_SUFFIX}")),
                old: pos(&format!("{name}{EDB_OLD_SUFFIX}")),
                name,
                arity,
            })
            .collect();
        let nidb = engine.compiled.idbs.len();
        let mut state = IdbState {
            new: engine.empty_idbs(),
            changed: vec![FxHashMap::default(); nidb],
            delta: engine.empty_idbs(),
        };
        for (pred, rel) in state.new.iter_mut().enumerate() {
            ensure_probes(rel, &engine.idb_new_masks[pred], join_mode);
        }
        Ok(Materialization {
            program: program.clone(),
            engine,
            state,
            seed_plans,
            edit_plans,
            delta_plans,
            pops_masks,
            slots,
            edb: pops_edb.clone(),
            bool_edb: bool_edb.clone(),
            cap,
            strategy,
            opts: opts.clone(),
            epoch: 0,
            snapshot: None,
            snap_versions: vec![],
            snap_interner_len: 0,
            last_stats: EvalStats::default(),
            poisoned: None,
            partial: None,
        })
    }

    /// The epoch counter: bumped by every edit.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The [`EvalStats`] of the last build or edit (per-phase and
    /// per-rule, like every engine driver).
    pub fn last_stats(&self) -> &EvalStats {
        &self.last_stats
    }

    /// The classic-form EDB at the current epoch (edits applied).
    pub fn edb(&self) -> &Database<P> {
        &self.edb
    }

    /// Why the handle is poisoned, if it is: a previous edit failed
    /// mid-flight and only [`Materialization::rebuild`] /
    /// [`Materialization::rebuild_naive`] will accept further work.
    /// Read-only probes ([`Materialization::get`],
    /// [`Materialization::edb`], …) stay available for diagnostics.
    pub fn poisoned(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// Replaces the [`EvalBudget`] governing subsequent edits, queries,
    /// and rebuilds (each run measures its deadline from its own start).
    pub fn set_budget(&mut self, budget: EvalBudget) {
        self.opts.budget = budget;
    }

    /// Installs (or clears) the [`CancelToken`] polled by subsequent
    /// edits, queries, and rebuilds.
    pub fn set_cancel(&mut self, cancel: Option<CancelToken>) {
        self.opts.cancel = cancel;
    }

    /// The poisoned-bit gate every edit and query passes first.
    fn check_poisoned(&self) -> Result<(), EvalError> {
        match &self.poisoned {
            Some(reason) => Err(EvalError::Poisoned {
                reason: reason.clone(),
            }),
            None => Ok(()),
        }
    }

    /// Records a mid-flight failure and passes the error through,
    /// stashing the mid-fixpoint interned state as a read-only
    /// [`PartialOutput`] next to the poison.
    fn poison(&mut self, err: EvalError) -> EvalError {
        self.poisoned = Some(format!(
            "epoch {} edit failed mid-flight ({}): rebuild() to recover",
            self.epoch, err
        ));
        let nidb = self.engine.compiled.idbs.len();
        let interned = InternedOutput::new(
            self.engine.interner.clone(),
            self.engine.compiled.idbs.clone(),
            self.state.new.clone(),
        );
        self.partial = Some(PartialOutput::new(
            interned,
            SettledMark::best_effort(nidb),
            err.stats().cloned().unwrap_or_default(),
        ));
        err
    }

    /// The mid-fixpoint state captured when the handle was poisoned,
    /// or `None` while the handle is healthy. Read-only diagnostics:
    /// for an interrupted **insert** the values are a pointwise lower
    /// bound of the post-edit fixpoint (the maintenance loop only grows
    /// values along the natural order); for an interrupted **delete**
    /// the state may sit between the zero-out and the rederive, so rows
    /// can be *missing or below* their pre-edit values too — treat it
    /// as a snapshot for inspection, not a bound. Cleared by a
    /// successful rebuild.
    pub fn partial(&self) -> Option<&PartialOutput<P>> {
        self.partial.as_ref()
    }

    /// Validates a batch **before any staging**, so rejected edits
    /// leave the handle untouched (and unpoisoned): every predicate
    /// must be an editable EDB slot and every tuple must match its
    /// arity.
    fn validate_edits<'a>(
        &self,
        facts: impl Iterator<Item = (&'a str, usize)>,
    ) -> Result<(), EvalError> {
        for (pred, arity) in facts {
            let slot =
                self.slots
                    .iter()
                    .find(|s| s.name == pred)
                    .ok_or_else(|| EvalError::Compile {
                        detail: format!(
                            "edit targets {pred:?}, which is not an EDB predicate of the program"
                        ),
                    })?;
            if arity != slot.arity {
                return Err(EvalError::Compile {
                    detail: format!(
                        "edit on {pred:?} with arity {arity} (expected {})",
                        slot.arity
                    ),
                });
            }
        }
        Ok(())
    }

    /// One maintained value, decode-free: `None` if the tuple (or any
    /// of its constants) is not in the fixpoint's support.
    pub fn get(&self, pred: &str, tuple: &[Constant]) -> Option<&P> {
        let pi = self
            .engine
            .compiled
            .idbs
            .iter()
            .position(|(n, _)| n == pred)?;
        let key: Option<Vec<u32>> = tuple
            .iter()
            .map(|c| self.engine.interner.lookup(c))
            .collect();
        self.state.new[pi].get(&key?)
    }

    /// Support size of one maintained IDB predicate (0 if unknown).
    pub fn support_size(&self, pred: &str) -> usize {
        self.engine
            .compiled
            .idbs
            .iter()
            .position(|(n, _)| n == pred)
            .map_or(0, |pi| self.state.new[pi].len())
    }

    /// The current epoch as a decode-free [`InternedOutput`] snapshot.
    /// This is the epoch handle the ROADMAP's query server chains
    /// further evaluations on.
    ///
    /// The snapshot is maintained **differentially**: edits no longer
    /// discard it wholesale — on the next call only the relations whose
    /// [`ColumnRel::version`] moved since the last refresh are
    /// re-cloned (and the interner only when minting extended it).
    /// Untouched predicates keep their existing clones, whose sorted
    /// arrangements share spine batches with the live state via `Arc` —
    /// an O(1) copy-on-write epoch hand-off, no row data copied.
    pub fn output(&mut self) -> &InternedOutput<P> {
        if let Some(snap) = self.snapshot.as_mut() {
            if self.engine.interner.len() != self.snap_interner_len {
                snap.set_interner(self.engine.interner.clone());
                self.snap_interner_len = self.engine.interner.len();
            }
            for (pred, rel) in self.state.new.iter().enumerate() {
                if rel.version() != self.snap_versions[pred] {
                    snap.update_relation(pred, rel.clone());
                    self.snap_versions[pred] = rel.version();
                }
            }
        } else {
            self.snapshot = Some(InternedOutput::new(
                self.engine.interner.clone(),
                self.engine.compiled.idbs.clone(),
                self.state.new.clone(),
            ));
            self.snap_versions = self.state.new.iter().map(|r| r.version()).collect();
            self.snap_interner_len = self.engine.interner.len();
        }
        self.snapshot.as_ref().expect("just built")
    }

    fn begin_edit(&mut self) {
        self.epoch += 1;
    }

    /// Monotone count of probe-structure builds (hash indexes and
    /// sorted arrangements) over one maintained IDB relation's
    /// lifetime — the churn probe the incremental tests pin: edits must
    /// never rebuild probe structures for relations they do not touch.
    /// Returns 0 for unknown predicates.
    pub fn index_builds_for(&self, pred: &str) -> u64 {
        self.engine
            .compiled
            .idbs
            .iter()
            .position(|(n, _)| n == pred)
            .map_or(0, |pi| self.state.new[pi].index_builds())
    }

    /// The [`ColumnRel::version`] of one maintained IDB relation
    /// (0 for unknown predicates) — lets tests assert that an edit
    /// left a predicate's storage untouched.
    pub fn version_for(&self, pred: &str) -> u64 {
        self.engine
            .compiled
            .idbs
            .iter()
            .position(|(n, _)| n == pred)
            .map_or(0, |pi| self.state.new[pi].version())
    }

    /// Clears the per-edit `changed` maps so that between edits (and
    /// during affected-set propagation) `Old` reads coincide with the
    /// current state.
    fn settle(&mut self) {
        for ch in &mut self.state.changed {
            ch.clear();
        }
    }

    fn slot_index(&self, pred: &str) -> usize {
        self.slots
            .iter()
            .position(|s| s.name == pred)
            .unwrap_or_else(|| {
                panic!("edit targets {pred:?}, which is not an EDB predicate of the program")
            })
    }

    /// Re-sorts the active domain after batch constants were interned
    /// (mirrors the setup-time enumeration order).
    fn refresh_adom(&mut self) {
        let interner = &self.engine.interner;
        let mut adom: Vec<u32> = (0..interner.len() as u32).collect();
        adom.sort_by(|a, b| interner.get(*a).cmp(interner.get(*b)));
        self.engine.adom = adom;
    }

    /// Interns and stages an insert batch: snapshots `@old` where
    /// registered, builds the `@dlt` relations (duplicate tuples
    /// `⊕`-merge), and `⊕`-merges the rows into the live interned and
    /// classic relations. Returns the touched slot indexes.
    fn stage_insert(&mut self, batch: &[FactInsert<P>]) -> Vec<usize> {
        let mode = self.engine.join_mode;
        let before_len = self.engine.interner.len();
        let mut per_slot: Vec<Vec<(Vec<u32>, P)>> = (0..self.slots.len()).map(|_| vec![]).collect();
        for f in batch {
            let si = self.slot_index(&f.pred);
            let slot = &self.slots[si];
            assert_eq!(
                f.tuple.len(),
                slot.arity,
                "insert into {:?} with arity {} (expected {})",
                f.pred,
                f.tuple.len(),
                slot.arity
            );
            let (name, arity) = (slot.name.clone(), slot.arity);
            let key: Vec<u32> = f
                .tuple
                .iter()
                .map(|c| self.engine.interner.intern(c))
                .collect();
            per_slot[si].push((key, f.value.clone()));
            self.edb
                .get_or_insert(&name, arity)
                .merge(f.tuple.clone(), f.value.clone());
        }
        if self.engine.interner.len() > before_len {
            self.refresh_adom();
        }
        let mut touched = vec![];
        for (si, rows) in per_slot.into_iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            touched.push(si);
            let (cur, dlt, old, arity) = {
                let s = &self.slots[si];
                (s.cur, s.dlt, s.old, s.arity)
            };
            if let Some(oi) = old {
                let mut snap = self.engine.pops_edb[cur].clone();
                if let Some(rel) = snap.as_mut() {
                    ensure_probes(rel, &self.pops_masks[oi], mode);
                }
                self.engine.pops_edb[oi] = snap;
            }
            if let Some(di) = dlt {
                let mut d = ColumnRel::new(arity);
                ensure_probes(&mut d, &self.pops_masks[di], mode);
                for (key, v) in &rows {
                    d.merge(key, v.clone());
                }
                self.engine.pops_edb[di] = Some(d);
            }
            if self.engine.pops_edb[cur].is_none() {
                let mut r = ColumnRel::new(arity);
                ensure_probes(&mut r, &self.pops_masks[cur], mode);
                self.engine.pops_edb[cur] = Some(r);
            }
            let live = self.engine.pops_edb[cur].as_mut().expect("just ensured");
            for (key, v) in rows {
                live.merge(&key, v);
            }
        }
        touched
    }

    /// Stages a delete batch: `@dlt` holds the *present* targeted rows
    /// at their current values, `@old` snapshots the pre-delete
    /// relation (so every telescoped variant enumerates marking
    /// instances), and the classic mirror drops the facts. The live
    /// interned relations are **not** touched yet — the affected-set
    /// propagation runs against the pre-delete state. Returns the
    /// deleted interned keys per touched slot.
    fn stage_delete(&mut self, batch: &[FactDelete]) -> Vec<(usize, HashSet<Box<[u32]>>)> {
        let mode = self.engine.join_mode;
        let mut per_slot: Vec<HashSet<Box<[u32]>>> =
            (0..self.slots.len()).map(|_| HashSet::new()).collect();
        for f in batch {
            let si = self.slot_index(&f.pred);
            let slot = &self.slots[si];
            assert_eq!(
                f.tuple.len(),
                slot.arity,
                "delete from {:?} with arity {} (expected {})",
                f.pred,
                f.tuple.len(),
                slot.arity
            );
            let (name, arity, cur) = (slot.name.clone(), slot.arity, slot.cur);
            let key: Option<Vec<u32>> = f
                .tuple
                .iter()
                .map(|c| self.engine.interner.lookup(c))
                .collect();
            let Some(key) = key else { continue };
            let present = self.engine.pops_edb[cur]
                .as_ref()
                .is_some_and(|r| r.rowid(&key).is_some());
            if !present {
                continue;
            }
            per_slot[si].insert(key.into());
            self.edb
                .get_or_insert(&name, arity)
                .set(f.tuple.clone(), P::bottom());
        }
        let mut staged = vec![];
        for (si, keys) in per_slot.into_iter().enumerate() {
            if keys.is_empty() {
                continue;
            }
            let (cur, dlt, old, arity) = {
                let s = &self.slots[si];
                (s.cur, s.dlt, s.old, s.arity)
            };
            if let Some(oi) = old {
                let mut snap = self.engine.pops_edb[cur].clone();
                if let Some(rel) = snap.as_mut() {
                    ensure_probes(rel, &self.pops_masks[oi], mode);
                }
                self.engine.pops_edb[oi] = snap;
            }
            if let Some(di) = dlt {
                let mut d = ColumnRel::new(arity);
                ensure_probes(&mut d, &self.pops_masks[di], mode);
                let live = self.engine.pops_edb[cur].as_ref().expect("checked present");
                for (_, row, v) in live.iter() {
                    if keys.contains(row) {
                        d.insert_row(row, v.clone());
                    }
                }
                self.engine.pops_edb[di] = Some(d);
            }
            staged.push((si, keys));
        }
        staged
    }

    /// Clears the `@dlt` relations (masks stay registered) and drops
    /// the `@old` snapshots of the touched slots.
    fn clear_edit_rels(&mut self, touched: &[usize]) {
        for &si in touched {
            let (dlt, old) = (self.slots[si].dlt, self.slots[si].old);
            if let Some(di) = dlt {
                if let Some(rel) = self.engine.pops_edb[di].as_mut() {
                    rel.clear();
                }
            }
            if let Some(oi) = old {
                self.engine.pops_edb[oi] = None;
            }
        }
    }

    /// Rebuilds the live interned relations without the deleted rows.
    fn apply_edb_deletes(&mut self, staged: &[(usize, HashSet<Box<[u32]>>)]) {
        let mode = self.engine.join_mode;
        for (si, keys) in staged {
            let (cur, arity) = (self.slots[*si].cur, self.slots[*si].arity);
            let old_rel = self.engine.pops_edb[cur].take().expect("staged ⇒ present");
            let mut next = ColumnRel::new(arity);
            ensure_probes(&mut next, &self.pops_masks[cur], mode);
            for (_, row, v) in old_rel.iter() {
                if !keys.contains(row) {
                    next.insert_row(row, v.clone());
                }
            }
            self.engine.pops_edb[cur] = Some(next);
        }
    }

    /// The DRed marking pass: the overapproximated affected set, as
    /// row-id sets into the current IDB state. Runs the `@dlt` variant
    /// plans to seed, then propagates key-sets through the original
    /// delta plans (rows carry their full current values; only the
    /// emitted keys are used) until closure. Must run against the
    /// pre-delete state with empty `changed` maps.
    fn affected_closure(
        &mut self,
        col: &mut Collector,
        gov: &Governor,
        steps: &mut usize,
    ) -> Result<Vec<HashSet<u32>>, LoopFail> {
        let nidb = self.engine.compiled.idbs.len();
        let mut affected: Vec<HashSet<u32>> = (0..nidb).map(|_| HashSet::new()).collect();
        let before = col.stats.counters;
        gov.check(*steps as u64, col)
            .map_err(|a| LoopFail::Abort(a, *steps))?;
        let (contrib, _fresh) =
            run_plans(&self.engine, &self.edit_plans, &self.state, &self.opts, col)
                .map_err(|a| LoopFail::Abort(a, *steps))?;
        let mut frontier: Vec<Vec<u32>> = vec![vec![]; nidb];
        for (pred, acc) in contrib.into_iter().enumerate() {
            let new = &self.state.new[pred];
            let (aff, front) = (&mut affected[pred], &mut frontier[pred]);
            acc.drain_sorted(|key, _| {
                if let Some(r) = new.rowid(key) {
                    if aff.insert(r) {
                        front.push(r);
                    }
                }
            });
        }
        col.end_step(*steps, 0, 0, &before);
        while frontier.iter().any(|f| !f.is_empty()) {
            gov.check(*steps as u64, col)
                .map_err(|a| LoopFail::Abort(a, *steps))?;
            if *steps >= self.cap {
                return Err(LoopFail::Diverged(*steps));
            }
            *steps += 1;
            let before = col.stats.counters;
            let mut delta = self.engine.empty_idbs();
            let mut delta_rows = 0u64;
            for (pred, rows) in frontier.iter().enumerate() {
                let new = &self.state.new[pred];
                for &r in rows {
                    delta[pred].append_row(new.row(r), new.val(r).clone());
                    delta_rows += 1;
                }
            }
            self.state.delta = delta;
            ensure_delta_indexes(&self.engine, &mut self.state);
            let (contrib, _fresh) = run_plans(
                &self.engine,
                &self.delta_plans,
                &self.state,
                &self.opts,
                col,
            )
            .map_err(|a| LoopFail::Abort(a, *steps))?;
            frontier = vec![vec![]; nidb];
            for (pred, acc) in contrib.into_iter().enumerate() {
                let new = &self.state.new[pred];
                let (aff, front) = (&mut affected[pred], &mut frontier[pred]);
                acc.drain_sorted(|key, _| {
                    if let Some(r) = new.rowid(key) {
                        if aff.insert(r) {
                            front.push(r);
                        }
                    }
                });
            }
            col.end_step(*steps, delta_rows, 0, &before);
        }
        self.state.delta = self.engine.empty_idbs();
        ensure_delta_indexes(&self.engine, &mut self.state);
        Ok(affected)
    }

    /// Rebuilds the affected IDB relations without the marked rows
    /// (the zero-out step; surviving rows keep their exact values and
    /// row order, so all downstream drains stay deterministic).
    fn retract_affected(&mut self, affected: &[HashSet<u32>]) {
        let mode = self.engine.join_mode;
        for (pred, rows) in affected.iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let arity = self.engine.compiled.idbs[pred].1;
            let old = std::mem::replace(&mut self.state.new[pred], ColumnRel::new(arity));
            let mut next = ColumnRel::new(arity);
            ensure_probes(&mut next, &self.engine.idb_new_masks[pred], mode);
            for (r, row, v) in old.iter() {
                if !rows.contains(&r) {
                    next.insert_row(row, v.clone());
                }
            }
            // The replacement's version must not alias the replaced
            // relation's — equal versions promise equal contents to the
            // snapshot's dirty tracking.
            next.succeed_version(&old);
            self.state.new[pred] = next;
            self.state.changed[pred].clear();
        }
    }

    /// The naïve loop `J ↦ F'(J)` from the current state using the
    /// original seed plans, to fixpoint. Starting from a pre-fixpoint
    /// (the old state after an insert; the survivors after a delete)
    /// it converges to the new least fixpoint.
    fn naive_loop(&mut self, col: &mut Collector, gov: &Governor) -> Result<usize, LoopFail>
    where
        P: NaturallyOrdered,
    {
        for steps in 0..=self.cap {
            gov.check(steps as u64, col)
                .map_err(|a| LoopFail::Abort(a, steps))?;
            let before = col.stats.counters;
            let (contrib, fresh) =
                run_plans(&self.engine, &self.seed_plans, &self.state, &self.opts, col)
                    .map_err(|a| LoopFail::Abort(a, steps))?;
            let mut next = self.engine.empty_idbs();
            for (pred, acc) in contrib.into_iter().enumerate() {
                let sv = self.engine.compiled.set_valued[pred];
                acc.drain_sorted(|key, v| {
                    next[pred].insert_row(key, if sv { P::one() } else { v });
                });
            }
            let t_mint = Instant::now();
            let minted_before = self.engine.interner.len();
            for (pred, acc) in fresh.into_iter().enumerate() {
                let sv = self.engine.compiled.set_valued[pred];
                for (key, v) in acc {
                    let key = mint_key(&mut self.engine.interner, &key);
                    next[pred].insert_row(&key, if sv { P::one() } else { v });
                }
            }
            col.stats.counters.minted_ids += (self.engine.interner.len() - minted_before) as u64;
            col.stats.phases.mint += t_mint.elapsed().as_nanos() as u64;
            let fixed = next
                .iter()
                .zip(&self.state.new)
                .all(|(n, c)| n.len() == c.len() && n.iter().all(|(_, k, v)| c.get(k) == Some(v)));
            col.end_step(steps, 0, 0, &before);
            if fixed {
                return Ok(steps);
            }
            for (pred, rel) in next.iter_mut().enumerate() {
                ensure_probes(rel, &self.engine.idb_new_masks[pred], self.engine.join_mode);
                rel.succeed_version(&self.state.new[pred]);
            }
            self.state.new = next;
        }
        Err(LoopFail::Diverged(self.cap))
    }
}

impl<P> Materialization<P>
where
    P: NaturallyOrdered + CompleteDistributiveDioid + Send + Sync,
{
    /// Builds the materialization and runs the initial fixpoint with
    /// the parallel semi-naïve loop. `strategy` governs the demand path
    /// behind [`Materialization::query`]; edits always run the
    /// semi-naïve differential continuation.
    ///
    /// # Errors
    ///
    /// [`EvalError::Compile`] on programs the columnar storage cannot
    /// represent or predicate names using the reserved `@` namespace;
    /// [`EvalError::Diverged`] when the initial fixpoint exceeds `cap`
    /// steps; the governed variants when `opts` carries a budget or
    /// cancel token that trips during the build. A failed build returns
    /// no handle, so there is nothing to poison.
    pub fn new(
        program: &Program<P>,
        pops_edb: &Database<P>,
        bool_edb: &BoolDatabase,
        cap: usize,
        strategy: Strategy,
        opts: &EngineOpts,
    ) -> Result<Self, EvalError> {
        Self::build(program, pops_edb, bool_edb, cap, strategy, opts, None)
    }

    /// [`Materialization::new`] with an optional retained interner from
    /// a previous epoch (the rebuild path).
    fn build(
        program: &Program<P>,
        pops_edb: &Database<P>,
        bool_edb: &BoolDatabase,
        cap: usize,
        strategy: Strategy,
        opts: &EngineOpts,
        prev: Option<&InternedOutput<P>>,
    ) -> Result<Self, EvalError> {
        let t = Instant::now();
        let mut m = Self::prepare(program, pops_edb, bool_edb, cap, strategy, opts, prev)?;
        let mut col = Collector::new(
            "incremental-build",
            m.opts.effective_threads(),
            t.elapsed().as_nanos() as u64,
            m.engine.compiled.plan_metas_for(m.engine.join_mode),
            &m.opts,
        );
        let gov = Governor::new(&m.opts, t.elapsed().as_nanos() as u64);
        let t_eval = Instant::now();
        match m.seminaive_build(&mut col, &gov) {
            Ok(steps) => {
                m.settle();
                m.last_stats = col.finish(steps, true, t_eval.elapsed().as_nanos() as u64);
                Ok(m)
            }
            Err(f) => Err(fail_error(
                m.cap,
                f,
                col,
                t_eval.elapsed().as_nanos() as u64,
            )),
        }
    }

    /// Recovers (or refreshes) the handle: re-derives the fixpoint from
    /// the retained classic EDB and clears the poisoned bit (and the
    /// stashed [`Materialization::partial`]). The fixpoint agrees with
    /// a from-scratch build at any thread count, and the retained
    /// **interner is reused**, so constant ids minted by earlier epochs
    /// stay stable across the recovery — interned keys held by callers
    /// keep resolving to the same constants. The epoch advances past
    /// every previous epoch. A rebuild is itself governed by the
    /// current budget/cancel settings (adjust them first via
    /// [`Materialization::set_budget`] / [`Materialization::set_cancel`]
    /// if the poisoning budget would trip again); a failed rebuild
    /// leaves the handle poisoned.
    ///
    /// # Errors
    ///
    /// As [`Materialization::new`].
    pub fn rebuild(&mut self) -> Result<&EvalStats, EvalError> {
        let epoch = self.epoch + 1;
        let prev = InternedOutput::new(self.engine.interner.clone(), vec![], vec![]);
        let mut fresh = Self::build(
            &self.program,
            &self.edb,
            &self.bool_edb,
            self.cap,
            self.strategy,
            &self.opts,
            Some(&prev),
        )?;
        fresh.epoch = epoch;
        *self = fresh;
        Ok(&self.last_stats)
    }

    /// The initial semi-naïve fixpoint: seed `J(1) = F(0)`, then the
    /// delta loop (mirrors the from-scratch driver over the original
    /// rules; the variant rules see empty `@dlt` and contribute
    /// nothing).
    fn seminaive_build(&mut self, col: &mut Collector, gov: &Governor) -> Result<usize, LoopFail> {
        let seed_before = col.stats.counters;
        gov.check(0, col).map_err(|a| LoopFail::Abort(a, 0))?;
        let (contrib, fresh) =
            run_plans(&self.engine, &self.seed_plans, &self.state, &self.opts, col)
                .map_err(|a| LoopFail::Abort(a, 0))?;
        for (pred, acc) in contrib.into_iter().enumerate() {
            let sv = self.engine.compiled.set_valued[pred];
            let state = &mut self.state;
            let c = &mut col.stats.counters;
            acc.drain_sorted(|key, v| {
                let v = if sv { P::one() } else { v };
                let r = state.new[pred].insert_row(key, v.clone());
                state.changed[pred].insert(r, None);
                state.delta[pred].append_row(key, v);
                c.rows_inserted += 1;
            });
        }
        let t_mint = Instant::now();
        let minted_before = self.engine.interner.len();
        for (pred, acc) in fresh.into_iter().enumerate() {
            let sv = self.engine.compiled.set_valued[pred];
            for (key, v) in acc {
                let v = if sv { P::one() } else { v };
                let key = mint_key(&mut self.engine.interner, &key);
                let r = self.state.new[pred].insert_row(&key, v.clone());
                self.state.changed[pred].insert(r, None);
                self.state.delta[pred].append_row(&key, v);
                col.stats.counters.rows_inserted += 1;
            }
        }
        col.stats.counters.minted_ids += (self.engine.interner.len() - minted_before) as u64;
        col.stats.phases.mint += t_mint.elapsed().as_nanos() as u64;
        let t_arr = Instant::now();
        if ensure_delta_indexes(&self.engine, &mut self.state) {
            col.arrange_phase(t_arr.elapsed().as_nanos() as u64);
        }
        drain_arrange_merges(&mut self.state, col);
        col.end_step(0, 0, 0, &seed_before);
        self.delta_loop(col, gov, 0)
    }

    /// The semi-naïve continuation: run the original delta plans and
    /// advance until every delta drains. Returns the final step count.
    fn delta_loop(
        &mut self,
        col: &mut Collector,
        gov: &Governor,
        start: usize,
    ) -> Result<usize, LoopFail> {
        let mut steps = start;
        while !self.state.delta.iter().all(|d| d.is_empty()) {
            gov.check(steps as u64, col)
                .map_err(|a| LoopFail::Abort(a, steps))?;
            if steps >= self.cap {
                return Err(LoopFail::Diverged(steps));
            }
            steps += 1;
            let before = col.stats.counters;
            let delta_rows: u64 = self.state.delta.iter().map(|d| d.len() as u64).sum();
            let (contrib, fresh) = run_plans(
                &self.engine,
                &self.delta_plans,
                &self.state,
                &self.opts,
                col,
            )
            .map_err(|a| LoopFail::Abort(a, steps))?;
            apply_contrib(&mut self.engine, &mut self.state, contrib, fresh, col);
            col.end_step(steps, delta_rows, 0, &before);
        }
        Ok(steps)
    }

    /// Absorbs an insert batch: `⊕`-merges the facts into the EDB and
    /// advances the fixpoint by the telescoped differential — the
    /// variant plans compute `F'(J) ⊖ F(J)` driven by the batch, the
    /// standard advance folds it in, and the delta loop continues from
    /// the old fixpoint (a pre-fixpoint of the grown operator).
    ///
    /// Returns the edit's own [`EvalStats`].
    ///
    /// # Errors
    ///
    /// [`EvalError::Poisoned`] if a previous edit failed mid-flight;
    /// [`EvalError::Compile`] on unknown predicates or arity mismatches
    /// (rejected before staging — the handle is untouched);
    /// [`EvalError::Diverged`] on cap overrun and the governed variants
    /// on budget/deadline/cancellation — these **poison** the handle
    /// (see the module docs).
    pub fn insert(&mut self, batch: &[FactInsert<P>]) -> Result<&EvalStats, EvalError> {
        self.check_poisoned()?;
        self.validate_edits(batch.iter().map(|f| (f.pred.as_str(), f.tuple.len())))?;
        let t = Instant::now();
        self.begin_edit();
        let touched = self.stage_insert(batch);
        let mut col = Collector::new(
            "incremental-insert",
            self.opts.effective_threads(),
            t.elapsed().as_nanos() as u64,
            self.engine.compiled.plan_metas_for(self.engine.join_mode),
            &self.opts,
        );
        let gov = Governor::new(&self.opts, t.elapsed().as_nanos() as u64);
        let t_eval = Instant::now();
        let run = self.insert_run(&mut col, &gov, batch.len() as u64);
        let eval_ns = t_eval.elapsed().as_nanos() as u64;
        match run {
            Ok(steps) => {
                self.clear_edit_rels(&touched);
                self.settle();
                self.last_stats = col.finish(steps, true, eval_ns);
                Ok(&self.last_stats)
            }
            Err(f) => Err(self.poison(fail_error(self.cap, f, col, eval_ns))),
        }
    }

    /// The governed tail of [`Materialization::insert`]: the
    /// differential seed plus the semi-naïve continuation, factored out
    /// so the public wrapper can poison any failure with one match.
    fn insert_run(
        &mut self,
        col: &mut Collector,
        gov: &Governor,
        batch_rows: u64,
    ) -> Result<usize, LoopFail> {
        let before = col.stats.counters;
        gov.check(0, col).map_err(|a| LoopFail::Abort(a, 0))?;
        let (contrib, fresh) =
            run_plans(&self.engine, &self.edit_plans, &self.state, &self.opts, col)
                .map_err(|a| LoopFail::Abort(a, 0))?;
        apply_contrib(&mut self.engine, &mut self.state, contrib, fresh, col);
        col.end_step(0, batch_rows, 0, &before);
        self.delta_loop(col, gov, 0)
    }

    /// Absorbs a delete batch by delete–rederive (module docs): mark
    /// the affected closure against the pre-delete state, drop the
    /// deleted EDB rows and the affected IDB rows, rederive from the
    /// surviving support with the original seed plans, and run the
    /// delta loop to fixpoint. Deleting absent facts is a no-op.
    ///
    /// Returns the edit's own [`EvalStats`].
    ///
    /// # Errors
    ///
    /// As [`Materialization::insert`].
    pub fn delete(&mut self, batch: &[FactDelete]) -> Result<&EvalStats, EvalError> {
        self.check_poisoned()?;
        self.validate_edits(batch.iter().map(|f| (f.pred.as_str(), f.tuple.len())))?;
        let t = Instant::now();
        self.begin_edit();
        let staged = self.stage_delete(batch);
        let mut col = Collector::new(
            "incremental-delete",
            self.opts.effective_threads(),
            t.elapsed().as_nanos() as u64,
            self.engine.compiled.plan_metas_for(self.engine.join_mode),
            &self.opts,
        );
        let gov = Governor::new(&self.opts, t.elapsed().as_nanos() as u64);
        let t_eval = Instant::now();
        if staged.is_empty() {
            self.last_stats = col.finish(0, true, t_eval.elapsed().as_nanos() as u64);
            return Ok(&self.last_stats);
        }
        let run = self.delete_run(&mut col, &gov, &staged);
        let eval_ns = t_eval.elapsed().as_nanos() as u64;
        match run {
            Ok(steps) => {
                self.settle();
                self.last_stats = col.finish(steps, true, eval_ns);
                Ok(&self.last_stats)
            }
            Err(f) => Err(self.poison(fail_error(self.cap, f, col, eval_ns))),
        }
    }

    /// The governed tail of [`Materialization::delete`]: marking,
    /// zero-out, rederive, continuation.
    fn delete_run(
        &mut self,
        col: &mut Collector,
        gov: &Governor,
        staged: &[(usize, HashSet<Box<[u32]>>)],
    ) -> Result<usize, LoopFail> {
        let touched: Vec<usize> = staged.iter().map(|(si, _)| *si).collect();
        let mut steps = 0usize;
        let affected = self.affected_closure(col, gov, &mut steps)?;
        self.clear_edit_rels(&touched);
        self.apply_edb_deletes(staged);
        self.retract_affected(&affected);
        let has_affected: Vec<bool> = affected.iter().map(|a| !a.is_empty()).collect();
        if has_affected.iter().any(|&b| b) {
            let rederive: Vec<Plan<P>> = self
                .seed_plans
                .iter()
                .filter(|p| has_affected[p.head_pred])
                .cloned()
                .collect();
            gov.check(steps as u64, col)
                .map_err(|a| LoopFail::Abort(a, steps))?;
            steps += 1;
            let before = col.stats.counters;
            let (contrib, fresh) = run_plans(&self.engine, &rederive, &self.state, &self.opts, col)
                .map_err(|a| LoopFail::Abort(a, steps))?;
            apply_contrib(&mut self.engine, &mut self.state, contrib, fresh, col);
            col.end_step(steps, 0, 0, &before);
            steps = self.delta_loop(col, gov, steps)?;
        }
        Ok(steps)
    }

    /// Applies an edit script in order, one batch per edit, stopping at
    /// the first failing edit (its error propagates, with the handle
    /// poisoned exactly as the direct call would have). Returns the
    /// stats of the last edit (each edit's stats are observable through
    /// [`Materialization::last_stats`] between steps).
    ///
    /// # Errors
    ///
    /// As [`Materialization::insert`].
    pub fn apply(&mut self, script: &[Edit<P>]) -> Result<&EvalStats, EvalError> {
        for edit in script {
            match edit {
                Edit::Insert(f) => {
                    self.insert(std::slice::from_ref(f))?;
                }
                Edit::Delete(f) => {
                    self.delete(std::slice::from_ref(f))?;
                }
            }
        }
        Ok(&self.last_stats)
    }
}

impl<P> Materialization<P>
where
    P: NaturallyOrdered + Send + Sync,
{
    /// [`Materialization::new`] for POPS **without** a `⊖` operator
    /// (e.g. `NNReal`): the initial build and every edit run the naïve
    /// loop `J ↦ F'(J)` — from the old state for inserts, from the
    /// DRed survivors for deletes — which needs only natural order.
    ///
    /// # Errors
    ///
    /// As [`Materialization::new`].
    pub fn new_naive(
        program: &Program<P>,
        pops_edb: &Database<P>,
        bool_edb: &BoolDatabase,
        cap: usize,
        opts: &EngineOpts,
    ) -> Result<Self, EvalError> {
        Self::build_naive(program, pops_edb, bool_edb, cap, opts, None)
    }

    /// [`Materialization::new_naive`] with an optional retained
    /// interner from a previous epoch (the rebuild path).
    fn build_naive(
        program: &Program<P>,
        pops_edb: &Database<P>,
        bool_edb: &BoolDatabase,
        cap: usize,
        opts: &EngineOpts,
        prev: Option<&InternedOutput<P>>,
    ) -> Result<Self, EvalError> {
        let t = Instant::now();
        let mut m = Self::prepare(program, pops_edb, bool_edb, cap, Strategy::Auto, opts, prev)?;
        let mut col = Collector::new(
            "incremental-build-naive",
            m.opts.effective_threads(),
            t.elapsed().as_nanos() as u64,
            m.engine.compiled.plan_metas_for(m.engine.join_mode),
            &m.opts,
        );
        let gov = Governor::new(&m.opts, t.elapsed().as_nanos() as u64);
        let t_eval = Instant::now();
        match m.naive_loop(&mut col, &gov) {
            Ok(steps) => {
                m.last_stats = col.finish(steps, true, t_eval.elapsed().as_nanos() as u64);
                Ok(m)
            }
            Err(f) => Err(fail_error(
                m.cap,
                f,
                col,
                t_eval.elapsed().as_nanos() as u64,
            )),
        }
    }

    /// [`Materialization::rebuild`] for naïve-mode handles: re-derives
    /// from the retained classic EDB with the naïve loop, reusing the
    /// retained interner (stable constant ids) and clearing the
    /// poisoned bit and stashed partial.
    ///
    /// # Errors
    ///
    /// As [`Materialization::new`].
    pub fn rebuild_naive(&mut self) -> Result<&EvalStats, EvalError> {
        let epoch = self.epoch + 1;
        let prev = InternedOutput::new(self.engine.interner.clone(), vec![], vec![]);
        let mut fresh = Self::build_naive(
            &self.program,
            &self.edb,
            &self.bool_edb,
            self.cap,
            &self.opts,
            Some(&prev),
        )?;
        fresh.epoch = epoch;
        fresh.strategy = self.strategy;
        *self = fresh;
        Ok(&self.last_stats)
    }

    /// Naïve-mode insert: `⊕`-merge the batch into the EDB, then run
    /// the naïve loop from the old fixpoint (a pre-fixpoint of the
    /// grown operator — often a single confirming step when the edit is
    /// absorbed). The variant rules stay out: naïve steps recompute
    /// full sums, so the differential would double-count.
    ///
    /// # Errors
    ///
    /// As [`Materialization::insert`].
    pub fn insert_naive(&mut self, batch: &[FactInsert<P>]) -> Result<&EvalStats, EvalError> {
        self.check_poisoned()?;
        self.validate_edits(batch.iter().map(|f| (f.pred.as_str(), f.tuple.len())))?;
        let t = Instant::now();
        self.begin_edit();
        let touched = self.stage_insert(batch);
        // The naïve loop never reads the edit relations; drop them now.
        self.clear_edit_rels(&touched);
        let mut col = Collector::new(
            "incremental-insert-naive",
            self.opts.effective_threads(),
            t.elapsed().as_nanos() as u64,
            self.engine.compiled.plan_metas_for(self.engine.join_mode),
            &self.opts,
        );
        let gov = Governor::new(&self.opts, t.elapsed().as_nanos() as u64);
        let t_eval = Instant::now();
        let run = self.naive_loop(&mut col, &gov);
        let eval_ns = t_eval.elapsed().as_nanos() as u64;
        match run {
            Ok(steps) => {
                self.last_stats = col.finish(steps, true, eval_ns);
                Ok(&self.last_stats)
            }
            Err(f) => Err(self.poison(fail_error(self.cap, f, col, eval_ns))),
        }
    }

    /// Naïve-mode delete: the same DRed marking and zero-out as
    /// [`Materialization::delete`] (the marking pass is purely
    /// key-syntactic, no `⊖` involved), then the naïve loop rederives
    /// from the surviving support.
    ///
    /// # Errors
    ///
    /// As [`Materialization::insert`].
    pub fn delete_naive(&mut self, batch: &[FactDelete]) -> Result<&EvalStats, EvalError> {
        self.check_poisoned()?;
        self.validate_edits(batch.iter().map(|f| (f.pred.as_str(), f.tuple.len())))?;
        let t = Instant::now();
        self.begin_edit();
        let staged = self.stage_delete(batch);
        let mut col = Collector::new(
            "incremental-delete-naive",
            self.opts.effective_threads(),
            t.elapsed().as_nanos() as u64,
            self.engine.compiled.plan_metas_for(self.engine.join_mode),
            &self.opts,
        );
        let gov = Governor::new(&self.opts, t.elapsed().as_nanos() as u64);
        let t_eval = Instant::now();
        if staged.is_empty() {
            self.last_stats = col.finish(0, true, t_eval.elapsed().as_nanos() as u64);
            return Ok(&self.last_stats);
        }
        let run = (|| {
            let touched: Vec<usize> = staged.iter().map(|(si, _)| *si).collect();
            let mut steps = 0usize;
            let affected = self.affected_closure(&mut col, &gov, &mut steps)?;
            self.clear_edit_rels(&touched);
            self.apply_edb_deletes(&staged);
            self.retract_affected(&affected);
            Ok(steps + self.naive_loop(&mut col, &gov)?)
        })();
        let eval_ns = t_eval.elapsed().as_nanos() as u64;
        match run {
            Ok(steps) => {
                self.last_stats = col.finish(steps, true, eval_ns);
                Ok(&self.last_stats)
            }
            Err(f) => Err(self.poison(fail_error(self.cap, f, col, eval_ns))),
        }
    }
}

impl<P> Materialization<P>
where
    P: NaturallyOrdered
        + CompleteDistributiveDioid
        + Absorptive
        + TotallyOrderedDioid
        + Send
        + Sync,
{
    /// Answers a query against the **current epoch** through the
    /// magic-set demand path: the original program is rewritten for the
    /// query's binding pattern and evaluated (with the configured
    /// strategy) over the epoch's interner and the current classic EDB
    /// — decode-free chaining, exactly the PR-5 path, so the demanded
    /// fragment is recomputed rather than read from the materialized
    /// state (subsumptive reuse is the ROADMAP's next step).
    ///
    /// # Errors
    ///
    /// As [`crate::engine_query_eval`], plus [`EvalError::Poisoned`]
    /// when a prior edit on this handle failed mid-flight.
    pub fn query(&mut self, query: &Query) -> Result<QueryAnswer<P>, EvalError> {
        self.check_poisoned()?;
        // Always refresh: the snapshot survives edits (differential
        // maintenance), so it may be stale rather than absent.
        self.output();
        let snap = self.snapshot.as_ref().expect("just built");
        engine_query_eval_interned_edb(
            &self.program,
            query,
            snap,
            &self.edb,
            &self.bool_edb,
            self.cap,
            self.strategy,
            &self.opts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::JoinMode;
    use dlo_core::parser::parse_program;
    use dlo_core::relation::Relation;
    use dlo_core::tup;
    use dlo_pops::Trop;

    /// Two independent quadratic closures, so an edit on one EDB leaves
    /// the other IDB provably untouched.
    fn two_tc() -> (Program<Trop>, Database<Trop>) {
        let program = parse_program(
            "P(X, Z) :- EP(X, Z) + P(X, Y) * P(Y, Z).\n\
             Q(X, Z) :- EQ(X, Z) + Q(X, Y) * Q(Y, Z).",
        )
        .unwrap();
        let mut edb = Database::new();
        edb.insert(
            "EP",
            Relation::from_pairs(
                2,
                vec![
                    (tup!["a", "b"], Trop::finite(1.0)),
                    (tup!["b", "c"], Trop::finite(1.0)),
                ],
            ),
        );
        edb.insert(
            "EQ",
            Relation::from_pairs(
                2,
                vec![
                    (tup!["x", "y"], Trop::finite(2.0)),
                    (tup!["y", "z"], Trop::finite(2.0)),
                ],
            ),
        );
        (program, edb)
    }

    /// The no-churn contract: an edit touching only `EP` must not
    /// rebuild `Q`'s probe structures, must not move `Q`'s version, and
    /// the refreshed snapshot must keep `Q`'s existing clone — whose
    /// sorted arrangements share spine batches by `Arc`, row data
    /// uncopied — while still folding the edit into `P`.
    #[test]
    fn edits_keep_untouched_relations_and_share_arrangement_batches() {
        let opts = EngineOpts {
            join_mode: Some(JoinMode::Merge),
            ..EngineOpts::default()
        };
        let (program, edb) = two_tc();
        let mut m = Materialization::new(
            &program,
            &edb,
            &BoolDatabase::new(),
            100_000,
            Strategy::Auto,
            &opts,
        )
        .unwrap();
        let snap1 = m.output().clone();
        let builds_q = m.index_builds_for("Q");
        let ver_q = m.version_for("Q");
        let ver_p = m.version_for("P");
        assert!(ver_q > 0, "Q was derived, so its version moved");

        m.insert(&[FactInsert::new("EP", tup!["c", "d"], Trop::finite(1.0))])
            .unwrap();
        let snap2 = m.output().clone();

        // The edit reached P…
        let ad = tup!["a", "d"];
        assert_eq!(m.get("P", &ad), Some(&Trop::finite(3.0)));
        assert_eq!(snap2.get("P", &ad), Some(&Trop::finite(3.0)));
        assert!(m.version_for("P") > ver_p, "P's storage was edited");
        // …and left Q alone: no probe-structure rebuilds, no mutation.
        assert_eq!(m.index_builds_for("Q"), builds_q, "Q index churn");
        assert_eq!(m.version_for("Q"), ver_q, "Q storage churn");

        // The quadratic rule probes Q's own state, so under forced
        // merge mode Q carries at least one sorted arrangement — and
        // the two epoch snapshots share its spine batches by pointer.
        let (q1, q2) = (snap1.relation("Q").unwrap(), snap2.relation("Q").unwrap());
        let shared_mask = (1u32..4)
            .find(|&mask| q1.arrangement_for(mask).is_some())
            .expect("merge mode arranges Q's probe masks");
        let (a1, a2) = (
            q1.arrangement_for(shared_mask).unwrap(),
            q2.arrangement_for(shared_mask).unwrap(),
        );
        assert_eq!(a1.batches().len(), a2.batches().len());
        for (b1, b2) in a1.batches().iter().zip(a2.batches()) {
            assert!(
                std::sync::Arc::ptr_eq(b1, b2),
                "epoch snapshots must share arrangement batches"
            );
        }
    }

    /// A delete rebuilds the touched IDB wholesale; the version must
    /// move strictly (never alias the pre-edit version) so snapshot
    /// dirty-tracking re-clones it.
    #[test]
    fn delete_rederive_moves_versions_strictly() {
        let (program, edb) = two_tc();
        let mut m = Materialization::new(
            &program,
            &edb,
            &BoolDatabase::new(),
            100_000,
            Strategy::Auto,
            &EngineOpts::default(),
        )
        .unwrap();
        let ver_p = m.version_for("P");
        let ver_q = m.version_for("Q");
        m.delete(&[FactDelete::new("EP", tup!["a", "b"])]).unwrap();
        assert!(m.version_for("P") > ver_p, "delete must move P's version");
        assert_eq!(m.version_for("Q"), ver_q, "Q untouched by the delete");
        let (ab, bc) = (tup!["a", "b"], tup!["b", "c"]);
        assert_eq!(m.get("P", &ab), None);
        let snap = m.output();
        assert_eq!(snap.get("P", &ab), None);
        assert_eq!(snap.get("P", &bc), Some(&Trop::finite(1.0)));
    }
}
