//! The engine-side telemetry collector: accumulates the
//! [`EvalStats`] every driver returns and streams [`TraceEvent`]s to
//! an optional sink while the run executes.
//!
//! One [`Collector`] lives for the duration of one evaluation. The
//! drivers feed it:
//!
//! * per-plan [`crate::exec::ExecCounters`] plus wall-clock, keyed by
//!   [`crate::plan::Plan::pid`] (summed in deterministic task order —
//!   the counter totals are thread-invariant, only `time_ns` is not);
//! * per-iteration/per-batch [`IterStat`] snapshots, derived from
//!   counter deltas around each step;
//! * phase timings (setup is measured by the entry points and passed
//!   in; EDB index build, mint, and eval are measured by the loops;
//!   decode by [`crate::output::InternedOutcome::materialize`]).
//!
//! Tracing resolves from [`crate::driver::EngineOpts::trace`], falling
//! back to the `DLO_TRACE` environment variable (a JSONL path, opened
//! in append mode). The collector emits every event from the
//! coordinating thread only, so sinks never see concurrent calls.

use crate::driver::EngineOpts;
use crate::exec::ExecCounters;
use crate::plan::PlanMeta;
use dlo_core::eval::stats::{
    Counters, EvalStats, IterStat, JsonlSink, RuleProfile, TraceEvent, TraceHandle,
};

/// Per-run stats accumulator + trace emitter (see module docs).
pub(crate) struct Collector {
    /// The stats under construction; the loops add counters directly.
    pub stats: EvalStats,
    /// Per-pid aggregation, folded into [`EvalStats::rules`] on finish.
    per_plan: Vec<(ExecCounters, u64)>,
    metas: Vec<PlanMeta>,
    trace: Option<TraceHandle>,
    /// Snapshot sampling stride from [`EngineOpts::iter_sample`] /
    /// `DLO_STATS_SAMPLE`: only steps divisible by this are pushed into
    /// [`EvalStats::iterations`] (sampled-out steps count as dropped;
    /// `last_iter` and the trace stream always see every step).
    iter_sample: u64,
}

/// Resolves the active trace handle: an explicit [`TraceHandle`] on
/// the options wins; otherwise `DLO_TRACE=<path>` appends JSONL to
/// `<path>`; otherwise tracing is off.
fn resolve_trace(opts_trace: Option<&TraceHandle>) -> Option<TraceHandle> {
    if let Some(handle) = opts_trace {
        return Some(handle.clone());
    }
    let path = std::env::var_os("DLO_TRACE")?;
    if path.is_empty() {
        return None;
    }
    JsonlSink::create(std::path::Path::new(&path))
        .ok()
        .map(TraceHandle::new)
}

impl Collector {
    /// Starts collection for one run: records the resolved strategy,
    /// thread count, and setup time, and emits `RunStart` (plus the
    /// setup `Phase` event) to the trace.
    pub fn new(
        strategy: &str,
        threads: usize,
        setup_ns: u64,
        metas: Vec<PlanMeta>,
        opts: &EngineOpts,
    ) -> Collector {
        let mut stats = EvalStats {
            strategy: strategy.to_string(),
            threads: threads as u64,
            ..EvalStats::default()
        };
        stats.phases.setup = setup_ns;
        let trace = resolve_trace(opts.trace.as_ref());
        if let Some(t) = &trace {
            t.emit(&TraceEvent::RunStart {
                strategy: strategy.to_string(),
                threads: threads as u64,
            });
            t.emit(&TraceEvent::Phase {
                name: "setup".to_string(),
                nanos: setup_ns,
            });
        }
        let per_plan = vec![(ExecCounters::default(), 0u64); metas.len()];
        Collector {
            stats,
            per_plan,
            metas,
            trace,
            iter_sample: opts.effective_iter_sample(),
        }
    }

    /// Records the EDB index-build phase.
    pub fn edb_index_phase(&mut self, nanos: u64) {
        self.stats.phases.edb_index += nanos;
        if let Some(t) = &self.trace {
            t.emit(&TraceEvent::Phase {
                name: "edb_index".to_string(),
                nanos,
            });
        }
    }

    /// Records time spent building/maintaining sorted arrangements
    /// (the `arrange` leg of [`dlo_core::eval::stats::PhaseNanos`]).
    pub fn arrange_phase(&mut self, nanos: u64) {
        self.stats.phases.arrange += nanos;
        if let Some(t) = &self.trace {
            t.emit(&TraceEvent::Phase {
                name: "arrange".to_string(),
                nanos,
            });
        }
    }

    /// Attributes one plan execution's counters and wall-clock to its
    /// pid, and adds the counters to the whole-run totals.
    pub fn add_plan(&mut self, pid: usize, counters: ExecCounters, nanos: u64) {
        let (acc, ns) = &mut self.per_plan[pid];
        acc.add(&counters);
        *ns += nanos;
        self.stats.counters.emits += counters.emits;
        self.stats.counters.fresh_emits += counters.fresh_emits;
        self.stats.counters.index_probes += counters.probes;
        self.stats.counters.merge_join_steps += counters.merge_probes;
        self.stats.counters.hash_join_steps += counters.hash_probes;
        self.stats.counters.tuples_scanned += counters.scanned;
    }

    /// Records one parallel fan-out (environmental).
    pub fn parallel_batch(&mut self, tasks: usize) {
        self.stats.parallel_batches += 1;
        self.stats.tasks_spawned += tasks as u64;
    }

    /// Completes one iteration/batch: computes the snapshot from the
    /// counter delta since `before`, pushes it (sample- and cap-aware),
    /// and streams it to the trace.
    pub fn end_step(&mut self, step: usize, delta_rows: u64, queue_depth: u64, before: &Counters) {
        self.stats.counters.delta_rows += delta_rows;
        let d = self.stats.counters.since(before);
        let it = IterStat {
            step: step as u64,
            delta_rows,
            queue_depth,
            emits: d.emits,
            fresh_emits: d.fresh_emits,
            inserted: d.rows_inserted,
            improved: d.rows_improved,
            absorbed: d.merges_absorbed,
            minted: d.minted_ids,
        };
        if it.step.is_multiple_of(self.iter_sample) {
            self.stats.push_iteration(it);
        } else {
            // Sampled out: accounted like a cap overflow, and still the
            // freshest `last_iter`.
            self.stats.iterations_dropped += 1;
            self.stats.last_iter = Some(it);
        }
        if let Some(t) = &self.trace {
            t.emit(&TraceEvent::Iteration(it));
        }
    }

    /// Streams the abort event of a governed stop (budget, deadline,
    /// cancellation, or contained worker panic). `granularity` names
    /// the checkpoint that detected the stop (`"phase"`,
    /// `"iteration"`, `"generation"`, or `"bucket"`); `settled_rows`
    /// is the number of rows provably settled at that moment (exact
    /// under the priority strategy, 0 elsewhere). Always followed by
    /// the `RunEnd { converged: false }` that [`Collector::finish`]
    /// emits, so JSONL sinks flush exactly as on a normal run.
    pub fn abort(&mut self, reason: &str, granularity: &str, settled_rows: u64, steps: usize) {
        if let Some(t) = &self.trace {
            t.emit(&TraceEvent::Abort {
                reason: reason.to_string(),
                steps: steps as u64,
                granularity: granularity.to_string(),
                settled_rows,
            });
        }
    }

    /// Finishes the run: stamps steps and the eval-loop wall-clock,
    /// folds the per-pid aggregation into [`EvalStats::rules`], emits
    /// `RunEnd`, and returns the completed stats.
    pub fn finish(mut self, steps: usize, converged: bool, eval_ns: u64) -> EvalStats {
        self.stats.steps = steps as u64;
        self.stats.phases.eval = eval_ns.saturating_sub(self.stats.phases.mint);
        self.stats.rules = self
            .per_plan
            .iter()
            .zip(&self.metas)
            .map(|(&(c, ns), meta)| RuleProfile {
                rule: meta.rule_idx as u64,
                label: meta.label.clone(),
                kind: meta.kind.to_string(),
                join: meta.join.to_string(),
                emits: c.emits,
                fresh_emits: c.fresh_emits,
                probes: c.probes,
                scanned: c.scanned,
                time_ns: ns,
            })
            .collect();
        if let Some(t) = &self.trace {
            t.emit(&TraceEvent::RunEnd {
                steps: steps as u64,
                converged,
            });
        }
        self.stats
    }
}
