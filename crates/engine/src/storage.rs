//! Interned columnar relations with hash-prefix indexes.
//!
//! A [`ColumnRel`] stores rows in one flat `Vec<u32>` (row-major) with a
//! parallel value vector and a full-row hash map for O(1) merge. Indexes
//! are hash maps from a *bound-column projection* to the matching row
//! ids, keyed by a column bitmask; they are built lazily per
//! `(relation, bound-column-set)` — once a mask is requested it is
//! maintained incrementally by [`ColumnRel::insert_row`], so monotone
//! relations (the semi-naïve `new` state) never pay a rebuild.

use dlo_pops::Pops;
use std::collections::HashMap;

/// A column bitmask: bit `c` set ⇔ column `c` participates in the probe.
pub type ColMask = u32;

/// Projects `row` onto the columns of `mask`, ascending.
pub fn project(row: &[u32], mask: ColMask) -> Box<[u32]> {
    row.iter()
        .enumerate()
        .filter(|(c, _)| mask & (1 << c) != 0)
        .map(|(_, &v)| v)
        .collect()
}

/// An interned finite-support relation: flat rows, values, row map, and
/// lazily built prefix indexes.
#[derive(Clone, Debug)]
pub struct ColumnRel<P> {
    arity: usize,
    keys: Vec<u32>,
    vals: Vec<P>,
    map: HashMap<Box<[u32]>, u32>,
    indexes: HashMap<ColMask, HashMap<Box<[u32]>, Vec<u32>>>,
}

impl<P: Pops> ColumnRel<P> {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        assert!(arity <= 32, "engine supports arity ≤ 32");
        ColumnRel {
            arity,
            keys: Vec::new(),
            vals: Vec::new(),
            map: HashMap::new(),
            indexes: HashMap::new(),
        }
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// The key columns of row `r`.
    pub fn row(&self, r: u32) -> &[u32] {
        let s = r as usize * self.arity;
        &self.keys[s..s + self.arity]
    }

    /// The value of row `r`.
    pub fn val(&self, r: u32) -> &P {
        &self.vals[r as usize]
    }

    /// The row id holding `key`, if present.
    pub fn rowid(&self, key: &[u32]) -> Option<u32> {
        self.map.get(key).copied()
    }

    /// The value at `key`, if present.
    pub fn get(&self, key: &[u32]) -> Option<&P> {
        self.rowid(key).map(|r| self.val(r))
    }

    /// Appends a fresh row (caller guarantees `key` is absent) and
    /// maintains every built index.
    ///
    /// The arity check is a hard assert: a wrong-length key would shift
    /// every subsequent row boundary in the flat storage, silently
    /// corrupting the relation.
    pub fn insert_row(&mut self, key: &[u32], value: P) -> u32 {
        assert_eq!(key.len(), self.arity, "row arity mismatch");
        debug_assert!(!self.map.contains_key(key), "insert_row on present key");
        let r = self.vals.len() as u32;
        self.keys.extend_from_slice(key);
        self.vals.push(value);
        self.map.insert(key.into(), r);
        for (&mask, index) in &mut self.indexes {
            index.entry(project(key, mask)).or_default().push(r);
        }
        r
    }

    /// Overwrites the value of row `r` (keys unchanged, indexes intact).
    pub fn set_val(&mut self, r: u32, value: P) {
        self.vals[r as usize] = value;
    }

    /// `⊕`-merges `value` at `key` (insert when absent), returning the
    /// affected row id.
    pub fn merge(&mut self, key: &[u32], value: P) -> u32 {
        match self.rowid(key) {
            Some(r) => {
                let combined = self.vals[r as usize].add(&value);
                self.set_val(r, combined);
                r
            }
            None => self.insert_row(key, value),
        }
    }

    /// Builds the index for `mask` if missing (subsequently maintained by
    /// [`Self::insert_row`]). `mask = 0` (full scan) needs no index.
    pub fn ensure_index(&mut self, mask: ColMask) {
        if mask == 0 || self.indexes.contains_key(&mask) {
            return;
        }
        let mut index: HashMap<Box<[u32]>, Vec<u32>> = HashMap::new();
        for r in 0..self.vals.len() as u32 {
            index.entry(project(self.row(r), mask)).or_default().push(r);
        }
        self.indexes.insert(mask, index);
    }

    /// The row ids whose `mask`-projection equals `key`. The index must
    /// have been built via [`Self::ensure_index`].
    pub fn probe(&self, mask: ColMask, key: &[u32]) -> &[u32] {
        static EMPTY: [u32; 0] = [];
        self.indexes
            .get(&mask)
            .expect("probe before ensure_index")
            .get(key)
            .map(|v| v.as_slice())
            .unwrap_or(&EMPTY)
    }

    /// Iterates `(row-id, key, value)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[u32], &P)> {
        (0..self.vals.len() as u32).map(move |r| (r, self.row(r), self.val(r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlo_pops::Trop;

    #[test]
    fn rows_merge_and_probe() {
        let mut rel = ColumnRel::<Trop>::new(2);
        rel.ensure_index(0b01);
        rel.insert_row(&[0, 1], Trop::finite(1.0));
        rel.insert_row(&[0, 2], Trop::finite(2.0));
        rel.insert_row(&[1, 2], Trop::finite(3.0));
        // Incremental maintenance: the index was built while empty.
        assert_eq!(rel.probe(0b01, &[0]), &[0, 1]);
        assert_eq!(rel.probe(0b01, &[1]), &[2]);
        assert_eq!(rel.probe(0b01, &[9]), &[0u32; 0]);
        // Merge takes ⊕ (min on Trop).
        let r = rel.merge(&[0, 1], Trop::finite(0.5));
        assert_eq!(rel.val(r), &Trop::finite(0.5));
        assert_eq!(rel.len(), 3);
        // Late-built index sees all rows.
        rel.ensure_index(0b10);
        assert_eq!(rel.probe(0b10, &[2]).len(), 2);
    }

    #[test]
    fn projection_is_ascending_by_column() {
        assert_eq!(project(&[7, 8, 9], 0b101).as_ref(), &[7, 9]);
        assert_eq!(project(&[7, 8, 9], 0).as_ref(), &[0u32; 0]);
    }
}
