//! Interned columnar relations with hash-prefix indexes.
//!
//! A [`ColumnRel`] stores rows in one flat `Vec<u32>` (row-major) with a
//! parallel value vector and a full-row hash map for O(1) merge. Indexes
//! are hash maps from a *bound-column projection* to the matching row
//! ids, keyed by a column bitmask; they are built lazily per
//! `(relation, bound-column-set)` — once a mask is requested it is
//! maintained incrementally by [`ColumnRel::insert_row`], so monotone
//! relations (the semi-naïve `new` state) never pay a rebuild.
//!
//! ## Packed keys
//!
//! Row maps and indexes over keys of **width ≤ 2** (the overwhelmingly
//! common case: unary and binary relations, single-column probes) store
//! their keys packed into a `u64` instead of a `Box<[u32]>`. That turns
//! every lookup into an inline-integer hash and compare — no per-key
//! heap allocation on insert, no pointer chase on probe — which matters
//! because TC-class fixpoints do one row-map merge and one index probe
//! *per derivation*: at 500k+ derivations the boxed-slice map was the
//! single largest line item in the profile (hash + eq both dereference,
//! plus an allocation and eventual free per stored key).

use crate::arrange::Arrangement;
use crate::hash::FxHashMap;
use dlo_pops::{Pops, PreSemiring};

/// A column bitmask: bit `c` set ⇔ column `c` participates in the probe.
pub type ColMask = u32;

/// Which probe structure joins run through.
///
/// Resolution order at evaluation entry:
/// [`EngineOpts::join_mode`](crate::EngineOpts) if set, else the
/// `DLO_JOIN` environment variable (`auto` / `merge` / `hash`), else
/// [`JoinMode::Auto`]. All three modes are bit-identical — arranged
/// probes return row ids in the same ascending order hash posting
/// lists hold — so the choice is purely a performance knob.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum JoinMode {
    /// Planner heuristic: sorted arrangements where the packed-`u64`
    /// hash fast path gives out (arity > 2), hash indexes elsewhere.
    #[default]
    Auto,
    /// Force sorted arrangements for every non-trivial probe mask.
    Merge,
    /// Force hash-prefix indexes everywhere (the pre-arrangement
    /// engine).
    Hash,
}

impl JoinMode {
    /// Reads `DLO_JOIN` (`auto` / `merge` / `hash`, case-insensitive);
    /// `None` when unset or unrecognized.
    pub fn from_env() -> Option<Self> {
        match std::env::var("DLO_JOIN")
            .ok()?
            .to_ascii_lowercase()
            .as_str()
        {
            "auto" => Some(JoinMode::Auto),
            "merge" => Some(JoinMode::Merge),
            "hash" => Some(JoinMode::Hash),
            _ => None,
        }
    }

    /// Whether a probe through `mask` on a relation of `arity` runs
    /// against a sorted arrangement (else a hash-prefix index).
    /// `mask = 0` is a full scan and needs neither.
    pub fn arranged(self, arity: usize, mask: ColMask) -> bool {
        mask != 0
            && match self {
                JoinMode::Hash => false,
                JoinMode::Merge => true,
                JoinMode::Auto => arity > 2,
            }
    }

    /// Short label for telemetry and bench reports.
    pub fn label(self) -> &'static str {
        match self {
            JoinMode::Auto => "auto",
            JoinMode::Merge => "merge",
            JoinMode::Hash => "hash",
        }
    }
}

/// Projects `row` onto the columns of `mask`, ascending.
pub fn project(row: &[u32], mask: ColMask) -> Box<[u32]> {
    let mut out = Vec::with_capacity(mask.count_ones() as usize);
    project_into(row, mask, &mut out);
    out.into_boxed_slice()
}

/// [`project`] into a caller-owned scratch buffer (cleared first) — the
/// allocation-free variant the hot paths use: index maintenance in
/// [`ColumnRel::insert_row`] and the executor's probe-key assembly both
/// run once per candidate row, so a fresh `Box<[u32]>` per call shows up
/// directly in join profiles.
pub fn project_into(row: &[u32], mask: ColMask, out: &mut Vec<u32>) {
    out.clear();
    for (c, &v) in row.iter().enumerate() {
        if mask & (1 << c) != 0 {
            out.push(v);
        }
    }
}

/// Packs a key of width ≤ 2 into one `u64` (width is fixed per map, so
/// `[a]` and `[a, 0]` can never meet in the same map).
#[inline]
fn pack(key: &[u32]) -> u64 {
    match key {
        [] => 0,
        [a] => *a as u64,
        [a, b] => ((*a as u64) << 32) | *b as u64,
        _ => unreachable!("packed maps hold keys of width ≤ 2"),
    }
}

/// A hash map keyed by id tuples of a fixed width: packed into `u64`s
/// for width ≤ 2, boxed slices beyond.
#[derive(Clone, Debug)]
enum KeyedMap<V> {
    Packed(FxHashMap<u64, V>),
    Wide(FxHashMap<Box<[u32]>, V>),
}

impl<V> KeyedMap<V> {
    fn new(width: usize) -> Self {
        if width <= 2 {
            KeyedMap::Packed(FxHashMap::default())
        } else {
            KeyedMap::Wide(FxHashMap::default())
        }
    }

    #[inline]
    fn get(&self, key: &[u32]) -> Option<&V> {
        match self {
            KeyedMap::Packed(m) => m.get(&pack(key)),
            KeyedMap::Wide(m) => m.get(key),
        }
    }

    #[inline]
    fn get_mut(&mut self, key: &[u32]) -> Option<&mut V> {
        match self {
            KeyedMap::Packed(m) => m.get_mut(&pack(key)),
            KeyedMap::Wide(m) => m.get_mut(key),
        }
    }

    #[inline]
    fn contains_key(&self, key: &[u32]) -> bool {
        self.get(key).is_some()
    }

    #[inline]
    fn insert(&mut self, key: &[u32], v: V) {
        match self {
            KeyedMap::Packed(m) => {
                m.insert(pack(key), v);
            }
            KeyedMap::Wide(m) => {
                m.insert(key.into(), v);
            }
        }
    }

    fn clear(&mut self) {
        match self {
            KeyedMap::Packed(m) => m.clear(),
            KeyedMap::Wide(m) => m.clear(),
        }
    }
}

/// A `⊕`-merge accumulator with `KeyedMap`-style packed keys: widths
/// ≤ 2 key an `FxHashMap<u64, P>` (inline hash, no per-key allocation),
/// wider keys fall back to boxed slices. This is the per-iteration head
/// accumulator of the semi-naïve driver — one `merge` per derivation, so
/// at fixpoint scale the boxed-slice map it replaces was a top line item
/// (hash + eq dereference, plus an allocation per stored key).
#[derive(Debug)]
pub enum AccumMap<P> {
    /// Keys of width ≤ 2, packed into `u64`s (width fixed per map).
    Packed {
        /// The key width (needed to unpack on drain).
        width: usize,
        /// Packed key → accumulated value.
        map: FxHashMap<u64, P>,
    },
    /// Keys of width > 2, boxed.
    Wide(FxHashMap<Box<[u32]>, P>),
}

impl<P: PreSemiring> AccumMap<P> {
    /// An empty accumulator for keys of the given width.
    pub fn new(width: usize) -> Self {
        if width <= 2 {
            AccumMap::Packed {
                width,
                map: FxHashMap::default(),
            }
        } else {
            AccumMap::Wide(FxHashMap::default())
        }
    }

    /// Number of distinct keys accumulated.
    pub fn len(&self) -> usize {
        match self {
            AccumMap::Packed { map, .. } => map.len(),
            AccumMap::Wide(m) => m.len(),
        }
    }

    /// Whether nothing has been accumulated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `⊕`-merges `v` at `key` (insert when absent) in one map probe.
    #[inline]
    pub fn merge(&mut self, key: &[u32], v: P) {
        match self {
            AccumMap::Packed { map, .. } => match map.entry(pack(key)) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let g = e.get_mut();
                    *g = g.add(&v);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(v);
                }
            },
            AccumMap::Wide(m) => match m.get_mut(key) {
                Some(g) => *g = g.add(&v),
                None => {
                    m.insert(key.into(), v);
                }
            },
        }
    }

    /// Drains every entry in ascending key order — packed `u64` order is
    /// exactly the lexicographic column order the wide path sorts by, so
    /// both variants drain identically. Sorted draining is the
    /// workspace's determinism guarantee: accumulators are hash maps for
    /// O(1) merging, and draining in hash-iteration order would make
    /// row-insertion order (and with it the `⊕`-fold association on
    /// POPS whose addition is not exactly associative, e.g. f64 sums)
    /// vary run to run.
    pub fn drain_sorted(self, mut out: impl FnMut(&[u32], P)) {
        match self {
            AccumMap::Packed { width, map } => {
                let mut entries: Vec<(u64, P)> = map.into_iter().collect();
                entries.sort_unstable_by_key(|&(k, _)| k);
                for (k, v) in entries {
                    match width {
                        0 => out(&[], v),
                        1 => out(&[k as u32], v),
                        _ => out(&[(k >> 32) as u32, k as u32], v),
                    }
                }
            }
            AccumMap::Wide(m) => {
                let mut entries: Vec<(Box<[u32]>, P)> = m.into_iter().collect();
                entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                for (k, v) in entries {
                    out(&k, v);
                }
            }
        }
    }

    /// Moves every entry of `other` into `self` (used by the parallel
    /// drivers to fold per-task accumulators in task order).
    pub fn absorb(&mut self, other: AccumMap<P>) {
        match (self, other) {
            (AccumMap::Packed { map, .. }, AccumMap::Packed { map: o, .. }) => {
                for (k, v) in o {
                    match map.entry(k) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            let g = e.get_mut();
                            *g = g.add(&v);
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(v);
                        }
                    }
                }
            }
            (AccumMap::Wide(m), AccumMap::Wide(o)) => {
                for (k, v) in o {
                    match m.get_mut(&k) {
                        Some(g) => *g = g.add(&v),
                        None => {
                            m.insert(k, v);
                        }
                    }
                }
            }
            _ => unreachable!("accumulators for one predicate share a width"),
        }
    }
}

/// An interned finite-support relation: flat rows, values, row map, and
/// lazily built prefix indexes.
#[derive(Clone, Debug)]
pub struct ColumnRel<P> {
    arity: usize,
    keys: Vec<u32>,
    vals: Vec<P>,
    map: KeyedMap<u32>,
    indexes: FxHashMap<ColMask, KeyedMap<Vec<u32>>>,
    /// Sorted arrangements keyed by the mask that requested them; a
    /// clone shares their batches (`Arc`), not the row data.
    arrangements: FxHashMap<ColMask, Arrangement>,
    /// Monotone count of index/arrangement *builds* (not incremental
    /// maintenance) — `Materialization` pins its no-churn contract on
    /// this staying flat for untouched relations.
    index_builds: u64,
    /// Spine merges since the last [`Self::take_arrange_merges`].
    arrange_merges: u64,
    /// Monotone mutation counter: bumped on every row append, value
    /// overwrite, and clear. Equal versions ⟹ identical contents, which
    /// is what lets [`Materialization`](crate::incremental) skip
    /// re-cloning untouched relations across edit epochs.
    version: u64,
    /// Reusable projection buffer for index maintenance (never observed
    /// across calls; cloned relations just get an empty one).
    scratch: Vec<u32>,
}

impl<P: Pops> ColumnRel<P> {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        assert!(arity <= 32, "engine supports arity ≤ 32");
        ColumnRel {
            arity,
            keys: Vec::new(),
            vals: Vec::new(),
            map: KeyedMap::new(arity),
            indexes: FxHashMap::default(),
            arrangements: FxHashMap::default(),
            index_builds: 0,
            arrange_merges: 0,
            version: 0,
            scratch: Vec::new(),
        }
    }

    /// Removes every row while keeping the arity, every registered index
    /// mask, and the allocated capacity — the worklist drivers refill
    /// per-frontier delta relations thousands of times per run, so
    /// re-registering indexes (or re-growing buffers) per batch would
    /// dominate.
    pub fn clear(&mut self) {
        self.version += 1;
        self.keys.clear();
        self.vals.clear();
        self.map.clear();
        for index in self.indexes.values_mut() {
            index.clear();
        }
        for arr in self.arrangements.values_mut() {
            arr.clear();
        }
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// The key columns of row `r`.
    pub fn row(&self, r: u32) -> &[u32] {
        let s = r as usize * self.arity;
        &self.keys[s..s + self.arity]
    }

    /// The value of row `r`.
    pub fn val(&self, r: u32) -> &P {
        &self.vals[r as usize]
    }

    /// The row id holding `key`, if present.
    pub fn rowid(&self, key: &[u32]) -> Option<u32> {
        self.map.get(key).copied()
    }

    /// The value at `key`, if present.
    pub fn get(&self, key: &[u32]) -> Option<&P> {
        self.rowid(key).map(|r| self.val(r))
    }

    /// Appends a fresh row (caller guarantees `key` is absent) and
    /// maintains every built index.
    ///
    /// The arity check is a hard assert: a wrong-length key would shift
    /// every subsequent row boundary in the flat storage, silently
    /// corrupting the relation.
    pub fn insert_row(&mut self, key: &[u32], value: P) -> u32 {
        debug_assert!(!self.map.contains_key(key), "insert_row on present key");
        let r = self.append_row(key, value);
        self.map.insert(key, r);
        r
    }

    /// Appends a row **without** registering it in the full-key row map
    /// — for relations only ever read by scan or prefix-index probe
    /// (the drivers' Δ relations): the map insert is pure overhead when
    /// nothing calls [`Self::rowid`]/[`Self::get`]/[`Self::merge`] on
    /// the relation. Indexes are still maintained. Mixing `append_row`
    /// with the map-dependent methods on one relation is a caller bug.
    pub fn append_row(&mut self, key: &[u32], value: P) -> u32 {
        assert_eq!(key.len(), self.arity, "row arity mismatch");
        self.version += 1;
        let r = self.vals.len() as u32;
        self.keys.extend_from_slice(key);
        self.vals.push(value);
        for (&mask, index) in &mut self.indexes {
            project_into(key, mask, &mut self.scratch);
            match index.get_mut(&self.scratch) {
                Some(rows) => rows.push(r),
                None => index.insert(&self.scratch, vec![r]),
            }
        }
        let mut merges = 0;
        for arr in self.arrangements.values_mut() {
            merges += arr.push(key, r);
        }
        self.arrange_merges += merges;
        r
    }

    /// Overwrites the value of row `r` (keys unchanged, indexes intact).
    pub fn set_val(&mut self, r: u32, value: P) {
        self.version += 1;
        self.vals[r as usize] = value;
    }

    /// `⊕`-merges `value` at `key` (insert when absent), returning the
    /// affected row id.
    pub fn merge(&mut self, key: &[u32], value: P) -> u32 {
        self.merge_changed(key, value).0
    }

    /// [`Self::merge`] that also reports whether the stored value
    /// actually changed — the worklist drivers' improvement test (on
    /// naturally ordered POPS `old ⊕ v ≠ old` ⟺ the row strictly
    /// improved, no `⊖` needed).
    ///
    /// One map operation per call on the packed path: the row map entry
    /// is claimed and filled in a single probe (this runs once per
    /// derivation, so the second hash+probe of a lookup-then-insert
    /// sequence was measurable at fixpoint scale).
    pub fn merge_changed(&mut self, key: &[u32], value: P) -> (u32, bool) {
        use std::collections::hash_map::Entry;
        let next = self.vals.len() as u32;
        let existing = match &mut self.map {
            KeyedMap::Packed(m) => match m.entry(pack(key)) {
                Entry::Occupied(e) => Some(*e.get()),
                Entry::Vacant(e) => {
                    e.insert(next);
                    None
                }
            },
            // Wide keys would need an owned Box to use the entry API;
            // keep the two-op sequence there (arity > 2 is rare).
            KeyedMap::Wide(m) => match m.get(key) {
                Some(&r) => Some(r),
                None => {
                    m.insert(key.into(), next);
                    None
                }
            },
        };
        match existing {
            Some(r) => {
                let combined = self.vals[r as usize].add(&value);
                if combined == self.vals[r as usize] {
                    (r, false)
                } else {
                    self.set_val(r, combined);
                    (r, true)
                }
            }
            None => (self.append_row(key, value), true),
        }
    }

    /// Builds the index for `mask` if missing (subsequently maintained by
    /// [`Self::insert_row`]). `mask = 0` (full scan) needs no index.
    pub fn ensure_index(&mut self, mask: ColMask) {
        if mask == 0 || self.indexes.contains_key(&mask) {
            return;
        }
        self.index_builds += 1;
        let width = mask.count_ones() as usize;
        let mut index: KeyedMap<Vec<u32>> = KeyedMap::new(width);
        let mut key: Vec<u32> = Vec::with_capacity(width);
        for r in 0..self.vals.len() {
            let s = r * self.arity;
            project_into(&self.keys[s..s + self.arity], mask, &mut key);
            match index.get_mut(&key) {
                Some(rows) => rows.push(r as u32),
                None => index.insert(&key, vec![r as u32]),
            }
        }
        self.indexes.insert(mask, index);
    }

    /// The row ids whose `mask`-projection equals `key`. The index must
    /// have been built via [`Self::ensure_index`].
    pub fn probe(&self, mask: ColMask, key: &[u32]) -> &[u32] {
        static EMPTY: [u32; 0] = [];
        self.indexes
            .get(&mask)
            .expect("probe before ensure_index")
            .get(key)
            .map(|v| v.as_slice())
            .unwrap_or(&EMPTY)
    }

    /// Builds the sorted arrangement for `mask` if no existing
    /// arrangement serves it (subsequently maintained batch-wise by
    /// [`Self::append_row`]/[`Self::insert_row`]). One bulk sort when
    /// first requested on a populated relation; `mask = 0` needs no
    /// arrangement.
    pub fn ensure_arranged(&mut self, mask: ColMask) {
        if mask == 0
            || self.arrangements.contains_key(&mask)
            || self.arrangements.values().any(|a| a.serves(mask))
        {
            return;
        }
        self.index_builds += 1;
        let mut arr = Arrangement::new(self.arity, mask);
        arr.seed(&self.keys);
        self.arrangements.insert(mask, arr);
    }

    /// Whether probes through `mask` can run against a sorted
    /// arrangement (directly or via a shared prefix order).
    pub fn has_arranged(&self, mask: ColMask) -> bool {
        mask != 0
            && (self.arrangements.contains_key(&mask)
                || self.arrangements.values().any(|a| a.serves(mask)))
    }

    /// Collects into `out` (cleared first) the row ids whose
    /// `mask`-projection equals `key`, **sorted ascending** — the same
    /// visit order the hash path's posting lists produce, which is what
    /// keeps merge- and hash-mode evaluation bit-identical. The
    /// arrangement must have been built via [`Self::ensure_arranged`].
    pub fn probe_arranged(&self, mask: ColMask, key: &[u32], out: &mut Vec<u32>) {
        out.clear();
        let arr = self
            .arrangements
            .get(&mask)
            .or_else(|| self.arrangements.values().find(|a| a.serves(mask)))
            .expect("probe_arranged before ensure_arranged");
        arr.probe_into(key, out);
        if out.len() > 1 {
            out.sort_unstable();
        }
    }

    /// Builds whichever probe structure `mode` selects for `mask` —
    /// the single ensure entry point the drivers call.
    pub fn ensure_probe_for(&mut self, mask: ColMask, mode: JoinMode) {
        if mode.arranged(self.arity, mask) {
            self.ensure_arranged(mask);
        } else {
            self.ensure_index(mask);
        }
    }

    /// Monotone count of index/arrangement builds over this relation's
    /// lifetime (clones inherit the count).
    pub fn index_builds(&self) -> u64 {
        self.index_builds
    }

    /// The mutation version (see the field doc): two observations with
    /// equal versions are guaranteed to see identical contents.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Advances this relation's version strictly past `prev`'s — called
    /// when a freshly built relation replaces `prev` wholesale
    /// (delete–rederive), so version comparisons never alias across the
    /// replacement.
    pub fn succeed_version(&mut self, prev: &Self) {
        self.version = self.version.max(prev.version) + 1;
    }

    /// Drains the spine-merge counter accumulated by appends since the
    /// last call (telemetry: `arrange_batches_merged`).
    pub fn take_arrange_merges(&mut self) -> u64 {
        std::mem::take(&mut self.arrange_merges)
    }

    /// The arrangement serving `mask`, if built (test hook for the
    /// copy-on-write snapshot contract).
    #[doc(hidden)]
    pub fn arrangement_for(&self, mask: ColMask) -> Option<&Arrangement> {
        self.arrangements
            .get(&mask)
            .or_else(|| self.arrangements.values().find(|a| a.serves(mask)))
    }

    /// Iterates `(row-id, key, value)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[u32], &P)> {
        (0..self.vals.len() as u32).map(move |r| (r, self.row(r), self.val(r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlo_pops::Trop;

    #[test]
    fn rows_merge_and_probe() {
        let mut rel = ColumnRel::<Trop>::new(2);
        rel.ensure_index(0b01);
        rel.insert_row(&[0, 1], Trop::finite(1.0));
        rel.insert_row(&[0, 2], Trop::finite(2.0));
        rel.insert_row(&[1, 2], Trop::finite(3.0));
        // Incremental maintenance: the index was built while empty.
        assert_eq!(rel.probe(0b01, &[0]), &[0, 1]);
        assert_eq!(rel.probe(0b01, &[1]), &[2]);
        assert_eq!(rel.probe(0b01, &[9]), &[0u32; 0]);
        // Merge takes ⊕ (min on Trop).
        let r = rel.merge(&[0, 1], Trop::finite(0.5));
        assert_eq!(rel.val(r), &Trop::finite(0.5));
        assert_eq!(rel.len(), 3);
        // Late-built index sees all rows.
        rel.ensure_index(0b10);
        assert_eq!(rel.probe(0b10, &[2]).len(), 2);
    }

    #[test]
    fn wide_relations_use_boxed_keys_transparently() {
        // Arity 3 exceeds the packed-key width: same API, boxed path.
        let mut rel = ColumnRel::<Trop>::new(3);
        rel.ensure_index(0b101);
        rel.insert_row(&[1, 2, 3], Trop::finite(1.0));
        rel.insert_row(&[1, 9, 3], Trop::finite(2.0));
        assert_eq!(rel.probe(0b101, &[1, 3]), &[0, 1]);
        assert_eq!(rel.rowid(&[1, 9, 3]), Some(1));
        let (r, changed) = rel.merge_changed(&[1, 2, 3], Trop::finite(0.25));
        assert_eq!((r, changed), (0, true));
        assert_eq!(rel.get(&[1, 2, 3]), Some(&Trop::finite(0.25)));
    }

    #[test]
    fn packed_keys_distinguish_column_order() {
        let mut rel = ColumnRel::<Trop>::new(2);
        rel.insert_row(&[1, 2], Trop::finite(1.0));
        rel.insert_row(&[2, 1], Trop::finite(2.0));
        assert_eq!(rel.get(&[1, 2]), Some(&Trop::finite(1.0)));
        assert_eq!(rel.get(&[2, 1]), Some(&Trop::finite(2.0)));
        assert_eq!(rel.get(&[2, 2]), None);
    }

    #[test]
    fn projection_is_ascending_by_column() {
        assert_eq!(project(&[7, 8, 9], 0b101).as_ref(), &[7, 9]);
        assert_eq!(project(&[7, 8, 9], 0).as_ref(), &[0u32; 0]);
        let mut scratch = vec![99, 99];
        project_into(&[7, 8, 9], 0b110, &mut scratch);
        assert_eq!(scratch, vec![8, 9]);
    }

    #[test]
    fn clear_keeps_indexes_registered() {
        let mut rel = ColumnRel::<Trop>::new(2);
        rel.ensure_index(0b01);
        rel.insert_row(&[0, 1], Trop::finite(1.0));
        rel.clear();
        assert!(rel.is_empty());
        // The mask survives the clear: probes work and incremental
        // maintenance resumes without another ensure_index.
        assert_eq!(rel.probe(0b01, &[0]), &[0u32; 0]);
        rel.insert_row(&[0, 2], Trop::finite(2.0));
        assert_eq!(rel.probe(0b01, &[0]), &[0]);
    }

    #[test]
    fn accum_map_merges_and_drains_sorted_on_both_paths() {
        // Packed path (width 2): drain order is lexicographic by column.
        let mut acc = AccumMap::<Trop>::new(2);
        acc.merge(&[2, 1], Trop::finite(5.0));
        acc.merge(&[1, 9], Trop::finite(3.0));
        acc.merge(&[1, 9], Trop::finite(1.0)); // ⊕ = min
        assert_eq!(acc.len(), 2);
        let mut seen: Vec<(Vec<u32>, Trop)> = vec![];
        acc.drain_sorted(|k, v| seen.push((k.to_vec(), v)));
        assert_eq!(
            seen,
            vec![
                (vec![1, 9], Trop::finite(1.0)),
                (vec![2, 1], Trop::finite(5.0)),
            ]
        );
        // Wide path (width 3): same contract.
        let mut acc = AccumMap::<Trop>::new(3);
        acc.merge(&[7, 0, 1], Trop::finite(2.0));
        acc.merge(&[0, 0, 1], Trop::finite(4.0));
        let mut keys: Vec<Vec<u32>> = vec![];
        acc.drain_sorted(|k, _| keys.push(k.to_vec()));
        assert_eq!(keys, vec![vec![0, 0, 1], vec![7, 0, 1]]);
        // absorb folds a second accumulator in.
        let mut a = AccumMap::<Trop>::new(1);
        a.merge(&[3], Trop::finite(9.0));
        let mut b = AccumMap::<Trop>::new(1);
        b.merge(&[3], Trop::finite(2.0));
        b.merge(&[4], Trop::finite(1.0));
        a.absorb(b);
        let mut seen: Vec<(Vec<u32>, Trop)> = vec![];
        a.drain_sorted(|k, v| seen.push((k.to_vec(), v)));
        assert_eq!(
            seen,
            vec![(vec![3], Trop::finite(2.0)), (vec![4], Trop::finite(1.0)),]
        );
    }

    #[test]
    fn arranged_probes_match_hash_probes_in_order() {
        let mut rel = ColumnRel::<Trop>::new(3);
        rel.ensure_index(0b011);
        rel.ensure_arranged(0b011);
        for r in 0..50u32 {
            rel.insert_row(&[r % 4, r % 3, r], Trop::finite(r as f64));
        }
        let mut out = Vec::new();
        for a in 0..4 {
            for b in 0..3 {
                rel.probe_arranged(0b011, &[a, b], &mut out);
                assert_eq!(out.as_slice(), rel.probe(0b011, &[a, b]));
            }
        }
        // Late build (after rows exist): bulk seed sees everything.
        rel.ensure_arranged(0b100);
        rel.ensure_index(0b100);
        for v in 0..50 {
            rel.probe_arranged(0b100, &[v], &mut out);
            assert_eq!(out.as_slice(), rel.probe(0b100, &[v]));
        }
    }

    #[test]
    fn prefix_probe_reuses_wider_arrangement() {
        let mut rel = ColumnRel::<Trop>::new(3);
        rel.ensure_arranged(0b011);
        let builds = rel.index_builds();
        // {0} ascending is a prefix of the [0, 1, 2] order: no new build.
        rel.ensure_arranged(0b001);
        assert_eq!(rel.index_builds(), builds);
        assert!(rel.has_arranged(0b001));
        assert!(!rel.has_arranged(0b010));
        rel.insert_row(&[1, 2, 3], Trop::finite(1.0));
        rel.insert_row(&[1, 5, 4], Trop::finite(2.0));
        rel.insert_row(&[2, 2, 5], Trop::finite(3.0));
        let mut out = Vec::new();
        rel.probe_arranged(0b001, &[1], &mut out);
        assert_eq!(out, vec![0, 1]);
    }

    #[test]
    fn clone_shares_arrangement_batches() {
        use std::sync::Arc;
        let mut rel = ColumnRel::<Trop>::new(3);
        rel.ensure_arranged(0b001);
        for r in 0..10u32 {
            rel.insert_row(&[r, r, r], Trop::finite(r as f64));
        }
        let snap = rel.clone();
        let a = rel.arrangement_for(0b001).unwrap().batches();
        let b = snap.arrangement_for(0b001).unwrap().batches();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!(Arc::ptr_eq(x, y), "snapshot copies Arcs, not rows");
        }
        // Writer appends diverge without touching the snapshot's view.
        rel.insert_row(&[99, 0, 0], Trop::finite(0.0));
        let mut out = Vec::new();
        rel.probe_arranged(0b001, &[99], &mut out);
        assert_eq!(out, vec![10]);
        snap.probe_arranged(0b001, &[99], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn join_mode_policy_and_env_parsing() {
        assert!(!JoinMode::Auto.arranged(2, 0b01));
        assert!(JoinMode::Auto.arranged(3, 0b01));
        assert!(JoinMode::Merge.arranged(1, 0b1));
        assert!(!JoinMode::Merge.arranged(4, 0));
        assert!(!JoinMode::Hash.arranged(4, 0b1111));
        assert_eq!(JoinMode::Merge.label(), "merge");
    }

    #[test]
    fn ensure_probe_for_dispatches_on_mode() {
        let mut rel = ColumnRel::<Trop>::new(3);
        rel.ensure_probe_for(0b001, JoinMode::Hash);
        assert!(!rel.has_arranged(0b001));
        assert_eq!(rel.index_builds(), 1);
        rel.ensure_probe_for(0b010, JoinMode::Auto); // arity 3 → arranged
        assert!(rel.has_arranged(0b010));
        assert_eq!(rel.index_builds(), 2);
        let mut narrow = ColumnRel::<Trop>::new(2);
        narrow.ensure_probe_for(0b01, JoinMode::Auto); // arity 2 → hash
        assert!(!narrow.has_arranged(0b01));
    }

    #[test]
    fn cleared_arrangement_resumes_maintenance() {
        let mut rel = ColumnRel::<Trop>::new(3);
        rel.ensure_arranged(0b001);
        rel.insert_row(&[1, 0, 0], Trop::finite(1.0));
        rel.clear();
        let builds = rel.index_builds();
        rel.insert_row(&[2, 0, 0], Trop::finite(2.0));
        let mut out = Vec::new();
        rel.probe_arranged(0b001, &[2], &mut out);
        assert_eq!(out, vec![0]);
        assert_eq!(
            rel.index_builds(),
            builds,
            "refill is maintenance, not a rebuild"
        );
    }

    #[test]
    fn merge_changed_reports_strict_improvement() {
        let mut rel = ColumnRel::<Trop>::new(1);
        let (r, ch) = rel.merge_changed(&[3], Trop::finite(5.0));
        assert!(ch, "insert is a change");
        // Worse value: ⊕ = min leaves the row alone.
        let (r2, ch) = rel.merge_changed(&[3], Trop::finite(9.0));
        assert!(!ch);
        assert_eq!(r, r2);
        // Strictly better value: change reported.
        let (_, ch) = rel.merge_changed(&[3], Trop::finite(1.0));
        assert!(ch);
        assert_eq!(rel.get(&[3]), Some(&Trop::finite(1.0)));
    }
}
