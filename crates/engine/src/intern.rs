//! Constant interning: `Constant → u32` with O(1) decode and integer
//! views.
//!
//! Every constant known before evaluation (EDB tuples, program constants)
//! is interned **up front**, so the hot join loops compare and hash plain
//! `u32`s — no `Arc<str>` hashing, no `Constant` clones. The table is
//! *dynamic*: programs whose rule **heads** apply a key function (`W(i+1)
//! :- W(i) ⊗ V(i+1)`, Sec. 4.5) derive constants that did not exist at
//! compile time, and the drivers mint fresh ids for them **between**
//! iterations (the table is frozen while plans run in parallel, so the
//! executor only ever reads it). Minting goes through the same
//! [`Interner::intern`] append path, which keeps the decode (`consts`)
//! and integer (`ints`) side tables in sync by construction.
//!
//! *Body* key-function results are still resolved by *lookup*: a result
//! outside the interned domain cannot match any stored tuple, which is
//! exactly the semantics of joining against finite supports. Head
//! results are different — they name a new row rather than probe an
//! existing one, hence the mint path.

use dlo_core::value::Constant;
use std::collections::HashMap;

/// An append-only constant table with hashed reverse lookup.
#[derive(Clone, Debug, Default)]
pub struct Interner {
    by_const: HashMap<Constant, u32>,
    consts: Vec<Constant>,
    /// `ints[id]` is `Some(i)` iff `consts[id]` is the integer `i`
    /// (flat side table so comparisons never touch the `Constant` enum).
    ints: Vec<Option<i64>>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns `c`, returning its id (stable across repeated calls).
    pub fn intern(&mut self, c: &Constant) -> u32 {
        if let Some(&id) = self.by_const.get(c) {
            return id;
        }
        let id = self.consts.len() as u32;
        self.by_const.insert(c.clone(), id);
        self.consts.push(c.clone());
        self.ints.push(c.as_int());
        id
    }

    /// Interns the integer constant `i` (the mint path for head-computed
    /// keys; stable across repeated calls like [`Self::intern`]).
    pub fn intern_int(&mut self, i: i64) -> u32 {
        if let Some(&id) = self.by_const.get(&Constant::Int(i)) {
            return id;
        }
        self.intern(&Constant::Int(i))
    }

    /// The id of `c`, if interned.
    pub fn lookup(&self, c: &Constant) -> Option<u32> {
        self.by_const.get(c).copied()
    }

    /// The id of the integer constant `i`, if interned.
    pub fn lookup_int(&self, i: i64) -> Option<u32> {
        self.by_const.get(&Constant::Int(i)).copied()
    }

    /// Decodes an id.
    pub fn get(&self, id: u32) -> &Constant {
        &self.consts[id as usize]
    }

    /// The integer value of an interned constant, if it is an integer.
    pub fn as_int(&self, id: u32) -> Option<i64> {
        self.ints[id as usize]
    }

    /// Number of interned constants.
    pub fn len(&self) -> usize {
        self.consts.len()
    }

    /// Whether nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.consts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_decodable() {
        let mut i = Interner::new();
        let a = i.intern(&Constant::str("a"));
        let b = i.intern(&Constant::int(7));
        assert_eq!(i.intern(&Constant::str("a")), a);
        assert_ne!(a, b);
        assert_eq!(i.get(a), &Constant::str("a"));
        assert_eq!(i.as_int(b), Some(7));
        assert_eq!(i.as_int(a), None);
        assert_eq!(i.lookup_int(7), Some(b));
        assert_eq!(i.lookup_int(8), None);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn dynamic_minting_extends_the_table_in_sync() {
        let mut i = Interner::new();
        let a = i.intern(&Constant::int(1));
        // Mint an id for a constant first derived during evaluation.
        let fresh = i.intern_int(41);
        assert_ne!(fresh, a);
        assert_eq!(i.get(fresh), &Constant::int(41));
        assert_eq!(i.as_int(fresh), Some(41));
        assert_eq!(i.lookup_int(41), Some(fresh));
        // Minting is idempotent, and pre-interned ints resolve to their
        // existing ids.
        assert_eq!(i.intern_int(41), fresh);
        assert_eq!(i.intern_int(1), a);
        assert_eq!(i.len(), 2);
    }
}
