//! Constant interning: `Constant → u32` with O(1) decode and integer
//! views.
//!
//! Every constant that can appear during evaluation (EDB tuples, program
//! constants) is interned **up front**, so the hot join loops compare and
//! hash plain `u32`s — no `Arc<str>` hashing, no `Constant` clones. The
//! interner is immutable during evaluation; key-function results
//! (`x + 1`) are resolved by *lookup*: a result outside the interned
//! domain cannot match any stored tuple, which is exactly the semantics
//! of joining against finite supports.

use dlo_core::value::Constant;
use std::collections::HashMap;

/// An append-only constant table with hashed reverse lookup.
#[derive(Clone, Debug, Default)]
pub struct Interner {
    by_const: HashMap<Constant, u32>,
    consts: Vec<Constant>,
    /// `ints[id]` is `Some(i)` iff `consts[id]` is the integer `i`
    /// (flat side table so comparisons never touch the `Constant` enum).
    ints: Vec<Option<i64>>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns `c`, returning its id (stable across repeated calls).
    pub fn intern(&mut self, c: &Constant) -> u32 {
        if let Some(&id) = self.by_const.get(c) {
            return id;
        }
        let id = self.consts.len() as u32;
        self.by_const.insert(c.clone(), id);
        self.consts.push(c.clone());
        self.ints.push(c.as_int());
        id
    }

    /// The id of `c`, if interned.
    pub fn lookup(&self, c: &Constant) -> Option<u32> {
        self.by_const.get(c).copied()
    }

    /// The id of the integer constant `i`, if interned.
    pub fn lookup_int(&self, i: i64) -> Option<u32> {
        self.by_const.get(&Constant::Int(i)).copied()
    }

    /// Decodes an id.
    pub fn get(&self, id: u32) -> &Constant {
        &self.consts[id as usize]
    }

    /// The integer value of an interned constant, if it is an integer.
    pub fn as_int(&self, id: u32) -> Option<i64> {
        self.ints[id as usize]
    }

    /// Number of interned constants.
    pub fn len(&self) -> usize {
        self.consts.len()
    }

    /// Whether nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.consts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_decodable() {
        let mut i = Interner::new();
        let a = i.intern(&Constant::str("a"));
        let b = i.intern(&Constant::int(7));
        assert_eq!(i.intern(&Constant::str("a")), a);
        assert_ne!(a, b);
        assert_eq!(i.get(a), &Constant::str("a"));
        assert_eq!(i.as_int(b), Some(7));
        assert_eq!(i.as_int(a), None);
        assert_eq!(i.lookup_int(7), Some(b));
        assert_eq!(i.lookup_int(8), None);
        assert_eq!(i.len(), 2);
    }
}
