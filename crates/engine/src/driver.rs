//! The evaluation drivers: naïve and parallel semi-naïve loops over
//! compiled plans, behind the `EvalOutcome`/`Database` API.
//!
//! The semi-naïve loop is the relation-level reading of Theorem 6.5
//! (mirroring `dlo_core::eval::relational::relational_seminaive_eval`
//! step for step, so outcomes and step counts agree):
//!
//! ```text
//! J(1) ← F(0);  δ(0) ← J(1)
//! repeat:  contrib ← ⊕_{rules, sum-products, k} plan_k(new, δ, old)
//!          δ'(t) ← contrib ⊖ J(t)   (pointwise on supports)
//!          J(t+1) ← J(t) ⊕ contrib
//! until δ = 0
//! ```
//!
//! Work per iteration is distributed over scoped worker threads: each
//! (plan, first-step row chunk) task joins into a private accumulator,
//! and accumulators are `⊕`-merged in task order, so results are
//! deterministic regardless of the worker count.
//!
//! ## Head-computed keys and dynamic interning
//!
//! Key functions in rule heads (`W(i+1) :- W(i) ⊗ V(i+1)`, Sec. 4.5)
//! derive constants that may not exist in the interner when plans are
//! compiled. The interner is frozen while a phase runs in parallel, so
//! the executor emits such cells as [`HeadVal::Fresh`] integers into a
//! per-IDB *fresh accumulator* (an ordered map, for determinism); the
//! drivers mint ids for them **between** phases — single-threaded, in
//! sorted key order — and only then insert the rows. A row minted at
//! iteration `t` is therefore first *visible* to joins at `t + 1`, which
//! is exactly the semi-naïve contract: minted rows enter `new`, `δ`, and
//! the `changed` map as ordinary appends, and every index on those
//! relations is maintained incrementally by the insert itself. Body-side
//! key functions never mint: a result the interner does not know cannot
//! match any stored row.

use crate::exec::{run_plan, EvalCtx, ExecCounters, HeadVal};
use crate::govern::{abort_error, Abort, Checkpoint, Governor};
use crate::hash::FxHashMap;
use crate::intern::Interner;
use crate::output::{AbortedEval, InternedOutcome, InternedOutput, PartialOutput, SettledMark};
use crate::par;
use crate::plan::{compile_demand, CompileError, CompiledProgram, Plan, Source};
use crate::storage::{AccumMap, ColMask, ColumnRel, JoinMode};
use crate::telemetry::Collector;
use dlo_core::ast::Program;
use dlo_core::eval::stats::EvalStats;
use dlo_core::eval::{BudgetClass, CancelToken, EvalBudget, EvalError, EvalOutcome, TraceHandle};
use dlo_core::relation::{BoolDatabase, Database, Relation};
use dlo_pops::{Bool, CompleteDistributiveDioid, NaturallyOrdered, Pops, PreSemiring};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Below this much estimated first-step work an iteration runs on one
/// thread (scoped-thread spawn is not free).
const PAR_THRESHOLD: usize = 4096;
/// Minimum first-step rows per parallel chunk.
const CHUNK_MIN: usize = 1024;

/// Tuning knobs for the engine drivers. [`Default`] is right for
/// production use; tests use the knobs to force specific execution
/// paths.
#[derive(Clone, Debug)]
pub struct EngineOpts {
    /// Worker-thread cap; `None` reads `DLO_ENGINE_THREADS` /
    /// `available_parallelism`.
    pub threads: Option<usize>,
    /// Minimum estimated first-step work before an iteration fans out.
    pub par_threshold: usize,
    /// Minimum first-step rows per parallel chunk.
    pub chunk_min: usize,
    /// Structured trace sink for this run. `None` falls back to the
    /// `DLO_TRACE` environment variable (a JSONL path, appended to);
    /// unset there too means tracing is off. Tracing never changes
    /// results — only the timing fields of the returned stats.
    pub trace: Option<TraceHandle>,
    /// Record every k-th per-iteration [`IterStat`](dlo_core::eval::stats::IterStat)
    /// snapshot (step numbers divisible by `k`). Long incremental runs
    /// would otherwise saturate the snapshot cap
    /// ([`dlo_core::eval::stats::ITER_SNAPSHOT_CAP`]) with early
    /// iterations and drop the interesting tail. `None` reads
    /// `DLO_STATS_SAMPLE`, defaulting to `1` (record every step).
    /// Sampled-out steps count into `iterations_dropped`, `last_iter`
    /// is always maintained, and an attached trace sink still streams
    /// every iteration event. Results are never affected.
    pub iter_sample: Option<usize>,
    /// Resource ceilings for the run (wall-clock deadline, step /
    /// emitted-row / minted-id budgets), checked once per phase on the
    /// coordinating thread. The default is unlimited — ungoverned runs
    /// pay nothing. An exhausted ceiling returns the matching
    /// [`EvalError`] variant carrying the stats accumulated so far.
    pub budget: EvalBudget,
    /// Cooperative cancellation: clone a [`CancelToken`], hand one copy
    /// here, and flip the other from any thread; the run stops at its
    /// next phase boundary with [`EvalError::Cancelled`]. `None` (the
    /// default) skips the poll entirely.
    pub cancel: Option<CancelToken>,
    /// Join-strategy selection ([`JoinMode`]): `None` reads the
    /// `DLO_JOIN` environment variable, falling back to
    /// [`JoinMode::Auto`]. Purely a performance knob — every mode is
    /// bit-identical (see the arrangement design note in [`crate`]).
    pub join_mode: Option<JoinMode>,
}

impl Default for EngineOpts {
    fn default() -> Self {
        EngineOpts {
            threads: None,
            par_threshold: PAR_THRESHOLD,
            chunk_min: CHUNK_MIN,
            trace: None,
            iter_sample: None,
            budget: EvalBudget::unlimited(),
            cancel: None,
            join_mode: None,
        }
    }
}

impl EngineOpts {
    /// Options preset for a [`BudgetClass`]: the class's
    /// [`EvalBudget`] with every other knob at its default. The
    /// canonical starting point for governed runs —
    /// `EngineOpts::for_class(BudgetClass::Interactive)` gives the
    /// sub-second ceiling, and [`crate::retry`] escalates through the
    /// remaining classes when it proves too tight.
    pub fn for_class(class: BudgetClass) -> EngineOpts {
        EngineOpts {
            budget: class.budget(),
            ..EngineOpts::default()
        }
    }

    pub(crate) fn effective_threads(&self) -> usize {
        self.threads.unwrap_or_else(par::max_threads).max(1)
    }

    /// Resolves the join mode: the explicit knob wins, then `DLO_JOIN`,
    /// then [`JoinMode::Auto`].
    pub(crate) fn effective_join_mode(&self) -> JoinMode {
        self.join_mode
            .or_else(JoinMode::from_env)
            .unwrap_or_default()
    }

    /// Resolves the iteration-snapshot sampling stride: the explicit
    /// knob wins, then `DLO_STATS_SAMPLE`, then `1` (every step).
    pub(crate) fn effective_iter_sample(&self) -> u64 {
        match self.iter_sample {
            Some(k) => (k as u64).max(1),
            None => std::env::var("DLO_STATS_SAMPLE")
                .ok()
                .and_then(|s| s.trim().parse::<u64>().ok())
                .filter(|&k| k >= 1)
                .unwrap_or(1),
        }
    }
}

/// Per-IDB head accumulators for one iteration. [`AccumMap`] packs keys
/// of width ≤ 2 into `u64`s — the same trick the row maps and indexes in
/// [`crate::storage`] use — so the per-derivation `⊕`-merge is an
/// inline-integer hash with no per-key allocation (the boxed-slice maps
/// this replaces were the semi-naïve loop's last unpacked hot path).
pub(crate) type Accum<P> = Vec<AccumMap<P>>;

/// Per-IDB accumulators for head keys containing not-yet-interned
/// constants. `BTreeMap` so draining (and with it id minting) is
/// deterministic without a separate sort.
pub(crate) type FreshAccum<P> = Vec<BTreeMap<Box<[HeadVal]>, P>>;

/// The compiled program plus interned, indexed inputs (shared with the
/// frontier drivers in [`crate::worklist`]).
pub(crate) struct Engine<P> {
    pub(crate) interner: Interner,
    pub(crate) compiled: CompiledProgram<P>,
    pub(crate) pops_edb: Vec<Option<ColumnRel<P>>>,
    pub(crate) bool_edb: Vec<Option<ColumnRel<Bool>>>,
    pub(crate) adom: Vec<u32>,
    /// Index masks needed on each IDB's `new` storage (serves both the
    /// `New` and `Old` sources).
    pub(crate) idb_new_masks: Vec<Vec<u32>>,
    /// Index masks needed on each IDB's per-iteration delta.
    pub(crate) idb_delta_masks: Vec<Vec<u32>>,
    /// EDB-side `(source, mask)` index requirements of the seed and
    /// semi-naïve delta plans, collected at setup and built by
    /// [`Engine::build_edb_indexes`] — deferred so the builds can fan
    /// out over the worker pool once the caller knows its thread count.
    pub(crate) edb_reqs: Vec<(Source, ColMask)>,
    /// The resolved [`JoinMode`] for this run: every ensure site reads
    /// it to pick hash indexes vs sorted arrangements. Entry points set
    /// it from [`EngineOpts::effective_join_mode`] before any probe
    /// structure is built.
    pub(crate) join_mode: JoinMode,
}

/// The three semi-naïve IDB states (shared with the incremental
/// maintenance driver in [`crate::incremental`], which keeps one alive
/// across edits).
pub(crate) struct IdbState<P> {
    pub(crate) new: Vec<ColumnRel<P>>,
    pub(crate) changed: Vec<FxHashMap<u32, Option<P>>>,
    pub(crate) delta: Vec<ColumnRel<P>>,
}

fn intern_rel<P: Pops>(rel: &Relation<P>, interner: &Interner) -> ColumnRel<P> {
    let mut out = ColumnRel::new(rel.arity());
    let mut key: Vec<u32> = Vec::with_capacity(rel.arity());
    for (tuple, v) in rel.support() {
        key.clear();
        key.extend(tuple.iter().map(|c| {
            interner
                .lookup(c)
                .expect("EDB constants are interned during setup")
        }));
        out.insert_row(&key, v.clone());
    }
    out
}

fn intern_db_consts<P: Pops>(db: &Database<P>, interner: &mut Interner) {
    for (_, rel) in db.iter() {
        for (tuple, _) in rel.support() {
            for c in tuple {
                interner.intern(c);
            }
        }
    }
}

fn setup<P: Pops>(
    program: &Program<P>,
    pops_db: &Database<P>,
    bool_db: &BoolDatabase,
    set_valued: &[String],
) -> Result<Engine<P>, CompileError> {
    let mut interner = Interner::new();
    intern_db_consts(pops_db, &mut interner);
    intern_db_consts(bool_db, &mut interner);
    let compiled = compile_demand(program, &mut interner, set_valued)?;
    let pops_edb: Vec<Option<ColumnRel<P>>> = compiled
        .pops_edbs
        .iter()
        .map(|name| pops_db.get(name).map(|r| intern_rel(r, &interner)))
        .collect();
    let bool_edb: Vec<Option<ColumnRel<Bool>>> = compiled
        .bool_edbs
        .iter()
        .map(|name| bool_db.get(name).map(|r| intern_rel(r, &interner)))
        .collect();
    Ok(assemble(interner, compiled, pops_edb, bool_edb))
}

/// [`setup`] over a previous run's **interned output** as the POPS EDB:
/// the interner is shared (cloned — ids keep their meaning, no
/// `Constant` round-trip), relation names resolve first against
/// `extra_pops` (fresh classic-form relations, e.g. the original edge
/// list) and then against `prev`'s interned relations, which are reused
/// storage-for-storage. The active domain is everything the shared
/// interner knows — a superset of the paper's EDB ∪ program constants
/// when `prev` interned more than the fed relations mention, which only
/// matters for programs that enumerate unbound slots over the domain.
fn setup_interned<P: Pops>(
    program: &Program<P>,
    prev: &InternedOutput<P>,
    extra_pops: &Database<P>,
    bool_db: &BoolDatabase,
    set_valued: &[String],
) -> Result<Engine<P>, CompileError> {
    let mut interner = prev.interner().clone();
    intern_db_consts(extra_pops, &mut interner);
    intern_db_consts(bool_db, &mut interner);
    let compiled = compile_demand(program, &mut interner, set_valued)?;
    let pops_edb: Vec<Option<ColumnRel<P>>> = compiled
        .pops_edbs
        .iter()
        .map(|name| {
            extra_pops
                .get(name)
                .map(|r| intern_rel(r, &interner))
                .or_else(|| prev.relation(name).cloned())
        })
        .collect();
    let bool_edb: Vec<Option<ColumnRel<Bool>>> = compiled
        .bool_edbs
        .iter()
        .map(|name| bool_db.get(name).map(|r| intern_rel(r, &interner)))
        .collect();
    Ok(assemble(interner, compiled, pops_edb, bool_edb))
}

/// The shared setup tail: active domain plus index-mask bookkeeping.
fn assemble<P: Pops>(
    interner: Interner,
    compiled: CompiledProgram<P>,
    pops_edb: Vec<Option<ColumnRel<P>>>,
    bool_edb: Vec<Option<ColumnRel<Bool>>>,
) -> Engine<P> {
    // The active domain (EDB constants ∪ program constants) is exactly
    // the interned set; enumerate it in constant order to mirror the
    // relational backend.
    let mut adom: Vec<u32> = (0..interner.len() as u32).collect();
    adom.sort_by(|a, b| interner.get(*a).cmp(interner.get(*b)));

    let nidb = compiled.idbs.len();
    let mut idb_new_masks: Vec<Vec<u32>> = vec![vec![]; nidb];
    let mut idb_delta_masks: Vec<Vec<u32>> = vec![vec![]; nidb];
    let mut edb_reqs: Vec<(Source, ColMask)> = vec![];
    for (source, mask) in compiled.index_requirements() {
        match source {
            Source::PopsEdb(_) | Source::BoolEdb(_) => edb_reqs.push((source, mask)),
            Source::IdbNew(i) | Source::IdbOld(i) => {
                if !idb_new_masks[i].contains(&mask) {
                    idb_new_masks[i].push(mask);
                }
            }
            Source::IdbDelta(i) => {
                if !idb_delta_masks[i].contains(&mask) {
                    idb_delta_masks[i].push(mask);
                }
            }
        }
    }
    Engine {
        interner,
        compiled,
        pops_edb,
        bool_edb,
        adom,
        idb_new_masks,
        idb_delta_masks,
        edb_reqs,
        join_mode: JoinMode::default(),
    }
}

/// Renders a compiler rejection into the typed error every entry point
/// returns. The two structural limits of columnar storage (arity > 32,
/// one head predicate at two arities) land here; there is no slower
/// backend to fall back to any more — the engine is total over the
/// language, and programs outside these representation limits are
/// malformed for every backend (the relational backend debug-asserts on
/// mixed-arity heads).
pub(crate) fn compile_error(e: CompileError) -> EvalError {
    EvalError::Compile {
        detail: format!("dlo_engine cannot represent this program in columnar storage: {e:?}"),
    }
}

/// [`setup`], converting compiler rejections into
/// [`EvalError::Compile`] (see [`compile_error`]).
pub(crate) fn setup_checked<P: Pops>(
    program: &Program<P>,
    pops_db: &Database<P>,
    bool_db: &BoolDatabase,
    set_valued: &[String],
) -> Result<Engine<P>, EvalError> {
    setup(program, pops_db, bool_db, set_valued).map_err(compile_error)
}

/// [`setup_interned`] with the same error contract as [`setup_checked`].
pub(crate) fn setup_interned_checked<P: Pops>(
    program: &Program<P>,
    prev: &InternedOutput<P>,
    extra_pops: &Database<P>,
    bool_db: &BoolDatabase,
    set_valued: &[String],
) -> Result<Engine<P>, EvalError> {
    setup_interned(program, prev, extra_pops, bool_db, set_valued).map_err(compile_error)
}

impl<P: Pops> Engine<P> {
    pub(crate) fn empty_idbs(&self) -> Vec<ColumnRel<P>> {
        self.compiled
            .idbs
            .iter()
            .map(|(_, arity)| ColumnRel::new(*arity))
            .collect()
    }

    /// Fresh per-IDB head accumulators, one per predicate at its arity.
    fn empty_accums(&self) -> Accum<P> {
        self.compiled
            .idbs
            .iter()
            .map(|(_, arity)| AccumMap::new(*arity))
            .collect()
    }

    /// `(first-step work estimate, chunkable)` for a plan against the
    /// given IDB states — the shared input of [`chunk_tasks`] for both
    /// the global driver and the frontier batch executor. A probe-driven
    /// first step gets a flat estimate (its candidate count is unknown
    /// until the key is assembled); an unindexed scan is chunkable.
    pub(crate) fn step0_estimate(
        &self,
        plan: &Plan<P>,
        new: &[ColumnRel<P>],
        delta: &[ColumnRel<P>],
    ) -> (usize, bool) {
        match plan.steps.first() {
            None => (1, false),
            Some(step) if step.mask != 0 => (16, false),
            Some(step) => {
                let len = match step.source {
                    Source::PopsEdb(i) => self.pops_edb[i].as_ref().map_or(0, |r| r.len()),
                    Source::BoolEdb(i) => self.bool_edb[i].as_ref().map_or(0, |r| r.len()),
                    Source::IdbNew(i) | Source::IdbOld(i) => new[i].len(),
                    Source::IdbDelta(i) => delta[i].len(),
                };
                (len, true)
            }
        }
    }
}

/// Builds the parallel task list from per-plan first-step estimates: one
/// task per plan, with chunkable scan-driven plans split into first-step
/// row ranges. Shared by the global driver's iterations and the frontier
/// drivers' batches so both paths fan out with one heuristic.
pub(crate) fn chunk_tasks(
    estimates: &[(usize, bool)],
    threads: usize,
    chunk_min: usize,
) -> Vec<(usize, Option<(usize, usize)>)> {
    let mut tasks: Vec<(usize, Option<(usize, usize)>)> = vec![];
    for (pi, &(est, chunkable)) in estimates.iter().enumerate() {
        if chunkable && est > 2 * chunk_min {
            let chunk = (est / (threads * 4)).max(chunk_min);
            let mut lo = 0;
            while lo < est {
                tasks.push((pi, Some((lo, (lo + chunk).min(est)))));
                lo += chunk;
            }
        } else {
            tasks.push((pi, None));
        }
    }
    tasks
}

impl<P: Pops + Send> Engine<P> {
    /// Builds every EDB-side index the compiled plans probe — the
    /// seed/semi-naïve requirements collected at setup plus `extra`
    /// (the frontier drivers pass their worklist-plan requirements;
    /// IDB entries in `extra` are ignored, the caller owns those
    /// relations) — fanning per-relation builds over `threads` scoped
    /// workers. Builds are independent per relation and each index's
    /// content is insertion-order determined, so parallel construction
    /// is observation-equivalent to the old sequential loop. A panic in
    /// a build is contained by the pool and surfaced as the abort the
    /// drivers turn into [`EvalError::WorkerPanic`].
    pub(crate) fn build_edb_indexes(
        &mut self,
        extra: &[(Source, ColMask)],
        threads: usize,
    ) -> Result<(), Abort> {
        enum Work<'a, P> {
            Pops(&'a mut ColumnRel<P>, Vec<ColMask>),
            Bool(&'a mut ColumnRel<Bool>, Vec<ColMask>),
        }
        let mut pops_masks: Vec<Vec<ColMask>> = vec![vec![]; self.pops_edb.len()];
        let mut bool_masks: Vec<Vec<ColMask>> = vec![vec![]; self.bool_edb.len()];
        for &(source, mask) in self.edb_reqs.iter().chain(extra) {
            match source {
                Source::PopsEdb(i) if !pops_masks[i].contains(&mask) => pops_masks[i].push(mask),
                Source::BoolEdb(i) if !bool_masks[i].contains(&mask) => bool_masks[i].push(mask),
                _ => {}
            }
        }
        let mut work: Vec<Work<'_, P>> = vec![];
        for (rel, masks) in self.pops_edb.iter_mut().zip(pops_masks) {
            if let Some(rel) = rel.as_mut() {
                if !masks.is_empty() {
                    work.push(Work::Pops(rel, masks));
                }
            }
        }
        for (rel, masks) in self.bool_edb.iter_mut().zip(bool_masks) {
            if let Some(rel) = rel.as_mut() {
                if !masks.is_empty() {
                    work.push(Work::Bool(rel, masks));
                }
            }
        }
        let mode = self.join_mode;
        par::run_each(work, threads, |w| match w {
            Work::Pops(rel, masks) => {
                for mask in masks {
                    rel.ensure_probe_for(mask, mode);
                }
            }
            Work::Bool(rel, masks) => {
                for mask in masks {
                    rel.ensure_probe_for(mask, mode);
                }
            }
        })
        .map_err(|message| Abort::WorkerPanic { message })
    }
}

/// Ensures every probe structure in `masks` on `rel` under `mode`
/// ([`ColumnRel::ensure_probe_for`]), reporting whether any of them
/// dispatched to a sorted arrangement — callers attribute the loop's
/// wall-clock to the `arrange` phase leg only when one did (an
/// approximation: a mixed loop's hash builds ride along, but the legs
/// are timing-only and never affect results).
pub(crate) fn ensure_probes<P: Pops>(
    rel: &mut ColumnRel<P>,
    masks: &[u32],
    mode: JoinMode,
) -> bool {
    let mut arranged = false;
    for &mask in masks {
        arranged |= mode.arranged(rel.arity(), mask);
        rel.ensure_probe_for(mask, mode);
    }
    arranged
}

/// Drains the spine-merge counters every IDB relation accumulated since
/// the last drain into the run's `arrange_batches_merged` total. All
/// arrangement maintenance happens on the coordinating thread (inserts
/// are single-threaded between phases), so the total is thread-invariant.
pub(crate) fn drain_arrange_merges<P: Pops>(state: &mut IdbState<P>, col: &mut Collector) {
    let mut merges = 0;
    for rel in state.new.iter_mut().chain(state.delta.iter_mut()) {
        merges += rel.take_arrange_merges();
    }
    col.stats.counters.arrange_batches_merged += merges;
}

/// Consumes a finished engine into the decode-free output handle.
pub(crate) fn finish<P: Pops>(engine: Engine<P>, rels: Vec<ColumnRel<P>>) -> InternedOutput<P> {
    InternedOutput::new(engine.interner, engine.compiled.idbs, rels)
}

/// The shared abort tail of every driver, with the partially evaluated
/// instance attached instead of dropped: emits the abort trace event
/// via [`abort_error`], then packages the abort-time IDB state (`rels`)
/// and the settled marking into a [`PartialOutput`] riding next to the
/// typed error. The stats snapshot inside the error and inside the
/// partial are the same completed snapshot.
#[allow(clippy::too_many_arguments)]
pub(crate) fn abort_with_partial<P: Pops>(
    abort: Abort,
    checkpoint: Checkpoint,
    engine: Engine<P>,
    rels: Vec<ColumnRel<P>>,
    settled: SettledMark,
    col: Collector,
    steps: usize,
    eval_ns: u64,
) -> Box<AbortedEval<P>> {
    let settled_rows = settled.settled_rows();
    let error = abort_error(abort, checkpoint, settled_rows, col, steps, eval_ns);
    let stats = error.stats().cloned().unwrap_or_default();
    let partial = PartialOutput::new(finish(engine, rels), settled, stats);
    Box::new(AbortedEval::new(error, partial))
}

/// Wraps a pre-run failure (a compile rejection) into the
/// partial-result error channel of the `*_partial` entry points: no
/// evaluation ever started, so the attached partial is empty (no
/// predicates, no rows, nothing settled).
pub(crate) fn empty_aborted<P: Pops>(error: EvalError) -> Box<AbortedEval<P>> {
    let partial = PartialOutput::new(
        InternedOutput::new(Interner::new(), vec![], vec![]),
        SettledMark::best_effort(0),
        EvalStats::default(),
    );
    Box::new(AbortedEval::new(error, partial))
}

pub(crate) fn merge_fresh<P: PreSemiring>(
    map: &mut BTreeMap<Box<[HeadVal]>, P>,
    key: &[HeadVal],
    v: P,
) {
    match map.get_mut(key) {
        Some(g) => *g = g.add(&v),
        None => {
            map.insert(key.into(), v);
        }
    }
}

/// Resolves a fresh head key into a fully interned row, minting ids for
/// integers first derived by a head key function this iteration.
///
/// Distinct fresh keys always mint to distinct rows: `Fresh` cells map
/// injectively to brand-new ids (they were not interned when the phase
/// ran) and `Id` cells predate the phase, so a minted row can collide
/// neither with another minted row nor with any row already stored.
pub(crate) fn mint_key(interner: &mut Interner, key: &[HeadVal]) -> Vec<u32> {
    key.iter()
        .map(|hv| match hv {
            HeadVal::Id(id) => *id,
            HeadVal::Fresh(i) => interner.intern_int(*i),
        })
        .collect()
}

/// Runs one phase's plans, fanning out when the estimated work warrants
/// it. A panicking plan (sequential or parallel) is contained and
/// surfaced as [`Abort::WorkerPanic`] — deterministically, because the
/// lowest-indexed panicking task wins in the pool and the sequential
/// path visits tasks in the same order.
pub(crate) fn run_plans<P>(
    engine: &Engine<P>,
    plans: &[Plan<P>],
    state: &IdbState<P>,
    opts: &EngineOpts,
    col: &mut Collector,
) -> Result<(Accum<P>, FreshAccum<P>), Abort>
where
    P: Pops + Send + Sync,
{
    let nidb = engine.compiled.idbs.len();
    let ctx = EvalCtx {
        interner: &engine.interner,
        adom: &engine.adom,
        pops_edb: &engine.pops_edb,
        bool_edb: &engine.bool_edb,
        idb_new: &state.new,
        idb_changed: &state.changed,
        idb_delta: &state.delta,
    };
    let mut global: Accum<P> = engine.empty_accums();
    let mut global_fresh: FreshAccum<P> = (0..nidb).map(|_| BTreeMap::new()).collect();
    let threads = opts.effective_threads();
    let estimates: Vec<(usize, bool)> = plans
        .iter()
        .map(|p| engine.step0_estimate(p, &state.new, &state.delta))
        .collect();
    let total: usize = estimates.iter().map(|(e, _)| e).sum();

    if threads <= 1 || total < opts.par_threshold {
        for plan in plans {
            let acc = &mut global[plan.head_pred];
            let facc = &mut global_fresh[plan.head_pred];
            let mut counters = ExecCounters::default();
            let t = Instant::now();
            catch_unwind(AssertUnwindSafe(|| {
                run_plan(
                    plan,
                    &ctx,
                    None,
                    &mut counters,
                    &mut |key, v| acc.merge(key, v),
                    &mut |key, v| merge_fresh(facc, key, v),
                );
            }))
            .map_err(|p| Abort::WorkerPanic {
                message: par::payload_message(p),
            })?;
            col.add_plan(plan.pid, counters, t.elapsed().as_nanos() as u64);
        }
        return Ok((global, global_fresh));
    }

    let tasks = chunk_tasks(&estimates, threads, opts.chunk_min);
    let results = par::run_indexed(tasks.len(), threads, |ti| {
        let (pi, range) = tasks[ti];
        let plan = &plans[pi];
        let mut local: AccumMap<P> = AccumMap::new(engine.compiled.idbs[plan.head_pred].1);
        let mut local_fresh: BTreeMap<Box<[HeadVal]>, P> = BTreeMap::new();
        let mut counters = ExecCounters::default();
        let t = Instant::now();
        run_plan(
            plan,
            &ctx,
            range,
            &mut counters,
            &mut |key, v| local.merge(key, v),
            &mut |key, v| merge_fresh(&mut local_fresh, key, v),
        );
        let nanos = t.elapsed().as_nanos() as u64;
        (
            plan.pid,
            plan.head_pred,
            local,
            local_fresh,
            counters,
            nanos,
        )
    })
    .map_err(|message| Abort::WorkerPanic { message })?;
    col.parallel_batch(tasks.len());
    // `run_indexed` returns results in task order, so the `⊕`-merge
    // association, the fresh-map contents, and the counter sums are all
    // deterministic (chunks of one plan contribute additively).
    for (pid, pred, local, local_fresh, counters, nanos) in results {
        col.add_plan(pid, counters, nanos);
        global[pred].absorb(local);
        let facc = &mut global_fresh[pred];
        for (key, v) in local_fresh {
            merge_fresh(facc, &key, v);
        }
    }
    Ok((global, global_fresh))
}

/// Naïve evaluation on the engine: `J(t+1) = F(J(t))` with every IDB
/// occurrence reading the new state. Agrees with
/// `relational_naive_eval` (cross-checked in tests), including programs
/// whose heads apply key functions — fresh constants are minted into the
/// interner between iterations.
///
/// # Errors
///
/// [`EvalError::Compile`] on programs the columnar storage cannot
/// represent (an atom of arity > 32, one head predicate at two
/// arities); under governed options also the budget / deadline /
/// cancellation / worker-panic variants. Hitting the iteration cap is
/// **not** an error here — it returns `Ok` with
/// [`EvalOutcome::Diverged`] (use
/// [`EvalOutcome::into_result`](dlo_core::eval::EvalOutcome::into_result)
/// for the typed divergence error).
pub fn engine_naive_eval<P>(
    program: &Program<P>,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
) -> Result<EvalOutcome<P>, EvalError>
where
    P: NaturallyOrdered + Send + Sync,
{
    engine_naive_eval_with_opts(program, pops_edb, bool_edb, cap, &EngineOpts::default())
}

/// [`engine_naive_eval`] with explicit tuning knobs.
///
/// # Errors
///
/// As [`engine_naive_eval`].
pub fn engine_naive_eval_with_opts<P>(
    program: &Program<P>,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
    opts: &EngineOpts,
) -> Result<EvalOutcome<P>, EvalError>
where
    P: NaturallyOrdered + Send + Sync,
{
    let t = Instant::now();
    let engine = setup_checked(program, pops_edb, bool_edb, &[])?;
    let setup_ns = t.elapsed().as_nanos() as u64;
    Ok(naive_run(engine, cap, opts, setup_ns)
        .map_err(|b| EvalError::from(*b))?
        .materialize())
}

/// The naïve loop over a prepared [`Engine`] (shared by the classic
/// entry points and the demand-rewritten query path). `setup_ns` is the
/// caller-measured compile/intern time, recorded into the stats. A
/// governed abort returns the boxed [`AbortedEval`]: the typed error
/// plus the abort-time IDB state as a best-effort lower bound (the
/// naïve loop never settles rows early).
pub(crate) fn naive_run<P>(
    mut engine: Engine<P>,
    cap: usize,
    opts: &EngineOpts,
    setup_ns: u64,
) -> Result<InternedOutcome<P>, Box<AbortedEval<P>>>
where
    P: NaturallyOrdered + Send + Sync,
{
    let mode = opts.effective_join_mode();
    engine.join_mode = mode;
    let mut col = Collector::new(
        "naive",
        opts.effective_threads(),
        setup_ns,
        engine.compiled.plan_metas_for(mode),
        opts,
    );
    let gov = Governor::new(opts, setup_ns);
    let nidb = engine.compiled.idbs.len();
    // Pre-index phase checkpoint: a cancelled or already-over-deadline
    // run (setup time is backdated into the governor) stops before
    // paying for the EDB index build.
    if let Err(a) = gov.check(0, &mut col) {
        let rels = engine.empty_idbs();
        let settled = SettledMark::best_effort(nidb);
        return Err(abort_with_partial(
            a,
            Checkpoint::Phase,
            engine,
            rels,
            settled,
            col,
            0,
            0,
        ));
    }
    let t = Instant::now();
    if let Err(a) = engine.build_edb_indexes(&[], opts.effective_threads()) {
        let rels = engine.empty_idbs();
        let settled = SettledMark::best_effort(nidb);
        return Err(abort_with_partial(
            a,
            Checkpoint::Phase,
            engine,
            rels,
            settled,
            col,
            0,
            0,
        ));
    }
    col.edb_index_phase(t.elapsed().as_nanos() as u64);
    let t_eval = Instant::now();
    let mut state = IdbState {
        new: engine.empty_idbs(),
        changed: vec![FxHashMap::default(); nidb],
        delta: engine.empty_idbs(),
    };
    let t_arr = Instant::now();
    let mut arranged = false;
    for (pred, rel) in state.new.iter_mut().enumerate() {
        arranged |= ensure_probes(rel, &engine.idb_new_masks[pred], mode);
    }
    if arranged {
        col.arrange_phase(t_arr.elapsed().as_nanos() as u64);
    }
    for steps in 0..=cap {
        if let Err(a) = gov.check(steps as u64, &mut col) {
            return Err(abort_with_partial(
                a,
                Checkpoint::Iteration,
                engine,
                state.new,
                SettledMark::best_effort(nidb),
                col,
                steps,
                t_eval.elapsed().as_nanos() as u64,
            ));
        }
        let before = col.stats.counters;
        let ran = run_plans(&engine, &engine.compiled.seed_plans, &state, opts, &mut col);
        let (contrib, fresh) = match ran {
            Ok(r) => r,
            Err(a) => {
                return Err(abort_with_partial(
                    a,
                    Checkpoint::Iteration,
                    engine,
                    state.new,
                    SettledMark::best_effort(nidb),
                    col,
                    steps,
                    t_eval.elapsed().as_nanos() as u64,
                ))
            }
        };
        let mut next = engine.empty_idbs();
        for (pred, acc) in contrib.into_iter().enumerate() {
            // Set-valued (magic) rows always hold `1`: demand is a set,
            // whatever `⊕`-sum the plans accumulated.
            let sv = engine.compiled.set_valued[pred];
            acc.drain_sorted(|key, v| {
                next[pred].insert_row(key, if sv { P::one() } else { v });
            });
        }
        let t_mint = Instant::now();
        let minted_before = engine.interner.len();
        for (pred, acc) in fresh.into_iter().enumerate() {
            let sv = engine.compiled.set_valued[pred];
            for (key, v) in acc {
                let key = mint_key(&mut engine.interner, &key);
                next[pred].insert_row(&key, if sv { P::one() } else { v });
            }
        }
        col.stats.counters.minted_ids += (engine.interner.len() - minted_before) as u64;
        col.stats.phases.mint += t_mint.elapsed().as_nanos() as u64;
        let fixed = next
            .iter()
            .zip(&state.new)
            .all(|(n, c)| n.len() == c.len() && n.iter().all(|(_, k, v)| c.get(k) == Some(v)));
        col.end_step(steps, 0, 0, &before);
        if fixed {
            let stats = col.finish(steps, true, t_eval.elapsed().as_nanos() as u64);
            return Ok(InternedOutcome::Converged {
                output: finish(engine, state.new),
                steps,
                stats,
            });
        }
        let t_arr = Instant::now();
        let mut arranged = false;
        for (pred, rel) in next.iter_mut().enumerate() {
            arranged |= ensure_probes(rel, &engine.idb_new_masks[pred], mode);
        }
        if arranged {
            col.arrange_phase(t_arr.elapsed().as_nanos() as u64);
        }
        state.new = next;
    }
    let stats = col.finish(cap, false, t_eval.elapsed().as_nanos() as u64);
    Ok(InternedOutcome::Diverged {
        last: finish(engine, state.new),
        cap,
        stats,
    })
}

/// Parallel semi-naïve evaluation on the engine (Theorem 6.5). Agrees
/// with `relational_seminaive_eval` — same fixpoint, same step count —
/// while running interned, indexed, and multi-threaded. Head key
/// functions evaluate natively: constants they derive are minted into
/// the interner between iterations and enter `new`/`δ` as ordinary
/// appends.
///
/// # Errors
///
/// As [`engine_naive_eval`]: compile rejections and governed aborts are
/// typed errors; hitting the iteration cap is `Ok(Diverged)`.
pub fn engine_seminaive_eval<P>(
    program: &Program<P>,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
) -> Result<EvalOutcome<P>, EvalError>
where
    P: NaturallyOrdered + CompleteDistributiveDioid + Send + Sync,
{
    engine_seminaive_eval_with_opts(program, pops_edb, bool_edb, cap, &EngineOpts::default())
}

/// [`engine_seminaive_eval`] with explicit tuning knobs.
///
/// # Errors
///
/// As [`engine_naive_eval`].
pub fn engine_seminaive_eval_with_opts<P>(
    program: &Program<P>,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
    opts: &EngineOpts,
) -> Result<EvalOutcome<P>, EvalError>
where
    P: NaturallyOrdered + CompleteDistributiveDioid + Send + Sync,
{
    Ok(engine_seminaive_eval_interned(program, pops_edb, bool_edb, cap, opts)?.materialize())
}

/// [`engine_seminaive_eval`] returning the **decode-free**
/// [`InternedOutcome`]: the fixpoint stays interned (ids + interner
/// handle) and the rank-sorted `Database` build is deferred until a
/// caller asks for it — on 500k-row outputs that build is the largest
/// single phase of a run, and pipelines feeding results back into the
/// engine never need it.
///
/// # Errors
///
/// As [`engine_naive_eval`].
pub fn engine_seminaive_eval_interned<P>(
    program: &Program<P>,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
    opts: &EngineOpts,
) -> Result<InternedOutcome<P>, EvalError>
where
    P: NaturallyOrdered + CompleteDistributiveDioid + Send + Sync,
{
    let t = Instant::now();
    let engine = setup_checked(program, pops_edb, bool_edb, &[])?;
    let setup_ns = t.elapsed().as_nanos() as u64;
    seminaive_run(engine, cap, opts, setup_ns).map_err(|b| EvalError::from(*b))
}

/// [`engine_seminaive_eval_interned`] over an **interned EDB**: the
/// previous run's [`InternedOutput`] serves as the POPS database
/// (shared interner, relations reused storage-for-storage — no
/// `Constant`/`Database` round-trip anywhere on the chain), with
/// `extra_pops` overlaying fresh classic-form relations for names the
/// interned output does not carry (e.g. the original edge list of a
/// refine step). Name resolution prefers `extra_pops`.
///
/// # Errors
///
/// As [`engine_naive_eval`].
pub fn engine_seminaive_eval_interned_edb<P>(
    program: &Program<P>,
    prev: &InternedOutput<P>,
    extra_pops: &Database<P>,
    bool_edb: &BoolDatabase,
    cap: usize,
    opts: &EngineOpts,
) -> Result<InternedOutcome<P>, EvalError>
where
    P: NaturallyOrdered + CompleteDistributiveDioid + Send + Sync,
{
    let t = Instant::now();
    let engine = setup_interned_checked(program, prev, extra_pops, bool_edb, &[])?;
    let setup_ns = t.elapsed().as_nanos() as u64;
    seminaive_run(engine, cap, opts, setup_ns).map_err(|b| EvalError::from(*b))
}

/// The parallel semi-naïve loop over a prepared [`Engine`] (shared by
/// the classic, interned-EDB, and demand-rewritten query entry points).
/// A governed abort returns the boxed [`AbortedEval`]: the typed error
/// plus the abort-time IDB state as a best-effort lower bound
/// (`J(t) ⊑ lfp` is the loop invariant, but nothing is settled until
/// convergence).
pub(crate) fn seminaive_run<P>(
    mut engine: Engine<P>,
    cap: usize,
    opts: &EngineOpts,
    setup_ns: u64,
) -> Result<InternedOutcome<P>, Box<AbortedEval<P>>>
where
    P: NaturallyOrdered + CompleteDistributiveDioid + Send + Sync,
{
    let mode = opts.effective_join_mode();
    engine.join_mode = mode;
    let mut col = Collector::new(
        "seminaive",
        opts.effective_threads(),
        setup_ns,
        engine.compiled.plan_metas_for(mode),
        opts,
    );
    let gov = Governor::new(opts, setup_ns);
    let nidb = engine.compiled.idbs.len();
    // Pre-index phase checkpoint (see `naive_run`).
    if let Err(a) = gov.check(0, &mut col) {
        let rels = engine.empty_idbs();
        let settled = SettledMark::best_effort(nidb);
        return Err(abort_with_partial(
            a,
            Checkpoint::Phase,
            engine,
            rels,
            settled,
            col,
            0,
            0,
        ));
    }
    let t = Instant::now();
    if let Err(a) = engine.build_edb_indexes(&[], opts.effective_threads()) {
        let rels = engine.empty_idbs();
        let settled = SettledMark::best_effort(nidb);
        return Err(abort_with_partial(
            a,
            Checkpoint::Phase,
            engine,
            rels,
            settled,
            col,
            0,
            0,
        ));
    }
    col.edb_index_phase(t.elapsed().as_nanos() as u64);
    let t_eval = Instant::now();
    let mut state = IdbState {
        new: engine.empty_idbs(),
        changed: vec![FxHashMap::default(); nidb],
        delta: engine.empty_idbs(),
    };
    let t_arr = Instant::now();
    let mut arranged = false;
    for (pred, rel) in state.new.iter_mut().enumerate() {
        arranged |= ensure_probes(rel, &engine.idb_new_masks[pred], mode);
    }
    if arranged {
        col.arrange_phase(t_arr.elapsed().as_nanos() as u64);
    }
    // Seeding: J(1) = F(0), δ(0) = J(1), every row marked as appended.
    if let Err(a) = gov.check(0, &mut col) {
        return Err(abort_with_partial(
            a,
            Checkpoint::Phase,
            engine,
            state.new,
            SettledMark::best_effort(nidb),
            col,
            0,
            t_eval.elapsed().as_nanos() as u64,
        ));
    }
    let seed_before = col.stats.counters;
    let ran = run_plans(&engine, &engine.compiled.seed_plans, &state, opts, &mut col);
    let (contrib, fresh) = match ran {
        Ok(r) => r,
        Err(a) => {
            return Err(abort_with_partial(
                a,
                Checkpoint::Phase,
                engine,
                state.new,
                SettledMark::best_effort(nidb),
                col,
                0,
                t_eval.elapsed().as_nanos() as u64,
            ))
        }
    };
    for (pred, acc) in contrib.into_iter().enumerate() {
        // Set-valued (magic) rows enter — and forever stay — at `1`.
        let sv = engine.compiled.set_valued[pred];
        acc.drain_sorted(|key, v| {
            let v = if sv { P::one() } else { v };
            let r = state.new[pred].insert_row(key, v.clone());
            state.changed[pred].insert(r, None);
            state.delta[pred].append_row(key, v);
            col.stats.counters.rows_inserted += 1;
        });
    }
    let t_mint = Instant::now();
    let minted_before = engine.interner.len();
    for (pred, acc) in fresh.into_iter().enumerate() {
        let sv = engine.compiled.set_valued[pred];
        for (key, v) in acc {
            let v = if sv { P::one() } else { v };
            let key = mint_key(&mut engine.interner, &key);
            let r = state.new[pred].insert_row(&key, v.clone());
            state.changed[pred].insert(r, None);
            state.delta[pred].append_row(&key, v);
            col.stats.counters.rows_inserted += 1;
        }
    }
    col.stats.counters.minted_ids += (engine.interner.len() - minted_before) as u64;
    col.stats.phases.mint += t_mint.elapsed().as_nanos() as u64;
    let t_arr = Instant::now();
    if ensure_delta_indexes(&engine, &mut state) {
        col.arrange_phase(t_arr.elapsed().as_nanos() as u64);
    }
    drain_arrange_merges(&mut state, &mut col);
    col.end_step(0, 0, 0, &seed_before);

    for steps in 1..=cap {
        if state.delta.iter().all(|d| d.is_empty()) {
            let stats = col.finish(steps, true, t_eval.elapsed().as_nanos() as u64);
            return Ok(InternedOutcome::Converged {
                output: finish(engine, state.new),
                steps,
                stats,
            });
        }
        if let Err(a) = gov.check(steps as u64, &mut col) {
            return Err(abort_with_partial(
                a,
                Checkpoint::Iteration,
                engine,
                state.new,
                SettledMark::best_effort(nidb),
                col,
                steps,
                t_eval.elapsed().as_nanos() as u64,
            ));
        }
        let before = col.stats.counters;
        let delta_rows: u64 = state.delta.iter().map(|d| d.len() as u64).sum();
        let ran = run_plans(
            &engine,
            &engine.compiled.delta_plans,
            &state,
            opts,
            &mut col,
        );
        let (contrib, fresh) = match ran {
            Ok(r) => r,
            Err(a) => {
                return Err(abort_with_partial(
                    a,
                    Checkpoint::Iteration,
                    engine,
                    state.new,
                    SettledMark::best_effort(nidb),
                    col,
                    steps,
                    t_eval.elapsed().as_nanos() as u64,
                ))
            }
        };
        apply_contrib(&mut engine, &mut state, contrib, fresh, &mut col);
        col.end_step(steps, delta_rows, 0, &before);
    }
    let stats = col.finish(cap, false, t_eval.elapsed().as_nanos() as u64);
    Ok(InternedOutcome::Diverged {
        last: finish(engine, state.new),
        cap,
        stats,
    })
}

/// The semi-naïve **advance**: merges one phase's accumulated
/// contributions into the IDB state — `δ' = contrib ⊖ new` (pointwise
/// on supports), `new' = new ⊕ contrib` — minting fresh head keys
/// between phases, and leaves `state.delta` holding the next
/// iteration's indexed delta. Shared by [`seminaive_run`]'s loop and
/// the incremental maintenance driver in [`crate::incremental`], whose
/// edit paths seed the very same advance from edit-delta plans.
pub(crate) fn apply_contrib<P>(
    engine: &mut Engine<P>,
    state: &mut IdbState<P>,
    contrib: Accum<P>,
    fresh: FreshAccum<P>,
    col: &mut Collector,
) where
    P: NaturallyOrdered + CompleteDistributiveDioid + Send + Sync,
{
    // Advance: δ' = contrib ⊖ new (pointwise), new' = new ⊕ contrib.
    let mut next_delta = engine.empty_idbs();
    for ch in &mut state.changed {
        ch.clear();
    }
    for (pred, acc) in contrib.into_iter().enumerate() {
        let sv = engine.compiled.set_valued[pred];
        let c = &mut col.stats.counters;
        acc.drain_sorted(|key, v| {
            if sv {
                // Set-valued (magic) rows: present means settled —
                // no merge, no delta for already-demanded bindings.
                if state.new[pred].rowid(key).is_none() {
                    next_delta[pred].append_row(key, P::one());
                    let r = state.new[pred].insert_row(key, P::one());
                    state.changed[pred].insert(r, None);
                    c.rows_inserted += 1;
                } else {
                    c.set_valued_shortcircuits += 1;
                }
                return;
            }
            let existing = state.new[pred].get(key).cloned().unwrap_or_else(P::zero);
            let diff = v.minus(&existing);
            if diff.is_zero() {
                c.merges_absorbed += 1;
                return;
            }
            next_delta[pred].append_row(key, diff);
            match state.new[pred].rowid(key) {
                Some(r) => {
                    let merged = existing.add(&v);
                    state.changed[pred].insert(r, Some(existing));
                    state.new[pred].set_val(r, merged);
                    c.rows_improved += 1;
                }
                None => {
                    let r = state.new[pred].insert_row(key, v);
                    state.changed[pred].insert(r, None);
                    c.rows_inserted += 1;
                }
            }
        });
    }
    // Fresh head keys name rows that cannot exist yet (their minted
    // cells were not interned when the phase ran), so δ' = v ⊖ 0 and
    // the insert is always an append.
    let t_mint = Instant::now();
    let minted_before = engine.interner.len();
    for (pred, acc) in fresh.into_iter().enumerate() {
        let sv = engine.compiled.set_valued[pred];
        for (key, v) in acc {
            let v = if sv { P::one() } else { v };
            let key = mint_key(&mut engine.interner, &key);
            let diff = v.minus(&P::zero());
            if diff.is_zero() {
                col.stats.counters.merges_absorbed += 1;
                continue;
            }
            next_delta[pred].append_row(&key, diff);
            let r = state.new[pred].insert_row(&key, v);
            state.changed[pred].insert(r, None);
            col.stats.counters.rows_inserted += 1;
        }
    }
    col.stats.counters.minted_ids += (engine.interner.len() - minted_before) as u64;
    col.stats.phases.mint += t_mint.elapsed().as_nanos() as u64;
    state.delta = next_delta;
    let t_arr = Instant::now();
    if ensure_delta_indexes(engine, state) {
        col.arrange_phase(t_arr.elapsed().as_nanos() as u64);
    }
    drain_arrange_merges(state, col);
}

/// Ensures the per-iteration delta's probe structures under the
/// engine's resolved [`JoinMode`]; returns whether any dispatched to an
/// arrangement (see [`ensure_probes`]).
pub(crate) fn ensure_delta_indexes<P: Pops>(engine: &Engine<P>, state: &mut IdbState<P>) -> bool {
    let mut arranged = false;
    for (pred, rel) in state.delta.iter_mut().enumerate() {
        arranged |= ensure_probes(rel, &engine.idb_delta_masks[pred], engine.join_mode);
    }
    arranged
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlo_core::eval::relational::{relational_naive_eval, relational_seminaive_eval};
    use dlo_core::examples_lib as ex;
    use dlo_core::tup;
    use dlo_pops::{MinNat, Trop};

    fn assert_matches_relational<P>(program: &Program<P>, pops: &Database<P>, bools: &BoolDatabase)
    where
        P: NaturallyOrdered + CompleteDistributiveDioid + Send + Sync,
    {
        let reference = relational_naive_eval(program, pops, bools, 100_000).unwrap();
        let naive = engine_naive_eval(program, pops, bools, 100_000)
            .expect("compiles")
            .unwrap();
        let semi = engine_seminaive_eval(program, pops, bools, 100_000)
            .expect("compiles")
            .unwrap();
        assert_eq!(reference, naive, "engine naive differs");
        assert_eq!(reference, semi, "engine semi-naive differs");
    }

    #[test]
    fn sssp_fig2a_matches_relational() {
        let (program, edb) = ex::sssp_trop("a");
        assert_matches_relational(&program, &edb, &BoolDatabase::new());
        let out = engine_seminaive_eval(&program, &edb, &BoolDatabase::new(), 1000)
            .expect("compiles")
            .unwrap();
        let l = out.get("L").unwrap();
        assert_eq!(l.get(&tup!["a"]), Trop::finite(0.0));
        assert_eq!(l.get(&tup!["d"]), Trop::finite(8.0));
    }

    #[test]
    fn apsp_and_quadratic_tc_match_relational() {
        let (program, edb) = ex::apsp_trop(&[
            ("a", "b", 1.0),
            ("b", "a", 2.0),
            ("b", "c", 3.0),
            ("c", "d", 4.0),
            ("a", "c", 5.0),
        ]);
        assert_matches_relational(&program, &edb, &BoolDatabase::new());

        let (program, edb) =
            ex::quadratic_tc_bool(&[("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")]);
        assert_matches_relational(&program, &edb, &BoolDatabase::new());
    }

    #[test]
    fn bool_guards_and_indicators_match_relational() {
        // BOM over MinNat: a Boolean guard binding through the condition.
        let program: Program<MinNat> = ex::bom_program();
        let mut pops = Database::new();
        pops.insert(
            "C",
            Relation::from_pairs(
                1,
                vec![
                    (tup!["c"], MinNat::finite(1)),
                    (tup!["d"], MinNat::finite(10)),
                ],
            ),
        );
        let mut bools = BoolDatabase::new();
        bools.insert(
            "E",
            dlo_core::relation::bool_relation(2, vec![tup!["c", "d"]]),
        );
        assert_matches_relational(&program, &pops, &bools);

        // SSSP with the {1 | X = s} indicator (equality pre-binding).
        let program: Program<MinNat> = ex::single_source_program("s");
        let mut edb = Database::new();
        edb.insert(
            "E",
            Relation::from_pairs(
                2,
                vec![
                    (tup!["s", "t"], MinNat::finite(2)),
                    (tup!["t", "u"], MinNat::finite(3)),
                ],
            ),
        );
        assert_matches_relational(&program, &edb, &BoolDatabase::new());
    }

    #[test]
    fn step_counts_match_the_relational_backend() {
        let (program, edb) = ex::sssp_trop("a");
        let bools = BoolDatabase::new();
        let (_, rel_steps) = relational_seminaive_eval(&program, &edb, &bools, 1000)
            .converged()
            .unwrap();
        let (_, eng_steps) = engine_seminaive_eval(&program, &edb, &bools, 1000)
            .expect("compiles")
            .converged()
            .unwrap();
        assert_eq!(rel_steps, eng_steps);

        let (_, rel_naive) = relational_naive_eval(&program, &edb, &bools, 1000)
            .converged()
            .unwrap();
        let (_, eng_naive) = engine_naive_eval(&program, &edb, &bools, 1000)
            .expect("compiles")
            .converged()
            .unwrap();
        assert_eq!(rel_naive, eng_naive);
    }

    #[test]
    fn divergence_is_detected() {
        use dlo_core::ast::{Atom, Factor, SumProduct, Term};
        use dlo_pops::Nat;
        let mut p = Program::<Nat>::new();
        p.rule(
            Atom::new("X", vec![Term::c("u")]),
            vec![
                SumProduct::new(vec![]).with_coeff(Nat(1)),
                SumProduct::new(vec![Factor::atom("X", vec![Term::c("u")])]).with_coeff(Nat(2)),
            ],
        );
        assert!(
            !engine_naive_eval(&p, &Database::new(), &BoolDatabase::new(), 30)
                .expect("capped divergence is Ok(Diverged), not an error")
                .is_converged()
        );
    }

    #[test]
    fn parallel_execution_is_deterministic_and_correct() {
        // Force the fan-out path (threshold 1, tiny chunks, 4 workers)
        // on a quadratic TC instance and require bit-identical results
        // against the sequential run and the relational reference.
        use dlo_bench_free_random_graph as graph;
        let (program, edb) = graph(36, 150, 5);
        let bools = BoolDatabase::new();
        let parallel_opts = EngineOpts {
            threads: Some(4),
            par_threshold: 1,
            chunk_min: 8,
            ..EngineOpts::default()
        };
        let sequential_opts = EngineOpts {
            threads: Some(1),
            ..EngineOpts::default()
        };
        let par = engine_seminaive_eval_with_opts(&program, &edb, &bools, 100_000, &parallel_opts)
            .expect("compiles")
            .unwrap();
        let seq =
            engine_seminaive_eval_with_opts(&program, &edb, &bools, 100_000, &sequential_opts)
                .expect("compiles")
                .unwrap();
        let reference = relational_seminaive_eval(&program, &edb, &bools, 100_000).unwrap();
        assert_eq!(par, seq, "parallel and sequential runs differ");
        assert_eq!(par, reference, "engine differs from relational");
        assert!(par.get("T").unwrap().support_size() > 500, "non-trivial TC");
    }

    /// A seeded random graph + quadratic TC program without depending
    /// on dlo_bench (which depends on this crate).
    fn dlo_bench_free_random_graph(
        n: usize,
        m: usize,
        max_w: u64,
    ) -> (Program<MinNat>, Database<MinNat>) {
        let mut s = 0x5eed_u64;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut pairs = vec![];
        for _ in 0..m {
            let u = (rng() % n as u64) as i64;
            let v = (rng() % n as u64) as i64;
            if u != v {
                pairs.push((vec![u.into(), v.into()], MinNat::finite(1 + rng() % max_w)));
            }
        }
        let mut db = Database::new();
        db.insert("E", Relation::from_pairs(2, pairs));
        (ex::quadratic_tc_program::<MinNat>(), db)
    }

    #[test]
    fn mixed_arity_head_is_rejected_loudly() {
        use crate::plan::CompileError;
        use dlo_core::ast::{Atom, Factor, SumProduct, Term};
        // T used at arity 1 and arity 2: columnar storage cannot hold
        // both. There is no fallback backend any more, so the compiler
        // rejects and the entry points return a typed compile error
        // rather than silently corrupting flat storage.
        let mut p = Program::<MinNat>::new();
        p.rule(
            Atom::new("T", vec![Term::v(0)]),
            vec![SumProduct::new(vec![Factor::atom("A", vec![Term::v(0)])])],
        );
        p.rule(
            Atom::new("T", vec![Term::v(0), Term::v(1)]),
            vec![SumProduct::new(vec![Factor::atom(
                "B",
                vec![Term::v(0), Term::v(1)],
            )])],
        );
        let mut interner = crate::intern::Interner::new();
        assert!(matches!(
            crate::plan::compile(&p, &mut interner),
            Err(CompileError::HeadArityMismatch)
        ));
        let err = engine_naive_eval(&p, &Database::new(), &BoolDatabase::new(), 10)
            .expect_err("mixed-arity heads must be a compile error");
        match &err {
            EvalError::Compile { detail } => {
                assert!(detail.contains("HeadArityMismatch"), "got: {detail}");
            }
            other => panic!("expected EvalError::Compile, got {other:?}"),
        }
        assert_eq!(err.kind(), "compile");
        assert!(err.stats().is_none(), "compile errors predate any run");
    }

    #[test]
    fn head_key_functions_mint_fresh_constants() {
        use dlo_core::ast::{Atom, Factor, KeyFn, SumProduct, Term};
        use dlo_core::formula::{CmpOp, Formula};
        // A counter that names rows the EDB never mentions:
        //   N(0)   :- $1.
        //   N(I+1) :- N(I) | I < 5.
        // Keys 1..4 exist in no relation and no program constant — they
        // are minted by the dynamic interner during the fixpoint.
        let mut p = Program::<MinNat>::new();
        p.rule(
            Atom::new("N", vec![Term::c(0)]),
            vec![SumProduct::new(vec![]).with_coeff(MinNat::finite(1))],
        );
        p.rule(
            Atom::new(
                "N",
                vec![Term::Apply(KeyFn::AddInt(1), Box::new(Term::v(0)))],
            ),
            vec![SumProduct::new(vec![Factor::atom("N", vec![Term::v(0)])])
                .with_condition(Formula::cmp(Term::v(0), CmpOp::Lt, Term::c(5)))],
        );
        assert_matches_relational(&p, &Database::new(), &BoolDatabase::new());
        let out = engine_seminaive_eval(&p, &Database::new(), &BoolDatabase::new(), 100)
            .expect("compiles")
            .unwrap();
        let n = out.get("N").unwrap();
        assert_eq!(n.support_size(), 6, "keys 0..=5");
        for i in 0..=5i64 {
            assert_eq!(n.get(&tup![i]), MinNat::finite(1), "N({i})");
        }
    }

    #[test]
    fn head_keyed_prefix_runs_natively_and_counts_steps() {
        // Example 4.5's prefix program in head-keyed form over Trop⁺
        // (⊗ = +, one derivation per key ⇒ true prefix sums):
        //   W(0)   :- V(0).
        //   W(I+1) :- W(I) * V(I+1).
        let values = [2.0, 4.0, 1.5, 3.0, 0.5];
        let (p, edb) = ex::prefix_sum_keyed::<Trop>(&values, Trop::finite);
        assert_matches_relational(&p, &edb, &BoolDatabase::new());
        let out = engine_seminaive_eval(&p, &edb, &BoolDatabase::new(), 1000)
            .expect("compiles")
            .unwrap();
        let w = out.get("W").unwrap();
        let mut acc = 0.0;
        for (i, v) in values.iter().enumerate() {
            acc += v;
            assert_eq!(w.get(&tup![i as i64]), Trop::finite(acc), "W({i})");
        }
        // Step counts still mirror the relational semi-naïve loop.
        let (_, rel_steps) = relational_seminaive_eval(&p, &edb, &BoolDatabase::new(), 1000)
            .converged()
            .unwrap();
        let (_, eng_steps) = engine_seminaive_eval(&p, &edb, &BoolDatabase::new(), 1000)
            .expect("compiles")
            .converged()
            .unwrap();
        assert_eq!(rel_steps, eng_steps);
    }

    #[test]
    fn float_sums_are_deterministic_across_runs() {
        use dlo_core::ast::{Atom, Factor, SumProduct, Term};
        use dlo_pops::NNReal;
        // ℝ₊'s ⊕ is f64 addition — not exactly associative — so result
        // stability requires deterministic accumulation order. A DAG
        // with many parallel paths and non-dyadic weights makes any
        // order wobble visible in the low bits.
        let mut p = Program::<NNReal>::new();
        p.rule(
            Atom::new("T", vec![Term::v(0), Term::v(1)]),
            vec![
                SumProduct::new(vec![Factor::atom("S", vec![Term::v(0), Term::v(1)])]),
                SumProduct::new(vec![
                    Factor::atom("T", vec![Term::v(0), Term::v(2)]),
                    Factor::atom("S", vec![Term::v(2), Term::v(1)]),
                ]),
            ],
        );
        let mut edb = Database::new();
        let mut pairs = vec![];
        for (layer, names) in [("a", "b"), ("b", "c"), ("c", "d")].iter().enumerate() {
            for i in 0..6i64 {
                pairs.push((
                    vec![format!("{}{i}", names.0).as_str().into(), names.1.into()],
                    NNReal::of(0.1 + 0.3 * (layer as f64) + 0.7 * (i as f64) / 11.0),
                ));
                pairs.push((
                    vec![names.0.into(), format!("{}{i}", names.0).as_str().into()],
                    NNReal::of(0.3 / (1.0 + i as f64)),
                ));
            }
        }
        edb.insert("S", Relation::from_pairs(2, pairs));
        let bools = BoolDatabase::new();
        let first = engine_naive_eval(&p, &edb, &bools, 1000)
            .expect("compiles")
            .unwrap();
        for _ in 0..5 {
            let again = engine_naive_eval(&p, &edb, &bools, 1000)
                .expect("compiles")
                .unwrap();
            assert_eq!(first, again, "engine result varied across runs");
        }
    }

    #[test]
    fn empty_program_converges_immediately() {
        let p = Program::<Trop>::new();
        let out = engine_seminaive_eval(&p, &Database::new(), &BoolDatabase::new(), 10)
            .expect("compiles");
        let (db, steps) = out.converged().unwrap();
        assert_eq!(steps, 1);
        assert!(db.iter().next().is_none());
    }
}
