//! Ground datalog programs with negation (Sec. 7.1).
//!
//! A ground rule is `head :- l₁ ∧ … ∧ l_m` where each literal is a ground
//! atom or its negation; multiple rules with the same head are a
//! disjunction. This is the input format of both the alternating-fixpoint
//! solver and the `THREE`-valued datalog° interpretation.

use std::collections::BTreeMap;

/// A literal over ground-atom indexes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Literal {
    /// The atom itself.
    Pos(usize),
    /// Its negation.
    Neg(usize),
}

/// A ground rule `head :- body₁ ∧ body₂ ∧ …`.
#[derive(Clone, Debug)]
pub struct NegRule {
    /// Head atom index.
    pub head: usize,
    /// Conjunctive body.
    pub body: Vec<Literal>,
}

/// A ground normal-logic program.
#[derive(Clone, Debug, Default)]
pub struct NegProgram {
    /// Human-readable atom names (index-aligned).
    pub atom_names: Vec<String>,
    name_index: BTreeMap<String, usize>,
    /// The rules.
    pub rules: Vec<NegRule>,
}

impl NegProgram {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an atom by name.
    pub fn atom(&mut self, name: &str) -> usize {
        if let Some(&ix) = self.name_index.get(name) {
            return ix;
        }
        let ix = self.atom_names.len();
        self.atom_names.push(name.to_string());
        self.name_index.insert(name.to_string(), ix);
        ix
    }

    /// Looks up an atom without interning.
    pub fn atom_index(&self, name: &str) -> Option<usize> {
        self.name_index.get(name).copied()
    }

    /// Adds a rule.
    pub fn rule(&mut self, head: usize, body: Vec<Literal>) {
        self.rules.push(NegRule { head, body });
    }

    /// Number of ground atoms.
    pub fn num_atoms(&self) -> usize {
        self.atom_names.len()
    }

    /// Whether any rule uses negation.
    pub fn has_negation(&self) -> bool {
        self.rules
            .iter()
            .any(|r| r.body.iter().any(|l| matches!(l, Literal::Neg(_))))
    }
}

/// Builds the grounded win-move program (Sec. 7.1) for a graph given as
/// `(node, successors)` adjacency: `W(x) :- ⋁_y E(x,y) ∧ ¬W(y)`.
pub fn win_move_program(adjacency: &[(&str, Vec<&str>)]) -> NegProgram {
    let mut p = NegProgram::new();
    // Intern all nodes first for stable indexing in input order.
    for (node, _) in adjacency {
        p.atom(&format!("W({node})"));
    }
    for (node, succs) in adjacency {
        let head = p.atom(&format!("W({node})"));
        for s in succs {
            let b = p.atom(&format!("W({s})"));
            p.rule(head, vec![Literal::Neg(b)]);
        }
    }
    p
}

/// The Fig. 4 graph as adjacency lists.
pub fn fig4_adjacency() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        ("a", vec!["b", "c"]),
        ("b", vec!["a"]),
        ("c", vec!["d", "e"]),
        ("d", vec!["e"]),
        ("e", vec!["f"]),
        ("f", vec![]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut p = NegProgram::new();
        let a = p.atom("A");
        let b = p.atom("B");
        assert_eq!(p.atom("A"), a);
        assert_ne!(a, b);
        assert_eq!(p.atom_index("B"), Some(b));
        assert_eq!(p.atom_index("C"), None);
    }

    #[test]
    fn win_move_grounding_matches_fig4() {
        let p = win_move_program(&fig4_adjacency());
        assert_eq!(p.num_atoms(), 6);
        // 7 edges -> 7 rules.
        assert_eq!(p.rules.len(), 7);
        assert!(p.has_negation());
        // W(f) has no rule.
        let f = p.atom_index("W(f)").unwrap();
        assert!(p.rules.iter().all(|r| r.head != f));
    }
}
