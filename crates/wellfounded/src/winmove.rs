//! Win-move instances, random graph generation, and the equivalence
//! harness connecting the three solvers (alternating fixpoint, Fitting /
//! `THREE`, game-theoretic oracle).

use crate::alternating::{well_founded, Wf};
use crate::ground::{win_move_program, NegProgram};
use crate::oracle::{solve_game, GameValue};
use crate::three_eval::{fitting_lfp, to_wf};

/// A win-move instance over integer node ids.
#[derive(Clone, Debug)]
pub struct WinMoveInstance {
    /// Number of nodes.
    pub n: usize,
    /// Directed edges.
    pub edges: Vec<(usize, usize)>,
}

impl WinMoveInstance {
    /// Builds the grounded normal program `W(x) :- E(x,y) ∧ ¬W(y)`.
    pub fn program(&self) -> NegProgram {
        let names: Vec<String> = (0..self.n).map(|i| format!("n{i}")).collect();
        let adjacency: Vec<(&str, Vec<&str>)> = (0..self.n)
            .map(|i| {
                (
                    names[i].as_str(),
                    self.edges
                        .iter()
                        .filter(|(u, _)| *u == i)
                        .map(|(_, v)| names[*v].as_str())
                        .collect(),
                )
            })
            .collect();
        win_move_program(&adjacency)
    }

    /// A deterministic pseudo-random instance (xorshift; no external RNG
    /// needed at this layer).
    pub fn random(n: usize, m: usize, seed: u64) -> Self {
        let mut s = seed.max(1);
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut edges = vec![];
        for _ in 0..m {
            let u = (rng() % n as u64) as usize;
            let v = (rng() % n as u64) as usize;
            if u != v && !edges.contains(&(u, v)) {
                edges.push((u, v));
            }
        }
        WinMoveInstance { n, edges }
    }

    /// Solves via the game oracle, mapped into well-founded truth values.
    pub fn oracle_assignment(&self) -> Vec<Wf> {
        solve_game(self.n, &self.edges)
            .into_iter()
            .map(|g| match g {
                GameValue::Won => Wf::True,
                GameValue::Lost => Wf::False,
                GameValue::Draw => Wf::Undef,
            })
            .collect()
    }

    /// All three solvers agree? Returns the common assignment or a
    /// description of the first disagreement.
    pub fn check_equivalence(&self) -> Result<Vec<Wf>, String> {
        let p = self.program();
        // NegProgram interns atoms in node order, so indexes align.
        let wf = well_founded(&p).assignment;
        let (lfp, _) = fitting_lfp(&p);
        let fitting = to_wf(&lfp);
        let oracle = self.oracle_assignment();
        for i in 0..self.n {
            if wf[i] != fitting[i] || wf[i] != oracle[i] {
                return Err(format!(
                    "node {i}: well-founded {:?}, Fitting {:?}, oracle {:?}",
                    wf[i], fitting[i], oracle[i]
                ));
            }
        }
        Ok(wf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_solvers_agree_on_random_graphs() {
        for (n, m, seed) in [
            (5, 8, 1u64),
            (8, 14, 2),
            (10, 20, 3),
            (12, 30, 4),
            (15, 25, 5),
            (20, 60, 6),
        ] {
            let inst = WinMoveInstance::random(n, m, seed);
            inst.check_equivalence()
                .unwrap_or_else(|e| panic!("n={n} m={m} seed={seed}: {e}"));
        }
    }

    #[test]
    fn all_assignments_occur_somewhere() {
        // Across the sample, all three truth values appear (sanity that the
        // equivalence test isn't vacuous).
        let mut seen = [false; 3];
        for seed in 1..30u64 {
            let inst = WinMoveInstance::random(8, 14, seed);
            if let Ok(assign) = inst.check_equivalence() {
                for a in assign {
                    match a {
                        Wf::True => seen[0] = true,
                        Wf::False => seen[1] = true,
                        Wf::Undef => seen[2] = true,
                    }
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "need Won, Lost and Draw cases");
    }
}
