//! An independent game-theoretic oracle for win-move (Sec. 7.1).
//!
//! Retrograde analysis of the pebble game: a position with no moves is
//! *lost* for the player to move; a position with a move to a lost
//! position is *won*; a position all of whose moves lead to won positions
//! is *lost*; everything reached by neither rule is a *draw* (both players
//! can avoid losing forever). The well-founded model of the win-move
//! program must assign true/false/undefined exactly to won/lost/drawn —
//! giving the test suite an oracle that shares no code with either
//! fixpoint computation.

/// Game-theoretic position values.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GameValue {
    /// The player to move wins.
    Won,
    /// The player to move loses.
    Lost,
    /// Neither side can force a win.
    Draw,
}

/// Solves the pebble game on a graph given as adjacency lists over node
/// indexes `0..n`.
pub fn solve_game(n: usize, edges: &[(usize, usize)]) -> Vec<GameValue> {
    let mut succs: Vec<Vec<usize>> = vec![vec![]; n];
    let mut preds: Vec<Vec<usize>> = vec![vec![]; n];
    for &(u, v) in edges {
        succs[u].push(v);
        preds[v].push(u);
    }
    let mut value: Vec<Option<GameValue>> = vec![None; n];
    // Counts of not-yet-decided successors / successors known Won.
    let mut undecided: Vec<usize> = succs.iter().map(|s| s.len()).collect();
    let mut queue: Vec<usize> = vec![];
    for v in 0..n {
        if succs[v].is_empty() {
            value[v] = Some(GameValue::Lost);
            queue.push(v);
        }
    }
    while let Some(v) = queue.pop() {
        match value[v].expect("queued positions are decided") {
            GameValue::Lost => {
                // Predecessors can move here and win.
                for &u in &preds[v] {
                    if value[u].is_none() {
                        value[u] = Some(GameValue::Won);
                        queue.push(u);
                    }
                }
            }
            GameValue::Won => {
                // Predecessors lose this option.
                for &u in &preds[v] {
                    undecided[u] -= 1;
                    if value[u].is_none() && undecided[u] == 0 {
                        value[u] = Some(GameValue::Lost);
                        queue.push(u);
                    }
                }
            }
            GameValue::Draw => unreachable!(),
        }
    }
    value
        .into_iter()
        .map(|v| v.unwrap_or(GameValue::Draw))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_positions() {
        // a=0 b=1 c=2 d=3 e=4 f=5.
        let edges = [(0, 1), (0, 2), (1, 0), (2, 3), (2, 4), (3, 4), (4, 5)];
        let v = solve_game(6, &edges);
        assert_eq!(v[5], GameValue::Lost, "f has no moves");
        assert_eq!(v[4], GameValue::Won, "e moves to f");
        assert_eq!(v[3], GameValue::Lost, "d's only move hits a won pos");
        assert_eq!(v[2], GameValue::Won, "c can move to d");
        assert_eq!(v[0], GameValue::Draw, "a↔b cycle escapes only to Won c");
        assert_eq!(v[1], GameValue::Draw);
    }

    #[test]
    fn simple_chain() {
        // 0→1→2: 2 lost, 1 won, 0 lost.
        let v = solve_game(3, &[(0, 1), (1, 2)]);
        assert_eq!(v, vec![GameValue::Lost, GameValue::Won, GameValue::Lost]);
    }

    #[test]
    fn pure_cycle_is_all_draw() {
        let v = solve_game(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(v.iter().all(|&x| x == GameValue::Draw));
    }
}
