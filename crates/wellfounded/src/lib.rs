//! # dlo-wellfounded — datalog with negation (Sec. 7)
//!
//! Three independent routes to the semantics of the win-move game and of
//! datalog¬ in general:
//!
//! * [`alternating`] — Van Gelder's alternating fixpoint computing the
//!   well-founded model (Sec. 7.1), with the full `J(t)` trace;
//! * [`three_eval`] — Fitting's Kripke–Kleene semantics as datalog° over
//!   the POPS `THREE` with the monotone `not` (Sec. 7.2), including the
//!   `P(a) :- P(a)` discrepancy of Sec. 7.3;
//! * [`oracle`] — a retrograde game solver sharing no code with either
//!   fixpoint computation;
//! * [`winmove`] — instance generation and the three-way equivalence
//!   harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alternating;
pub mod ground;
pub mod oracle;
pub mod three_eval;
pub mod winmove;

pub use alternating::{well_founded, WellFounded, Wf};
pub use ground::{fig4_adjacency, win_move_program, Literal, NegProgram, NegRule};
pub use oracle::{solve_game, GameValue};
pub use three_eval::{apply_ico, fitting_lfp, to_wf, Interp3};
pub use winmove::WinMoveInstance;
