//! Fitting's three-valued semantics as datalog° over `THREE` (Sec. 7.2).
//!
//! A ground normal program becomes a datalog° polynomial system over the
//! POPS `THREE`: each head's polynomial is the `∨`-sum over its rules of
//! the `∧`-product of literals, with `¬A` interpreted by the monotone
//! (w.r.t. the knowledge order) function `not`. Atoms with no rules get
//! the empty sum `0` (false). The least fixpoint under `≤_k` is Fitting's
//! Kripke–Kleene model, which on win-move coincides with the well-founded
//! model (the paper's Sec. 7.2 example) but differs in general
//! (`P(a) :- P(a)`, Sec. 7.3).

use crate::ground::{Literal, NegProgram};
use dlo_pops::{PreSemiring, Three};

/// A three-valued interpretation.
pub type Interp3 = Vec<Three>;

/// One application of the `THREE` immediate consequence operator.
pub fn apply_ico(program: &NegProgram, x: &Interp3) -> Interp3 {
    let mut next = vec![Three::False; program.num_atoms()];
    let mut has_rule = vec![false; program.num_atoms()];
    for rule in &program.rules {
        has_rule[rule.head] = true;
        let mut v = Three::True;
        for l in &rule.body {
            let lit = match l {
                Literal::Pos(a) => x[*a],
                Literal::Neg(a) => x[*a].not(),
            };
            v = v.mul(&lit);
        }
        next[rule.head] = next[rule.head].add(&v);
    }
    // Atoms with no rules keep the empty-sum value 0 (false) — already set.
    let _ = has_rule;
    next
}

/// Computes Fitting's least fixpoint over `THREE` with a full trace
/// (the Sec. 7.2 table). Always converges: `THREE` is finite.
pub fn fitting_lfp(program: &NegProgram) -> (Interp3, Vec<Interp3>) {
    let mut trace = vec![vec![Three::Undef; program.num_atoms()]];
    loop {
        let cur = trace.last().unwrap();
        let next = apply_ico(program, cur);
        if &next == cur {
            return (next, trace);
        }
        trace.push(next);
    }
}

/// Converts the fixpoint to the well-founded-style assignment for
/// comparison.
pub fn to_wf(interp: &Interp3) -> Vec<crate::alternating::Wf> {
    use crate::alternating::Wf;
    interp
        .iter()
        .map(|t| match t {
            Three::True => Wf::True,
            Three::False => Wf::False,
            Three::Undef => Wf::Undef,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alternating::{well_founded, Wf};
    use crate::ground::{fig4_adjacency, win_move_program};

    #[test]
    fn sec_7_2_table() {
        // W(0) = ⊥⊥⊥⊥⊥⊥; W(1) = ⊥⊥⊥⊥⊥0; W(2) = ⊥⊥⊥⊥10;
        // W(3) = ⊥⊥⊥010; W(4) = ⊥⊥1010 = lfp.
        let p = win_move_program(&fig4_adjacency());
        let (lfp, trace) = fitting_lfp(&p);
        let render = |x: &Interp3| -> String {
            ["a", "b", "c", "d", "e", "f"]
                .iter()
                .map(|n| match x[p.atom_index(&format!("W({n})")).unwrap()] {
                    Three::Undef => '⊥',
                    Three::False => '0',
                    Three::True => '1',
                })
                .collect()
        };
        assert_eq!(render(&trace[0]), "⊥⊥⊥⊥⊥⊥");
        assert_eq!(render(&trace[1]), "⊥⊥⊥⊥⊥0");
        assert_eq!(render(&trace[2]), "⊥⊥⊥⊥10");
        assert_eq!(render(&trace[3]), "⊥⊥⊥010");
        assert_eq!(render(&trace[4]), "⊥⊥1010");
        assert_eq!(trace.len(), 5);
        assert_eq!(render(&lfp), "⊥⊥1010");
    }

    #[test]
    fn fitting_equals_well_founded_on_fig4() {
        let p = win_move_program(&fig4_adjacency());
        let (lfp, _) = fitting_lfp(&p);
        let wf = well_founded(&p);
        assert_eq!(to_wf(&lfp), wf.assignment);
    }

    #[test]
    fn sec_7_3_discrepancy() {
        // P(a) :- P(a): minimal model / well-founded gives false, Fitting
        // gives ⊥.
        use crate::ground::NegProgram;
        let mut p = NegProgram::new();
        let a = p.atom("P(a)");
        p.rule(a, vec![Literal::Pos(a)]);
        let (lfp, _) = fitting_lfp(&p);
        assert_eq!(lfp[a], Three::Undef);
        assert_eq!(well_founded(&p).assignment[a], Wf::False);
    }

    #[test]
    fn iterates_ascend_in_knowledge_order() {
        use dlo_pops::Pops;
        let p = win_move_program(&fig4_adjacency());
        let (_, trace) = fitting_lfp(&p);
        for w in trace.windows(2) {
            assert!(w[0].iter().zip(&w[1]).all(|(x, y)| x.leq(y)));
        }
    }
}
