//! The alternating fixpoint of Van Gelder (Sec. 7.1).
//!
//! `J(0) = ∅`; `J(t+1)` is the least fixpoint of the *positive* program
//! obtained by freezing every negative literal `¬A` to the Boolean
//! `¬J(t)(A)`. The even iterates ascend, the odd iterates descend:
//! `J(0) ⊆ J(2) ⊆ … ⊆ L` and `G ⊆ … ⊆ J(3) ⊆ J(1)`. The well-founded
//! model assigns **true** to `L`, **false** to the complement of `G`, and
//! **undefined** to the rest.

use crate::ground::{Literal, NegProgram};

/// A two-valued interpretation (bitset over atom indexes).
pub type Interp = Vec<bool>;

/// The three truth values of the well-founded model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Wf {
    /// In every model (true).
    True,
    /// In no model (false).
    False,
    /// Undefined.
    Undef,
}

/// The well-founded model plus the full alternating trace.
#[derive(Clone, Debug)]
pub struct WellFounded {
    /// Per-atom three-valued assignment.
    pub assignment: Vec<Wf>,
    /// The alternating iterates `J(0), J(1), …` until both limits fixed.
    pub trace: Vec<Interp>,
}

/// Least fixpoint of the positive program with negative literals frozen
/// under `frozen`.
fn positive_lfp(program: &NegProgram, frozen: &Interp) -> Interp {
    let n = program.num_atoms();
    let mut j = vec![false; n];
    loop {
        let mut changed = false;
        for rule in &program.rules {
            if j[rule.head] {
                continue;
            }
            let fires = rule.body.iter().all(|l| match l {
                Literal::Pos(a) => j[*a],
                Literal::Neg(a) => !frozen[*a],
            });
            if fires {
                j[rule.head] = true;
                changed = true;
            }
        }
        if !changed {
            return j;
        }
    }
}

/// Computes the well-founded model by the alternating fixpoint.
pub fn well_founded(program: &NegProgram) -> WellFounded {
    let n = program.num_atoms();
    let mut trace: Vec<Interp> = vec![vec![false; n]];
    loop {
        let prev = trace.last().unwrap().clone();
        let next = positive_lfp(program, &prev);
        trace.push(next);
        let t = trace.len() - 1;
        // The sequence stabilizes when J(t+1) = J(t-1) for two parities,
        // i.e. the last two pairs repeat: J(t) = J(t-2) and J(t-1) = J(t-3).
        if t >= 3 && trace[t] == trace[t - 2] && trace[t - 1] == trace[t - 3] {
            break;
        }
        // Degenerate stabilization (negation-free or immediate fixpoint).
        if t >= 2 && trace[t] == trace[t - 1] && trace[t] == trace[t - 2] {
            break;
        }
    }
    // Even limit L (ascending) and odd limit G (descending).
    let t = trace.len() - 1;
    let (l, g) = if t.is_multiple_of(2) {
        (&trace[t], &trace[t - 1])
    } else {
        (&trace[t - 1], &trace[t])
    };
    let assignment = (0..n)
        .map(|i| {
            if l[i] {
                Wf::True
            } else if !g[i] {
                Wf::False
            } else {
                Wf::Undef
            }
        })
        .collect();
    WellFounded { assignment, trace }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::{fig4_adjacency, win_move_program};

    fn assignment_of(names: &NegProgram, wf: &WellFounded, name: &str) -> Wf {
        wf.assignment[names.atom_index(name).unwrap()]
    }

    #[test]
    fn sec_7_1_win_move_model() {
        // Paper: W(c), W(e) true; W(d), W(f) false; W(a), W(b) undefined.
        let p = win_move_program(&fig4_adjacency());
        let wf = well_founded(&p);
        assert_eq!(assignment_of(&p, &wf, "W(c)"), Wf::True);
        assert_eq!(assignment_of(&p, &wf, "W(e)"), Wf::True);
        assert_eq!(assignment_of(&p, &wf, "W(d)"), Wf::False);
        assert_eq!(assignment_of(&p, &wf, "W(f)"), Wf::False);
        assert_eq!(assignment_of(&p, &wf, "W(a)"), Wf::Undef);
        assert_eq!(assignment_of(&p, &wf, "W(b)"), Wf::Undef);
    }

    #[test]
    fn sec_7_1_alternating_trace_rows() {
        // The paper's table: J(1) = 111110, J(2) = 000010, J(3) = 111010,
        // J(4) = 001010 over (a, b, c, d, e, f).
        let p = win_move_program(&fig4_adjacency());
        let wf = well_founded(&p);
        let row = |t: usize| -> String {
            ["a", "b", "c", "d", "e", "f"]
                .iter()
                .map(|n| {
                    if wf.trace[t][p.atom_index(&format!("W({n})")).unwrap()] {
                        '1'
                    } else {
                        '0'
                    }
                })
                .collect()
        };
        assert_eq!(row(0), "000000");
        assert_eq!(row(1), "111110");
        assert_eq!(row(2), "000010");
        assert_eq!(row(3), "111010");
        assert_eq!(row(4), "001010");
        // J(5) = J(3), J(6) = J(4) — the paper's repetition.
        assert_eq!(wf.trace[5], wf.trace[3]);
        assert_eq!(wf.trace[6], wf.trace[4]);
    }

    #[test]
    fn even_iterates_ascend_odd_descend() {
        let p = win_move_program(&fig4_adjacency());
        let wf = well_founded(&p);
        let leq = |a: &Interp, b: &Interp| a.iter().zip(b).all(|(x, y)| !x || *y);
        for t in (0..wf.trace.len().saturating_sub(2)).step_by(2) {
            assert!(leq(&wf.trace[t], &wf.trace[t + 2]), "even ascend at {t}");
        }
        for t in (1..wf.trace.len().saturating_sub(2)).step_by(2) {
            assert!(leq(&wf.trace[t + 2], &wf.trace[t]), "odd descend at {t}");
        }
    }

    #[test]
    fn negation_free_program_is_its_minimal_model() {
        // P(a) :- P(a). Well-founded: P(a) false (unlike THREE's ⊥ —
        // the Sec. 7.3 discrepancy).
        let mut p = NegProgram::new();
        let a = p.atom("P(a)");
        p.rule(a, vec![Literal::Pos(a)]);
        let wf = well_founded(&p);
        assert_eq!(wf.assignment[a], Wf::False);
    }

    #[test]
    fn acyclic_negation() {
        // Q :- ¬R. R has no rules: R false, Q true.
        let mut p = NegProgram::new();
        let q = p.atom("Q");
        let r = p.atom("R");
        p.rule(q, vec![Literal::Neg(r)]);
        let wf = well_founded(&p);
        assert_eq!(wf.assignment[q], Wf::True);
        assert_eq!(wf.assignment[r], Wf::False);
    }
}
