//! Semilinear sets and Parikh's theorem machinery (Definition 5.8,
//! Theorem 5.9, Proposition 5.13).
//!
//! Parikh's theorem says the Parikh images of a context-free language form
//! a semilinear set; Proposition 5.13 pins the exact linear basis for the
//! univariate grammar of a polynomial `f(x) = a₀ ⊕ a₁x ⊕ … ⊕ a_n xⁿ`:
//!
//! `{Π(Y(T))} = { v₀ + k₁v₁ + … + k_n v_n | k ∈ ℕⁿ }` with
//! `v₀ = (1, 0, …, 0)` and `v_i = (i−1, 0, …, 1ᵢ, …, 0)`.

use crate::formal::{Expo, Sym};

/// A linear set `{ base + k₁·p₁ + … + k_ℓ·p_ℓ | k ∈ ℕ^ℓ }`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LinearSet {
    /// The offset `v₀`.
    pub base: Expo,
    /// The periods `v₁ … v_ℓ`.
    pub periods: Vec<Expo>,
}

impl LinearSet {
    /// Decides membership by bounded search over the period coefficients.
    ///
    /// Correctness: every period has at least one strictly positive entry
    /// (enforced), so coefficients are bounded by the target's degree.
    pub fn contains(&self, target: &Expo) -> bool {
        fn go(base: &Expo, periods: &[Expo], target: &Expo) -> bool {
            // Check base ≤ target pointwise; equal => yes.
            if base == target {
                return true;
            }
            let Some((p, rest)) = periods.split_first() else {
                return false;
            };
            debug_assert!(p.degree() > 0, "periods must be non-zero");
            let mut cur = base.clone();
            loop {
                if go(&cur, rest, target) {
                    return true;
                }
                cur = cur.mul(p);
                // Prune once any exponent exceeds the target.
                if cur.0.iter().any(|(s, k)| *k > target.exponent(*s)) {
                    return false;
                }
            }
        }
        go(&self.base, &self.periods, target)
    }

    /// Enumerates members with period coefficients bounded by `max_k`.
    pub fn members_upto(&self, max_k: u32) -> Vec<Expo> {
        let mut out = vec![];
        fn go(cur: Expo, periods: &[Expo], max_k: u32, out: &mut Vec<Expo>) {
            match periods.split_first() {
                None => out.push(cur),
                Some((p, rest)) => {
                    let mut acc = cur;
                    for _ in 0..=max_k {
                        go(acc.clone(), rest, max_k, out);
                        acc = acc.mul(p);
                    }
                }
            }
        }
        go(self.base.clone(), &self.periods, max_k, &mut out);
        out.sort();
        out.dedup();
        out
    }
}

/// A semilinear set: a finite union of linear sets (Definition 5.8).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SemilinearSet {
    /// The component linear sets.
    pub components: Vec<LinearSet>,
}

impl SemilinearSet {
    /// Membership across components.
    pub fn contains(&self, target: &Expo) -> bool {
        self.components.iter().any(|c| c.contains(target))
    }
}

/// The Proposition 5.13 linear basis for a univariate polynomial: given
/// the constant terminal `a₀` and the remaining monomials as
/// `(terminal aᵢ, degree i)` pairs, the yields' Parikh images are exactly
/// `{ v₀ + Σ kᵢvᵢ }` with `v₀ = e(a₀)` and `vᵢ = (i−1)·e(a₀) + e(aᵢ)`
/// (each `aᵢ`-node consumes one pending leaf and opens `i` new ones, `i−1`
/// of which must eventually close with `a₀`).
pub fn prop_5_13_basis(a0: Sym, monomials: &[(Sym, usize)]) -> LinearSet {
    let base = Expo::of(a0);
    let periods = monomials
        .iter()
        .map(|&(ai, degree)| {
            assert!(degree >= 1, "non-constant monomials only");
            let mut v = Expo::of(ai);
            for _ in 0..degree - 1 {
                v = v.mul(&Expo::of(a0));
            }
            v
        })
        .collect();
    LinearSet { base, periods }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::{trees_upto, Grammar};

    fn univariate_grammar(degrees: &[usize]) -> (Grammar, Vec<Sym>) {
        // One production per degree i: x → a_i x^i. degrees[0] must be 0.
        let mut g = Grammar::new(1);
        let mut syms = vec![];
        for (ix, &d) in degrees.iter().enumerate() {
            let s = Sym(ix as u32);
            syms.push(s);
            g.add(0, s, vec![0; d]);
        }
        (g, syms)
    }

    #[test]
    fn linear_set_membership() {
        let a = Sym(0);
        let b = Sym(1);
        let ls = LinearSet {
            base: Expo::of(a),
            periods: vec![Expo::of(b)],
        };
        assert!(ls.contains(&Expo::of(a)));
        assert!(ls.contains(&Expo::of(a).mul(&Expo::of(b))));
        assert!(!ls.contains(&Expo::of(b)));
        assert!(!ls.contains(&Expo::of(a).mul(&Expo::of(a))));
    }

    #[test]
    fn members_upto_enumerates() {
        let a = Sym(0);
        let b = Sym(1);
        let ls = LinearSet {
            base: Expo::unit(),
            periods: vec![Expo::of(a), Expo::of(b)],
        };
        let members = ls.members_upto(1);
        assert_eq!(members.len(), 4); // {}, a, b, ab
    }

    /// Proposition 5.13, forward direction: every parse-tree yield lies in
    /// the linear set.
    #[test]
    fn prop_5_13_forward() {
        // f(x) = a0 + a1 x + a2 x² + a3 x³.
        let (g, syms) = univariate_grammar(&[0, 1, 2, 3]);
        let basis = prop_5_13_basis(syms[0], &[(syms[1], 1), (syms[2], 2), (syms[3], 3)]);
        let trees = trees_upto(&g, 0, 3, 200_000).unwrap();
        assert!(!trees.is_empty());
        for t in &trees {
            let y = t.yield_expo(&g);
            assert!(basis.contains(&y), "yield {y:?} outside the basis");
        }
    }

    /// Proposition 5.13, backward direction: small members of the linear
    /// set are realized by some parse tree.
    #[test]
    fn prop_5_13_backward() {
        let (g, syms) = univariate_grammar(&[0, 2]); // f(x) = a0 + a1 x²
        let basis = prop_5_13_basis(syms[0], &[(syms[1], 2)]);
        // Members with k ≤ 3: yields of trees of depth ≤ 4 suffice.
        let trees = trees_upto(&g, 0, 5, 2_000_000).unwrap();
        let yields: Vec<Expo> = trees.iter().map(|t| t.yield_expo(&g)).collect();
        for member in basis.members_upto(3) {
            assert!(
                yields.contains(&member),
                "member {member:?} not realized by any tree"
            );
        }
    }

    #[test]
    fn semilinear_union() {
        let a = Sym(0);
        let b = Sym(1);
        let s = SemilinearSet {
            components: vec![
                LinearSet {
                    base: Expo::of(a),
                    periods: vec![],
                },
                LinearSet {
                    base: Expo::of(b),
                    periods: vec![],
                },
            ],
        };
        assert!(s.contains(&Expo::of(a)));
        assert!(s.contains(&Expo::of(b)));
        assert!(!s.contains(&Expo::unit()));
    }
}
