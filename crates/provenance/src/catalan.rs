//! Example 5.5: the Catalan structure of `f(x) = b ⊕ a·x²`.
//!
//! Formally iterating `f` from `0` yields (eq. 33)
//! `f^(q)(0) = Σ_{n<q} C_n aⁿ bⁿ⁺¹ + Σ_{n≥q} λ^(q)_n aⁿ bⁿ⁺¹` where
//! `C_n = (2n choose n)/(n+1)` is the `n`-th Catalan number — the
//! stabilized coefficients count binary parse trees. This module computes
//! both sides independently and exposes the coefficient stream used by the
//! reproduction harness (experiment E9).

#[cfg(test)]
use crate::formal::formal_iterates;
use crate::formal::{formal_iterates_truncated, Expo, FExpr, FormalPoly, Sym};

/// The terminal `a` of Example 5.5.
pub const SYM_A: Sym = Sym(0);
/// The terminal `b` of Example 5.5.
pub const SYM_B: Sym = Sym(1);

/// The system `f(x) = b + a·x²` as a formal expression.
pub fn example_5_5_system() -> Vec<FExpr> {
    vec![FExpr::Add(vec![
        FExpr::sym(SYM_B),
        FExpr::Mul(vec![FExpr::sym(SYM_A), FExpr::Var(0), FExpr::Var(0)]),
    ])]
}

/// The exponent vector of `aⁿ bⁿ⁺¹`.
pub fn expo_anbn1(n: u32) -> Expo {
    let mut e = Expo::unit();
    for _ in 0..n {
        e = e.mul(&Expo::of(SYM_A));
    }
    for _ in 0..=n {
        e = e.mul(&Expo::of(SYM_B));
    }
    e
}

/// The `n`-th Catalan number, computed by the Segner recurrence
/// `C_{n+1} = Σ_i C_i C_{n-i}` (independent of the iteration machinery).
pub fn catalan(n: usize) -> u128 {
    let mut c = vec![0u128; n + 1];
    c[0] = 1;
    for m in 1..=n {
        let mut acc: u128 = 0;
        for i in 0..m {
            acc = acc
                .checked_add(c[i].checked_mul(c[m - 1 - i]).expect("overflow"))
                .expect("overflow");
        }
        c[m] = acc;
    }
    c[n]
}

/// The coefficient `λ^(q)_n` of `aⁿ bⁿ⁺¹` in the formal iterate `f^(q)(0)`
/// (eq. 33): returns the coefficients for `n = 0..max_n` at iteration `q`.
pub fn iterate_coefficients(q: usize, max_n: u32) -> Vec<u128> {
    // Truncate above the degree of aⁿbⁿ⁺¹ for n = max_n: multiplication
    // never lowers degrees, so the retained coefficients are exact.
    let its = formal_iterates_truncated(&example_5_5_system(), q, 2 * max_n + 1);
    let fq: &FormalPoly = &its[q][0];
    (0..=max_n).map(|n| fq.coeff(&expo_anbn1(n))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalan_numbers() {
        let expected: [u128; 10] = [1, 1, 2, 5, 14, 42, 132, 429, 1430, 4862];
        for (n, &c) in expected.iter().enumerate() {
            assert_eq!(catalan(n), c);
        }
    }

    #[test]
    fn example_5_5_first_iterates() {
        // f^(2)(0) = b + a b² ; f^(3)(0) = b + ab² + 2a²b³ + a³b⁴.
        let c2 = iterate_coefficients(2, 3);
        assert_eq!(c2, vec![1, 1, 0, 0]);
        let c3 = iterate_coefficients(3, 3);
        assert_eq!(c3, vec![1, 1, 2, 1]);
        // f^(4)(0) = b + ab² + 2a²b³ + 5a³b⁴ + … (paper's expansion).
        let c4 = iterate_coefficients(4, 3);
        assert_eq!(&c4[..4], &[1, 1, 2, 5]);
    }

    #[test]
    fn eq_33_coefficients_stabilize_to_catalan() {
        // For q ≥ n + 1 the coefficient of aⁿ bⁿ⁺¹ equals C_n.
        let max_n = 5u32;
        let q = (max_n + 2) as usize;
        let coeffs = iterate_coefficients(q, max_n);
        for (n, c) in coeffs.iter().enumerate() {
            assert_eq!(*c, catalan(n), "coefficient of a^{n} b^{}", n + 1);
        }
    }

    #[test]
    fn every_monomial_has_catalan_shape() {
        // All monomials of f^(q)(0) are aⁿ bⁿ⁺¹ (Prop. 5.13 for this f).
        let its = formal_iterates(&example_5_5_system(), 5);
        for (v, _) in its[5][0].terms() {
            let na = v.exponent(SYM_A);
            let nb = v.exponent(SYM_B);
            assert_eq!(nb, na + 1, "monomial a^{na} b^{nb}");
        }
    }

    #[test]
    fn tree_counts_match_coefficients() {
        // The coefficient λ^(q)_v counts parse trees (eq. 44): compare the
        // grammar enumeration with the formal expansion for q = 4.
        use crate::grammar::{yields_sum, Grammar};
        let mut g = Grammar::new(1);
        g.add(0, SYM_A, vec![0, 0]);
        g.add(0, SYM_B, vec![]);
        let by_trees = yields_sum(&g, 0, 4, 1_000_000).unwrap();
        let by_iteration = &formal_iterates(&example_5_5_system(), 4)[4][0];
        assert_eq!(&by_trees, by_iteration);
    }
}
