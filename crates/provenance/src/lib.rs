//! # dlo-provenance — the free semiring ℕ\[Σ\] and the grammar substrate
//!
//! The machinery behind the convergence proofs of Sec. 5.2–5.3, built as a
//! computational substrate so the proofs' combinatorial identities can be
//! *checked* rather than trusted:
//!
//! * [`formal`] — formal multivariate polynomials over ℕ\[Σ\] and symbolic
//!   Kleene iteration `f^(q)(0)`;
//! * [`grammar`] — the CFG of eq. (38), depth-bounded parse-tree
//!   enumeration, yields, and an executable Lemma 5.6 checker;
//! * [`parikh`] — (semi)linear sets (Definition 5.8), the Proposition 5.13
//!   basis for univariate polynomials, membership decision;
//! * [`catalan`](mod@catalan) — Example 5.5: the `f(x) = b ⊕ a·x²` expansion whose
//!   stabilized coefficients are the Catalan numbers (eq. 33/35).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalan;
pub mod formal;
pub mod grammar;
pub mod parikh;

pub use catalan::{catalan, iterate_coefficients};
pub use formal::{formal_iterates, Expo, FExpr, FormalPoly, Sym};
pub use grammar::{check_lemma_5_6, trees_upto, yields_sum, Grammar, Production, Tree};
pub use parikh::{prop_5_13_basis, LinearSet, SemilinearSet};
