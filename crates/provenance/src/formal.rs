//! The free commutative semiring `ℕ[Σ]` — formal multivariate polynomials
//! with natural-number coefficients (the expansions of Sec. 5.2).
//!
//! Iterating a polynomial system symbolically in `ℕ[Σ]` produces exactly
//! the expansions `f^(q)(0)` of eq. (33)/(43): a map from exponent vectors
//! (Parikh images of parse-tree yields) to counts `λ^(q)_v` (eq. 44).
//! Coefficients use checked `u128` arithmetic — iteration depths in the
//! experiments keep them comfortably inside range, and overflow panics
//! rather than corrupting counts.

use std::collections::BTreeMap;
use std::fmt;

/// A terminal symbol (coefficient name) of the free semiring.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Sym(pub u32);

/// An exponent vector over `Σ` (the Parikh image of a monomial), sparse.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Expo(pub BTreeMap<Sym, u32>);

impl Expo {
    /// The empty exponent (the monomial `1`).
    pub fn unit() -> Expo {
        Expo(BTreeMap::new())
    }

    /// A single symbol.
    pub fn of(s: Sym) -> Expo {
        Expo(std::iter::once((s, 1)).collect())
    }

    /// Pointwise sum (monomial product).
    pub fn mul(&self, rhs: &Expo) -> Expo {
        let mut out = self.0.clone();
        for (s, k) in &rhs.0 {
            *out.entry(*s).or_insert(0) += k;
        }
        Expo(out)
    }

    /// Total degree `‖v‖₁`.
    pub fn degree(&self) -> u32 {
        self.0.values().sum()
    }

    /// The exponent of a symbol.
    pub fn exponent(&self, s: Sym) -> u32 {
        self.0.get(&s).copied().unwrap_or(0)
    }
}

/// A formal polynomial: a finite map `exponent vector ↦ ℕ coefficient`.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct FormalPoly {
    terms: BTreeMap<Expo, u128>,
}

impl FormalPoly {
    /// The zero polynomial.
    pub fn zero() -> FormalPoly {
        FormalPoly {
            terms: BTreeMap::new(),
        }
    }

    /// The unit polynomial `1`.
    pub fn one() -> FormalPoly {
        FormalPoly::monomial(Expo::unit(), 1)
    }

    /// A single symbol as a polynomial.
    pub fn sym(s: Sym) -> FormalPoly {
        FormalPoly::monomial(Expo::of(s), 1)
    }

    /// `c · x^v`.
    pub fn monomial(v: Expo, c: u128) -> FormalPoly {
        let mut terms = BTreeMap::new();
        if c != 0 {
            terms.insert(v, c);
        }
        FormalPoly { terms }
    }

    /// Polynomial sum.
    pub fn add(&self, rhs: &FormalPoly) -> FormalPoly {
        let mut out = self.terms.clone();
        for (v, c) in &rhs.terms {
            let slot = out.entry(v.clone()).or_insert(0);
            *slot = slot.checked_add(*c).expect("ℕ[Σ] coefficient overflow");
        }
        FormalPoly { terms: out }
    }

    /// Polynomial product.
    pub fn mul(&self, rhs: &FormalPoly) -> FormalPoly {
        let mut out: BTreeMap<Expo, u128> = BTreeMap::new();
        for (v1, c1) in &self.terms {
            for (v2, c2) in &rhs.terms {
                let v = v1.mul(v2);
                let c = c1.checked_mul(*c2).expect("ℕ[Σ] coefficient overflow");
                let slot = out.entry(v).or_insert(0);
                *slot = slot.checked_add(c).expect("ℕ[Σ] coefficient overflow");
            }
        }
        FormalPoly { terms: out }
    }

    /// The coefficient of an exponent vector (`λ_v` in eq. 43/44).
    pub fn coeff(&self, v: &Expo) -> u128 {
        self.terms.get(v).copied().unwrap_or(0)
    }

    /// Iterates over `(exponent, coefficient)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (&Expo, &u128)> {
        self.terms.iter()
    }

    /// Number of monomials.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether this is the zero polynomial.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Maximum total degree.
    pub fn degree(&self) -> u32 {
        self.terms.keys().map(|v| v.degree()).max().unwrap_or(0)
    }

    /// Drops monomials of total degree greater than `max_degree`.
    pub fn truncate_degree(mut self, max_degree: u32) -> FormalPoly {
        if max_degree == u32::MAX {
            return self;
        }
        self.terms.retain(|v, _| v.degree() <= max_degree);
        self
    }
}

impl fmt::Debug for FormalPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        let parts: Vec<String> = self
            .terms
            .iter()
            .map(|(v, c)| {
                let mono: Vec<String> =
                    v.0.iter()
                        .map(|(s, k)| {
                            if *k == 1 {
                                format!("s{}", s.0)
                            } else {
                                format!("s{}^{}", s.0, k)
                            }
                        })
                        .collect();
                let m = if mono.is_empty() {
                    "1".to_string()
                } else {
                    mono.join("·")
                };
                if *c == 1 {
                    m
                } else {
                    format!("{c}·{m}")
                }
            })
            .collect();
        write!(f, "{}", parts.join(" + "))
    }
}

/// A system of formal polynomial functions in `n` variables: each
/// component is built from variables (indices) and `ℕ[Σ]` constants.
#[derive(Clone, Debug)]
pub enum FExpr {
    /// A variable reference `x_i`.
    Var(usize),
    /// An `ℕ[Σ]` constant.
    Const(FormalPoly),
    /// Sum of sub-expressions.
    Add(Vec<FExpr>),
    /// Product of sub-expressions.
    Mul(Vec<FExpr>),
}

impl FExpr {
    /// A single-symbol constant.
    pub fn sym(s: Sym) -> FExpr {
        FExpr::Const(FormalPoly::sym(s))
    }

    /// Evaluates at a vector of formal polynomials.
    pub fn eval(&self, x: &[FormalPoly]) -> FormalPoly {
        match self {
            FExpr::Var(i) => x[*i].clone(),
            FExpr::Const(c) => c.clone(),
            FExpr::Add(es) => es
                .iter()
                .fold(FormalPoly::zero(), |acc, e| acc.add(&e.eval(x))),
            FExpr::Mul(es) => es
                .iter()
                .fold(FormalPoly::one(), |acc, e| acc.mul(&e.eval(x))),
        }
    }
}

/// Computes the formal iterates `f^(0)(0), …, f^(q)(0)` of a system
/// (Sec. 5.2): `iterates[t][i]` is the `i`-th component of `f^(t)(0)`.
pub fn formal_iterates(system: &[FExpr], q: usize) -> Vec<Vec<FormalPoly>> {
    formal_iterates_truncated(system, q, u32::MAX)
}

/// [`formal_iterates`] with monomials of total degree `> max_degree`
/// dropped after every step. Multiplication in `ℕ[Σ]` never decreases
/// degrees, so coefficients of monomials with degree ≤ `max_degree` are
/// exact — this keeps deep iterations (whose high-degree tails count
/// doubly-exponentially many parse trees) inside `u128`.
pub fn formal_iterates_truncated(
    system: &[FExpr],
    q: usize,
    max_degree: u32,
) -> Vec<Vec<FormalPoly>> {
    let n = system.len();
    let mut out = vec![vec![FormalPoly::zero(); n]];
    for _ in 0..q {
        let cur = out.last().unwrap();
        let next: Vec<FormalPoly> = system
            .iter()
            .map(|f| f.eval(cur).truncate_degree(max_degree))
            .collect();
        out.push(next);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Sym = Sym(0);
    const B: Sym = Sym(1);

    #[test]
    fn ring_operations() {
        // (a + b)² = a² + 2ab + b².
        let ab = FormalPoly::sym(A).add(&FormalPoly::sym(B));
        let sq = ab.mul(&ab);
        assert_eq!(sq.coeff(&Expo::of(A).mul(&Expo::of(A))), 1);
        assert_eq!(sq.coeff(&Expo::of(A).mul(&Expo::of(B))), 2);
        assert_eq!(sq.len(), 3);
    }

    #[test]
    fn zero_and_one() {
        let p = FormalPoly::sym(A);
        assert_eq!(p.add(&FormalPoly::zero()), p);
        assert_eq!(p.mul(&FormalPoly::one()), p);
        assert!(p.mul(&FormalPoly::zero()).is_empty());
    }

    #[test]
    fn expo_degree_and_mul() {
        let v = Expo::of(A).mul(&Expo::of(A)).mul(&Expo::of(B));
        assert_eq!(v.degree(), 3);
        assert_eq!(v.exponent(A), 2);
        assert_eq!(v.exponent(B), 1);
    }

    #[test]
    fn formal_iterates_of_linear_system() {
        // f(x) = 1 + a·x: f^(q)(0) = 1 + a + a² + … + a^{q-1} = a^(q-1).
        let system = vec![FExpr::Add(vec![
            FExpr::Const(FormalPoly::one()),
            FExpr::Mul(vec![FExpr::sym(A), FExpr::Var(0)]),
        ])];
        let its = formal_iterates(&system, 4);
        let f4 = &its[4][0];
        for k in 0..4u32 {
            let mut v = Expo::unit();
            for _ in 0..k {
                v = v.mul(&Expo::of(A));
            }
            assert_eq!(f4.coeff(&v), 1, "coefficient of a^{k}");
        }
        assert_eq!(f4.len(), 4);
    }

    #[test]
    fn debug_rendering() {
        let p = FormalPoly::sym(A)
            .mul(&FormalPoly::sym(A))
            .add(&FormalPoly::one())
            .add(&FormalPoly::one());
        assert_eq!(format!("{p:?}"), "2·1 + s0^2");
    }
}
