//! Context-free grammars from polynomial systems (Sec. 5.2, eq. 38) and
//! depth-bounded parse-tree enumeration (Lemma 5.6).
//!
//! Every monomial `a_{i,v} · x^v` of component `f_i` becomes a production
//! `x_i → a_{i,v} x₁^{v₁} … x_N^{v_N}` whose terminal `a_{i,v}` is unique
//! to the production. The yield of a parse tree is the (commutative)
//! product of its leaf terminals; Lemma 5.6 states
//! `(f^(q)(0))_i = Σ { Y(T) | T an x_i-rooted tree of depth ≤ q }`,
//! which [`yields_sum`] verifies by *explicit enumeration* against the
//! formal iterates of [`crate::formal`].

use crate::formal::{Expo, FExpr, FormalPoly, Sym};

/// A production `x_var → terminal · x_{children[0]} x_{children[1]} …`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Production {
    /// The unique terminal symbol (the monomial's coefficient).
    pub terminal: Sym,
    /// The variables on the right-hand side (with multiplicity).
    pub children: Vec<usize>,
}

/// A context-free grammar in the paper's normal form: one nonterminal per
/// POPS variable, one production per monomial.
#[derive(Clone, Debug, Default)]
pub struct Grammar {
    /// `prods[i]` are the productions of nonterminal `x_i`.
    pub prods: Vec<Vec<Production>>,
}

impl Grammar {
    /// A grammar with `n` nonterminals and no productions.
    pub fn new(n: usize) -> Grammar {
        Grammar {
            prods: vec![vec![]; n],
        }
    }

    /// Adds a production, returning its terminal symbol.
    pub fn add(&mut self, var: usize, terminal: Sym, children: Vec<usize>) {
        self.prods[var].push(Production { terminal, children });
    }

    /// Number of nonterminals.
    pub fn num_vars(&self) -> usize {
        self.prods.len()
    }

    /// The corresponding polynomial system over `ℕ[Σ]` (eq. 37): each
    /// production contributes the monomial `terminal · Π children`.
    pub fn to_formal_system(&self) -> Vec<FExpr> {
        self.prods
            .iter()
            .map(|prods| {
                FExpr::Add(
                    prods
                        .iter()
                        .map(|p| {
                            let mut factors = vec![FExpr::sym(p.terminal)];
                            factors.extend(p.children.iter().map(|&c| FExpr::Var(c)));
                            FExpr::Mul(factors)
                        })
                        .collect(),
                )
            })
            .collect()
    }
}

/// A parse tree: a production choice plus subtrees for each child.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tree {
    /// The root nonterminal.
    pub var: usize,
    /// Index into `grammar.prods[var]`.
    pub prod: usize,
    /// Subtrees, aligned with the production's children.
    pub children: Vec<Tree>,
}

impl Tree {
    /// Tree depth: a childless node has depth 1.
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(|c| c.depth()).max().unwrap_or(0)
    }

    /// The Parikh image of the yield `Y(T)` (Sec. 5.2): the multiset of
    /// leaf terminals.
    pub fn yield_expo(&self, g: &Grammar) -> Expo {
        let mut e = Expo::of(g.prods[self.var][self.prod].terminal);
        for c in &self.children {
            e = e.mul(&c.yield_expo(g));
        }
        e
    }
}

/// Enumerates all parse trees rooted at `var` with depth ≤ `depth`.
///
/// `budget` caps the total number of trees produced (enumeration is
/// exponential); `None` is returned if the budget is exceeded.
pub fn trees_upto(g: &Grammar, var: usize, depth: usize, budget: usize) -> Option<Vec<Tree>> {
    fn go(
        g: &Grammar,
        var: usize,
        depth: usize,
        budget: usize,
        count: &mut usize,
    ) -> Option<Vec<Tree>> {
        if depth == 0 {
            return Some(vec![]);
        }
        let mut out = vec![];
        for (pi, prod) in g.prods[var].iter().enumerate() {
            // Cartesian product of child tree lists.
            let mut combos: Vec<Vec<Tree>> = vec![vec![]];
            for &child in &prod.children {
                let sub = go(g, child, depth - 1, budget, count)?;
                let mut next = Vec::new();
                for combo in &combos {
                    for t in &sub {
                        let mut c = combo.clone();
                        c.push(t.clone());
                        next.push(c);
                    }
                }
                combos = next;
                if combos.is_empty() {
                    break;
                }
            }
            for children in combos {
                *count += 1;
                if *count > budget {
                    return None;
                }
                out.push(Tree {
                    var,
                    prod: pi,
                    children,
                });
            }
        }
        Some(out)
    }
    let mut count = 0;
    go(g, var, depth, budget, &mut count)
}

/// `Σ { Y(T) | T ∈ T_i^q }` as a formal polynomial — the right-hand side
/// of Lemma 5.6, computed by explicit tree enumeration.
pub fn yields_sum(g: &Grammar, var: usize, depth: usize, budget: usize) -> Option<FormalPoly> {
    let trees = trees_upto(g, var, depth, budget)?;
    let mut acc = FormalPoly::zero();
    for t in &trees {
        acc = acc.add(&FormalPoly::monomial(t.yield_expo(g), 1));
    }
    Some(acc)
}

/// Checks Lemma 5.6 on a grammar: for all components and all `q ≤ max_q`,
/// the formal iterate equals the enumerated yield sum. Returns the first
/// discrepancy as `(var, q)`.
pub fn check_lemma_5_6(g: &Grammar, max_q: usize, budget: usize) -> Result<(), (usize, usize)> {
    let system = g.to_formal_system();
    let iterates = crate::formal::formal_iterates(&system, max_q);
    for (q, row) in iterates.iter().enumerate() {
        for (i, lhs) in row.iter().enumerate() {
            let rhs = yields_sum(g, i, q, budget).expect("budget exceeded");
            if lhs != &rhs {
                return Err((i, q));
            }
        }
    }
    Ok(())
}

/// The grammar of Example 5.7 / Fig. 3:
/// `x → a x y | b y | c` and `y → u x y | v x | w`, with
/// terminals `a,b,c,u,v,w = s0..s5`; returns `(grammar, [a,b,c,u,v,w])`.
pub fn example_5_7() -> (Grammar, [Sym; 6]) {
    let syms = [Sym(0), Sym(1), Sym(2), Sym(3), Sym(4), Sym(5)];
    let [a, b, c, u, v, w] = syms;
    let mut g = Grammar::new(2);
    g.add(0, a, vec![0, 1]);
    g.add(0, b, vec![1]);
    g.add(0, c, vec![]);
    g.add(1, u, vec![0, 1]);
    g.add(1, v, vec![0]);
    g.add(1, w, vec![]);
    (g, syms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_5_7_depth_2_yields() {
        let (g, [a, b, c, _u, _v, w]) = example_5_7();
        // (f^(2)(0))₁ = a·c·w + b·w + c (Sec. 5.2).
        let sum = yields_sum(&g, 0, 2, 10_000).unwrap();
        let acw = Expo::of(a).mul(&Expo::of(c)).mul(&Expo::of(w));
        let bw = Expo::of(b).mul(&Expo::of(w));
        assert_eq!(sum.coeff(&acw), 1);
        assert_eq!(sum.coeff(&bw), 1);
        assert_eq!(sum.coeff(&Expo::of(c)), 1);
        assert_eq!(sum.len(), 3);
        // And (f^(1)(0))₁ = c.
        let sum1 = yields_sum(&g, 0, 1, 100).unwrap();
        assert_eq!(sum1.len(), 1);
        assert_eq!(sum1.coeff(&Expo::of(c)), 1);
    }

    #[test]
    fn lemma_5_6_on_example_5_7() {
        let (g, _) = example_5_7();
        check_lemma_5_6(&g, 3, 2_000_000).expect("Lemma 5.6 must hold");
    }

    #[test]
    fn lemma_5_6_on_quadratic_univariate() {
        // f(x) = b + a x² (Example 5.5): x → a x x | b.
        let mut g = Grammar::new(1);
        g.add(0, Sym(0), vec![0, 0]);
        g.add(0, Sym(1), vec![]);
        check_lemma_5_6(&g, 4, 2_000_000).expect("Lemma 5.6 must hold");
    }

    #[test]
    fn tree_depth_and_yield() {
        let (g, [_a, b, _c, _u, _v, w]) = example_5_7();
        // x → b y, y → w.
        let t = Tree {
            var: 0,
            prod: 1,
            children: vec![Tree {
                var: 1,
                prod: 2,
                children: vec![],
            }],
        };
        assert_eq!(t.depth(), 2);
        assert_eq!(t.yield_expo(&g), Expo::of(b).mul(&Expo::of(w)));
    }

    #[test]
    fn budget_exceeded_returns_none() {
        let (g, _) = example_5_7();
        assert!(trees_upto(&g, 0, 5, 3).is_none());
    }

    #[test]
    fn depth_zero_has_no_trees() {
        let (g, _) = example_5_7();
        assert_eq!(trees_upto(&g, 0, 0, 10).unwrap().len(), 0);
        assert!(yields_sum(&g, 0, 0, 10).unwrap().is_empty());
    }
}
