//! # dlo-fixpoint — least fixpoints of monotone functions over posets
//!
//! Implements Sec. 3 of *Convergence of Datalog over (Pre-) Semirings*:
//!
//! * [`iterate`] — capped naïve (Kleene) iteration `⊥, f(⊥), f²(⊥), …`
//!   with divergence as a first-class outcome, traces for regenerating the
//!   paper's tables, and function stability indexes (Definition 3.1);
//! * [`nested`] — the nested fixpoint schedules of Lemmas 3.2/3.3 (Fig. 1);
//! * [`bounds`] — the quantitative bounds: `E_n(p₁..p_n)` of Theorem 3.4,
//!   the `Σ(p+2)^i` / `Σ(p+1)^i` bounds of Theorem 5.12, and the
//!   `(p+1)N − 1` matrix bound of Lemma 5.20;
//! * [`acc`] — the ascending chain condition on finite posets and the
//!   height bound it induces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acc;
pub mod bounds;
pub mod iterate;
pub mod nested;

pub use bounds::{
    clone_bound, general_bound, linear_bound, trop_p_matrix_bound, zero_stable_bound,
};
pub use iterate::{function_stability_index, naive_lfp, naive_lfp_trace, Outcome};
pub use nested::{nested_lfp, product_lfp, Nested};
