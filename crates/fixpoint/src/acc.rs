//! The ascending chain condition (ACC) on finite posets (Sec. 3).
//!
//! ACC — no infinite strictly ascending chains — is the classic *sufficient*
//! condition for stability: if a poset satisfies ACC, every monotone
//! function on it is stable. The paper stresses it is **not necessary**
//! (`Trop⁺` is 0-stable yet has the infinite ascending chain
//! `1 ⊏ 1/2 ⊏ 1/3 ⊏ …`). For *finite* posets ACC is automatic and the
//! height of the poset bounds every stability index; this module computes
//! heights and exposes that bound for tests.

/// The height of a finite poset: the number of *edges* in a longest
/// strictly ascending chain (so a single antichain has height 0).
///
/// `leq` must be a partial order on `elements`. Runs in `O(n²)` by
/// memoized longest-path search on the strict-order DAG.
pub fn poset_height<T: Eq>(elements: &[T], leq: impl Fn(&T, &T) -> bool) -> usize {
    let n = elements.len();
    let mut memo: Vec<Option<usize>> = vec![None; n];

    fn go<T: Eq>(
        i: usize,
        elements: &[T],
        leq: &impl Fn(&T, &T) -> bool,
        memo: &mut Vec<Option<usize>>,
    ) -> usize {
        if let Some(h) = memo[i] {
            return h;
        }
        let mut best = 0;
        for j in 0..elements.len() {
            if i != j && leq(&elements[i], &elements[j]) && elements[i] != elements[j] {
                best = best.max(1 + go(j, elements, leq, memo));
            }
        }
        memo[i] = Some(best);
        best
    }

    (0..n)
        .map(|i| go(i, elements, &leq, &mut memo))
        .max()
        .unwrap_or(0)
}

/// On a finite poset, the stability index of any monotone function starting
/// from the minimum is at most the poset height: each non-fixpoint step
/// climbs strictly. This helper just packages the bound for assertions.
pub fn finite_poset_stability_bound<T: Eq>(elements: &[T], leq: impl Fn(&T, &T) -> bool) -> usize {
    poset_height(elements, leq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_height() {
        let chain: Vec<u32> = (0..5).collect();
        assert_eq!(poset_height(&chain, |a, b| a <= b), 4);
    }

    #[test]
    fn antichain_height_zero() {
        let anti = [1u32, 2, 3];
        assert_eq!(poset_height(&anti, |a, b| a == b), 0);
    }

    #[test]
    fn diamond_height() {
        // ⊥ < a, b < ⊤ encoded as bitsets ordered by inclusion.
        let elems = [0b00u8, 0b01, 0b10, 0b11];
        assert_eq!(poset_height(&elems, |a, b| a & b == *a), 2);
    }

    #[test]
    fn monotone_function_index_bounded_by_height() {
        use dlo_pops::{FiniteCarrier, Four, Pops, PreSemiring};
        let carrier = Four::carrier();
        let height = poset_height(&carrier, |a, b| a.leq(b));
        assert_eq!(height, 2);
        // Any monotone f on FOUR: e.g. f(x) = x ∨ 0 then saturating to ⊤ via
        // add with knowledge... use f(x) = x ⊕ x' chains; simplest: iterate
        // a handful of monotone functions and check index ≤ height.
        type MonotoneFn = Box<dyn Fn(&Four) -> Four>;
        let fns: Vec<MonotoneFn> = vec![
            Box::new(|x: &Four| x.add(&Four::False)),
            Box::new(|x: &Four| x.add(&Four::True)),
            Box::new(|x: &Four| x.mul(&Four::True)),
        ];
        for f in fns {
            let idx =
                crate::iterate::function_stability_index(|x| f(x), Four::bottom(), 10).unwrap();
            assert!(idx <= height);
        }
    }
}
