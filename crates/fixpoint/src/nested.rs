//! Nested fixpoint schedules (Lemmas 3.2 and 3.3, Fig. 1).
//!
//! For a vector function `h = (f, g)` on a product poset `L₁ × L₂`, the
//! least fixpoint can be computed by nesting: find, for each candidate `x`,
//! the inner fixpoint `ȳ(x) = lfp(y ↦ g(x, y))`, then iterate
//! `F(x) = f(x, ȳ(x))` to its fixpoint `x̄`, and finish with `ȳ = ȳ(x̄)`.
//! Lemma 3.3 shows `(x̄, ȳ) = lfp(h)` and bounds the stability index of `h`
//! by `pq + p + q` (and by `pq + max(p, q)` under the symmetric hypotheses).

use crate::iterate::{naive_lfp, Outcome};

/// Result of a nested fixpoint computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nested<X, Y> {
    /// The first component `x̄ = F^(p)(⊥₁)`.
    pub x: X,
    /// The second component `ȳ = g_x̄^(q)(⊥₂)`.
    pub y: Y,
    /// Steps used by the outer iteration (`p` in Lemma 3.3).
    pub outer_steps: usize,
    /// Steps used by the final inner iteration (`q` in Lemma 3.3).
    pub inner_steps: usize,
}

/// Computes `lfp(h)` for `h = (f, g)` by the Lemma 3.3 schedule.
///
/// `cap` bounds every inner and outer iteration separately; returns `None`
/// if any of them diverges.
pub fn nested_lfp<X, Y>(
    f: impl Fn(&X, &Y) -> X,
    g: impl Fn(&X, &Y) -> Y,
    bottom_x: X,
    bottom_y: Y,
    cap: usize,
) -> Option<Nested<X, Y>>
where
    X: Clone + Eq,
    Y: Clone + Eq,
{
    // Inner solver: ȳ(x) = lfp(y ↦ g(x, y)).
    let inner = |x: &X| -> Option<(Y, usize)> {
        naive_lfp(|y: &Y| g(x, y), bottom_y.clone(), cap).converged()
    };
    // Outer iteration on F(x) = f(x, ȳ(x)).
    let mut x = bottom_x;
    let mut outer_steps = 0;
    loop {
        let (ybar, _) = inner(&x)?;
        let next = f(&x, &ybar);
        if next == x {
            let (y, inner_steps) = inner(&x)?;
            return Some(Nested {
                x,
                y,
                outer_steps,
                inner_steps,
            });
        }
        if outer_steps >= cap {
            return None;
        }
        x = next;
        outer_steps += 1;
    }
}

/// Computes `lfp(h)` directly on the product (the naive schedule), returning
/// the pair and the product stability index. Used to validate the nested
/// schedule and Lemma 3.3's step bounds.
pub fn product_lfp<X, Y>(
    f: impl Fn(&X, &Y) -> X,
    g: impl Fn(&X, &Y) -> Y,
    bottom_x: X,
    bottom_y: Y,
    cap: usize,
) -> Outcome<(X, Y)>
where
    X: Clone + Eq,
    Y: Clone + Eq,
{
    naive_lfp(
        |(x, y): &(X, Y)| (f(x, y), g(x, y)),
        (bottom_x, bottom_y),
        cap,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Saturating counters: f depends on both args, g on both args.
    /// f(x,y) = min(y, x+1) chained to 8; g(x,y) = min(x, y+1) chained to 8.
    #[test]
    fn nested_equals_product_on_coupled_counters() {
        let f = |x: &u32, y: &u32| (*x + 1).min(*y + 1).min(8);
        let g = |x: &u32, y: &u32| (*x + 2).min(*y + 1).min(6);
        let nested = nested_lfp(f, g, 0u32, 0u32, 1000).expect("converges");
        let direct = product_lfp(f, g, 0u32, 0u32, 1000).unwrap();
        assert_eq!((nested.x, nested.y), direct);
    }

    /// Lemma 3.2: g independent of x -> h is (p+q)-stable.
    #[test]
    fn lemma_3_2_bound() {
        // g(y) = min(y+1, q) with q = 4; f(x,y) = min(x+1, y) caps at 4, so
        // with ȳ = 4, F(x) = min(x+1, 4): p = 4. Bound: p + q = 8.
        let q = 4u32;
        let f = |x: &u32, y: &u32| (*x + 1).min(*y);
        let g = move |_x: &u32, y: &u32| (*y + 1).min(q);
        let nested = nested_lfp(f, g, 0, 0, 100).unwrap();
        assert_eq!((nested.x, nested.y), (4, 4));
        let direct = naive_lfp(|(x, y): &(u32, u32)| (f(x, y), g(x, y)), (0u32, 0u32), 100);
        match direct {
            Outcome::Converged { value, steps } => {
                assert_eq!(value, (4, 4));
                assert!(steps <= 8, "Lemma 3.2: index {steps} must be ≤ p+q = 8");
            }
            _ => panic!("must converge"),
        }
    }

    /// Lemma 3.3 bound pq + p + q on the product stability index.
    #[test]
    fn lemma_3_3_bound() {
        // Counters where the inner variable resets its pace from the outer:
        // g_x(y) = min(y+1, 3) is 3-stable for every x (q = 3);
        // F(x) = f(x, ȳ) with f(x,y) = min(x + (y==3) as u32, 5): p = 5.
        let f = |x: &u32, y: &u32| (*x + u32::from(*y == 3)).min(5);
        let g = |_x: &u32, y: &u32| (*y + 1).min(3);
        let nested = nested_lfp(f, g, 0, 0, 100).unwrap();
        let direct = product_lfp(f, g, 0u32, 0u32, 100);
        match direct {
            Outcome::Converged { value, steps } => {
                assert_eq!(value, (nested.x, nested.y));
                let (p, q) = (5usize, 3usize);
                assert!(
                    steps <= p * q + p + q,
                    "index {steps} must be ≤ pq+p+q = {}",
                    p * q + p + q
                );
            }
            _ => panic!("must converge"),
        }
    }

    #[test]
    fn diverging_inner_returns_none() {
        let f = |x: &u32, _y: &u64| *x;
        let g = |_x: &u32, y: &u64| y + 1;
        assert!(nested_lfp(f, g, 0u32, 0u64, 50).is_none());
    }
}
