//! Quantitative convergence bounds (Theorem 3.4, Theorem 5.12, Cor. 5.18).
//!
//! All bounds are computed in saturating `u128`, since the expressions
//! `Σ_k Π_{i≤k} p_i` and `Σ_i (p+2)^i` grow exponentially in `N`.

/// `E_n(a₁, …, a_n) = a₁ + a₁a₂ + … + a₁a₂⋯a_n` (Theorem 3.4).
///
/// The theorem's bound on the stability index of an `n`-component function
/// over posets with per-component indexes `p₁ ≥ p₂ ≥ … ≥ p_n`; this helper
/// sorts descending (which maximizes the expression, as the theorem notes).
pub fn clone_bound(ps: &[usize]) -> u128 {
    let mut sorted: Vec<u128> = ps.iter().map(|&p| p as u128).collect();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut total: u128 = 0;
    let mut prefix: u128 = 1;
    for p in sorted {
        prefix = prefix.saturating_mul(p);
        total = total.saturating_add(prefix);
    }
    total
}

/// `Σ_{i=1..n} b^i` with saturation.
fn geometric_sum(b: u128, n: usize) -> u128 {
    let mut total: u128 = 0;
    let mut pow: u128 = 1;
    for _ in 0..n {
        pow = pow.saturating_mul(b);
        total = total.saturating_add(pow);
    }
    total
}

/// Theorem 5.12(1) / Theorem 1.2: over a `p`-stable semiring, every
/// polynomial function on `N` variables is `Σ_{i=1..N} (p+2)^i`-stable.
pub fn general_bound(p: usize, n: usize) -> u128 {
    geometric_sum(p as u128 + 2, n)
}

/// Theorem 5.12(1), linear case: `Σ_{i=1..N} (p+1)^i`.
pub fn linear_bound(p: usize, n: usize) -> u128 {
    geometric_sum(p as u128 + 1, n)
}

/// Theorem 5.12(2) / Corollary 5.19: over a 0-stable semiring every
/// polynomial function on `N` variables is `N`-stable.
pub fn zero_stable_bound(n: usize) -> u128 {
    n as u128
}

/// Lemma 5.20 / Corollary 5.21: an `N × N` matrix over `Trop⁺_p` is
/// `((p+1)N − 1)`-stable, and linear datalog° over `Trop⁺_p` converges in
/// `(p+1)N − 1` steps (tight).
pub fn trop_p_matrix_bound(p: usize, n: usize) -> u128 {
    ((p as u128) + 1)
        .saturating_mul(n as u128)
        .saturating_sub(1)
}

/// Lemma 3.3 item (1): the two-block nested bound `pq + p + q`.
pub fn nested_bound(p: usize, q: usize) -> u128 {
    let (p, q) = (p as u128, q as u128);
    p * q + p + q
}

/// Lemma 3.3 item (2): the symmetric two-block bound `pq + max(p, q)`.
pub fn nested_bound_symmetric(p: usize, q: usize) -> u128 {
    let (p, q) = (p as u128, q as u128);
    p * q + p.max(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_bound_small_cases() {
        // n = 1: E = p1.
        assert_eq!(clone_bound(&[5]), 5);
        // n = 2 (sorted desc): p1 + p1 p2 = 3 + 6 = 9.
        assert_eq!(clone_bound(&[2, 3]), 9);
        // Order independence (helper sorts): same as above.
        assert_eq!(clone_bound(&[3, 2]), 9);
        // All ones: E_n = n.
        assert_eq!(clone_bound(&[1, 1, 1, 1]), 4);
        // Empty: 0.
        assert_eq!(clone_bound(&[]), 0);
    }

    #[test]
    fn clone_bound_matches_nested_bound_for_two() {
        // Theorem 3.4 with n = 2 refines Lemma 3.3: after sorting p ≥ q,
        // E₂ = p + pq = pq + max(p, q) ≤ pq + p + q.
        for p in 0..6usize {
            for q in 0..6usize {
                let e2 = clone_bound(&[p, q]);
                assert!(e2 <= nested_bound(p, q));
                assert_eq!(e2, nested_bound_symmetric(p, q));
            }
        }
    }

    #[test]
    fn theorem_5_12_bounds() {
        // p = 0: general Σ 2^i = 2^{N+1} - 2; linear Σ 1 = N.
        assert_eq!(general_bound(0, 3), 2 + 4 + 8);
        assert_eq!(linear_bound(0, 3), 3);
        // p = 1: Σ 3^i and Σ 2^i.
        assert_eq!(general_bound(1, 2), 3 + 9);
        assert_eq!(linear_bound(1, 2), 2 + 4);
        assert_eq!(zero_stable_bound(17), 17);
    }

    #[test]
    fn trop_p_matrix_bound_values() {
        assert_eq!(trop_p_matrix_bound(0, 5), 4); // Trop: N-1
        assert_eq!(trop_p_matrix_bound(2, 4), 11); // 3·4-1
    }

    #[test]
    fn saturation_instead_of_overflow() {
        assert_eq!(general_bound(usize::MAX, 64), u128::MAX);
    }
}
