//! Naïve (Kleene) fixpoint iteration over posets (Sec. 3, eq. 17).
//!
//! Starting from `⊥`, repeatedly apply a monotone function `f` until
//! `f^(t+1)(⊥) = f^(t)(⊥)`. Divergence is a first-class outcome: every loop
//! carries an iteration cap and returns [`Outcome::Diverged`] instead of
//! hanging.

/// The result of a capped fixpoint iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome<T> {
    /// The iteration reached a fixpoint.
    Converged {
        /// The least fixpoint `f^(steps)(⊥)`.
        value: T,
        /// The number of applications needed: the least `t` with
        /// `f^(t+1)(⊥) = f^(t)(⊥)` (the *stability index* of `f`, Def. 3.1).
        steps: usize,
    },
    /// No fixpoint within the iteration cap.
    Diverged {
        /// The last iterate `f^(cap)(⊥)` computed.
        last: T,
    },
}

impl<T> Outcome<T> {
    /// The converged value, panicking on divergence.
    pub fn unwrap(self) -> T {
        match self {
            Outcome::Converged { value, .. } => value,
            Outcome::Diverged { .. } => panic!("fixpoint iteration diverged"),
        }
    }

    /// The converged value and step count, if any.
    pub fn converged(self) -> Option<(T, usize)> {
        match self {
            Outcome::Converged { value, steps } => Some((value, steps)),
            Outcome::Diverged { .. } => None,
        }
    }

    /// Whether the iteration converged.
    pub fn is_converged(&self) -> bool {
        matches!(self, Outcome::Converged { .. })
    }
}

/// Iterates `x ← f(x)` from `bottom` until a fixpoint or `cap` steps.
///
/// Returns the least fixpoint when `f` is monotone and `bottom` is the least
/// element (Sec. 3): each `f^(t)(⊥)` is below every fixpoint by induction.
pub fn naive_lfp<T: Clone + Eq>(f: impl Fn(&T) -> T, bottom: T, cap: usize) -> Outcome<T> {
    let mut x = bottom;
    for steps in 0..=cap {
        let next = f(&x);
        if next == x {
            return Outcome::Converged { value: x, steps };
        }
        x = next;
    }
    Outcome::Diverged { last: x }
}

/// Like [`naive_lfp`], but records the full chain `⊥, f(⊥), f²(⊥), …` up to
/// and including the fixpoint (or the cap). Used to regenerate the paper's
/// iteration tables (Examples 4.1, 4.2, Sec. 7).
pub fn naive_lfp_trace<T: Clone + Eq>(
    f: impl Fn(&T) -> T,
    bottom: T,
    cap: usize,
) -> (Vec<T>, Outcome<T>) {
    let mut trace = vec![bottom.clone()];
    let mut x = bottom;
    for steps in 0..=cap {
        let next = f(&x);
        if next == x {
            return (trace, Outcome::Converged { value: x, steps });
        }
        trace.push(next.clone());
        x = next;
    }
    (trace.clone(), Outcome::Diverged { last: x })
}

/// The stability index of a monotone function `f` (Definition 3.1): the
/// minimum `p` with `f^(p+1)(⊥) = f^(p)(⊥)`, or `None` if above `cap`.
pub fn function_stability_index<T: Clone + Eq>(
    f: impl Fn(&T) -> T,
    bottom: T,
    cap: usize,
) -> Option<usize> {
    match naive_lfp(f, bottom, cap) {
        Outcome::Converged { steps, .. } => Some(steps),
        Outcome::Diverged { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_monotone_saturating_function() {
        // f(x) = min(x+1, 5) on the chain 0..=5.
        let f = |x: &u32| (*x + 1).min(5);
        match naive_lfp(f, 0u32, 100) {
            Outcome::Converged { value, steps } => {
                assert_eq!(value, 5);
                assert_eq!(steps, 5);
            }
            _ => panic!("must converge"),
        }
    }

    #[test]
    fn identity_converges_immediately() {
        let out = naive_lfp(|x: &u32| *x, 7u32, 10);
        assert_eq!(out, Outcome::Converged { value: 7, steps: 0 });
    }

    #[test]
    fn diverges_past_cap() {
        let out = naive_lfp(|x: &u64| x + 1, 0u64, 50);
        assert_eq!(out, Outcome::Diverged { last: 51 });
        assert!(!out.is_converged());
    }

    #[test]
    fn trace_records_whole_chain() {
        let f = |x: &u32| (*x + 2).min(4);
        let (trace, out) = naive_lfp_trace(f, 0u32, 10);
        assert_eq!(trace, vec![0, 2, 4]);
        assert!(matches!(out, Outcome::Converged { value: 4, steps: 2 }));
    }

    #[test]
    fn stability_index_matches_definition() {
        let f = |x: &u32| (*x + 1).min(3);
        assert_eq!(function_stability_index(f, 0u32, 10), Some(3));
        assert_eq!(function_stability_index(|x: &u32| x + 1, 0, 10), None);
    }

    #[test]
    #[should_panic(expected = "diverged")]
    fn unwrap_panics_on_divergence() {
        naive_lfp(|x: &u64| x + 1, 0u64, 3).unwrap();
    }
}
