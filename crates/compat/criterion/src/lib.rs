//! Offline stand-in for the `criterion` crate (see `crates/compat/README.md`).
//!
//! Implements the measurement surface the workspace's benches use:
//! [`criterion_group!`] / [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`] / [`BenchmarkGroup::bench_function`],
//! [`BenchmarkId`], and [`Bencher::iter`]. Each benchmark is warmed up,
//! then timed over `sample_size` samples (batched so one sample lasts
//! roughly [`TARGET_SAMPLE_MS`] when iterations are fast); min / mean /
//! median per-iteration times go to stdout.
//!
//! Knobs (environment):
//! * `CRITERION_SAMPLES=<n>` — override the per-group sample count;
//! * `CRITERION_JSON=<path>` — append one JSON line per finished
//!   benchmark (id, min/mean/median in ns, sample shape) for
//!   machine-readable baselines.
//!
//! Slow benchmarks are clamped to fewer samples than requested (one
//! sample past ~2s per iteration, three past ~200ms); when that
//! happens, the stdout line says `capped` and the JSON line carries
//! `"samples_capped": true`, so committed baselines are honest about
//! how converged each number is.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Target wall-clock length of one measurement sample.
pub const TARGET_SAMPLE_MS: u64 = 25;

/// Re-export of the standard black box (real criterion deprecates its own
/// in favour of this one).
pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let sample_size = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10);
        // Under `cargo test --benches` cargo invokes bench binaries with
        // `--test`: run each benchmark once, skip measurement.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size,
            test_mode,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A named benchmark identifier `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a displayed parameter.
    pub fn new(function: &str, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `f` with a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(
            &full,
            samples,
            self.criterion.test_mode,
            json_path().as_deref(),
            |b| f(b, input),
        );
        self
    }

    /// Benchmarks `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(
            &full,
            samples,
            self.criterion.test_mode,
            json_path().as_deref(),
            |b| f(b),
        );
        self
    }

    /// Ends the group (report flushing is per-bench; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to the measured closure; call [`Bencher::iter`] exactly once.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f` (the harness controls the count).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_once(f: &mut impl FnMut(&mut Bencher), iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

/// The `CRITERION_JSON` target, if set (read once per benchmark; tests
/// inject a path directly instead of mutating process-global env).
fn json_path() -> Option<std::path::PathBuf> {
    std::env::var_os("CRITERION_JSON").map(std::path::PathBuf::from)
}

fn run_bench(
    id: &str,
    samples: usize,
    test_mode: bool,
    json: Option<&std::path::Path>,
    mut f: impl FnMut(&mut Bencher),
) {
    if test_mode {
        run_once(&mut f, 1);
        println!("{id}: ok (test mode)");
        return;
    }
    // Warmup + batch sizing: aim for TARGET_SAMPLE_MS per sample, but
    // never batch a benchmark whose single iteration is already slow.
    let first = run_once(&mut f, 1).max(Duration::from_nanos(1));
    let target = Duration::from_millis(TARGET_SAMPLE_MS);
    let iters_per_sample: u64 = if first >= target {
        1
    } else {
        (target.as_nanos() / first.as_nanos()).clamp(1, 1_000_000) as u64
    };
    // Keep very slow benchmarks bounded: one sample once a single
    // iteration passes ~2s, a handful below that. Clamping below the
    // requested count is *recorded* — a single-sample "min" is not a
    // minimum of anything, so baselines carry `samples_capped: true`
    // rather than passing the number off as a converged statistic.
    let requested = samples.max(1);
    let samples = if first >= Duration::from_secs(2) {
        1
    } else if first >= Duration::from_millis(200) {
        requested.min(3)
    } else {
        requested
    }
    .max(1);
    let capped = samples < requested;

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let d = run_once(&mut f, iters_per_sample);
        per_iter_ns.push(d.as_nanos() as f64 / iters_per_sample as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter_ns[0];
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    println!(
        "{id:<50} time: [min {} mean {} median {}] ({} samples x {} iters{})",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(median),
        per_iter_ns.len(),
        iters_per_sample,
        if capped { ", capped" } else { "" }
    );
    if let Some(path) = json {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                file,
                "{{\"id\":\"{id}\",\"min_ns\":{min:.1},\"mean_ns\":{mean:.1},\
                 \"median_ns\":{median:.1},\"samples\":{},\"iters_per_sample\":{},\
                 \"samples_capped\":{capped}}}",
                per_iter_ns.len(),
                iters_per_sample
            );
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_and_groups_render() {
        assert_eq!(BenchmarkId::new("dense", 24).id, "dense/24");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 7,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 7);
    }

    #[test]
    fn run_bench_smoke() {
        // Exercise the measurement path end to end on a trivial closure.
        run_bench("smoke/1", 2, false, None, |b| b.iter(|| 1 + 1));
        run_bench("smoke/test-mode", 2, true, None, |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn slow_benchmarks_record_the_sample_cap() {
        // A ~210ms iteration trips the 3-sample clamp; with 5 samples
        // requested the JSON line must carry samples_capped: true. The
        // JSON target is injected directly (no process-global env
        // mutation, which would race other tests in this binary).
        let path =
            std::env::temp_dir().join(format!("criterion_cap_test_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        run_bench("cap-test/slow", 5, false, Some(&path), |b| {
            b.iter(|| std::thread::sleep(Duration::from_millis(210)))
        });
        run_bench("cap-test/fast", 2, false, Some(&path), |b| b.iter(|| 1 + 1));
        let json = std::fs::read_to_string(&path).expect("JSONL written");
        let slow = json
            .lines()
            .find(|l| l.contains("cap-test/slow"))
            .expect("slow line");
        assert!(slow.contains("\"samples\":3"), "got: {slow}");
        assert!(slow.contains("\"samples_capped\":true"), "got: {slow}");
        let fast = json
            .lines()
            .find(|l| l.contains("cap-test/fast"))
            .expect("fast line");
        assert!(fast.contains("\"samples_capped\":false"), "got: {fast}");
        let _ = std::fs::remove_file(&path);
    }
}
