//! Offline stand-in for the `rand` crate (see `crates/compat/README.md`).
//!
//! Implements the slice of the rand 0.8 API the workspace uses: a seeded
//! generator (`rngs::StdRng`, `SeedableRng::seed_from_u64`) and uniform
//! sampling over integer ranges (`Rng::gen_range`). The generator is
//! SplitMix64 — deterministic, well mixed, and stable across platforms,
//! which is all the seeded workload generators need. It makes no attempt
//! at statistical perfection (rejection-free modulo reduction) or
//! cryptographic strength.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types that can seed an RNG from a `u64` (mini `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A sample range over `T` (mini `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Inclusive bounds `(lo, hi)` of the range; panics when empty.
    fn bounds(&self) -> (T, T);
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn bounds(&self) -> ($t, $t) {
                assert!(self.start < self.end, "cannot sample empty range");
                (self.start, self.end - 1)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn bounds(&self) -> ($t, $t) {
                assert!(self.start() <= self.end(), "cannot sample empty range");
                (*self.start(), *self.end())
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// The generator interface (mini `rand::Rng`).
pub trait Rng {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (integer types only).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: SampleRange<T>,
    {
        let (lo, hi) = range.bounds();
        T::sample(self.next_u64(), lo, hi)
    }

    /// A uniform `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 <= p
    }
}

/// Integer types `gen_range` can produce.
pub trait UniformInt: Copy {
    /// Maps a raw 64-bit draw into `[lo, hi]`.
    fn sample(raw: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample(raw: u64, lo: Self, hi: Self) -> Self {
                let span = (hi as u128) - (lo as u128) + 1;
                lo + ((raw as u128 % span) as $t)
            }
        }
    )*};
}
macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample(raw: u64, lo: Self, hi: Self) -> Self {
                let span = (hi as i128) - (lo as i128) + 1;
                lo + ((raw as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, u128, usize);
impl_uniform_signed!(i8, i16, i32, i64, i128, isize);

/// Named generators (mini `rand::rngs`).
pub mod rngs {
    /// The default seeded generator: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014): additive state walk +
            // two xor-shift-multiply finalization rounds.
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.gen_range(1..=9);
            assert!((1..=9).contains(&y));
            let z: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn covers_the_whole_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
