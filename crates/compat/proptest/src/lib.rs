//! Offline stand-in for the `proptest` crate (see `crates/compat/README.md`).
//!
//! Supports the subset the workspace's property suites use:
//!
//! * [`Strategy`] with [`Strategy::prop_map`] / [`Strategy::prop_flat_map`],
//!   implemented for integer ranges, tuples (arity ≤ 4), and [`Just`];
//! * [`collection::vec`] with `Range`/`RangeInclusive` size bounds;
//! * [`any`] over a small [`Arbitrary`] set (`bool`, integer primitives);
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!` / `prop_oneof!`.
//!
//! Each test runs `cases` deterministic iterations (seeded per case index),
//! so failures are reproducible run to run. There is **no shrinking**: a
//! failing case reports its case number and message only.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, Just, OneOf, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError};

/// Everything a property-test file usually imports.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs `cases` deterministic iterations of a property body.
///
/// The machinery behind the [`proptest!`] macro; exposed so the macro can
/// expand to a plain function call. `gen_and_run` receives a seeded RNG
/// and returns `Ok(())`, `Err(Reject)` (assume failed — retried without
/// counting), or `Err(Fail)` (assertion failed — reported).
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut gen_and_run: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let mut accepted: u32 = 0;
    let mut attempt: u64 = 0;
    // Mix the test name into the seed stream so distinct tests explore
    // distinct inputs, while staying deterministic across runs.
    let name_hash: u64 = name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    });
    let max_attempts = (config.cases as u64) * 20 + 100;
    while accepted < config.cases {
        if attempt >= max_attempts {
            panic!(
                "proptest '{name}': gave up after {attempt} attempts \
                 ({accepted}/{} cases accepted — too many prop_assume! rejections)",
                config.cases
            );
        }
        let mut rng = StdRng::seed_from_u64(name_hash ^ attempt.wrapping_mul(0x9E3779B97F4A7C15));
        attempt += 1;
        match gen_and_run(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case {accepted} (attempt {attempt}): {msg}")
            }
        }
    }
}

/// The `proptest!` macro: a deterministic, shrink-free re-implementation.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal: expands each `fn name(pat in strategy, ...) { body }` item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::run_property(stringify!($name), &__config, |__rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), __rng);)+
                #[allow(unreachable_code, clippy::diverging_sub_expression)]
                {
                    $body
                    Ok(())
                }
            });
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Asserts inside a property body; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), l, r
            )));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Discards the current case (it is regenerated, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// A strategy choosing uniformly among the given strategies (all must
/// produce the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(Box::new($strat) as Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}
