//! Collection strategies (mini `proptest::collection`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A size bound for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// A strategy generating `Vec`s of `element` with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sizes_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = vec(0u32..10, 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = vec(0u32..10, 3usize..=3);
        assert_eq!(exact.generate(&mut rng).len(), 3);
    }
}
