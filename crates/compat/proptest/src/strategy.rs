//! The [`Strategy`] trait and combinators (mini `proptest::strategy`).

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, UniformInt};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A generator of values for property tests.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy simply produces a value from a seeded RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        let seed = self.inner.generate(rng);
        (self.f)(seed).generate(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

impl<T: UniformInt> Strategy for Range<T>
where
    Range<T>: SampleRange<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: UniformInt> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$ix:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$ix.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Builds a choice strategy; panics on an empty option list.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Types with a canonical strategy (mini `proptest::arbitrary`).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The canonical strategy for an [`Arbitrary`] type: `any::<bool>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = (1usize..5).prop_flat_map(|n| (Just(n), 0usize..n));
        for _ in 0..200 {
            let (n, x) = s.generate(&mut rng);
            assert!(x < n && (1..5).contains(&n));
        }
        let doubled = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            assert_eq!(doubled.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = StdRng::seed_from_u64(9);
        let s = OneOf::new(vec![
            Box::new(Just(0u32)) as Box<dyn Strategy<Value = u32>>,
            Box::new(Just(1u32)),
        ]);
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }
}
