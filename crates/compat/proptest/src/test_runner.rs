//! Test-runner configuration and case-level errors
//! (mini `proptest::test_runner`).

/// Configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the seeded, shrink-free
        // runner snappy while still exploring a meaningful sample.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: regenerate without counting the case.
    Reject,
    /// `prop_assert*!` failed: the property is falsified.
    Fail(String),
}
