//! Queries: a goal atom with constant bindings and free positions.
//!
//! A query `?- T("a", Y).` asks for the rows of the IDB `T` whose first
//! column is `"a"`, with `Y` ranging free. The bound/free pattern per
//! argument is the query's **adornment** (the classic magic-sets `b`/`f`
//! string); [`crate::demand::magic_rewrite`] turns a program plus a
//! query into a demand-restricted program that derives only what the
//! query can reach.
//!
//! A query is POPS-independent: its bindings live in the key space, so
//! one `Query` value works against a program over any value space.

use crate::relation::Relation;
use crate::value::Constant;
use dlo_pops::Pops;
use std::fmt;

/// One query argument: a constant binding or a free position.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum QueryArg {
    /// A bound argument: answers must carry exactly this constant.
    Bound(Constant),
    /// A free argument: answers range over it.
    Free,
}

impl QueryArg {
    /// Shorthand for a bound argument.
    pub fn bound(c: impl Into<Constant>) -> QueryArg {
        QueryArg::Bound(c.into())
    }
}

impl fmt::Debug for QueryArg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryArg::Bound(c) => write!(f, "{c:?}"),
            QueryArg::Free => write!(f, "_"),
        }
    }
}

/// A query: a goal predicate with per-argument bindings.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Query {
    /// The queried predicate (an IDB of the program).
    pub pred: String,
    /// The argument pattern.
    pub args: Vec<QueryArg>,
}

impl Query {
    /// Constructs a query.
    pub fn new(pred: &str, args: Vec<QueryArg>) -> Query {
        Query {
            pred: pred.to_string(),
            args,
        }
    }

    /// A point query: every argument bound.
    pub fn point(pred: &str, consts: Vec<Constant>) -> Query {
        Query {
            pred: pred.to_string(),
            args: consts.into_iter().map(QueryArg::Bound).collect(),
        }
    }

    /// An all-free query (demands the full relation).
    pub fn all(pred: &str, arity: usize) -> Query {
        Query {
            pred: pred.to_string(),
            args: vec![QueryArg::Free; arity],
        }
    }

    /// The query's arity.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// The bound/free adornment (`true` = bound), in argument order.
    pub fn adornment(&self) -> Vec<bool> {
        self.args
            .iter()
            .map(|a| matches!(a, QueryArg::Bound(_)))
            .collect()
    }

    /// Whether any argument is bound (an all-free query triggers no
    /// demand restriction: everything is demanded).
    pub fn has_bound(&self) -> bool {
        self.args.iter().any(|a| matches!(a, QueryArg::Bound(_)))
    }

    /// The bound constants, in argument order (skipping free positions).
    pub fn bound_consts(&self) -> Vec<&Constant> {
        self.args
            .iter()
            .filter_map(|a| match a {
                QueryArg::Bound(c) => Some(c),
                QueryArg::Free => None,
            })
            .collect()
    }

    /// Whether `tuple` matches the query's bound positions.
    pub fn matches(&self, tuple: &[Constant]) -> bool {
        tuple.len() == self.args.len()
            && self.args.iter().zip(tuple).all(|(a, c)| match a {
                QueryArg::Bound(b) => b == c,
                QueryArg::Free => true,
            })
    }

    /// Restricts a relation to the rows matching this query.
    pub fn restrict<P: Pops>(&self, rel: &Relation<P>) -> Relation<P> {
        Relation::from_pairs(
            rel.arity(),
            rel.support()
                .filter(|(t, _)| self.matches(t))
                .map(|(t, v)| (t.clone(), v.clone())),
        )
    }
}

impl fmt::Debug for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let args: Vec<String> = self.args.iter().map(|a| format!("{a:?}")).collect();
        write!(f, "?- {}({}).", self.pred, args.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;
    use dlo_pops::Trop;

    #[test]
    fn adornment_and_matching() {
        let q = Query::new("T", vec![QueryArg::bound("a"), QueryArg::Free]);
        assert_eq!(q.adornment(), vec![true, false]);
        assert!(q.has_bound());
        assert!(q.matches(&["a".into(), "b".into()]));
        assert!(!q.matches(&["b".into(), "a".into()]));
        assert!(!q.matches(&["a".into()]));
        assert_eq!(q.bound_consts(), vec![&Constant::str("a")]);
        assert!(!Query::all("T", 2).has_bound());
    }

    #[test]
    fn restriction_filters_rows() {
        let rel = Relation::from_pairs(
            2,
            vec![
                (tup!["a", "b"], Trop::finite(1.0)),
                (tup!["a", "c"], Trop::finite(2.0)),
                (tup!["b", "c"], Trop::finite(3.0)),
            ],
        );
        let q = Query::new("T", vec![QueryArg::bound("a"), QueryArg::Free]);
        let r = q.restrict(&rel);
        assert_eq!(r.support_size(), 2);
        assert_eq!(r.get(&tup!["a", "c"]), Trop::finite(2.0));
        assert!(r.get(&tup!["b", "c"]).is_bottom());
    }

    #[test]
    fn debug_renders_query_syntax() {
        let q = Query::new("T", vec![QueryArg::bound("a"), QueryArg::Free]);
        assert_eq!(format!("{q:?}"), "?- T(a, _).");
    }
}
