//! Demand transformation: adornments and the magic-set rewrite.
//!
//! Given a [`Program`] and a [`Query`], [`magic_rewrite`] produces a
//! program whose least fixpoint, restricted to the query, equals the
//! original program's — while deriving (ideally) only the facts the
//! query can reach. A single-source shortest-path question against an
//! all-pairs program stops paying for all pairs.
//!
//! ## The rewrite
//!
//! 1. **Adornment pass** (sideways information passing). Starting from
//!    the query's bound/free pattern, propagate boundness through rule
//!    bodies: a head position adorned `b` binds its variable; `Var =
//!    const` equalities on the condition's conjunctive spine bind;
//!    every variable of a **non-IDB** factor or a conjunctive Boolean
//!    guard atom is bound (those atoms all travel into the magic rule
//!    bodies, so the rewrite can evaluate them — no reachability
//!    restriction is needed for soundness, and including them keeps
//!    demand tight). An IDB occurrence's adornment marks the positions
//!    whose argument terms are constants or use only bound variables.
//!    A predicate reached with several adornments gets their **meet**
//!    (bound only where *all* agree — one magic predicate per IDB, at
//!    the cost of slightly wider demand than the textbook
//!    one-copy-per-adornment rewrite). Bindings are *not* passed
//!    through IDB occurrences (that would make demand and answers
//!    mutually recursive across value spaces); an occurrence whose
//!    bound set comes up empty simply weakens its predicate to
//!    all-free, i.e. fully demanded. One guard precedes the pass: if
//!    any query-reachable rule has a variable no join can bind (those
//!    are enumerated over the **active domain**), the whole query
//!    falls back to all-free — a magic guard would re-scope such a
//!    variable from the domain to the demanded set, which may contain
//!    query constants or minted demand keys outside the domain, and
//!    the answers would no longer be a restriction of the original
//!    fixpoint ([`DemandProgram::domain_enumerated`]).
//!
//! 2. **Magic rules** (demand propagation). For every rule of an
//!    adorned predicate `p` and every IDB occurrence `q` in it, emit
//!    `m_q(bound args of q) :- m_p(bound head args) ⊗ demand(edb₁) ⊗ …
//!    | spine-guards`, where `demand(v) = 1 if v ≠ 0 else 0` collapses
//!    every EDB factor's value to the multiplicative identity.
//!    **Demand is set-valued even when program values are
//!    semiring-valued**: a magic fact means "this binding is needed",
//!    nothing more, so magic relations live on the Bool lattice
//!    {absent, present} regardless of the POPS — concretely, engine
//!    drivers store every magic row with value `1` and never merge
//!    into it again (see `set-valued` handling in `dlo_engine`).
//!
//! 3. **Guarded rules** (answer restriction). Every rule of an adorned
//!    predicate with at least one bound position gets the magic factor
//!    `m_p(bound head args)` prepended. Its value is always `1`, so
//!    multiplying it in never changes an answer — it only gates which
//!    bindings fire. Rules of IDBs the adornment pass never reaches
//!    are dropped entirely: no demand can flow to them.
//!
//! 4. **Seed**. `m_query(query constants) :- 1` — the single fact the
//!    whole fixpoint grows from. Under `dlo_engine`'s frontier drivers
//!    this is the only seed-plan contribution, so the frontier starts
//!    at the query constants instead of the whole EDB.
//!
//! ## Why absorption is *not* required for correctness
//!
//! The rewrite is sound for **any** POPS, not just the absorptive
//! dioids the frontier strategies need. Correctness only needs two
//! facts. (a) Demand is an *over*-approximation: every valuation that
//! contributes to a demanded row has its IDB sub-occurrences demanded
//! too (the magic rule for that occurrence includes every non-IDB
//! factor and every spine guard of the body, so it fires for at least
//! the valuations the guarded rule fires for — dropping the
//! non-evaluable condition parts only widens it further). By induction
//! every contributing derivation tree survives the rewrite, so each
//! demanded row — the query rows included — carries exactly its
//! original fixpoint value. (b) The guard factor multiplies by `1`,
//! the `⊗`-identity, so values pass through unchanged. Neither fact
//! uses absorption, idempotence, or a total order; those only decide
//! *which evaluation strategies* may run the rewritten program
//! (absorption licenses the worklist, a total chain order the
//! settled-on-pop priority frontier), exactly as for any other
//! program. What absorption's absence *does* cost is that demand must
//! be kept set-valued by the evaluator: over a non-idempotent `⊕`
//! (e.g. ℕ) re-deriving a magic fact would otherwise pump its value
//! (`1 ⊕ 1 = 2`) forever around demand cycles. `dlo_engine` freezes
//! magic rows at `1` on first insertion; backends without that
//! handling (the relational and grounded references) still compute
//! rewritten programs correctly over idempotent `⊕`, where `1 ⊕ 1 =
//! 1` holds algebraically.

use crate::ast::{Atom, Factor, Program, Rule, SumProduct, Term, UnaryFn, Var};
use crate::formula::{CmpOp, Formula};
use crate::query::{Query, QueryArg};
use dlo_pops::Pops;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// The name prefix of generated magic predicates. Starts with `@` so no
/// parsed program can collide with it (the lexer rejects `@`).
pub const MAGIC_PREFIX: &str = "@magic_";

/// The reserved name of the demand value collapse `v ↦ [v ≠ 0]`.
pub const DEMAND_FN: &str = "@demand";

/// The magic predicate name for an IDB.
pub fn magic_pred(pred: &str) -> String {
    format!("{MAGIC_PREFIX}{pred}")
}

/// Why a query cannot be compiled against a program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DemandError {
    /// The queried predicate is not an IDB of the program.
    UnknownPredicate(String),
    /// The query's arity differs from the predicate's.
    ArityMismatch {
        /// The queried predicate.
        pred: String,
        /// The predicate's arity.
        expected: usize,
        /// The query's arity.
        got: usize,
    },
    /// The program already uses a name the rewrite needs to generate.
    MagicNameClash(String),
}

impl fmt::Display for DemandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DemandError::UnknownPredicate(p) => {
                write!(f, "query predicate `{p}` is not an IDB of the program")
            }
            DemandError::ArityMismatch {
                pred,
                expected,
                got,
            } => write!(
                f,
                "query arity {got} does not match `{pred}` (arity {expected})"
            ),
            DemandError::MagicNameClash(p) => {
                write!(f, "program already defines the reserved name `{p}`")
            }
        }
    }
}
impl std::error::Error for DemandError {}

/// The result of [`magic_rewrite`]: the demand-restricted program plus
/// the metadata an evaluator needs to treat it correctly.
#[derive(Clone, Debug)]
pub struct DemandProgram<P> {
    /// The rewritten program: magic seed + magic rules + guarded rules.
    pub program: Program<P>,
    /// Names of the generated magic predicates, in first-use order.
    /// Evaluators must treat these as **set-valued**: store `1` on
    /// first insertion and never merge into the row again.
    pub magic_preds: Vec<String>,
    /// IDBs the adornment pass never reached — their rules were
    /// dropped, because no demand can flow to them from the query.
    pub dropped_preds: Vec<String>,
    /// The final per-predicate adornment (`true` = bound) of every
    /// reached IDB. All-free means the predicate is fully demanded and
    /// its rules run unguarded.
    pub adornments: BTreeMap<String, Vec<bool>>,
    /// Whether the domain-enumeration guard fired: some query-reachable
    /// rule has a variable no join can bind (evaluators enumerate it
    /// over the active domain), so the rewrite fell back to
    /// unrestricted all-free evaluation of the reachable fragment —
    /// magic guards would have re-scoped that variable to the demanded
    /// set and broken the restriction invariant.
    pub domain_enumerated: bool,
    /// The query the rewrite was built for.
    pub query: Query,
}

/// The monotone demand collapse `v ↦ [v ≠ 0]`, mapping `0` to `0` and
/// everything else to `1`. Monotone on every naturally ordered POPS:
/// natural orders are zero-sum-free (`x ⊕ z = 0 ⟹ x = 0`), so `x ⊑ y`
/// and `x ≠ 0` imply `y ≠ 0`.
pub fn demand_fn<P: Pops>() -> UnaryFn<P> {
    UnaryFn::new(
        DEMAND_FN,
        |v: &P| {
            if v.is_zero() {
                P::zero()
            } else {
                P::one()
            }
        },
    )
}

/// Rewrites `program` for goal-directed evaluation of `query` (see the
/// module docs for the construction and its correctness argument).
///
/// An all-free query — or one whose predicate weakens to all-free
/// during the adornment meet — yields a program with no magic
/// predicates for that goal: the reachable fragment is computed in
/// full (rules of *unreachable* IDBs are still dropped).
pub fn magic_rewrite<P: Pops>(
    program: &Program<P>,
    query: &Query,
) -> Result<DemandProgram<P>, DemandError> {
    // IDB table with arities (first head occurrence wins, as in the
    // engine compiler).
    let mut idbs: Vec<(String, usize)> = vec![];
    for r in &program.rules {
        if !idbs.iter().any(|(n, _)| n == &r.head.pred) {
            idbs.push((r.head.pred.clone(), r.head.args.len()));
        }
    }
    let Some((_, arity)) = idbs.iter().find(|(n, _)| n == &query.pred) else {
        return Err(DemandError::UnknownPredicate(query.pred.clone()));
    };
    if *arity != query.arity() {
        return Err(DemandError::ArityMismatch {
            pred: query.pred.clone(),
            expected: *arity,
            got: query.arity(),
        });
    }
    for (name, _) in &idbs {
        if name.starts_with(MAGIC_PREFIX) {
            return Err(DemandError::MagicNameClash(name.clone()));
        }
    }
    let is_idb = |pred: &str| idbs.iter().any(|(n, _)| n == pred);

    // ── Domain-enumeration guard. ────────────────────────────────────
    // A variable bound by nothing a join can bind (no plain factor or
    // guard argument, no `Var = const` equality) is enumerated over the
    // **active domain** by every evaluator. Magic guards re-scope such
    // variables to the *demanded* set, which is not a subset of the
    // original domain when the query constants — or demand keys minted
    // through key functions in magic heads — lie outside it, so the
    // restriction invariant would break. When any query-reachable rule
    // has such a variable, fall back to unrestricted evaluation of the
    // reachable fragment (all-free adornment): without magic factors no
    // variable's range changes, and unreachable rules still drop.
    let domain_enumerated = {
        let mut reach: BTreeSet<&str> = BTreeSet::from([query.pred.as_str()]);
        let mut work: Vec<&str> = vec![query.pred.as_str()];
        while let Some(p) = work.pop() {
            for rule in program.rules.iter().filter(|r| r.head.pred == p) {
                for sp in &rule.body {
                    for f in sp.factors.iter().filter(|f| is_idb(&f.atom.pred)) {
                        if reach.insert(&f.atom.pred) {
                            work.push(&f.atom.pred);
                        }
                    }
                }
            }
        }
        program
            .rules
            .iter()
            .filter(|r| reach.contains(r.head.pred.as_str()))
            .any(|rule| rule.body.iter().any(|sp| sp_enumerates(rule, sp)))
    };

    // ── Adornment pass: meet-iterate to a fixpoint. ──────────────────
    let mut adorn: BTreeMap<String, Vec<bool>> = BTreeMap::new();
    let initial = if domain_enumerated {
        vec![false; query.arity()]
    } else {
        query.adornment()
    };
    adorn.insert(query.pred.clone(), initial);
    let mut work: VecDeque<String> = VecDeque::from([query.pred.clone()]);
    while let Some(p) = work.pop_front() {
        let ap = adorn[&p].clone();
        for rule in program.rules.iter().filter(|r| r.head.pred == p) {
            for sp in &rule.body {
                let bound = bound_vars(rule, &ap, sp, &is_idb);
                for f in sp.factors.iter().filter(|f| is_idb(&f.atom.pred)) {
                    let aq: Vec<bool> = f.atom.args.iter().map(|t| term_bound(t, &bound)).collect();
                    match adorn.get_mut(&f.atom.pred) {
                        None => {
                            adorn.insert(f.atom.pred.clone(), aq);
                            work.push_back(f.atom.pred.clone());
                        }
                        Some(old) => {
                            let meet: Vec<bool> =
                                old.iter().zip(&aq).map(|(a, b)| *a && *b).collect();
                            if meet != *old {
                                *old = meet;
                                work.push_back(f.atom.pred.clone());
                            }
                        }
                    }
                }
            }
        }
    }

    // ── Generate the rewritten program from the final adornments. ────
    let dfn = demand_fn::<P>();
    let mut magic_preds: Vec<String> = vec![];
    let mut note_magic = |pred: &str| {
        let m = magic_pred(pred);
        if !magic_preds.contains(&m) {
            magic_preds.push(m.clone());
        }
        m
    };
    let guarded = |pred: &str| adorn.get(pred).is_some_and(|a| a.iter().any(|b| *b));
    let mut out = Program::new();

    // Seed: m_query(bound constants) :- 1.
    if guarded(&query.pred) {
        let m = note_magic(&query.pred);
        let args: Vec<Term> = query
            .args
            .iter()
            .zip(&adorn[&query.pred])
            .filter(|(_, b)| **b)
            .map(|(a, _)| match a {
                QueryArg::Bound(c) => Term::Const(c.clone()),
                QueryArg::Free => unreachable!("meet of the query adornment never adds bounds"),
            })
            .collect();
        out.rule(Atom::new(&m, args), vec![SumProduct::new(vec![])]);
    }

    // Magic rules: demand propagation from every adorned rule to every
    // IDB occurrence with a bound position (dedup — occurrences of one
    // predicate in symmetric positions often yield identical rules).
    let mut magic_rules: Vec<Rule<P>> = vec![];
    for rule in &program.rules {
        let Some(ap) = adorn.get(&rule.head.pred) else {
            continue; // undemanded head: rule dropped below, no demand flows
        };
        for sp in &rule.body {
            let bound = bound_vars(rule, ap, sp, &is_idb);
            for f in sp.factors.iter().filter(|f| is_idb(&f.atom.pred)) {
                let aq = &adorn[&f.atom.pred];
                if !aq.iter().any(|b| *b) {
                    continue; // all-free occurrence: fully demanded, no magic
                }
                let head = Atom::new(
                    &note_magic(&f.atom.pred),
                    f.atom
                        .args
                        .iter()
                        .zip(aq)
                        .filter(|(_, b)| **b)
                        .map(|(t, _)| t.clone())
                        .collect(),
                );
                let mut factors: Vec<Factor<P>> = vec![];
                if guarded(&rule.head.pred) {
                    factors.push(Factor::atom(
                        &note_magic(&rule.head.pred),
                        bound_head_args(&rule.head, ap),
                    ));
                }
                for ef in sp.factors.iter().filter(|f| !is_idb(&f.atom.pred)) {
                    factors.push(Factor::wrapped(
                        &ef.atom.pred,
                        ef.atom.args.clone(),
                        dfn.clone(),
                    ));
                }
                let condition = restrict_formula(&sp.condition, &bound);
                let r = Rule {
                    head,
                    body: vec![SumProduct::new(factors).with_condition(condition)],
                };
                if !magic_rules.contains(&r) {
                    magic_rules.push(r);
                }
            }
        }
    }
    for r in magic_rules {
        out.rule(r.head, r.body);
    }

    // Guarded (or unguarded all-free) copies of the demanded rules.
    let mut dropped: Vec<String> = vec![];
    for rule in &program.rules {
        let Some(ap) = adorn.get(&rule.head.pred) else {
            if !dropped.contains(&rule.head.pred) {
                dropped.push(rule.head.pred.clone());
            }
            continue;
        };
        let body: Vec<SumProduct<P>> = rule
            .body
            .iter()
            .map(|sp| {
                let mut sp = sp.clone();
                if guarded(&rule.head.pred) {
                    sp.factors.insert(
                        0,
                        Factor::atom(
                            &note_magic(&rule.head.pred),
                            bound_head_args(&rule.head, ap),
                        ),
                    );
                }
                sp
            })
            .collect();
        out.rule(rule.head.clone(), body);
    }

    Ok(DemandProgram {
        program: out,
        magic_preds,
        dropped_preds: dropped,
        adornments: adorn,
        domain_enumerated,
        query: query.clone(),
    })
}

/// Whether this sum-product has a variable no join step can bind —
/// mirroring the engine compiler's binding rules: plain `Var` arguments
/// of factors and conjunctive guard atoms bind, `Var = const` spine
/// equalities pre-bind, and key-function arguments bind **nothing**
/// (they are evaluated, not inverted). Leftover variables are
/// enumerated over the active domain (`Plan::fill` in the engine, ADom
/// enumeration in the relational backend).
fn sp_enumerates<P>(rule: &Rule<P>, sp: &SumProduct<P>) -> bool {
    let mut bound: BTreeSet<Var> = BTreeSet::new();
    equality_spine_vars(&sp.condition, &mut bound);
    let plain = |atom: &Atom, bound: &mut BTreeSet<Var>| {
        for t in &atom.args {
            if let Term::Var(v) = t {
                bound.insert(*v);
            }
        }
    };
    for f in &sp.factors {
        plain(&f.atom, &mut bound);
    }
    for a in sp.condition.conjunctive_atoms() {
        plain(a, &mut bound);
    }
    let mut all: Vec<Var> = vec![];
    rule.head.vars(&mut all);
    for v in sp.vars() {
        if !all.contains(&v) {
            all.push(v);
        }
    }
    all.iter().any(|v| !bound.contains(v))
}

/// The head arguments at the adornment's bound positions (the magic
/// atom's argument list, used identically in magic-rule bodies and
/// guarded-rule factors).
fn bound_head_args(head: &Atom, adornment: &[bool]) -> Vec<Term> {
    head.args
        .iter()
        .zip(adornment)
        .filter(|(_, b)| **b)
        .map(|(t, _)| t.clone())
        .collect()
}

/// Whether every variable of `t` is bound (constants are always bound;
/// a key-function term is bound iff its variables are — the function is
/// *evaluated*, never inverted).
fn term_bound(t: &Term, bound: &BTreeSet<Var>) -> bool {
    let mut vars = vec![];
    t.vars(&mut vars);
    vars.iter().all(|v| bound.contains(v))
}

/// The variables bound inside one sum-product, for demand purposes:
/// head variables at bound positions, `Var = const` equalities on the
/// conjunctive spine, and every variable of a non-IDB factor or a
/// conjunctive Boolean guard (all of which travel into the magic rule
/// body, so the rewrite can always evaluate them).
fn bound_vars<P>(
    rule: &Rule<P>,
    head_adornment: &[bool],
    sp: &SumProduct<P>,
    is_idb: &impl Fn(&str) -> bool,
) -> BTreeSet<Var> {
    let mut bound: BTreeSet<Var> = BTreeSet::new();
    for (t, b) in rule.head.args.iter().zip(head_adornment) {
        if *b {
            if let Term::Var(v) = t {
                bound.insert(*v);
            }
            // A constant or key-function head term at a bound position
            // restricts the match but binds no variable (the function
            // is not invertible).
        }
    }
    equality_spine_vars(&sp.condition, &mut bound);
    let mut scratch: Vec<Var> = vec![];
    for f in sp.factors.iter().filter(|f| !is_idb(&f.atom.pred)) {
        f.atom.vars(&mut scratch);
    }
    for a in sp.condition.conjunctive_atoms() {
        a.vars(&mut scratch);
    }
    bound.extend(scratch);
    bound
}

/// `Var = const` bindings on the conjunctive spine.
fn equality_spine_vars(phi: &Formula, out: &mut BTreeSet<Var>) {
    match phi {
        Formula::And(a, b) => {
            equality_spine_vars(a, out);
            equality_spine_vars(b, out);
        }
        Formula::Cmp(Term::Var(v), CmpOp::Eq, Term::Const(_))
        | Formula::Cmp(Term::Const(_), CmpOp::Eq, Term::Var(v)) => {
            out.insert(*v);
        }
        _ => {}
    }
}

/// Keeps the top-level conjuncts of `phi` whose variables are all
/// bound; drops the rest (sound: dropping a restriction only widens
/// demand).
fn restrict_formula(phi: &Formula, bound: &BTreeSet<Var>) -> Formula {
    match phi {
        Formula::And(a, b) => restrict_formula(a, bound).and(restrict_formula(b, bound)),
        other => {
            let mut vars = vec![];
            other.vars(&mut vars);
            if vars.iter().all(|v| bound.contains(v)) {
                other.clone()
            } else {
                Formula::True
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::relational::relational_seminaive_eval;
    use crate::examples_lib as ex;
    use crate::query::QueryArg;
    use crate::relation::{BoolDatabase, Database, Relation};
    use crate::tup;
    use dlo_pops::{MinNat, PreSemiring, Trop};

    #[test]
    fn sssp_point_query_adorns_and_seeds() {
        let (program, _) = ex::sssp_trop("a");
        let q = Query::point("L", vec!["d".into()]);
        let dp = magic_rewrite(&program, &q).unwrap();
        assert_eq!(dp.adornments["L"], vec![true]);
        assert_eq!(dp.magic_preds, vec![magic_pred("L")]);
        assert!(dp.dropped_preds.is_empty());
        // Seed + one magic rule + the guarded original rule.
        assert_eq!(dp.program.rules.len(), 3);
        let seed = &dp.program.rules[0];
        assert_eq!(seed.head.pred, magic_pred("L"));
        assert_eq!(seed.head.args, vec![Term::c("d")]);
        // The magic rule passes bindings backwards through E(z, x).
        let magic = &dp.program.rules[1];
        assert_eq!(magic.head.pred, magic_pred("L"));
        assert_eq!(magic.body[0].factors.len(), 2);
        assert_eq!(
            magic.body[0].factors[1]
                .func
                .as_ref()
                .unwrap()
                .name
                .as_ref(),
            DEMAND_FN
        );
        // Guarded rule: magic factor prepended to both sum-products.
        let guarded = &dp.program.rules[2];
        assert!(guarded
            .body
            .iter()
            .all(|sp| sp.factors[0].atom.pred == magic_pred("L")));
    }

    #[test]
    fn rewritten_fixpoint_restricts_to_the_original() {
        // Relational semi-naive on the rewritten program (Trop is
        // idempotent, so set-valued clamping is not needed) must agree
        // with the full fixpoint on every demanded row.
        let (program, edb) = ex::sssp_trop("a");
        let bools = BoolDatabase::new();
        let full = relational_seminaive_eval(&program, &edb, &bools, 1000).unwrap();
        let q = Query::point("L", vec!["d".into()]);
        let dp = magic_rewrite(&program, &q).unwrap();
        let out = relational_seminaive_eval(&dp.program, &edb, &bools, 1000).unwrap();
        let l = out.get("L").expect("demanded rows derived");
        // Every demanded row carries its exact full-fixpoint value…
        for (t, v) in l.support() {
            assert_eq!(full.get("L").unwrap().get(t), v.clone(), "row {t:?}");
        }
        // …and the query row is among them.
        assert_eq!(l.get(&tup!["d"]), Trop::finite(8.0));
    }

    #[test]
    fn quadratic_tc_collapses_to_all_free() {
        // T(x,y) :- E(x,y) + T(x,z) * T(z,y): the second occurrence's z
        // is bound by nothing we pass bindings through, so the meet
        // weakens T to all-free — full computation, no guards.
        let program = ex::quadratic_tc_program::<Trop>();
        let q = Query::new("T", vec![QueryArg::bound("a"), QueryArg::Free]);
        let dp = magic_rewrite(&program, &q).unwrap();
        assert_eq!(dp.adornments["T"], vec![false, false]);
        assert!(dp.magic_preds.is_empty());
        assert_eq!(dp.program.rules.len(), program.rules.len());
    }

    #[test]
    fn sink_bound_apsp_demands_predecessors() {
        // Query T(X, "d") on APSP: adornment fb; demand flows backwards
        // through E(z, y) with y bound.
        let program = ex::apsp_program::<Trop>();
        let q = Query::new("T", vec![QueryArg::Free, QueryArg::bound("d")]);
        let dp = magic_rewrite(&program, &q).unwrap();
        assert_eq!(dp.adornments["T"], vec![false, true]);
        let seed = &dp.program.rules[0];
        assert_eq!(seed.head.args, vec![Term::c("d")]);
    }

    #[test]
    fn unreachable_idbs_are_dropped() {
        let mut program = ex::apsp_program::<Trop>();
        program.rule(
            Atom::new("Unrelated", vec![Term::v(0)]),
            vec![SumProduct::new(vec![Factor::atom("F", vec![Term::v(0)])])],
        );
        let q = Query::new("T", vec![QueryArg::bound("a"), QueryArg::Free]);
        let dp = magic_rewrite(&program, &q).unwrap();
        assert_eq!(dp.dropped_preds, vec!["Unrelated".to_string()]);
        assert!(dp.program.rules.iter().all(|r| r.head.pred != "Unrelated"));
    }

    #[test]
    fn bool_guards_pass_bindings() {
        // BOM: T(x) :- C(x) + { T(y) | E(x, y) } — E is a Boolean guard
        // and must bind y for the magic rule.
        let program: Program<MinNat> = ex::bom_program();
        let q = Query::point("T", vec!["a".into()]);
        let dp = magic_rewrite(&program, &q).unwrap();
        assert_eq!(dp.adornments["T"], vec![true]);
        let magic = dp
            .program
            .rules
            .iter()
            .find(|r| r.head.pred == magic_pred("T") && !r.body[0].factors.is_empty())
            .expect("magic propagation rule");
        // Condition kept: E(x, y) has only bound variables.
        assert!(format!("{:?}", magic.body[0].condition).contains('E'));
    }

    #[test]
    fn domain_enumerated_rules_force_the_all_free_fallback() {
        // A(X) :- B(X + 1): nothing binds X, so it is enumerated over
        // the active domain — guarding A with a magic factor would
        // re-scope X to the demanded set and break the restriction
        // invariant. The rewrite must detect this and skip the guards.
        use crate::ast::KeyFn;
        let mut p = Program::<Trop>::new();
        p.rule(
            Atom::new("A", vec![Term::v(0)]),
            vec![SumProduct::new(vec![Factor::atom(
                "B",
                vec![Term::Apply(KeyFn::AddInt(1), Box::new(Term::v(0)))],
            )])],
        );
        p.rule(
            Atom::new("B", vec![Term::v(0)]),
            vec![SumProduct::new(vec![Factor::atom("V", vec![Term::v(0)])])],
        );
        let q = Query::point("A", vec![2i64.into()]);
        let dp = magic_rewrite(&p, &q).unwrap();
        assert!(dp.domain_enumerated);
        assert!(dp.magic_preds.is_empty());
        assert_eq!(dp.adornments["A"], vec![false]);
        // The guard is scoped to query-REACHABLE rules: the same shape
        // hidden behind an unreachable predicate does not fire it.
        let mut p2 = p.clone();
        p2.rule(
            Atom::new("C", vec![Term::v(0)]),
            vec![SumProduct::new(vec![Factor::atom("W", vec![Term::v(0)])])],
        );
        let qc = Query::point("C", vec![1i64.into()]);
        let dp2 = magic_rewrite(&p2, &qc).unwrap();
        assert!(!dp2.domain_enumerated);
        assert_eq!(dp2.magic_preds, vec![magic_pred("C")]);
        assert!(dp2.dropped_preds.contains(&"A".to_string()));
    }

    #[test]
    fn query_errors_are_reported() {
        let (program, _) = ex::sssp_trop("a");
        let bad = Query::point("Nope", vec!["a".into()]);
        assert!(matches!(
            magic_rewrite(&program, &bad),
            Err(DemandError::UnknownPredicate(_))
        ));
        let bad = Query::point("L", vec!["a".into(), "b".into()]);
        assert!(matches!(
            magic_rewrite(&program, &bad),
            Err(DemandError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn all_free_query_is_the_identity_modulo_dropping() {
        let (program, edb) = ex::sssp_trop("a");
        let q = Query::all("L", 1);
        let dp = magic_rewrite(&program, &q).unwrap();
        assert!(dp.magic_preds.is_empty());
        let bools = BoolDatabase::new();
        let full = relational_seminaive_eval(&program, &edb, &bools, 1000).unwrap();
        let got = relational_seminaive_eval(&dp.program, &edb, &bools, 1000).unwrap();
        assert_eq!(full, got);
    }

    #[test]
    fn demand_fn_collapses_values() {
        let f = demand_fn::<Trop>();
        assert_eq!(f.apply(&Trop::finite(7.0)), Trop::one());
        assert_eq!(f.apply(&Trop::INF), Trop::zero());
        let _ = Database::<Trop>::new(); // keep the import used on all paths
        let _ = Relation::<Trop>::new(1);
    }
}
