//! The paper's example programs as reusable constructors.
//!
//! Each function returns a ready-to-run `(Program, EDB)` pair matching a
//! numbered example of the paper; the reproduction harness and the test
//! suite both build on these.

use crate::ast::{Atom, Factor, Program, SumProduct, Term, UnaryFn};
use crate::formula::{CmpOp, Formula};
use crate::relation::{bool_relation, BoolDatabase, Database, Relation};
use crate::tup;
use crate::value::Constant;
use dlo_pops::{LiftedReal, NNReal, Pops, Three, Trop};

/// The single-source reachability/shortest-path program of Example 4.1,
/// generic over the POPS:
///
/// `L(x) :- [x = source] ⊕ ⊕_z ( L(z) ⊗ E(z, x) )`
///
/// The indicator `[x = source]` is the conditional sum-product
/// `{ 1 | x = source }`.
pub fn single_source_program<P: Pops>(source: &str) -> Program<P> {
    let mut p = Program::new();
    p.rule(
        Atom::new("L", vec![Term::v(0)]),
        vec![
            SumProduct::new(vec![]).with_condition(Formula::cmp(
                Term::v(0),
                CmpOp::Eq,
                Term::c(source),
            )),
            SumProduct::new(vec![
                Factor::atom("L", vec![Term::v(1)]),
                Factor::atom("E", vec![Term::v(1), Term::v(0)]),
            ]),
        ],
    );
    p
}

/// The edge relation of Fig. 2(a): a→b (1), b→a (2), b→c (3), c→d (4),
/// a→c (5), as a `P`-relation with an embedding of edge weights.
///
/// The edge directions are pinned by the paper's computed answers: the
/// `Trop⁺` trace works for either `b→a` or `d→b` as the weight-2 edge,
/// but `Trop⁺₁`'s `L(a) = {{0, 3}}` (a second a-to-a walk of length 3)
/// requires the cycle `a→b→a`.
pub fn fig2a_graph<P: Pops>(weight: impl Fn(f64) -> P) -> Database<P> {
    let mut db = Database::new();
    db.insert(
        "E",
        Relation::from_pairs(
            2,
            vec![
                (tup!["a", "b"], weight(1.0)),
                (tup!["b", "a"], weight(2.0)),
                (tup!["b", "c"], weight(3.0)),
                (tup!["c", "d"], weight(4.0)),
                (tup!["a", "c"], weight(5.0)),
            ],
        ),
    );
    db
}

/// Example 4.1 over `Trop⁺` on the Fig. 2(a) graph (SSSP from `source`).
pub fn sssp_trop(source: &str) -> (Program<Trop>, Database<Trop>) {
    (single_source_program(source), fig2a_graph(Trop::finite))
}

/// SSSP over `Trop⁺` on an arbitrary edge list with a weight function.
pub fn sssp_trop_graph(
    source: &str,
    edges: &[(&str, &str)],
    weight: impl Fn(usize) -> f64,
) -> (Program<Trop>, Database<Trop>) {
    let mut db = Database::new();
    db.insert(
        "E",
        Relation::from_pairs(
            2,
            edges
                .iter()
                .enumerate()
                .map(|(i, (a, b))| (tup![*a, *b], Trop::finite(weight(i)))),
        ),
    );
    (single_source_program(source), db)
}

/// The all-pairs shortest-path program of Example 1.1 (eq. 3):
///
/// `T(x, y) :- E(x, y) ⊕ ⊕_z ( T(x, z) ⊗ E(z, y) )`
pub fn apsp_program<P: Pops>() -> Program<P> {
    let mut p = Program::new();
    p.rule(
        Atom::new("T", vec![Term::v(0), Term::v(1)]),
        vec![
            SumProduct::new(vec![Factor::atom("E", vec![Term::v(0), Term::v(1)])]),
            SumProduct::new(vec![
                Factor::atom("T", vec![Term::v(0), Term::v(2)]),
                Factor::atom("E", vec![Term::v(2), Term::v(1)]),
            ]),
        ],
    );
    p
}

/// An APSP instance over `Trop⁺` from a weighted edge list.
pub fn apsp_trop(edges: &[(&str, &str, f64)]) -> (Program<Trop>, Database<Trop>) {
    let mut db = Database::new();
    db.insert(
        "E",
        Relation::from_pairs(
            2,
            edges
                .iter()
                .map(|(a, b, w)| (tup![*a, *b], Trop::finite(*w))),
        ),
    );
    (apsp_program(), db)
}

/// The quadratic (non-linear) transitive closure of Example 6.6 over 𝔹:
///
/// `T(x, y) :- E(x, y) ∨ ∃z ( T(x, z) ∧ T(z, y) )`
pub fn quadratic_tc_program<P: Pops>() -> Program<P> {
    let mut p = Program::new();
    p.rule(
        Atom::new("T", vec![Term::v(0), Term::v(1)]),
        vec![
            SumProduct::new(vec![Factor::atom("E", vec![Term::v(0), Term::v(1)])]),
            SumProduct::new(vec![
                Factor::atom("T", vec![Term::v(0), Term::v(2)]),
                Factor::atom("T", vec![Term::v(2), Term::v(1)]),
            ]),
        ],
    );
    p
}

/// Quadratic transitive closure over 𝔹 from an edge list.
pub fn quadratic_tc_bool(
    edges: &[(&str, &str)],
) -> (Program<dlo_pops::Bool>, Database<dlo_pops::Bool>) {
    let mut db = Database::new();
    db.insert(
        "E",
        bool_relation(2, edges.iter().map(|(a, b)| tup![*a, *b])),
    );
    (quadratic_tc_program(), db)
}

/// Linear transitive closure (eq. 2) over 𝔹 from an edge list.
pub fn linear_tc_bool(
    edges: &[(&str, &str)],
) -> (Program<dlo_pops::Bool>, Database<dlo_pops::Bool>) {
    let mut db = Database::new();
    db.insert(
        "E",
        bool_relation(2, edges.iter().map(|(a, b)| tup![*a, *b])),
    );
    (apsp_program(), db)
}

/// The bill-of-material program of Example 4.2, generic over the POPS:
///
/// `T(x) :- C(x) ⊕ ⊕_y { T(y) | E(x, y) }`
///
/// `E` is a Boolean EDB (the subpart graph), `C` a `P`-relation of costs.
pub fn bom_program<P: Pops>() -> Program<P> {
    let mut p = Program::new();
    p.rule(
        Atom::new("T", vec![Term::v(0)]),
        vec![
            SumProduct::new(vec![Factor::atom("C", vec![Term::v(0)])]),
            SumProduct::new(vec![Factor::atom("T", vec![Term::v(1)])])
                .with_condition(Formula::atom("E", vec![Term::v(0), Term::v(1)])),
        ],
    );
    p
}

/// The Fig. 2(b) subpart graph: a↔b, a→c, b→c, c→d.
pub fn fig2b_bool_edges() -> BoolDatabase {
    let mut db = BoolDatabase::new();
    db.insert(
        "E",
        bool_relation(
            2,
            vec![
                tup!["a", "b"],
                tup!["a", "c"],
                tup!["b", "a"],
                tup!["b", "c"],
                tup!["c", "d"],
            ],
        ),
    );
    db
}

/// Example 4.2 over the lifted reals: costs `C(a)=C(b)=C(c)=1`, `C(d)=10`
/// (Fig. 2(b)); converges in 3 steps to `T = (⊥, ⊥, 11, 10)`.
pub fn bom_lifted_reals() -> (Program<LiftedReal>, Database<LiftedReal>, BoolDatabase) {
    use dlo_pops::lifted::lreal;
    let mut pops = Database::new();
    pops.insert(
        "C",
        Relation::from_pairs(
            1,
            vec![
                (tup!["a"], lreal(1.0)),
                (tup!["b"], lreal(1.0)),
                (tup!["c"], lreal(1.0)),
                (tup!["d"], lreal(10.0)),
            ],
        ),
    );
    (bom_program(), pops, fig2b_bool_edges())
}

/// Example 4.2 over ℕ (diverges: a and b lie on a cycle).
pub fn bom_naturals() -> (
    Program<dlo_pops::Nat>,
    Database<dlo_pops::Nat>,
    BoolDatabase,
) {
    use dlo_pops::Nat;
    let mut pops = Database::new();
    pops.insert(
        "C",
        Relation::from_pairs(
            1,
            vec![
                (tup!["a"], Nat(1)),
                (tup!["b"], Nat(1)),
                (tup!["c"], Nat(1)),
                (tup!["d"], Nat(10)),
            ],
        ),
    );
    (bom_program(), pops, fig2b_bool_edges())
}

/// The company-control program of Example 4.3, expressed over the single
/// POPS `ℝ₊` with the monotone threshold indicator:
///
/// ```text
/// CV(x, z, y) :- [x = z] ⊗ S(x, y)  ⊕  thr(C(x, z)) ⊗ S(z, y)
/// T(x, y)     :- ⊕_z { CV(x, z, y) | Company(z) }
/// C(x, y)     :- thr₀.₅(T(x, y))
/// ```
///
/// where `thr₀.₅(v) = [v > 0.5]` maps the accumulated share weight back
/// into 0/1. `C` is an IDB wrapped in the threshold on *use*.
pub fn company_control(
    companies: &[&str],
    shares: &[(&str, &str, f64)],
) -> (Program<NNReal>, Database<NNReal>, BoolDatabase) {
    let thr = UnaryFn::new("thr0.5", |v: &NNReal| v.threshold(0.5));
    let mut p = Program::new();
    // T(x,y) :- Σ_z {CV terms}: we inline CV to keep one stratum:
    // T(x,y) :- {S(x,y)} ⊕ ⊕_z { thr(T'(x,z)) ⊗ S(z,y) | Company(z) }
    // with T'(x,z) the controlled-transfer value; the paper's C(x,z) is
    // thr(T(x,z)), applied on use.
    p.rule(
        Atom::new("T", vec![Term::v(0), Term::v(1)]),
        vec![
            SumProduct::new(vec![Factor::atom("S", vec![Term::v(0), Term::v(1)])]),
            SumProduct::new(vec![
                Factor::wrapped("T", vec![Term::v(0), Term::v(2)], thr),
                Factor::atom("S", vec![Term::v(2), Term::v(1)]),
            ])
            .with_condition(
                Formula::atom("Company", vec![Term::v(2)]).and(Formula::cmp(
                    Term::v(2),
                    CmpOp::Ne,
                    Term::v(0),
                )),
            ),
        ],
    );
    let mut pops = Database::new();
    pops.insert(
        "S",
        Relation::from_pairs(
            2,
            shares
                .iter()
                .map(|(a, b, w)| (tup![*a, *b], NNReal::of(*w))),
        ),
    );
    let mut bools = BoolDatabase::new();
    bools.insert(
        "Company",
        bool_relation(1, companies.iter().map(|c| tup![*c])),
    );
    (p, pops, bools)
}

/// The prefix-sum program of Sec. 4.5 over the lifted reals, using a case
/// statement and the interpreted key function `i - 1`:
///
/// `W(i) :- case i = 0 : V(0) ; i < n : W(i-1) + V(i)`
pub fn prefix_sum(values: &[f64]) -> (Program<LiftedReal>, Database<LiftedReal>) {
    use crate::ast::{desugar_case, CaseBranch, KeyFn};
    use dlo_pops::lifted::lreal;
    let n = values.len() as i64;
    let body = desugar_case(
        vec![
            CaseBranch {
                condition: Formula::cmp(Term::v(0), CmpOp::Eq, Term::c(0)),
                body: vec![SumProduct::new(vec![Factor::atom("V", vec![Term::c(0)])])],
            },
            CaseBranch {
                condition: Formula::cmp(Term::v(0), CmpOp::Lt, Term::c(n)),
                // W(i-1) ⊕ V(i): a sum of two sum-products (⊕ is the
                // arithmetic + of the lifted reals here).
                body: vec![
                    SumProduct::new(vec![Factor::atom(
                        "W",
                        vec![Term::Apply(KeyFn::AddInt(-1), Box::new(Term::v(0)))],
                    )]),
                    SumProduct::new(vec![Factor::atom("V", vec![Term::v(0)])]),
                ],
            },
        ],
        vec![],
    );
    let mut p = Program::new();
    p.rule(Atom::new("W", vec![Term::v(0)]), body);
    let mut db = Database::new();
    db.insert(
        "V",
        Relation::from_pairs(
            1,
            values
                .iter()
                .enumerate()
                .map(|(i, v)| (tup![i as i64], lreal(*v))),
        ),
    );
    (p, db)
}

/// The Sec. 4.5 prefix program in *head-keyed* form, generic over the
/// POPS:
///
/// `W(0) :- V(0)` and `W(i + 1) :- W(i) ⊗ V(i + 1)`
///
/// Where [`prefix_sum`] looks *backwards* with a body key function
/// (`W(i-1)`), this version computes the next key **in the head** — the
/// form that exercises grounding-time/emit-time key functions and, on
/// the execution engine, dynamic interning of head-minted constants.
/// Each key has exactly one derivation, so over any POPS the fixpoint is
/// `W(i) = V(0) ⊗ … ⊗ V(i)`: genuine prefix sums over `Trop⁺` (⊗ = +)
/// or the lifted reals.
pub fn prefix_sum_keyed<P: Pops>(
    values: &[f64],
    lift: impl Fn(f64) -> P,
) -> (Program<P>, Database<P>) {
    use crate::ast::KeyFn;
    let mut p = Program::new();
    p.rule(
        Atom::new("W", vec![Term::c(0)]),
        vec![SumProduct::new(vec![Factor::atom("V", vec![Term::c(0)])])],
    );
    p.rule(
        Atom::new(
            "W",
            vec![Term::Apply(KeyFn::AddInt(1), Box::new(Term::v(0)))],
        ),
        vec![SumProduct::new(vec![
            Factor::atom("W", vec![Term::v(0)]),
            Factor::atom(
                "V",
                vec![Term::Apply(KeyFn::AddInt(1), Box::new(Term::v(0)))],
            ),
        ])],
    );
    let mut db = Database::new();
    db.insert(
        "V",
        Relation::from_pairs(
            1,
            values
                .iter()
                .enumerate()
                .map(|(i, v)| (tup![i as i64], lift(*v))),
        ),
    );
    (p, db)
}

/// The keys-to-values example of Sec. 4.5 over `Trop⁺`:
///
/// `ShortestLength(x, y) :- min_c { [Length(x, y, c)] + c }`
///
/// where `Length` is a Boolean EDB and the key `c` becomes a tropical
/// value. Implemented with a per-constant coefficient grounding: the
/// harness materializes `{ c | Length(x,y,c) }` into a Trop EDB `Len` with
/// value `c` at tuple `(x, y, c)`, then sums it out — which is exactly the
/// paper's desugaring of key-to-value casts.
pub fn shortest_length(lengths: &[(&str, &str, i64)]) -> (Program<Trop>, Database<Trop>) {
    let mut p = Program::new();
    p.rule(
        Atom::new("ShortestLength", vec![Term::v(0), Term::v(1)]),
        vec![SumProduct::new(vec![Factor::atom(
            "Len",
            vec![Term::v(0), Term::v(1), Term::v(2)],
        )])],
    );
    let mut db = Database::new();
    db.insert(
        "Len",
        Relation::from_pairs(
            3,
            lengths
                .iter()
                .map(|(x, y, c)| (tup![*x, *y, *c], Trop::finite(*c as f64))),
        ),
    );
    (p, db)
}

/// The win-move program of Sec. 7 over `THREE`:
///
/// `Win(x) :- ⊕_y ( E(x, y) ⊗ not(Win(y)) )`
///
/// with `E` Boolean and `not` the monotone Kleene negation.
pub fn win_move_three(edges: &[(&str, &str)]) -> (Program<Three>, BoolDatabase) {
    let notf = UnaryFn::new("not", |x: &Three| x.not());
    let mut p = Program::new();
    p.rule(
        Atom::new("Win", vec![Term::v(0)]),
        vec![
            SumProduct::new(vec![Factor::wrapped("Win", vec![Term::v(1)], notf)])
                .with_condition(Formula::atom("E", vec![Term::v(0), Term::v(1)])),
        ],
    );
    let mut bools = BoolDatabase::new();
    bools.insert(
        "E",
        bool_relation(2, edges.iter().map(|(a, b)| tup![*a, *b])),
    );
    (p, bools)
}

/// The Fig. 4 win-move graph: a→b, a→c, b→a, c→d, c→e, d→e, e→f.
pub fn fig4_edges() -> Vec<(&'static str, &'static str)> {
    vec![
        ("a", "b"),
        ("a", "c"),
        ("b", "a"),
        ("c", "d"),
        ("c", "e"),
        ("d", "e"),
        ("e", "f"),
    ]
}

/// Constructs an arbitrary-POPS relation from string-keyed unary pairs.
pub fn unary_relation<P: Pops>(pairs: &[(&str, P)]) -> Relation<P> {
    Relation::from_pairs(1, pairs.iter().map(|(k, v)| (tup![*k], v.clone())))
}

/// A named constant helper (re-exported for harness code).
pub fn konst(name: &str) -> Constant {
    Constant::str(name)
}
