//! # dlo-core — the datalog° language and engine
//!
//! The paper's primary contribution (Sec. 2.4, 4, 6) as an executable
//! library:
//!
//! * [`value`] / [`relation`] — the key space, `P`-relations with finite
//!   support, `P`-instances;
//! * [`ast`] / [`formula`] — sum-sum-product rules with conditionals `Φ`,
//!   case statements, interpreted key- and value-space functions;
//! * [`ground`](mod@ground) — grounding to the provenance-polynomial system of
//!   eq. (27), in dense (paper-literal) and sparse (support-join) modes;
//! * [`eval`] — the naïve algorithm (Algorithm 1) with iteration traces,
//!   and the semi-naïve algorithm (Algorithm 3 + the differential rule of
//!   Theorem 6.5) for complete distributive dioids;
//! * [`query`](mod@query) / [`demand`](mod@demand) — goal atoms
//!   (`?- T("a", Y).`) and the magic-set rewrite that restricts a
//!   program to what a query demands (Bool-lattice magic predicates
//!   guarding POPS rules — sound for any POPS);
//! * [`examples_lib`] — every example program of the paper as a
//!   constructor (SSSP, APSP, bill-of-material, company control,
//!   prefix-sum, win-move, …).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod demand;
pub mod diagnostics;
pub mod display;
pub mod edit;
pub mod eval;
pub mod examples_lib;
pub mod formula;
pub mod ground;
pub mod parser;
pub mod query;
pub mod relation;
pub mod relops;
pub mod strata;
pub mod value;

pub use ast::{Atom, Factor, KeyFn, Program, Rule, SumProduct, Term, UnaryFn, Var};
pub use demand::{magic_pred, magic_rewrite, DemandError, DemandProgram};
pub use display::{render_program, render_rule, PrintValue};
pub use edit::{Edit, FactDelete, FactInsert};
pub use eval::naive::{naive_eval, naive_eval_sparse, naive_eval_system, naive_eval_trace};
pub use eval::relational::{relational_naive_eval, relational_seminaive_eval};
pub use eval::seminaive::{seminaive_eval, seminaive_eval_system, WorkStats};
pub use eval::{BudgetKind, CancelToken, EvalBudget, EvalError, EvalOutcome, Trace, DEFAULT_CAP};
pub use formula::{CmpOp, Formula};
pub use ground::{ground, ground_sparse, GroundSystem};
pub use parser::{
    parse_program, parse_program_with_queries, parse_query, ParseValue, ProgramParser,
};
pub use query::{Query, QueryArg};
pub use relation::{bool_relation, BoolDatabase, Database, Relation};
pub use value::{Constant, GroundAtom, Tuple};
