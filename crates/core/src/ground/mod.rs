//! Grounding datalog° programs (Sec. 4.3).
//!
//! Grounding turns a program plus an EDB instance into the vector-valued
//! polynomial system `x_i :- f_i(x₁, …, x_N)` of eq. (27): one POPS
//! variable per ground IDB atom, one provenance polynomial per variable.
//! EDB values are substituted into coefficients during grounding.
//!
//! Two modes (see DESIGN.md):
//!
//! * **dense** (default, always sound): bound variables not pinned by
//!   positive Boolean condition atoms range over the full `D₀` — this is
//!   the paper's semantics verbatim, required for POPS where `0` is not
//!   absorbing (e.g. the lifted reals, where a `⊥`-valued EDB coefficient
//!   must poison its sum);
//! * **sparse** (requires a [`NaturallyOrdered`] semiring): additionally
//!   joins on the supports of EDB POPS atoms and drops zero-coefficient
//!   monomials — sound because `0 = ⊥` is absorbing, and the standard
//!   trick for scaling to large instances.

pub mod poly;

use crate::ast::{Atom, Program, Term, Var};
use crate::formula::{eval_args, eval_term, Valuation};
use crate::relation::{BoolDatabase, Database};
use crate::value::{Constant, GroundAtom, Tuple};
use dlo_pops::{NaturallyOrdered, Pops};
use poly::{Monomial, Polynomial, VarOcc};
use std::collections::{BTreeMap, BTreeSet};

/// The grounded polynomial system of eq. (27).
#[derive(Clone, Debug)]
pub struct GroundSystem<P> {
    /// Ground IDB atoms, indexed by variable number.
    pub atoms: Vec<GroundAtom>,
    /// Reverse index.
    pub index: BTreeMap<GroundAtom, usize>,
    /// `polys[i]` defines variable `i`; `None` means the atom occurs only
    /// in bodies and is never derived — its value stays `⊥`.
    pub polys: Vec<Option<Polynomial<P>>>,
}

impl<P: Pops> GroundSystem<P> {
    fn new() -> Self {
        GroundSystem {
            atoms: vec![],
            index: BTreeMap::new(),
            polys: vec![],
        }
    }

    fn intern(&mut self, atom: GroundAtom) -> usize {
        if let Some(&ix) = self.index.get(&atom) {
            return ix;
        }
        let ix = self.atoms.len();
        self.atoms.push(atom.clone());
        self.index.insert(atom, ix);
        self.polys.push(None);
        ix
    }

    /// Number of POPS variables (ground IDB atoms), `N` in the paper.
    pub fn num_vars(&self) -> usize {
        self.atoms.len()
    }

    /// Total number of monomials across all polynomials.
    pub fn num_monomials(&self) -> usize {
        self.polys.iter().flatten().map(|p| p.monomials.len()).sum()
    }

    /// Applies the grounded immediate consequence operator once.
    pub fn apply_ico(&self, x: &[P]) -> Vec<P> {
        self.polys
            .iter()
            .enumerate()
            .map(|(i, p)| match p {
                Some(p) => p.eval(x),
                None => x[i].clone(), // never-derived atoms stay put (⊥)
            })
            .collect()
    }

    /// The all-`⊥` starting vector.
    pub fn bottom(&self) -> Vec<P> {
        vec![P::bottom(); self.num_vars()]
    }

    /// Whether the grounded system is linear (every polynomial affine).
    pub fn is_affine(&self) -> bool {
        self.polys.iter().flatten().all(|p| p.is_affine())
    }

    /// Packs an assignment vector back into per-predicate relations.
    pub fn to_database(&self, x: &[P]) -> Database<P> {
        let mut db = Database::new();
        for (i, atom) in self.atoms.iter().enumerate() {
            if !x[i].is_bottom() {
                let arity = atom.tuple.len();
                db.get_or_insert(&atom.pred, arity)
                    .set(atom.tuple.clone(), x[i].clone());
            }
        }
        db
    }
}

/// Grounding configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct GroundOptions {
    /// Join on EDB POPS supports and drop zero-coefficient monomials
    /// (sound only for naturally ordered semirings — enforced by using
    /// [`ground_sparse`]).
    sparse: bool,
}

/// Grounds a program (dense mode — sound for every POPS).
pub fn ground<P: Pops>(
    program: &Program<P>,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
) -> GroundSystem<P> {
    ground_with(program, pops_edb, bool_edb, GroundOptions { sparse: false })
}

/// Grounds a program in sparse mode; the `NaturallyOrdered` bound witnesses
/// `⊥ = 0` with absorbing `0`, which makes support-joins and
/// zero-coefficient dropping semantics-preserving.
pub fn ground_sparse<P: NaturallyOrdered>(
    program: &Program<P>,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
) -> GroundSystem<P> {
    ground_with(program, pops_edb, bool_edb, GroundOptions { sparse: true })
}

fn ground_with<P: Pops>(
    program: &Program<P>,
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    opts: GroundOptions,
) -> GroundSystem<P> {
    // D₀: active domains plus program constants (Sec. 4.3).
    let mut adom: BTreeSet<Constant> = pops_edb.active_domain();
    adom.extend(bool_edb.active_domain());
    adom.extend(program.constants());
    let adom: Vec<Constant> = adom.into_iter().collect();

    let idb_preds: BTreeSet<String> = program.idb_preds().into_iter().collect();
    let idb_arities: BTreeMap<String, usize> = program
        .rules
        .iter()
        .map(|r| (r.head.pred.clone(), r.head.args.len()))
        .collect();
    let mut sys = GroundSystem::new();

    for rule in &program.rules {
        for sp in &rule.body {
            // Variables of this grounding task: head vars ∪ sum-product vars.
            let mut vars: Vec<Var> = vec![];
            rule.head.vars(&mut vars);
            for v in sp.vars() {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }

            // Binding atoms drive the join: positive Boolean condition
            // atoms always; EDB POPS factors additionally in sparse mode.
            let mut binding: Vec<(&Atom, BindSource)> = sp
                .condition
                .conjunctive_atoms()
                .into_iter()
                .map(|a| (a, BindSource::Bool))
                .collect();
            if opts.sparse {
                for f in &sp.factors {
                    if !idb_preds.contains(&f.atom.pred) {
                        binding.push((&f.atom, BindSource::Pops));
                    }
                }
            }

            let mut seen: BTreeSet<Vec<Constant>> = BTreeSet::new();
            enumerate(
                &binding,
                &vars,
                &adom,
                pops_edb,
                bool_edb,
                &mut Valuation::new(),
                0,
                &mut |theta| {
                    // Deduplicate valuations (wildcard positions in binding
                    // atoms can replay the same θ).
                    let key: Vec<Constant> = vars
                        .iter()
                        .map(|v| theta.get(v).expect("full valuation").clone())
                        .collect();
                    if !seen.insert(key) {
                        return;
                    }
                    if !sp.condition.eval(theta, bool_edb) {
                        return;
                    }
                    // Build the monomial.
                    let mut coeff = sp.coeff.clone().unwrap_or_else(P::one);
                    let mut occs: Vec<VarOcc<P>> = vec![];
                    for f in &sp.factors {
                        let Some(tuple) = eval_args(&f.atom, theta) else {
                            return; // ill-typed key function: no grounding
                        };
                        if idb_preds.contains(&f.atom.pred) {
                            let var = sys.intern(GroundAtom::new(&f.atom.pred, tuple));
                            occs.push(VarOcc {
                                var,
                                func: f.func.clone(),
                            });
                        } else {
                            let mut v = pops_edb
                                .get(&f.atom.pred)
                                .map(|r| r.get(&tuple))
                                .unwrap_or_else(P::bottom);
                            if let Some(func) = &f.func {
                                v = func.apply(&v);
                            }
                            coeff = coeff.mul(&v);
                        }
                    }
                    if opts.sparse && coeff.is_zero() {
                        return; // 0 is absorbing here: the monomial vanishes
                    }
                    let Some(head_tuple) = eval_args(&rule.head, theta) else {
                        return;
                    };
                    let head = sys.intern(GroundAtom::new(&rule.head.pred, head_tuple));
                    sys.polys[head]
                        .get_or_insert_with(Polynomial::new)
                        .push(Monomial { coeff, occs });
                },
            );
        }
    }

    // Dense mode implements eq. (27) literally: *every* ground IDB atom in
    // GA(τ, D₀) is defined, possibly by the empty polynomial (= the empty
    // sum 0). This matters on POPS where 0 ≠ ⊥ — e.g. win-move over THREE,
    // where a sink node's Win value is 0 (false), not ⊥ (Sec. 7.2). Sparse
    // mode targets naturally ordered semirings where 0 = ⊥ and skips this.
    if !opts.sparse {
        for (pred, arity) in &idb_arities {
            let mut tuple: Vec<usize> = vec![0; *arity];
            if adom.is_empty() && *arity > 0 {
                continue;
            }
            loop {
                let t: Tuple = tuple.iter().map(|&i| adom[i].clone()).collect();
                let ix = sys.intern(GroundAtom::new(pred, t));
                sys.polys[ix].get_or_insert_with(Polynomial::new);
                // Odometer increment over ADom^arity.
                let mut pos = 0;
                loop {
                    if pos == tuple.len() {
                        break;
                    }
                    tuple[pos] += 1;
                    if tuple[pos] < adom.len() {
                        break;
                    }
                    tuple[pos] = 0;
                    pos += 1;
                }
                if pos == tuple.len() {
                    break;
                }
            }
        }
    }
    sys
}

#[derive(Clone, Copy)]
enum BindSource {
    Bool,
    Pops,
}

/// Nested-loop join over the binding atoms, then full-`ADom` enumeration of
/// any still-unbound variables.
#[allow(clippy::too_many_arguments)]
fn enumerate<P: Pops>(
    binding: &[(&Atom, BindSource)],
    vars: &[Var],
    adom: &[Constant],
    pops_edb: &Database<P>,
    bool_edb: &BoolDatabase,
    theta: &mut Valuation,
    depth: usize,
    visit: &mut impl FnMut(&Valuation),
) {
    if depth == binding.len() {
        // Enumerate leftover variables over the active domain.
        fn fill(
            vars: &[Var],
            adom: &[Constant],
            theta: &mut Valuation,
            visit: &mut impl FnMut(&Valuation),
        ) {
            match vars.iter().find(|v| !theta.contains_key(v)) {
                None => visit(theta),
                Some(&v) => {
                    for c in adom {
                        theta.insert(v, c.clone());
                        fill(vars, adom, theta, visit);
                    }
                    theta.remove(&v);
                }
            }
        }
        fill(vars, adom, theta, visit);
        return;
    }

    let (atom, source) = binding[depth];
    // Collect the support tuples of the binding relation.
    let tuples: Vec<Tuple> = match source {
        BindSource::Bool => bool_edb
            .get(&atom.pred)
            .map(|r| r.support().map(|(t, _)| t.clone()).collect())
            .unwrap_or_default(),
        BindSource::Pops => pops_edb
            .get(&atom.pred)
            .map(|r| r.support().map(|(t, _)| t.clone()).collect())
            .unwrap_or_default(),
    };
    'tuples: for tuple in tuples {
        if tuple.len() != atom.args.len() {
            continue; // arity mismatch: no grounding through this atom
        }
        let mut bound_here: Vec<Var> = vec![];
        for (arg, c) in atom.args.iter().zip(tuple.iter()) {
            match arg {
                Term::Var(v) => match theta.get(v) {
                    Some(existing) => {
                        if existing != c {
                            for b in &bound_here {
                                theta.remove(b);
                            }
                            continue 'tuples;
                        }
                    }
                    None => {
                        theta.insert(*v, c.clone());
                        bound_here.push(*v);
                    }
                },
                term => {
                    // Constant or key-function term: filter if evaluable,
                    // wildcard otherwise (re-checked after full binding).
                    if let Some(val) = eval_term(term, theta) {
                        if &val != c {
                            for b in &bound_here {
                                theta.remove(b);
                            }
                            continue 'tuples;
                        }
                    }
                }
            }
        }
        enumerate(
            binding,
            vars,
            adom,
            pops_edb,
            bool_edb,
            theta,
            depth + 1,
            visit,
        );
        for b in &bound_here {
            theta.remove(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Factor, SumProduct};
    use crate::formula::Formula;
    use crate::relation::{bool_relation, Relation};
    use crate::tup;
    use dlo_pops::{LiftedReal, Trop};

    /// SSSP program (Example 4.1): L(x) :- [x=a] ⊕ ⊕_z L(z) ⊗ E(z,x).
    fn sssp_program() -> Program<Trop> {
        let mut p = Program::new();
        p.rule(
            Atom::new("L", vec![Term::v(0)]),
            vec![
                SumProduct::new(vec![]).with_condition(Formula::cmp(
                    Term::v(0),
                    crate::formula::CmpOp::Eq,
                    Term::c("a"),
                )),
                SumProduct::new(vec![
                    Factor::atom("L", vec![Term::v(1)]),
                    Factor::atom("E", vec![Term::v(1), Term::v(0)]),
                ]),
            ],
        );
        p
    }

    fn fig2a_edges() -> Database<Trop> {
        let mut db = Database::new();
        db.insert(
            "E",
            Relation::from_pairs(
                2,
                vec![
                    (tup!["a", "b"], Trop::finite(1.0)),
                    (tup!["b", "c"], Trop::finite(3.0)),
                    (tup!["a", "c"], Trop::finite(5.0)),
                    (tup!["c", "d"], Trop::finite(4.0)),
                    (tup!["d", "b"], Trop::finite(2.0)),
                ],
            ),
        );
        db
    }

    #[test]
    fn ground_sssp_dense_and_sparse_agree_on_fixpoint() {
        let p = sssp_program();
        let edb = fig2a_edges();
        let bools = BoolDatabase::new();
        let dense = ground(&p, &edb, &bools);
        let sparse = ground_sparse(&p, &edb, &bools);
        // Dense has a variable for every L(x), x ∈ ADom (4 atoms);
        // sparse may skip unreachable combinations but fixpoints agree.
        let run = |sys: &GroundSystem<Trop>| {
            let mut x = sys.bottom();
            for _ in 0..20 {
                let nx = sys.apply_ico(&x);
                if nx == x {
                    break;
                }
                x = nx;
            }
            sys.to_database(&x)
        };
        assert_eq!(run(&dense), run(&sparse));
    }

    #[test]
    fn ground_atom_count_dense() {
        let p = sssp_program();
        let sys = ground(&p, &fig2a_edges(), &BoolDatabase::new());
        // L(a), L(b), L(c), L(d): 4 ground IDB atoms.
        assert_eq!(sys.num_vars(), 4);
        // Every atom is a head (x enumerates ADom in rule 1).
        assert!(sys.polys.iter().all(|p| p.is_some()));
    }

    #[test]
    fn never_derived_atoms_stay_bottom() {
        // L(x) :- L(x) ⊗ E(x, x) with empty E: but with a head condition
        // restricting heads to "a" only, L(b) never derived.
        let mut p = Program::<Trop>::new();
        p.rule(
            Atom::new("L", vec![Term::c("a")]),
            vec![SumProduct::new(vec![
                Factor::atom("L", vec![Term::c("b")]),
                Factor::atom("E", vec![Term::c("a"), Term::c("b")]),
            ])],
        );
        let mut edb = Database::new();
        edb.insert(
            "E",
            Relation::from_pairs(2, vec![(tup!["a", "b"], Trop::finite(1.0))]),
        );
        let sys = ground(&p, &edb, &BoolDatabase::new());
        let lb = sys
            .index
            .get(&GroundAtom::new("L", tup!["b"]))
            .copied()
            .expect("L(b) occurs in a body");
        // Dense mode defines L(b) by the empty polynomial (eq. 27): its
        // value is the empty sum 0 = ⊥ in Trop.
        assert!(sys.polys[lb].as_ref().unwrap().monomials.is_empty());
        let x = sys.apply_ico(&sys.bottom());
        assert!(x[lb].is_bottom());
    }

    /// Example 4.2 grounding over the lifted reals: the grounded program
    /// printed in Sec. 4.4.
    #[test]
    fn ground_bill_of_material() {
        use dlo_pops::lifted::lreal;
        let mut p = Program::<LiftedReal>::new();
        // T(x) :- C(x) + Σ_y {T(y) | E(x,y)}
        p.rule(
            Atom::new("T", vec![Term::v(0)]),
            vec![
                SumProduct::new(vec![Factor::atom("C", vec![Term::v(0)])]),
                SumProduct::new(vec![Factor::atom("T", vec![Term::v(1)])])
                    .with_condition(Formula::atom("E", vec![Term::v(0), Term::v(1)])),
            ],
        );
        let mut pops = Database::<LiftedReal>::new();
        pops.insert(
            "C",
            Relation::from_pairs(1, vec![(tup!["c"], lreal(1.0)), (tup!["d"], lreal(10.0))]),
        );
        let mut bools = BoolDatabase::new();
        bools.insert(
            "E",
            bool_relation(
                2,
                vec![
                    tup!["a", "b"],
                    tup!["a", "c"],
                    tup!["b", "a"],
                    tup!["b", "c"],
                    tup!["c", "d"],
                ],
            ),
        );
        let sys = ground(&p, &pops, &bools);
        assert_eq!(sys.num_vars(), 4); // T(a), T(b), T(c), T(d)
                                       // T(a)'s polynomial: C(a) constant (⊥!) + T(b) + T(c).
        let ta = sys.index[&GroundAtom::new("T", tup!["a"])];
        let poly = sys.polys[ta].as_ref().unwrap();
        assert_eq!(poly.monomials.len(), 3);
        // The C(a) coefficient is ⊥ — kept in dense mode (it must poison).
        assert!(poly.monomials.iter().any(|m| m.coeff.is_bottom()));
    }
}
