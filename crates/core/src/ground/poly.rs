//! Provenance polynomials (Sec. 2.4, eq. 13; Sec. 4.3, eq. 27).
//!
//! After grounding, each ground IDB atom `x_i` is defined by a multivariate
//! polynomial `f_i(x₁, …, x_N)` over the POPS: a `⊕`-sum of monomials
//! `c ⊗ g₁(x_{v₁}) ⊗ g₂(x_{v₂}) ⊗ …`, where the coefficient `c` folds in
//! all EDB values and each factor optionally applies a monotone interpreted
//! function `g` (identity when absent). Exponents are represented by
//! repeated factors (degrees are tiny in practice).

use crate::ast::UnaryFn;
use dlo_pops::Pops;

/// One variable occurrence inside a monomial.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VarOcc<P> {
    /// Index of the ground IDB atom.
    pub var: usize,
    /// Optional interpreted value function applied to the variable.
    pub func: Option<UnaryFn<P>>,
}

impl<P: Pops> VarOcc<P> {
    /// Evaluates this occurrence at `x`.
    pub fn eval(&self, x: &P) -> P {
        match &self.func {
            None => x.clone(),
            Some(f) => f.apply(x),
        }
    }
}

/// A monomial `c ⊗ Π occurrences` (eq. 8, extended with value functions).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Monomial<P> {
    /// The coefficient (EDB values and explicit scalars folded together).
    pub coeff: P,
    /// The IDB variable occurrences (empty for constant monomials).
    pub occs: Vec<VarOcc<P>>,
}

impl<P: Pops> Monomial<P> {
    /// A constant monomial.
    pub fn constant(c: P) -> Self {
        Monomial {
            coeff: c,
            occs: vec![],
        }
    }

    /// The degree (number of variable occurrences, counting multiplicity).
    pub fn degree(&self) -> usize {
        self.occs.len()
    }

    /// Evaluates at the assignment `x`.
    pub fn eval(&self, x: &[P]) -> P {
        let mut acc = self.coeff.clone();
        for occ in &self.occs {
            acc = acc.mul(&occ.eval(&x[occ.var]));
        }
        acc
    }

    /// The differential expansion used by semi-naïve evaluation
    /// (Theorem 6.5, eq. 64): the `⊕`-sum over positions `k` of
    /// `c ⊗ Π_{i<k} new[vᵢ] ⊗ delta[v_k] ⊗ Π_{i>k} old[vᵢ]`,
    /// restricted to positions whose delta is non-zero.
    pub fn eval_differential(&self, new: &[P], old: &[P], delta: &[P]) -> P {
        let mut total = P::zero();
        for k in 0..self.occs.len() {
            if delta[self.occs[k].var].is_zero() {
                continue;
            }
            let mut acc = self.coeff.clone();
            for (i, occ) in self.occs.iter().enumerate() {
                let arg = match i.cmp(&k) {
                    std::cmp::Ordering::Less => &new[occ.var],
                    std::cmp::Ordering::Equal => &delta[occ.var],
                    std::cmp::Ordering::Greater => &old[occ.var],
                };
                acc = acc.mul(&occ.eval(arg));
            }
            total = total.add(&acc);
        }
        total
    }
}

/// A provenance polynomial: a `⊕`-sum of monomials (eq. 9).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Polynomial<P> {
    /// The monomials. The empty polynomial is the empty sum (= `0`).
    pub monomials: Vec<Monomial<P>>,
}

impl<P: Pops> Polynomial<P> {
    /// The empty polynomial.
    pub fn new() -> Self {
        Polynomial { monomials: vec![] }
    }

    /// Appends a monomial.
    pub fn push(&mut self, m: Monomial<P>) {
        self.monomials.push(m);
    }

    /// Evaluates at `x` (empty sum is `0`).
    pub fn eval(&self, x: &[P]) -> P {
        let mut acc = P::zero();
        for m in &self.monomials {
            acc = acc.add(&m.eval(x));
        }
        acc
    }

    /// The maximum monomial degree (0 for constants / empty).
    pub fn degree(&self) -> usize {
        self.monomials.iter().map(|m| m.degree()).max().unwrap_or(0)
    }

    /// Whether every monomial has degree ≤ 1 (an *affine* polynomial; the
    /// paper calls grounded programs with this property linear).
    pub fn is_affine(&self) -> bool {
        self.degree() <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlo_pops::{Nat, PreSemiring, Trop};

    fn mono(coeff: u64, vars: &[usize]) -> Monomial<Nat> {
        Monomial {
            coeff: Nat(coeff),
            occs: vars
                .iter()
                .map(|&v| VarOcc { var: v, func: None })
                .collect(),
        }
    }

    #[test]
    fn eval_polynomial_over_nat() {
        // f(x0, x1) = 2·x0·x1 + 3·x0² + 5
        let f = Polynomial {
            monomials: vec![mono(2, &[0, 1]), mono(3, &[0, 0]), mono(5, &[])],
        };
        assert_eq!(f.eval(&[Nat(4), Nat(7)]), Nat(2 * 28 + 3 * 16 + 5));
        assert_eq!(f.degree(), 2);
        assert!(!f.is_affine());
    }

    #[test]
    fn empty_polynomial_is_zero() {
        let f = Polynomial::<Nat>::new();
        assert_eq!(f.eval(&[]), Nat::zero());
    }

    #[test]
    fn eval_with_function_occurrence() {
        use crate::ast::UnaryFn;
        use dlo_pops::Three;
        let notf = UnaryFn::new("not", |x: &Three| x.not());
        let f = Polynomial {
            monomials: vec![Monomial {
                coeff: Three::True,
                occs: vec![VarOcc {
                    var: 0,
                    func: Some(notf),
                }],
            }],
        };
        assert_eq!(f.eval(&[Three::False]), Three::True);
        assert_eq!(f.eval(&[Three::True]), Three::False);
        assert_eq!(f.eval(&[Three::Undef]), Three::Undef);
    }

    #[test]
    fn differential_expansion_matches_inclusion_exclusion_on_dioid() {
        // Over Trop (idempotent ⊕): F(x ⊕ δ) = F(new) should equal
        // F(old) ⊕ differential when new = old ⊕ δ (Theorem 6.5 core step).
        let m = Monomial::<Trop> {
            coeff: Trop::finite(1.0),
            occs: vec![VarOcc { var: 0, func: None }, VarOcc { var: 1, func: None }],
        };
        let old = vec![Trop::finite(5.0), Trop::finite(7.0)];
        let delta = vec![Trop::finite(2.0), Trop::INF]; // only x0 improved
        let new: Vec<Trop> = old.iter().zip(&delta).map(|(o, d)| o.add(d)).collect();
        let lhs = m.eval(&new);
        let rhs = m.eval(&old).add(&m.eval_differential(&new, &old, &delta));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn differential_skips_zero_deltas() {
        let m = mono(2, &[0, 1]);
        // delta = (0, 0): no contribution.
        assert_eq!(
            m.eval_differential(&[Nat(9), Nat(9)], &[Nat(1), Nat(1)], &[Nat(0), Nat(0)]),
            Nat(0)
        );
    }
}
