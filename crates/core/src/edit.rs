//! Edit and batch types for incremental maintenance.
//!
//! An EDB *edit* is the unit of change a live materialization absorbs
//! (see `dlo_engine::incremental::Materialization`): either a
//! [`FactInsert`] — `⊕`-merge a `(pred, tuple, value)` fact into the
//! EDB, the dioid reading of "insert" where re-inserting an existing
//! tuple combines values — or a [`FactDelete`] — remove the tuple's
//! fact entirely. Lowering a stored value is expressed as a delete
//! followed by an insert of the new value.
//!
//! These live in `dlo_core` so edit scripts can be generated, stored,
//! and replayed (e.g. by the bench workloads and the differential test
//! harness) without depending on the engine crate.

use crate::value::Tuple;

/// Insert (`⊕`-merge) one POPS fact into an EDB relation.
#[derive(Clone, Debug, PartialEq)]
pub struct FactInsert<P> {
    /// Target EDB predicate name.
    pub pred: String,
    /// The key tuple.
    pub tuple: Tuple,
    /// The value to `⊕`-merge at that key.
    pub value: P,
}

impl<P> FactInsert<P> {
    /// Convenience constructor.
    pub fn new(pred: &str, tuple: Tuple, value: P) -> Self {
        FactInsert {
            pred: pred.to_string(),
            tuple,
            value,
        }
    }
}

/// Remove one fact (the tuple and its whole value) from an EDB relation.
///
/// Deleting a tuple that is not present is a no-op.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FactDelete {
    /// Target EDB predicate name.
    pub pred: String,
    /// The key tuple to remove.
    pub tuple: Tuple,
}

impl FactDelete {
    /// Convenience constructor.
    pub fn new(pred: &str, tuple: Tuple) -> Self {
        FactDelete {
            pred: pred.to_string(),
            tuple,
        }
    }
}

/// One step of an edit script.
#[derive(Clone, Debug, PartialEq)]
pub enum Edit<P> {
    /// `⊕`-merge a fact into the EDB.
    Insert(FactInsert<P>),
    /// Remove a fact from the EDB.
    Delete(FactDelete),
}

impl<P> Edit<P> {
    /// Insert edit from parts.
    pub fn insert(pred: &str, tuple: Tuple, value: P) -> Self {
        Edit::Insert(FactInsert::new(pred, tuple, value))
    }
    /// Delete edit from parts.
    pub fn delete(pred: &str, tuple: Tuple) -> Self {
        Edit::Delete(FactDelete::new(pred, tuple))
    }
    /// The predicate this edit targets.
    pub fn pred(&self) -> &str {
        match self {
            Edit::Insert(i) => &i.pred,
            Edit::Delete(d) => &d.pred,
        }
    }
}
