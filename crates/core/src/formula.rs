//! Conditionals `Φ` over the Boolean vocabulary (Definition 2.5).
//!
//! The paper allows first-order formulas over `σ_B`; we implement the
//! quantifier-free fragment (atoms, `∧`, `∨`, `¬`, key comparisons), which
//! covers every program in the paper — existential quantification is
//! expressed through the rule's bound variables, as in all the examples.
//! Formulas are evaluated under a full valuation `θ : V → D₀` against a
//! Boolean instance.

use crate::ast::{Atom, Term, Var};
use crate::relation::BoolDatabase;
use crate::value::{Constant, Tuple};
use dlo_pops::Pops as _;
use std::collections::BTreeMap;
use std::fmt;

/// A comparison operator on keys.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<` (integers only)
    Lt,
    /// `≤` (integers only)
    Le,
    /// `>` (integers only)
    Gt,
    /// `≥` (integers only)
    Ge,
}

/// A quantifier-free conditional over `σ_B` and key comparisons.
#[derive(Clone, PartialEq, Eq)]
pub enum Formula {
    /// Always true (the empty conjunction).
    True,
    /// Always false.
    False,
    /// A positive Boolean-EDB atom.
    BoolAtom(Atom),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// A key comparison.
    Cmp(Term, CmpOp, Term),
}

/// A valuation `θ : V → D₀`.
pub type Valuation = BTreeMap<Var, Constant>;

/// Evaluates a term under a valuation; `None` if a variable is unbound or a
/// key function is applied to an ill-typed constant.
pub fn eval_term(t: &Term, theta: &Valuation) -> Option<Constant> {
    match t {
        Term::Var(v) => theta.get(v).cloned(),
        Term::Const(c) => Some(c.clone()),
        Term::Apply(f, inner) => f.apply(&eval_term(inner, theta)?),
    }
}

/// Evaluates an atom's argument tuple under a valuation.
pub fn eval_args(atom: &Atom, theta: &Valuation) -> Option<Tuple> {
    atom.args.iter().map(|t| eval_term(t, theta)).collect()
}

impl Formula {
    /// Smart constructor for a comparison.
    pub fn cmp(lhs: Term, op: CmpOp, rhs: Term) -> Formula {
        Formula::Cmp(lhs, op, rhs)
    }
    /// Smart constructor for a positive Boolean atom.
    pub fn atom(pred: &str, args: Vec<Term>) -> Formula {
        Formula::BoolAtom(Atom::new(pred, args))
    }
    /// `self ∧ rhs`, simplifying `True`.
    pub fn and(self, rhs: Formula) -> Formula {
        match (self, rhs) {
            (Formula::True, r) => r,
            (l, Formula::True) => l,
            (l, r) => Formula::And(Box::new(l), Box::new(r)),
        }
    }
    /// `self ∨ rhs`, simplifying `False`.
    pub fn or(self, rhs: Formula) -> Formula {
        match (self, rhs) {
            (Formula::False, r) => r,
            (l, Formula::False) => l,
            (l, r) => Formula::Or(Box::new(l), Box::new(r)),
        }
    }
    /// `¬self`.
    pub fn negate(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// Collects variables into `out` (deduplicated).
    pub fn vars(&self, out: &mut Vec<Var>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::BoolAtom(a) => a.vars(out),
            Formula::Not(f) => f.vars(out),
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.vars(out);
                b.vars(out);
            }
            Formula::Cmp(l, _, r) => {
                l.vars(out);
                r.vars(out);
            }
        }
    }

    /// Collects constants (for `D₀`).
    pub fn constants(&self, push: &mut impl FnMut(&Constant)) {
        fn term(t: &Term, push: &mut impl FnMut(&Constant)) {
            match t {
                Term::Const(c) => push(c),
                Term::Var(_) => {}
                Term::Apply(_, t) => term(t, push),
            }
        }
        match self {
            Formula::True | Formula::False => {}
            Formula::BoolAtom(a) => {
                for t in &a.args {
                    term(t, push);
                }
            }
            Formula::Not(f) => f.constants(push),
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.constants(push);
                b.constants(push);
            }
            Formula::Cmp(l, _, r) => {
                term(l, push);
                term(r, push);
            }
        }
    }

    /// Evaluates under a full valuation against a Boolean instance.
    ///
    /// Unbound variables make the formula evaluate to `false` (grounding
    /// always supplies full valuations, so this is defensive).
    pub fn eval(&self, theta: &Valuation, bools: &BoolDatabase) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::BoolAtom(a) => match eval_args(a, theta) {
                Some(tuple) => bools
                    .get(&a.pred)
                    .map(|r| !r.get(&tuple).is_bottom())
                    .unwrap_or(false),
                None => false,
            },
            Formula::Not(f) => !f.eval(theta, bools),
            Formula::And(a, b) => a.eval(theta, bools) && b.eval(theta, bools),
            Formula::Or(a, b) => a.eval(theta, bools) || b.eval(theta, bools),
            Formula::Cmp(l, op, r) => {
                let (Some(lv), Some(rv)) = (eval_term(l, theta), eval_term(r, theta)) else {
                    return false;
                };
                match op {
                    CmpOp::Eq => lv == rv,
                    CmpOp::Ne => lv != rv,
                    CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                        let (Some(a), Some(b)) = (lv.as_int(), rv.as_int()) else {
                            return false;
                        };
                        match op {
                            CmpOp::Lt => a < b,
                            CmpOp::Le => a <= b,
                            CmpOp::Gt => a > b,
                            CmpOp::Ge => a >= b,
                            _ => unreachable!(),
                        }
                    }
                }
            }
        }
    }

    /// The positive Boolean atoms reachable through the top-level
    /// conjunction (used by the grounder to drive joins: these atoms can
    /// *bind* variables, everything else only filters).
    pub fn conjunctive_atoms(&self) -> Vec<&Atom> {
        let mut out = vec![];
        fn go<'a>(f: &'a Formula, out: &mut Vec<&'a Atom>) {
            match f {
                Formula::BoolAtom(a) => out.push(a),
                Formula::And(a, b) => {
                    go(a, out);
                    go(b, out);
                }
                _ => {}
            }
        }
        go(self, &mut out);
        out
    }
}

impl fmt::Debug for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "⊤"),
            Formula::False => write!(f, "⊥"),
            Formula::BoolAtom(a) => write!(f, "{a:?}"),
            Formula::Not(x) => write!(f, "¬({x:?})"),
            Formula::And(a, b) => write!(f, "({a:?} ∧ {b:?})"),
            Formula::Or(a, b) => write!(f, "({a:?} ∨ {b:?})"),
            Formula::Cmp(l, op, r) => {
                let op = match op {
                    CmpOp::Eq => "=",
                    CmpOp::Ne => "≠",
                    CmpOp::Lt => "<",
                    CmpOp::Le => "≤",
                    CmpOp::Gt => ">",
                    CmpOp::Ge => "≥",
                };
                write!(f, "{l:?} {op} {r:?}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::bool_relation;
    use crate::tup;

    fn theta(pairs: &[(u32, Constant)]) -> Valuation {
        pairs.iter().map(|(v, c)| (Var(*v), c.clone())).collect()
    }

    fn graph_db() -> BoolDatabase {
        let mut db = BoolDatabase::new();
        db.insert("E", bool_relation(2, vec![tup!["a", "b"], tup!["b", "c"]]));
        db
    }

    #[test]
    fn atom_lookup() {
        let db = graph_db();
        let f = Formula::atom("E", vec![Term::v(0), Term::v(1)]);
        assert!(f.eval(
            &theta(&[(0, Constant::str("a")), (1, Constant::str("b"))]),
            &db
        ));
        assert!(!f.eval(
            &theta(&[(0, Constant::str("b")), (1, Constant::str("a"))]),
            &db
        ));
    }

    #[test]
    fn missing_relation_is_false() {
        let db = BoolDatabase::new();
        let f = Formula::atom("Nope", vec![Term::c("x")]);
        assert!(!f.eval(&theta(&[]), &db));
    }

    #[test]
    fn comparisons() {
        let db = BoolDatabase::new();
        let t = theta(&[(0, Constant::int(5))]);
        assert!(Formula::cmp(Term::v(0), CmpOp::Lt, Term::c(10)).eval(&t, &db));
        assert!(!Formula::cmp(Term::v(0), CmpOp::Ge, Term::c(10)).eval(&t, &db));
        assert!(Formula::cmp(Term::v(0), CmpOp::Eq, Term::c(5)).eval(&t, &db));
        // Mixed-type ordering comparisons are false:
        let t2 = theta(&[(0, Constant::str("x"))]);
        assert!(!Formula::cmp(Term::v(0), CmpOp::Lt, Term::c(10)).eval(&t2, &db));
        // Structural (in)equality works across types:
        assert!(Formula::cmp(Term::v(0), CmpOp::Ne, Term::c(10)).eval(&t2, &db));
    }

    #[test]
    fn connectives_and_simplifiers() {
        let db = graph_db();
        let t = theta(&[(0, Constant::str("a")), (1, Constant::str("b"))]);
        let e = Formula::atom("E", vec![Term::v(0), Term::v(1)]);
        assert!(e.clone().and(Formula::True).eval(&t, &db));
        assert!(Formula::True.and(e.clone()).eval(&t, &db));
        assert!(!e.clone().negate().eval(&t, &db));
        assert!(e.clone().or(Formula::False).eval(&t, &db));
        assert_eq!(Formula::False.or(e.clone()), e);
    }

    #[test]
    fn key_function_in_comparison() {
        use crate::ast::KeyFn;
        let db = BoolDatabase::new();
        let t = theta(&[(0, Constant::int(7))]);
        // x + 1 = 8
        let f = Formula::cmp(
            Term::Apply(KeyFn::AddInt(1), Box::new(Term::v(0))),
            CmpOp::Eq,
            Term::c(8),
        );
        assert!(f.eval(&t, &db));
    }

    #[test]
    fn conjunctive_atoms_extraction() {
        let e1 = Formula::atom("E", vec![Term::v(0), Term::v(1)]);
        let e2 = Formula::atom("F", vec![Term::v(1)]);
        let f = e1
            .clone()
            .and(e2.clone())
            .and(Formula::cmp(Term::v(0), CmpOp::Ne, Term::v(1)));
        let atoms = f.conjunctive_atoms();
        assert_eq!(atoms.len(), 2);
        // Atoms under negation/disjunction are not binding:
        let g = Formula::Not(Box::new(e1)).and(e2);
        assert_eq!(g.conjunctive_atoms().len(), 1);
    }
}
