//! `P`-relations and `P`-instances (Sec. 2.3).
//!
//! A `P`-relation of arity `k` maps `k`-tuples over the key space to POPS
//! values, with *finite support* (only finitely many tuples map to values
//! `≠ ⊥`). A `P`-instance ([`Database`]) maps relation names to relations.
//! Storage is `BTreeMap` throughout so iteration (and therefore grounding,
//! evaluation, and printed tables) is fully deterministic.

use crate::value::{Constant, Tuple};
use dlo_pops::Pops;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A finite-support mapping `D^arity → P`.
#[derive(Clone, PartialEq, Eq)]
pub struct Relation<P: Pops> {
    arity: usize,
    /// Invariant: no stored value is `⊥` (absent ⇒ `⊥`).
    entries: BTreeMap<Tuple, P>,
}

impl<P: Pops> Relation<P> {
    /// An empty relation (everything `⊥`) of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            entries: BTreeMap::new(),
        }
    }

    /// Builds a relation from `(tuple, value)` pairs; values equal to `⊥`
    /// are dropped, duplicate tuples are combined with `⊕`.
    pub fn from_pairs<I: IntoIterator<Item = (Tuple, P)>>(arity: usize, pairs: I) -> Self {
        let mut rel = Relation::new(arity);
        for (t, v) in pairs {
            rel.merge(t, v);
        }
        rel
    }

    /// Builds a relation from pairs whose tuples are **distinct**,
    /// bulk-loading the underlying `BTreeMap` instead of walking the
    /// tree per tuple. `⊥` values are dropped like everywhere else.
    ///
    /// This is the decode path for alternative backends: `dlo_engine`
    /// materializes hundreds of thousands of unique rows per relation,
    /// and `BTreeMap::from_iter`'s sort-and-bulk-build is an order of
    /// magnitude faster than per-tuple [`Self::merge`] at that scale.
    /// Duplicate tuples would be resolved last-wins by the map — *not*
    /// `⊕`-combined — hence the distinctness requirement, debug-checked.
    pub fn from_distinct_pairs<I: IntoIterator<Item = (Tuple, P)>>(arity: usize, pairs: I) -> Self {
        let mut kept = 0usize;
        let entries: BTreeMap<Tuple, P> = pairs
            .into_iter()
            .filter(|(t, v)| {
                debug_assert_eq!(t.len(), arity, "arity mismatch");
                let keep = !v.is_bottom();
                kept += keep as usize;
                keep
            })
            .collect();
        debug_assert_eq!(
            entries.len(),
            kept,
            "from_distinct_pairs requires distinct tuples (duplicates are \
             last-wins here, not ⊕-combined — use from_pairs for those)"
        );
        Relation { arity, entries }
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The value of `tuple` (`⊥` when absent).
    pub fn get(&self, tuple: &Tuple) -> P {
        self.entries.get(tuple).cloned().unwrap_or_else(P::bottom)
    }

    /// Sets `tuple ↦ value` (removing the entry when `value = ⊥`).
    pub fn set(&mut self, tuple: Tuple, value: P) {
        debug_assert_eq!(tuple.len(), self.arity, "arity mismatch");
        if value.is_bottom() {
            self.entries.remove(&tuple);
        } else {
            self.entries.insert(tuple, value);
        }
    }

    /// `⊕`-combines `value` into the entry for `tuple`.
    ///
    /// An absent tuple is *undefined* (`⊥`), not `0`: merging the first
    /// value sets it outright (the sum of one term is that term), and only
    /// genuine duplicates combine with `⊕`. Folding `⊥` in would be wrong
    /// on POPS with strict addition (`⊥ ⊕ v = ⊥` on the lifted reals).
    pub fn merge(&mut self, tuple: Tuple, value: P) {
        match self.entries.get(&tuple) {
            None => self.set(tuple, value),
            Some(old) => {
                let combined = old.add(&value);
                self.set(tuple, combined);
            }
        }
    }

    /// The support: tuples with value `≠ ⊥`, in deterministic order.
    pub fn support(&self) -> impl Iterator<Item = (&Tuple, &P)> {
        self.entries.iter()
    }

    /// Consumes the relation into its `(tuple, value)` pairs, in
    /// deterministic order — the owned counterpart of [`Self::support`],
    /// used by alternative backends (e.g. `dlo_engine`) to convert
    /// without cloning.
    pub fn into_support(self) -> impl Iterator<Item = (Tuple, P)> {
        self.entries.into_iter()
    }

    /// Number of supported tuples.
    pub fn support_size(&self) -> usize {
        self.entries.len()
    }

    /// Whether every tuple maps to `⊥`.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All constants appearing in the support (contribution to `ADom`).
    pub fn constants(&self) -> BTreeSet<Constant> {
        self.entries
            .keys()
            .flat_map(|t| t.iter().cloned())
            .collect()
    }
}

impl<P: Pops> fmt::Debug for Relation<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut m = f.debug_map();
        for (t, v) in &self.entries {
            m.entry(&crate::value::fmt_tuple(t), v);
        }
        m.finish()
    }
}

/// A `P`-instance: named relations over a single POPS (Sec. 2.3,
/// `Inst(σ, D, P)`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Database<P: Pops> {
    relations: BTreeMap<String, Relation<P>>,
}

impl<P: Pops> Default for Database<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Pops> Database<P> {
    /// An empty instance.
    pub fn new() -> Self {
        Database {
            relations: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) a relation.
    pub fn insert(&mut self, name: &str, rel: Relation<P>) {
        self.relations.insert(name.to_string(), rel);
    }

    /// Looks up a relation.
    pub fn get(&self, name: &str) -> Option<&Relation<P>> {
        self.relations.get(name)
    }

    /// Mutable lookup, creating an empty relation of `arity` if missing.
    pub fn get_or_insert(&mut self, name: &str, arity: usize) -> &mut Relation<P> {
        self.relations
            .entry(name.to_string())
            .or_insert_with(|| Relation::new(arity))
    }

    /// Iterates over `(name, relation)` deterministically.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Relation<P>)> {
        self.relations.iter()
    }

    /// The active domain: all constants in all supports.
    pub fn active_domain(&self) -> BTreeSet<Constant> {
        self.relations
            .values()
            .flat_map(|r| r.constants())
            .collect()
    }
}

/// Conversion hook: consume an instance into named relations.
impl<P: Pops> IntoIterator for Database<P> {
    type Item = (String, Relation<P>);
    type IntoIter = std::collections::btree_map::IntoIter<String, Relation<P>>;
    fn into_iter(self) -> Self::IntoIter {
        self.relations.into_iter()
    }
}

/// Conversion hook: assemble an instance from named relations (later
/// duplicates replace earlier ones, like repeated [`Database::insert`]).
impl<P: Pops> FromIterator<(String, Relation<P>)> for Database<P> {
    fn from_iter<I: IntoIterator<Item = (String, Relation<P>)>>(iter: I) -> Self {
        Database {
            relations: iter.into_iter().collect(),
        }
    }
}

/// A Boolean instance (`σ_B` in the paper) is just a `Database<Bool>`;
/// presence of a tuple means `true`.
pub type BoolDatabase = Database<dlo_pops::Bool>;

/// Convenience: builds a Boolean relation from a tuple list.
pub fn bool_relation<I: IntoIterator<Item = Tuple>>(
    arity: usize,
    tuples: I,
) -> Relation<dlo_pops::Bool> {
    Relation::from_pairs(arity, tuples.into_iter().map(|t| (t, dlo_pops::Bool(true))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;
    use dlo_pops::{PreSemiring, Trop};

    #[test]
    fn bottom_is_not_stored() {
        let mut r = Relation::<Trop>::new(2);
        r.set(tup!["a", "b"], Trop::finite(3.0));
        r.set(tup!["a", "c"], Trop::INF); // ⊥ — dropped
        assert_eq!(r.support_size(), 1);
        assert_eq!(r.get(&tup!["a", "b"]), Trop::finite(3.0));
        assert_eq!(r.get(&tup!["a", "c"]), Trop::INF);
        // overwriting with ⊥ deletes:
        r.set(tup!["a", "b"], Trop::INF);
        assert!(r.is_empty());
    }

    #[test]
    fn merge_uses_add() {
        let mut r = Relation::<Trop>::new(1);
        r.merge(tup!["x"], Trop::finite(5.0));
        r.merge(tup!["x"], Trop::finite(3.0));
        assert_eq!(r.get(&tup!["x"]), Trop::finite(3.0)); // min
    }

    #[test]
    fn from_pairs_combines_duplicates() {
        let r = Relation::<Trop>::from_pairs(
            1,
            vec![
                (tup!["x"], Trop::finite(5.0)),
                (tup!["x"], Trop::finite(2.0)),
            ],
        );
        assert_eq!(r.get(&tup!["x"]), Trop::finite(2.0));
    }

    #[test]
    fn active_domain_collects_constants() {
        let mut db = Database::<Trop>::new();
        db.insert(
            "E",
            Relation::from_pairs(
                2,
                vec![
                    (tup!["a", "b"], Trop::finite(1.0)),
                    (tup!["b", "c"], Trop::finite(2.0)),
                ],
            ),
        );
        let adom = db.active_domain();
        assert_eq!(adom.len(), 3);
        assert!(adom.contains(&Constant::str("a")));
    }

    #[test]
    fn relation_equality_ignores_bottom_entries() {
        let mut a = Relation::<Trop>::new(1);
        let mut b = Relation::<Trop>::new(1);
        a.set(tup![1], Trop::finite(1.0));
        b.set(tup![1], Trop::finite(1.0));
        b.set(tup![2], Trop::zero()); // ⊥, not stored
        assert_eq!(a, b);
    }
}
