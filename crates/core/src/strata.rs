//! Multiple value spaces via stratification (Sec. 4.5).
//!
//! When a program spans several POPS, the paper requires the mapping
//! functions between value spaces to be monotone (then one joint fixpoint
//! exists — e.g. the company-control program, which this library runs over
//! the single POPS `ℝ₊` with a monotone threshold, see
//! [`crate::examples_lib::company_control`]); otherwise the program must
//! be *stratified*: run each stratum to its fixpoint, then translate
//! chosen IDB relations into the EDBs of the next stratum through
//! *bridges*. This module provides the bridges and a tiny two-space
//! pipeline runner.

use crate::relation::{BoolDatabase, Database, Relation};
use dlo_pops::{Bool, Pops};

/// Translates a `P`-relation into a Boolean relation tuple-wise: `keep`
/// decides which (tuple, value) pairs become `true` facts. This is the
/// `[Φ]`-style boundary of Example 4.3 (e.g. `v > 0.5`).
pub fn bool_bridge<P: Pops>(rel: &Relation<P>, keep: impl Fn(&P) -> bool) -> Relation<Bool> {
    Relation::from_pairs(
        rel.arity(),
        rel.support()
            .filter(|(_, v)| keep(v))
            .map(|(t, _)| (t.clone(), Bool(true))),
    )
}

/// Translates a `P`-relation into a `Q`-relation value-wise; `None` drops
/// the tuple (maps it to `⊥_Q`).
pub fn map_bridge<P: Pops, Q: Pops>(rel: &Relation<P>, f: impl Fn(&P) -> Option<Q>) -> Relation<Q> {
    Relation::from_pairs(
        rel.arity(),
        rel.support()
            .filter_map(|(t, v)| f(v).map(|q| (t.clone(), q))),
    )
}

/// A stratified two-space run: evaluate `stage1`, bridge selected
/// relations, then evaluate `stage2` with the bridged relations added to
/// its EDBs. Both stages use dense grounding (sound everywhere).
#[allow(clippy::too_many_arguments)]
pub fn run_two_strata<P1: Pops, P2: Pops>(
    stage1: &crate::ast::Program<P1>,
    pops1: &Database<P1>,
    bools1: &BoolDatabase,
    cap1: usize,
    bridge: impl Fn(&Database<P1>, &mut Database<P2>, &mut BoolDatabase),
    stage2: &crate::ast::Program<P2>,
    pops2: &Database<P2>,
    bools2: &BoolDatabase,
    cap2: usize,
) -> Option<(Database<P1>, Database<P2>)> {
    let out1 = crate::eval::naive::naive_eval(stage1, pops1, bools1, cap1).converged()?;
    let mut pops2 = pops2.clone();
    let mut bools2 = bools2.clone();
    bridge(&out1.0, &mut pops2, &mut bools2);
    let out2 = crate::eval::naive::naive_eval(stage2, &pops2, &bools2, cap2).converged()?;
    Some((out1.0, out2.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Atom, Factor, Program, SumProduct, Term};
    use crate::formula::Formula;
    use crate::relation::bool_relation;
    use crate::tup;
    use dlo_pops::{PreSemiring, Trop};

    #[test]
    fn bool_bridge_thresholds() {
        let rel = Relation::<Trop>::from_pairs(
            1,
            vec![
                (tup!["a"], Trop::finite(1.0)),
                (tup!["b"], Trop::finite(9.0)),
            ],
        );
        let b = bool_bridge(&rel, |v| v.get() < 5.0);
        assert_eq!(b.support_size(), 1);
        assert!(!b.get(&tup!["a"]).is_zero());
    }

    #[test]
    fn map_bridge_translates_values() {
        use dlo_pops::MinNat;
        let rel = Relation::<Trop>::from_pairs(1, vec![(tup!["a"], Trop::finite(3.0))]);
        let m: Relation<MinNat> = map_bridge(&rel, |v| Some(MinNat::finite(v.get() as u64)));
        assert_eq!(m.get(&tup!["a"]), MinNat(3));
    }

    /// Stratified demo: stratum 1 computes Boolean reachability from `a`;
    /// stratum 2 computes shortest paths over Trop⁺ restricted (through a
    /// condition) to reachable targets.
    #[test]
    fn two_strata_reachability_then_sssp() {
        use crate::examples_lib as ex;
        use dlo_pops::Bool;
        // Stratum 1: reach over B. The edge relation is a 𝔹-valued POPS
        // EDB (it appears as a factor, not as a condition atom).
        let (reach, pops1) = {
            let p: Program<Bool> = ex::single_source_program("a");
            let mut edb = Database::<Bool>::new();
            edb.insert(
                "E",
                bool_relation(2, vec![tup!["a", "b"], tup!["b", "c"], tup!["x", "y"]]),
            );
            (p, edb)
        };
        // Stratum 2: L2(X) :- Len(Z, X) * L2(Z) | Reached(X); seed at a.
        let mut stage2 = Program::<Trop>::new();
        stage2.rule(
            Atom::new("D", vec![Term::v(0)]),
            vec![
                SumProduct::new(vec![]).with_condition(
                    Formula::cmp(Term::v(0), crate::formula::CmpOp::Eq, Term::c("a"))
                        .and(Formula::atom("Reached", vec![Term::v(0)])),
                ),
                SumProduct::new(vec![
                    Factor::atom("D", vec![Term::v(1)]),
                    Factor::atom("Len", vec![Term::v(1), Term::v(0)]),
                ])
                .with_condition(Formula::atom("Reached", vec![Term::v(0)])),
            ],
        );
        let mut pops2 = Database::<Trop>::new();
        pops2.insert(
            "Len",
            Relation::from_pairs(
                2,
                vec![
                    (tup!["a", "b"], Trop::finite(2.0)),
                    (tup!["b", "c"], Trop::finite(3.0)),
                    (tup!["x", "y"], Trop::finite(1.0)),
                ],
            ),
        );
        let (s1, s2) = run_two_strata(
            &reach,
            &pops1,
            &BoolDatabase::new(),
            100,
            |out1, _pops2, bools2| {
                // Bridge: reachable nodes become the Boolean EDB `Reached`.
                if let Some(l) = out1.get("L") {
                    bools2.insert("Reached", bool_bridge(l, |v| !v.is_zero()));
                }
            },
            &stage2,
            &pops2,
            &BoolDatabase::new(),
            100,
        )
        .expect("both strata converge");
        assert_eq!(s1.get("L").unwrap().support_size(), 3); // a, b, c
        let d = s2.get("D").unwrap();
        assert_eq!(d.get(&tup!["c"]), Trop::finite(5.0));
        // Unreachable component never gets a distance:
        assert_eq!(d.get(&tup!["y"]), Trop::INF);
    }
}
