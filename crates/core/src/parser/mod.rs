//! A text frontend for datalog° (recursive descent over [`lexer`] tokens).
//!
//! Grammar (one rule per line, `%` comments):
//!
//! ```text
//! rule    := head ":-" body "."
//! query   := "?-" PRED "(" qterm ("," qterm)* ")" "."
//! qterm   := INT | lowercase-IDENT | STRING       a bound constant
//!          | VAR                                  a free position
//! head    := PRED "(" term ("," term)* ")"
//! body    := sumprod ("+" sumprod)*
//! sumprod := factors ["|" formula]
//! factors := factor ("*" factor)*
//! factor  := PRED "(" terms ")"            POPS atom
//!          | FUNC "(" PRED "(" terms ")" ")"  value function around an atom
//!          | "$" SCALAR                    scalar coefficient
//!          | "1"                           the empty product
//! term    := VAR | INT | lowercase-IDENT | STRING | VAR ("+"|"-") INT
//! formula := disj; disj := conj ("||" conj)*; conj := atomf ("&&" atomf)*
//! atomf   := "!" atomf | "(" formula ")" | PRED "(" terms ")"
//!          | term cmp term | "true" | "false"
//! cmp     := "=" | "!=" | "<" | "<=" | ">" | ">="
//! ```
//!
//! Identifiers applied to `(` are predicates (or registered value
//! functions); otherwise upper-case identifiers are variables and
//! lower-case ones symbolic constants — matching the paper's notation.
//! Variables are scoped per rule; non-head variables are implicitly
//! `⊕`-aggregated (Definition 2.5). Scalars are parsed by the POPS's
//! [`ParseValue`] implementation. Example (SSSP, Example 4.1):
//!
//! ```text
//! L(X) :- $0 | X = a.
//! L(X) :- L(Z) * E(Z, X).
//! ```

pub mod lexer;

use crate::ast::{Atom, Factor, KeyFn, Program, SumProduct, Term, UnaryFn, Var};
use crate::formula::{CmpOp, Formula};
use crate::query::{Query, QueryArg};
use crate::value::Constant;
use lexer::{lex, Tok};
use std::collections::BTreeMap;

/// POPS types whose scalar literals can appear after `$` in program text.
pub trait ParseValue: Sized {
    /// Parses a scalar literal (the text after `$`).
    fn parse_value(text: &str) -> Result<Self, String>;
}

impl ParseValue for dlo_pops::Trop {
    fn parse_value(text: &str) -> Result<Self, String> {
        if text == "inf" {
            return Ok(dlo_pops::Trop::INF);
        }
        text.parse::<f64>()
            .map_err(|e| format!("invalid tropical cost `{text}`: {e}"))
            .map(dlo_pops::Trop::finite)
    }
}

impl ParseValue for dlo_pops::Bool {
    fn parse_value(text: &str) -> Result<Self, String> {
        match text {
            "true" | "1" => Ok(dlo_pops::Bool(true)),
            "false" | "0" => Ok(dlo_pops::Bool(false)),
            _ => Err(format!("invalid boolean `{text}`")),
        }
    }
}

impl ParseValue for dlo_pops::Nat {
    fn parse_value(text: &str) -> Result<Self, String> {
        text.parse::<u64>()
            .map_err(|e| format!("invalid natural `{text}`: {e}"))
            .map(dlo_pops::Nat)
    }
}

impl ParseValue for dlo_pops::MinNat {
    fn parse_value(text: &str) -> Result<Self, String> {
        if text == "inf" {
            return Ok(dlo_pops::MinNat::INF);
        }
        text.parse::<u64>()
            .map_err(|e| format!("invalid cost `{text}`: {e}"))
            .map(dlo_pops::MinNat::finite)
    }
}

impl ParseValue for dlo_pops::LiftedReal {
    fn parse_value(text: &str) -> Result<Self, String> {
        if text == "bot" {
            return Ok(dlo_pops::Lifted::Bot);
        }
        text.parse::<f64>()
            .map_err(|e| format!("invalid real `{text}`: {e}"))
            .map(|x| dlo_pops::Lifted::Val(dlo_pops::Real::of(x)))
    }
}

impl ParseValue for dlo_pops::NNReal {
    fn parse_value(text: &str) -> Result<Self, String> {
        text.parse::<f64>()
            .map_err(|e| format!("invalid value `{text}`: {e}"))
            .map(dlo_pops::NNReal::of)
    }
}

impl ParseValue for dlo_pops::Three {
    fn parse_value(text: &str) -> Result<Self, String> {
        match text {
            "bot" => Ok(dlo_pops::Three::Undef),
            "true" | "1" => Ok(dlo_pops::Three::True),
            "false" | "0" => Ok(dlo_pops::Three::False),
            _ => Err(format!("invalid THREE value `{text}`")),
        }
    }
}

/// A parse error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Message with context.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error: {}", self.msg)
    }
}
impl std::error::Error for ParseError {}

/// The parser, carrying the registry of value functions.
pub struct ProgramParser<P> {
    funcs: BTreeMap<String, UnaryFn<P>>,
}

impl<P: ParseValue + Clone> Default for ProgramParser<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: ParseValue + Clone> ProgramParser<P> {
    /// A parser with no registered value functions.
    pub fn new() -> Self {
        ProgramParser {
            funcs: BTreeMap::new(),
        }
    }

    /// Registers a named monotone value function usable as `name(Atom(..))`.
    pub fn with_func(mut self, func: UnaryFn<P>) -> Self {
        self.funcs.insert(func.name.to_string(), func);
        self
    }

    /// Parses a whole program. `?-` query goals are rejected here — use
    /// [`Self::parse_with_queries`] for mixed rule/query sources.
    pub fn parse(&self, src: &str) -> Result<Program<P>, ParseError> {
        let (program, queries) = self.parse_with_queries(src)?;
        if let Some(q) = queries.first() {
            return Err(ParseError {
                msg: format!("unexpected query goal {q:?} (use parse_with_queries)"),
            });
        }
        Ok(program)
    }

    /// Parses a program whose source may also contain `?-` query goals
    /// (`?- T("a", Y).`), returned alongside the rules in source order.
    pub fn parse_with_queries(&self, src: &str) -> Result<(Program<P>, Vec<Query>), ParseError> {
        let toks = lex(src).map_err(|e| ParseError {
            msg: format!("at byte {}: {}", e.at, e.msg),
        })?;
        let mut st = State {
            toks: &toks,
            pos: 0,
            vars: BTreeMap::new(),
            funcs: &self.funcs,
        };
        let mut program = Program::new();
        let mut queries = vec![];
        while !st.done() {
            st.vars.clear();
            if st.peek() == Some(&Tok::QueryMark) {
                st.bump();
                queries.push(st.query_goal()?);
                continue;
            }
            let (head, body) = st.rule()?;
            program.rule(head, body);
        }
        Ok((program, queries))
    }
}

/// Parses with the default (function-free) parser.
pub fn parse_program<P: ParseValue + Clone>(src: &str) -> Result<Program<P>, ParseError> {
    ProgramParser::new().parse(src)
}

/// Parses rules plus optional `?-` query goals with the default parser.
pub fn parse_program_with_queries<P: ParseValue + Clone>(
    src: &str,
) -> Result<(Program<P>, Vec<Query>), ParseError> {
    ProgramParser::new().parse_with_queries(src)
}

/// Parses a single standalone query goal, e.g. `?- T("a", Y).`
/// (queries bind no POPS values, so this needs no value-space type).
pub fn parse_query(src: &str) -> Result<Query, ParseError> {
    let (program, mut queries) = ProgramParser::<dlo_pops::Bool>::new().parse_with_queries(src)?;
    if !program.rules.is_empty() {
        return Err(ParseError {
            msg: "expected a query goal, found rules".into(),
        });
    }
    match (queries.pop(), queries.is_empty()) {
        (Some(q), true) => Ok(q),
        _ => Err(ParseError {
            msg: "expected exactly one `?- Goal(...).`".into(),
        }),
    }
}

struct State<'a, P> {
    toks: &'a [Tok],
    pos: usize,
    vars: BTreeMap<String, Var>,
    funcs: &'a BTreeMap<String, UnaryFn<P>>,
}

impl<'a, P: ParseValue + Clone> State<'a, P> {
    fn done(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1)
    }

    fn bump(&mut self) -> Option<&Tok> {
        let t = self.toks.get(self.pos);
        self.pos += 1;
        t
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseError> {
        match self.bump() {
            Some(t) if *t == tok => Ok(()),
            got => Err(ParseError {
                msg: format!(
                    "expected `{tok}`, got {}",
                    got.map(|t| t.to_string()).unwrap_or("end of input".into())
                ),
            }),
        }
    }

    fn var(&mut self, name: &str) -> Var {
        let next = Var(self.vars.len() as u32);
        *self.vars.entry(name.to_string()).or_insert(next)
    }

    fn rule(&mut self) -> Result<(Atom, Vec<SumProduct<P>>), ParseError> {
        let head = self.atom()?;
        self.expect(Tok::Turnstile)?;
        let mut body = vec![self.sum_product()?];
        while self.peek() == Some(&Tok::Plus) {
            self.bump();
            body.push(self.sum_product()?);
        }
        self.expect(Tok::Dot)?;
        Ok((head, body))
    }

    /// The goal atom after a consumed `?-`: constants are bound
    /// positions, upper-case identifiers free ones. Key functions are
    /// rejected — a query names concrete bindings, it computes nothing.
    fn query_goal(&mut self) -> Result<Query, ParseError> {
        let atom = self.atom()?;
        self.expect(Tok::Dot)?;
        let mut args = vec![];
        for t in &atom.args {
            match t {
                Term::Const(c) => args.push(QueryArg::Bound(c.clone())),
                Term::Var(_) => args.push(QueryArg::Free),
                Term::Apply(..) => {
                    return Err(ParseError {
                        msg: format!("key functions are not allowed in queries: {t:?}"),
                    })
                }
            }
        }
        Ok(Query::new(&atom.pred, args))
    }

    fn sum_product(&mut self) -> Result<SumProduct<P>, ParseError> {
        let mut sp = SumProduct::new(vec![]);
        loop {
            match self.peek() {
                Some(Tok::Scalar(text)) => {
                    let v = P::parse_value(text).map_err(|msg| ParseError { msg })?;
                    sp.coeff = Some(match sp.coeff.take() {
                        None => v,
                        Some(_) => {
                            return Err(ParseError {
                                msg: "at most one scalar per sum-product".into(),
                            })
                        }
                    });
                    self.bump();
                }
                Some(Tok::Int(1)) => {
                    // The literal empty product.
                    self.bump();
                }
                Some(Tok::Ident(_)) => {
                    let factor = self.factor()?;
                    sp.factors.push(factor);
                }
                other => {
                    return Err(ParseError {
                        msg: format!(
                            "expected an atom, function, scalar or `1`, got {}",
                            other
                                .map(|t| t.to_string())
                                .unwrap_or("end of input".into())
                        ),
                    })
                }
            }
            if self.peek() == Some(&Tok::Star) {
                self.bump();
                continue;
            }
            break;
        }
        if self.peek() == Some(&Tok::Bar) {
            self.bump();
            sp.condition = self.formula()?;
        }
        Ok(sp)
    }

    fn factor(&mut self) -> Result<Factor<P>, ParseError> {
        let Some(Tok::Ident(name)) = self.peek().cloned() else {
            return Err(ParseError {
                msg: "expected an identifier".into(),
            });
        };
        if let Some(func) = self.funcs.get(&name).cloned() {
            // FUNC ( Atom ) — function application around an atom.
            self.bump();
            self.expect(Tok::LParen)?;
            let atom = self.atom()?;
            self.expect(Tok::RParen)?;
            return Ok(Factor {
                atom,
                func: Some(func),
            });
        }
        let atom = self.atom()?;
        Ok(Factor { atom, func: None })
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let Some(Tok::Ident(pred)) = self.bump().cloned() else {
            return Err(ParseError {
                msg: "expected a predicate name".into(),
            });
        };
        self.expect(Tok::LParen)?;
        let mut args = vec![];
        if self.peek() != Some(&Tok::RParen) {
            args.push(self.term()?);
            while self.peek() == Some(&Tok::Comma) {
                self.bump();
                args.push(self.term()?);
            }
        }
        self.expect(Tok::RParen)?;
        Ok(Atom::new(&pred, args))
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        let base = match self.bump().cloned() {
            Some(Tok::Int(i)) => Term::Const(Constant::Int(i)),
            Some(Tok::Str(s)) => Term::Const(Constant::str(&s)),
            Some(Tok::Ident(name)) => {
                if name.chars().next().is_some_and(|c| c.is_uppercase()) {
                    Term::Var(self.var(&name))
                } else {
                    Term::Const(Constant::str(&name))
                }
            }
            Some(Tok::Minus) => {
                // Negative integer constant.
                match self.bump().cloned() {
                    Some(Tok::Int(i)) => Term::Const(Constant::Int(-i)),
                    other => {
                        return Err(ParseError {
                            msg: format!(
                                "expected integer after `-`, got {}",
                                other.map(|t| t.to_string()).unwrap_or("end".into())
                            ),
                        })
                    }
                }
            }
            other => {
                return Err(ParseError {
                    msg: format!(
                        "expected a term, got {}",
                        other
                            .map(|t| t.to_string())
                            .unwrap_or("end of input".into())
                    ),
                })
            }
        };
        // Optional key-function suffix `+k` / `-k` on variables.
        match (self.peek(), &base) {
            (Some(Tok::Plus), Term::Var(_)) => {
                if let Some(Tok::Int(k)) = self.peek2().cloned() {
                    self.bump();
                    self.bump();
                    return Ok(Term::Apply(KeyFn::AddInt(k), Box::new(base)));
                }
                Ok(base)
            }
            (Some(Tok::Minus), Term::Var(_)) => {
                if let Some(Tok::Int(k)) = self.peek2().cloned() {
                    self.bump();
                    self.bump();
                    return Ok(Term::Apply(KeyFn::AddInt(-k), Box::new(base)));
                }
                Ok(base)
            }
            _ => Ok(base),
        }
    }

    fn formula(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.formula_conj()?;
        while self.peek() == Some(&Tok::OrOr) {
            self.bump();
            let rhs = self.formula_conj()?;
            lhs = Formula::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn formula_conj(&mut self) -> Result<Formula, ParseError> {
        let mut lhs = self.formula_unit()?;
        while self.peek() == Some(&Tok::AndAnd) {
            self.bump();
            let rhs = self.formula_unit()?;
            lhs = Formula::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn formula_unit(&mut self) -> Result<Formula, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Bang) => {
                self.bump();
                Ok(Formula::Not(Box::new(self.formula_unit()?)))
            }
            Some(Tok::LParen) => {
                self.bump();
                let f = self.formula()?;
                self.expect(Tok::RParen)?;
                Ok(f)
            }
            Some(Tok::Ident(name)) => {
                if name == "true" {
                    self.bump();
                    return Ok(Formula::True);
                }
                if name == "false" {
                    self.bump();
                    return Ok(Formula::False);
                }
                // Predicate atom or a comparison starting with a term.
                if self.peek2() == Some(&Tok::LParen)
                    && name.chars().next().is_some_and(|c| c.is_uppercase())
                    && !self.vars.contains_key(&name)
                {
                    let atom = self.atom()?;
                    return Ok(Formula::BoolAtom(atom));
                }
                self.comparison()
            }
            _ => self.comparison(),
        }
    }

    fn comparison(&mut self) -> Result<Formula, ParseError> {
        let lhs = self.term()?;
        let op = match self.bump() {
            Some(Tok::Eq) => CmpOp::Eq,
            Some(Tok::Ne) => CmpOp::Ne,
            Some(Tok::Lt) => CmpOp::Lt,
            Some(Tok::Le) => CmpOp::Le,
            Some(Tok::Gt) => CmpOp::Gt,
            Some(Tok::Ge) => CmpOp::Ge,
            other => {
                return Err(ParseError {
                    msg: format!(
                        "expected a comparison operator, got {}",
                        other
                            .map(|t| t.to_string())
                            .unwrap_or("end of input".into())
                    ),
                })
            }
        };
        let rhs = self.term()?;
        Ok(Formula::Cmp(lhs, op, rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::naive::naive_eval;
    use crate::examples_lib as ex;
    use crate::relation::BoolDatabase;
    use dlo_pops::{Three, Trop};

    #[test]
    fn parse_sssp_matches_builder() {
        let src = "
            % Example 4.1: SSSP from a.
            L(X) :- $0 | X = a.
            L(X) :- L(Z) * E(Z, X).
        ";
        let parsed: Program<Trop> = parse_program(src).unwrap();
        let (_, edb) = ex::sssp_trop("a");
        let from_text = naive_eval(&parsed, &edb, &BoolDatabase::new(), 100).unwrap();
        let (builder, edb2) = ex::sssp_trop("a");
        let from_builder = naive_eval(&builder, &edb2, &BoolDatabase::new(), 100).unwrap();
        assert_eq!(from_text, from_builder);
    }

    #[test]
    fn parse_apsp() {
        let src = "T(X, Y) :- E(X, Y) + T(X, Z) * E(Z, Y).";
        let p: Program<Trop> = parse_program(src).unwrap();
        assert_eq!(p.rules.len(), 1);
        assert_eq!(p.rules[0].body.len(), 2);
        assert!(p.is_linear());
    }

    #[test]
    fn parse_value_function() {
        let notf = UnaryFn::new("not", |x: &Three| x.not());
        let parser = ProgramParser::<Three>::new().with_func(notf);
        let p = parser.parse("Win(X) :- not(Win(Y)) | E(X, Y).").unwrap();
        let f = &p.rules[0].body[0].factors[0];
        assert!(f.func.is_some());
        assert_eq!(f.atom.pred, "Win");
    }

    #[test]
    fn parse_key_functions_and_comparisons() {
        let src = "W(I) :- V(0) | I = 0.\nW(I) :- W(I - 1) * V(I) | I != 0 && I < 100.";
        let p: Program<dlo_pops::LiftedReal> = parse_program(src).unwrap();
        assert_eq!(p.rules.len(), 2);
        let dbg = format!("{:?}", p.rules[1].body[0].factors[0].atom);
        assert!(dbg.contains("-1"), "key function parsed: {dbg}");
    }

    #[test]
    fn parse_scalars_and_unit() {
        let src = "X(u) :- $1.\nX(u) :- $2 * X(u).";
        let p: Program<dlo_pops::Nat> = parse_program(src).unwrap();
        assert_eq!(p.rules[0].body[0].coeff, Some(dlo_pops::Nat(1)));
        assert_eq!(p.rules[1].body[0].coeff, Some(dlo_pops::Nat(2)));
        let src2 = "L(X) :- 1 | X = a.";
        let p2: Program<dlo_pops::Bool> = parse_program(src2).unwrap();
        assert!(p2.rules[0].body[0].factors.is_empty());
    }

    #[test]
    fn variables_scoped_per_rule() {
        let src = "A(X) :- B(X).\nC(X) :- D(X).";
        let p: Program<Trop> = parse_program(src).unwrap();
        // Both rules use Var(0) for their X.
        assert_eq!(p.rules[0].head.args, p.rules[1].head.args);
    }

    #[test]
    fn queries_parse_alongside_rules() {
        let src = "
            L(X) :- $0 | X = a.
            L(X) :- L(Z) * E(Z, X).
            ?- L(d).
        ";
        let (p, queries): (Program<Trop>, _) = parse_program_with_queries(src).unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(queries.len(), 1);
        assert_eq!(queries[0].pred, "L");
        assert_eq!(queries[0].adornment(), vec![true]);

        let q = parse_query("?- T(\"a\", Y).").unwrap();
        assert_eq!(q.pred, "T");
        assert_eq!(q.adornment(), vec![true, false]);
        assert_eq!(q.bound_consts(), vec![&crate::value::Constant::str("a")]);
        // Integers and negative integers are bound constants.
        let q = parse_query("?- H(0, -3, I).").unwrap();
        assert_eq!(q.adornment(), vec![true, true, false]);
    }

    #[test]
    fn query_error_paths() {
        // Key functions make no sense in a goal.
        assert!(parse_query("?- T(X + 1).").is_err());
        // parse() rejects query goals outright.
        assert!(parse_program::<Trop>("?- T(a).").is_err());
        // Rules mixed into parse_query are rejected.
        assert!(parse_query("T(X) :- E(X).\n?- T(a).").is_err());
        assert!(parse_query("?- T(a). ?- T(b).").is_err());
    }

    #[test]
    fn error_messages() {
        assert!(parse_program::<Trop>("L(X) :- .").is_err());
        assert!(parse_program::<Trop>("L(X) :- E(X, Y)").is_err()); // missing dot
        assert!(parse_program::<Trop>("L(X) :- $oops.").is_err()); // bad scalar
        let e = parse_program::<Trop>(":-").unwrap_err();
        assert!(e.to_string().contains("parse error"));
    }

    #[test]
    fn disjunction_and_negation_in_conditions() {
        let src = "A(X) :- B(X) | (E(X, X) || !F(X)) && X != a.";
        let p: Program<Trop> = parse_program(src).unwrap();
        let cond = format!("{:?}", p.rules[0].body[0].condition);
        assert!(cond.contains('∨'));
        assert!(cond.contains('¬'));
        assert!(cond.contains('≠'));
    }
}
