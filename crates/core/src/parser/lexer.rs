//! Lexer for the datalog° surface syntax.
//!
//! Token conventions follow datalog tradition adapted to the paper:
//! identifiers starting upper-case are key *variables* unless immediately
//! applied to arguments (then they are predicate names); lower-case
//! identifiers are symbolic constants; `$…` introduces a POPS scalar
//! literal; `%` starts a line comment.

use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// An identifier (predicate, variable, constant or function name).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A quoted string literal.
    Str(String),
    /// A POPS scalar literal: the raw text after `$` up to a delimiter.
    Scalar(String),
    /// `:-`
    Turnstile,
    /// `?-` (a query goal)
    QueryMark,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `|`
    Bar,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Scalar(s) => write!(f, "${s}"),
            Tok::Turnstile => write!(f, ":-"),
            Tok::QueryMark => write!(f, "?-"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Comma => write!(f, ","),
            Tok::Dot => write!(f, "."),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Bar => write!(f, "|"),
            Tok::Bang => write!(f, "!"),
            Tok::AndAnd => write!(f, "&&"),
            Tok::OrOr => write!(f, "||"),
            Tok::Eq => write!(f, "="),
            Tok::Ne => write!(f, "!="),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
        }
    }
}

/// A lexing error with position information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the error.
    pub at: usize,
    /// Human-readable message.
    pub msg: String,
}

/// Tokenizes a program source.
pub fn lex(src: &str) -> Result<Vec<Tok>, LexError> {
    let bytes = src.as_bytes();
    let mut toks = vec![];
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '%' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '.' => {
                toks.push(Tok::Dot);
                i += 1;
            }
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    toks.push(Tok::OrOr);
                    i += 2;
                } else {
                    toks.push(Tok::Bar);
                    i += 1;
                }
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    toks.push(Tok::AndAnd);
                    i += 2;
                } else {
                    return Err(LexError {
                        at: i,
                        msg: "expected `&&`".into(),
                    });
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Ne);
                    i += 2;
                } else {
                    toks.push(Tok::Bang);
                    i += 1;
                }
            }
            '=' => {
                toks.push(Tok::Eq);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Le);
                    i += 2;
                } else {
                    toks.push(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(Tok::Ge);
                    i += 2;
                } else {
                    toks.push(Tok::Gt);
                    i += 1;
                }
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    toks.push(Tok::Turnstile);
                    i += 2;
                } else {
                    return Err(LexError {
                        at: i,
                        msg: "expected `:-`".into(),
                    });
                }
            }
            '?' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    toks.push(Tok::QueryMark);
                    i += 2;
                } else {
                    return Err(LexError {
                        at: i,
                        msg: "expected `?-`".into(),
                    });
                }
            }
            '-' => {
                toks.push(Tok::Minus);
                i += 1;
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j == bytes.len() {
                    return Err(LexError {
                        at: i,
                        msg: "unterminated string literal".into(),
                    });
                }
                toks.push(Tok::Str(src[start..j].to_string()));
                i = j + 1;
            }
            '$' => {
                // Scalar literal: up to whitespace or a delimiter that
                // cannot occur inside one (we allow '.' inside for floats,
                // so the rule terminator must be preceded by whitespace or
                // the scalar must not end with '.').
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_alphanumeric() || d == '.' || d == '-' || d == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                // A trailing '.' is the rule terminator, not scalar text.
                let mut end = j;
                if end > start && bytes[end - 1] == b'.' {
                    end -= 1;
                }
                if end == start {
                    return Err(LexError {
                        at: i,
                        msg: "empty scalar literal after `$`".into(),
                    });
                }
                toks.push(Tok::Scalar(src[start..end].to_string()));
                i = end;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    j += 1;
                }
                let text = &src[start..j];
                let v: i64 = text.parse().map_err(|_| LexError {
                    at: start,
                    msg: format!("invalid integer `{text}`"),
                })?;
                toks.push(Tok::Int(v));
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_alphanumeric() || d == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(src[start..j].to_string()));
                i = j;
            }
            other => {
                return Err(LexError {
                    at: i,
                    msg: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_a_rule() {
        let toks = lex("T(X, Y) :- E(X, Y) + T(X, Z) * E(Z, Y).").unwrap();
        assert_eq!(toks[0], Tok::Ident("T".into()));
        assert_eq!(toks[1], Tok::LParen);
        assert!(toks.contains(&Tok::Turnstile));
        assert!(toks.contains(&Tok::Plus));
        assert!(toks.contains(&Tok::Star));
        assert_eq!(*toks.last().unwrap(), Tok::Dot);
    }

    #[test]
    fn comments_and_whitespace() {
        let toks = lex("% a comment\n  E(a, b). % trailing\n").unwrap();
        assert_eq!(toks.len(), 7);
    }

    #[test]
    fn comparison_operators() {
        let toks = lex("X <= 10 && Y != Z || !W(a)").unwrap();
        assert!(toks.contains(&Tok::Le));
        assert!(toks.contains(&Tok::AndAnd));
        assert!(toks.contains(&Tok::Ne));
        assert!(toks.contains(&Tok::OrOr));
        assert!(toks.contains(&Tok::Bang));
    }

    #[test]
    fn scalar_literals() {
        let toks = lex("$3.5 $inf $2.").unwrap();
        assert_eq!(toks[0], Tok::Scalar("3.5".into()));
        assert_eq!(toks[1], Tok::Scalar("inf".into()));
        // Trailing dot is the terminator:
        assert_eq!(toks[2], Tok::Scalar("2".into()));
        assert_eq!(toks[3], Tok::Dot);
    }

    #[test]
    fn string_literals() {
        let toks = lex("E(\"hello world\", b)").unwrap();
        assert_eq!(toks[2], Tok::Str("hello world".into()));
    }

    #[test]
    fn query_mark() {
        let toks = lex("?- T(\"a\", Y).").unwrap();
        assert_eq!(toks[0], Tok::QueryMark);
        assert!(lex("? T(a)").is_err());
    }

    #[test]
    fn errors_carry_positions() {
        let err = lex("E(a) :~ b").unwrap_err();
        assert_eq!(err.at, 5);
        assert!(lex("\"unterminated").is_err());
        assert!(lex("a & b").is_err());
    }
}
