//! Key-space values (Sec. 2.3): constants, tuples, and ground atoms.
//!
//! The paper distinguishes the *key space* `D` (an infinite domain of
//! constants) from the *value space* (the POPS). We support integer and
//! string constants; tuples are fixed-arity vectors of constants.

use std::fmt;
use std::sync::Arc;

/// A constant of the key space `D`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Constant {
    /// An integer key.
    Int(i64),
    /// A symbolic (string) key.
    Str(Arc<str>),
}

impl Constant {
    /// A string constant.
    pub fn str(s: &str) -> Constant {
        Constant::Str(Arc::from(s))
    }
    /// An integer constant.
    pub fn int(i: i64) -> Constant {
        Constant::Int(i)
    }
    /// The integer value, if this is an integer constant.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Constant::Int(i) => Some(*i),
            Constant::Str(_) => None,
        }
    }
    /// The string value, if this is a string constant.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Constant::Int(_) => None,
            Constant::Str(s) => Some(s),
        }
    }
}

impl fmt::Debug for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Int(i) => write!(f, "{i}"),
            Constant::Str(s) => write!(f, "{s}"),
        }
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<i64> for Constant {
    fn from(i: i64) -> Self {
        Constant::Int(i)
    }
}
impl From<&str> for Constant {
    fn from(s: &str) -> Self {
        Constant::str(s)
    }
}

/// A ground tuple over the key space.
pub type Tuple = Vec<Constant>;

/// Renders a tuple as `(a, b, c)`.
pub fn fmt_tuple(t: &Tuple) -> String {
    let inner: Vec<String> = t.iter().map(|c| c.to_string()).collect();
    format!("({})", inner.join(", "))
}

/// Builds a tuple from anything convertible to constants.
#[macro_export]
macro_rules! tup {
    ($($x:expr),* $(,)?) => {
        vec![$($crate::value::Constant::from($x)),*]
    };
}

/// A ground atom `R(t)`: a relation name applied to a tuple (Sec. 2.3, the
/// Herbrand base `GA(σ, D)`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroundAtom {
    /// The relation name.
    pub pred: Arc<str>,
    /// The key tuple.
    pub tuple: Tuple,
}

impl GroundAtom {
    /// Constructs a ground atom.
    pub fn new(pred: &str, tuple: Tuple) -> Self {
        GroundAtom {
            pred: Arc::from(pred),
            tuple,
        }
    }
}

impl fmt::Debug for GroundAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.pred, fmt_tuple(&self.tuple))
    }
}

impl fmt::Display for GroundAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.pred, fmt_tuple(&self.tuple))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_kinds() {
        assert_eq!(Constant::int(3).as_int(), Some(3));
        assert_eq!(Constant::str("a").as_str(), Some("a"));
        assert_eq!(Constant::int(3).as_str(), None);
    }

    #[test]
    fn tuple_macro() {
        let t: Tuple = tup!["a", 3, "b"];
        assert_eq!(t[0], Constant::str("a"));
        assert_eq!(t[1], Constant::int(3));
        assert_eq!(fmt_tuple(&t), "(a, 3, b)");
    }

    #[test]
    fn ground_atom_display() {
        let g = GroundAtom::new("E", tup!["a", "b"]);
        assert_eq!(format!("{g}"), "E(a, b)");
    }

    #[test]
    fn ordering_is_deterministic() {
        let mut v = vec![Constant::str("b"), Constant::int(10), Constant::str("a")];
        v.sort();
        assert_eq!(
            v,
            vec![Constant::int(10), Constant::str("a"), Constant::str("b")]
        );
    }
}
