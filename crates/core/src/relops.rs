//! Relational combinators on `P`-relations.
//!
//! The fixpoint engine evaluates grounded polynomials and never needs
//! these, but a library user manipulating `P`-relations directly does:
//! value maps, unions (`⊕`-merge), natural joins (`⊗`-combine on shared
//! key prefixes), projections (`⊕`-aggregate the dropped columns) and
//! selections — the `K`-relation algebra of Green et al. \[38\] that
//! datalog° generalizes.

use crate::relation::Relation;
use crate::value::Tuple;
use dlo_pops::Pops;

/// Maps values pointwise (`f` must send `⊥` to `⊥` to preserve supports;
/// results equal to `⊥` are dropped).
pub fn map_values<P: Pops, Q: Pops>(rel: &Relation<P>, f: impl Fn(&P) -> Q) -> Relation<Q> {
    Relation::from_pairs(rel.arity(), rel.support().map(|(t, v)| (t.clone(), f(v))))
}

/// `⊕`-union of two relations of equal arity.
pub fn union<P: Pops>(a: &Relation<P>, b: &Relation<P>) -> Relation<P> {
    assert_eq!(a.arity(), b.arity(), "union arity mismatch");
    let mut out = a.clone();
    for (t, v) in b.support() {
        out.merge(t.clone(), v.clone());
    }
    out
}

/// Projection onto the key columns `cols` (in the given order); tuples
/// collapsing together are `⊕`-aggregated — the `⨁`-semantics of bound
/// variables (Definition 2.5).
pub fn project<P: Pops>(rel: &Relation<P>, cols: &[usize]) -> Relation<P> {
    Relation::from_pairs(
        cols.len(),
        rel.support().map(|(t, v)| {
            let key: Tuple = cols.iter().map(|&c| t[c].clone()).collect();
            (key, v.clone())
        }),
    )
}

/// Selection by a key predicate.
pub fn select<P: Pops>(rel: &Relation<P>, keep: impl Fn(&Tuple) -> bool) -> Relation<P> {
    Relation::from_pairs(
        rel.arity(),
        rel.support()
            .filter(|(t, _)| keep(t))
            .map(|(t, v)| (t.clone(), v.clone())),
    )
}

/// Equi-join on column positions: combines tuples with
/// `a\[acol\] = b\[bcol\]`, concatenating keys (b's join column dropped) and
/// `⊗`-multiplying values — the `K`-relation join.
pub fn join_on<P: Pops>(a: &Relation<P>, b: &Relation<P>, acol: usize, bcol: usize) -> Relation<P> {
    let arity = a.arity() + b.arity() - 1;
    let mut out = Relation::new(arity);
    // Hash-join on the shared key.
    let mut index: std::collections::BTreeMap<&crate::value::Constant, Vec<(&Tuple, &P)>> =
        std::collections::BTreeMap::new();
    for (t, v) in b.support() {
        index.entry(&t[bcol]).or_default().push((t, v));
    }
    for (ta, va) in a.support() {
        if let Some(matches) = index.get(&ta[acol]) {
            for (tb, vb) in matches {
                let mut key: Tuple = ta.clone();
                key.extend(
                    tb.iter()
                        .enumerate()
                        .filter(|(i, _)| *i != bcol)
                        .map(|(_, c)| c.clone()),
                );
                out.merge(key, va.mul(vb));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tup;
    use dlo_pops::{Nat, Trop};

    fn edges() -> Relation<Trop> {
        Relation::from_pairs(
            2,
            vec![
                (tup!["a", "b"], Trop::finite(1.0)),
                (tup!["b", "c"], Trop::finite(3.0)),
                (tup!["a", "c"], Trop::finite(5.0)),
            ],
        )
    }

    #[test]
    fn map_values_converts_spaces() {
        let r: Relation<Nat> = map_values(&edges(), |v| Nat(v.get() as u64));
        assert_eq!(r.get(&tup!["b", "c"]), Nat(3));
    }

    #[test]
    fn union_merges_with_add() {
        let a = edges();
        let b = Relation::from_pairs(2, vec![(tup!["a", "b"], Trop::finite(0.5))]);
        let u = union(&a, &b);
        assert_eq!(u.get(&tup!["a", "b"]), Trop::finite(0.5)); // min
        assert_eq!(u.get(&tup!["b", "c"]), Trop::finite(3.0));
    }

    #[test]
    fn project_aggregates_dropped_columns() {
        // Project on source: min over outgoing edges.
        let p = project(&edges(), &[0]);
        assert_eq!(p.get(&tup!["a"]), Trop::finite(1.0)); // min(1, 5)
        assert_eq!(p.get(&tup!["b"]), Trop::finite(3.0));
        assert_eq!(p.arity(), 1);
    }

    #[test]
    fn select_filters_keys() {
        let s = select(&edges(), |t| t[0] == "a".into());
        assert_eq!(s.support_size(), 2);
    }

    #[test]
    fn join_is_min_plus_composition() {
        // E ⋈ E on middle column: two-hop paths with summed weights.
        let j = join_on(&edges(), &edges(), 1, 0);
        // (a,b)·(b,c) → (a,b,c) with 1+3.
        assert_eq!(j.get(&tup!["a", "b", "c"]), Trop::finite(4.0));
        assert_eq!(j.arity(), 3);
        // Project to endpoints: shortest two-hop distance.
        let two_hop = project(&j, &[0, 2]);
        assert_eq!(two_hop.get(&tup!["a", "c"]), Trop::finite(4.0));
    }

    #[test]
    fn join_aggregates_parallel_matches() {
        let a = Relation::from_pairs(
            2,
            vec![
                (tup!["x", "m1"], Trop::finite(1.0)),
                (tup!["x", "m2"], Trop::finite(2.0)),
            ],
        );
        let b = Relation::from_pairs(
            2,
            vec![
                (tup!["m1", "y"], Trop::finite(10.0)),
                (tup!["m2", "y"], Trop::finite(5.0)),
            ],
        );
        let via = project(&join_on(&a, &b, 1, 0), &[0, 2]);
        assert_eq!(via.get(&tup!["x", "y"]), Trop::finite(7.0)); // min(11, 7)
    }
}
