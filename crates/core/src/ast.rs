//! The datalog° abstract syntax (Sec. 2.4 and Sec. 4).
//!
//! A program is a set of rules, one per IDB predicate (rules with the same
//! head are merged into a single sum-sum-product, as the paper prefers).
//! A rule body is a `⊕`-sum of *sum-products* (Definition 2.5/2.7): each
//! sum-product multiplies POPS atoms (and an optional scalar coefficient)
//! under a Boolean *conditional* `Φ` over the Boolean EDBs and key
//! comparisons, with the non-head variables implicitly `⊕`-aggregated.
//!
//! Extensions from Sec. 4.5 are included: case statements (desugared),
//! interpreted functions over the key space ([`KeyFn`]) and monotone
//! interpreted functions over the value space ([`UnaryFn`], e.g. `not` on
//! `THREE`).

use crate::formula::Formula;
use crate::value::Constant;
use std::fmt;
use std::sync::Arc;

/// A key-space variable (upper-case `X, Y, Z` in the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// An interpreted function over the key space (Sec. 4.5, e.g. `date + 1`).
///
/// Key functions are evaluated during grounding on already-bound arguments;
/// they do not extend the active domain (results outside `ADom` simply
/// produce ground atoms over the extended constant set of the rule).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum KeyFn {
    /// Integer offset: `x ↦ x + delta`.
    AddInt(i64),
}

impl KeyFn {
    /// Applies the function to a constant; `None` on a type mismatch.
    pub fn apply(&self, c: &Constant) -> Option<Constant> {
        match self {
            KeyFn::AddInt(d) => c.as_int().map(|i| Constant::Int(i + d)),
        }
    }
}

/// A term: a variable, a constant, or an interpreted key function applied
/// to a term.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A key variable.
    Var(Var),
    /// A key constant.
    Const(Constant),
    /// `f(t)` for an interpreted key function `f`.
    Apply(KeyFn, Box<Term>),
}

impl Term {
    /// Shorthand for a variable term.
    pub fn v(ix: u32) -> Term {
        Term::Var(Var(ix))
    }
    /// Shorthand for a constant term.
    pub fn c(c: impl Into<Constant>) -> Term {
        Term::Const(c.into())
    }
    /// Collects the variables of this term into `out`.
    pub fn vars(&self, out: &mut Vec<Var>) {
        match self {
            Term::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Term::Const(_) => {}
            Term::Apply(_, t) => t.vars(out),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v:?}"),
            Term::Const(c) => write!(f, "{c:?}"),
            Term::Apply(KeyFn::AddInt(d), t) if *d >= 0 => write!(f, "{t:?}+{d}"),
            Term::Apply(KeyFn::AddInt(d), t) => write!(f, "{t:?}{d}"),
        }
    }
}

/// An atom `R(t₁, …, t_k)` over either vocabulary.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom {
    /// Relation name.
    pub pred: String,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Constructs an atom.
    pub fn new(pred: &str, args: Vec<Term>) -> Atom {
        Atom {
            pred: pred.to_string(),
            args,
        }
    }
    /// Collects argument variables into `out` (deduplicated, in order).
    pub fn vars(&self, out: &mut Vec<Var>) {
        for a in &self.args {
            a.vars(out);
        }
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let args: Vec<String> = self.args.iter().map(|a| format!("{a:?}")).collect();
        write!(f, "{}({})", self.pred, args.join(", "))
    }
}

/// A named monotone interpreted function over the value space (Sec. 4.5
/// "multiple value spaces", Sec. 7's `not` on `THREE`).
///
/// Equality/ordering/hashing are by name: two functions with the same name
/// are considered identical (names are namespaced per program). The
/// function **must be monotone** w.r.t. the POPS order for the least
/// fixpoint semantics to apply — this is the caller's obligation, checked
/// for the built-ins in tests.
#[derive(Clone)]
pub struct UnaryFn<P> {
    /// The function's name (identity).
    pub name: Arc<str>,
    /// The implementation.
    pub f: Arc<dyn Fn(&P) -> P + Send + Sync>,
}

impl<P> UnaryFn<P> {
    /// Creates a named monotone unary function.
    pub fn new(name: &str, f: impl Fn(&P) -> P + Send + Sync + 'static) -> Self {
        UnaryFn {
            name: Arc::from(name),
            f: Arc::new(f),
        }
    }
    /// Applies the function.
    pub fn apply(&self, x: &P) -> P {
        (self.f)(x)
    }
}

impl<P> PartialEq for UnaryFn<P> {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}
impl<P> Eq for UnaryFn<P> {}
impl<P> fmt::Debug for UnaryFn<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// One multiplicand of a sum-product: a POPS atom, optionally wrapped in an
/// interpreted value function.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Factor<P> {
    /// The `σ`/`τ` atom supplying the value.
    pub atom: Atom,
    /// Optional monotone value transform (e.g. `not`).
    pub func: Option<UnaryFn<P>>,
}

impl<P> Factor<P> {
    /// A plain atom factor.
    pub fn atom(pred: &str, args: Vec<Term>) -> Self {
        Factor {
            atom: Atom::new(pred, args),
            func: None,
        }
    }
    /// An atom factor wrapped in a value function.
    pub fn wrapped(pred: &str, args: Vec<Term>, func: UnaryFn<P>) -> Self {
        Factor {
            atom: Atom::new(pred, args),
            func: Some(func),
        }
    }
}

/// A conditional sum-product (Definition 2.5): `⊕`-aggregate over the
/// bound variables of `coeff ⊗ factor₁ ⊗ … ⊗ factor_m` restricted to
/// valuations satisfying `condition`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SumProduct<P> {
    /// A scalar coefficient multiplied into the monomial (defaults to `1`,
    /// which is the identity — safe on every POPS).
    pub coeff: Option<P>,
    /// POPS multiplicands.
    pub factors: Vec<Factor<P>>,
    /// The conditional `Φ` over the Boolean vocabulary and key comparisons.
    pub condition: Formula,
}

impl<P> SumProduct<P> {
    /// A sum-product with no condition.
    pub fn new(factors: Vec<Factor<P>>) -> Self {
        SumProduct {
            coeff: None,
            factors,
            condition: Formula::True,
        }
    }
    /// Adds a condition.
    pub fn with_condition(mut self, phi: Formula) -> Self {
        self.condition = phi;
        self
    }
    /// Adds a scalar coefficient.
    pub fn with_coeff(mut self, c: P) -> Self {
        self.coeff = Some(c);
        self
    }
    /// All variables of the sum-product (factors + condition), deduplicated.
    pub fn vars(&self) -> Vec<Var> {
        let mut out = vec![];
        for f in &self.factors {
            f.atom.vars(&mut out);
        }
        self.condition.vars(&mut out);
        out
    }
}

/// A datalog° rule: `head :- sp₁ ⊕ sp₂ ⊕ …` (Definition 2.7, eq. 26).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule<P> {
    /// The head atom (an IDB).
    pub head: Atom,
    /// The sum-sum-product body.
    pub body: Vec<SumProduct<P>>,
}

/// A datalog° program (eq. 26): a set of rules. Multiple rules with the
/// same head predicate are allowed and treated as a single merged
/// sum-sum-product.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Program<P> {
    /// The rules.
    pub rules: Vec<Rule<P>>,
}

impl<P: Clone> Program<P> {
    /// An empty program.
    pub fn new() -> Self {
        Program { rules: vec![] }
    }

    /// Adds a rule.
    pub fn rule(&mut self, head: Atom, body: Vec<SumProduct<P>>) -> &mut Self {
        self.rules.push(Rule { head, body });
        self
    }

    /// The IDB predicate names (heads), deduplicated in first-seen order.
    pub fn idb_preds(&self) -> Vec<String> {
        let mut out: Vec<String> = vec![];
        for r in &self.rules {
            if !out.contains(&r.head.pred) {
                out.push(r.head.pred.clone());
            }
        }
        out
    }

    /// Whether the program is *linear*: every sum-product has at most one
    /// IDB factor (Sec. 4; linear programs get the tighter `Σ(p+1)^i`
    /// bound and the `LinearLFP` algorithm).
    pub fn is_linear(&self) -> bool {
        let idbs = self.idb_preds();
        self.rules.iter().all(|r| {
            r.body.iter().all(|sp| {
                sp.factors
                    .iter()
                    .filter(|f| idbs.contains(&f.atom.pred))
                    .count()
                    <= 1
            })
        })
    }

    /// All constants mentioned in the program (conditions, atom arguments)
    /// — part of `D₀` per Sec. 4.3.
    pub fn constants(&self) -> Vec<Constant> {
        let mut out: Vec<Constant> = vec![];
        let mut push = |c: &Constant| {
            if !out.contains(c) {
                out.push(c.clone());
            }
        };
        fn term_consts(t: &Term, push: &mut impl FnMut(&Constant)) {
            match t {
                Term::Const(c) => push(c),
                Term::Var(_) => {}
                Term::Apply(_, t) => term_consts(t, push),
            }
        }
        for r in &self.rules {
            for a in &r.head.args {
                term_consts(a, &mut push);
            }
            for sp in &r.body {
                for f in &sp.factors {
                    for a in &f.atom.args {
                        term_consts(a, &mut push);
                    }
                }
                sp.condition.constants(&mut push);
            }
        }
        out
    }
}

/// A case statement branch (Sec. 4.5): `condition : body`. The body is a
/// sum of sum-products (e.g. `W(i-1) ⊕ V(i)` in the prefix-sum example).
pub struct CaseBranch<P> {
    /// The branch guard.
    pub condition: Formula,
    /// The branch body.
    pub body: Vec<SumProduct<P>>,
}

/// Desugars `case C₁ : E₁; C₂ : E₂; …; [else E_n]` into a sum-sum-product
/// (Sec. 4.5): `{E₁ | C₁} ⊕ {E₂ | ¬C₁ ∧ C₂} ⊕ … ⊕ {E_n | ¬C₁ ∧ ¬C₂ ∧ …}`,
/// guarding every sum-product of a branch with the accumulated negations.
pub fn desugar_case<P: Clone>(
    branches: Vec<CaseBranch<P>>,
    else_body: Vec<SumProduct<P>>,
) -> Vec<SumProduct<P>> {
    let mut out = vec![];
    let mut negations = Formula::True;
    for br in branches {
        let guard = negations.clone().and(br.condition.clone());
        for mut sp in br.body {
            sp.condition = sp.condition.clone().and(guard.clone());
            out.push(sp);
        }
        negations = negations.and(Formula::Not(Box::new(br.condition)));
    }
    for mut sp in else_body {
        sp.condition = sp.condition.clone().and(negations.clone());
        out.push(sp);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlo_pops::Trop;

    #[test]
    fn term_vars_dedup() {
        let t = Term::Apply(KeyFn::AddInt(1), Box::new(Term::v(3)));
        let mut vs = vec![Var(3)];
        t.vars(&mut vs);
        assert_eq!(vs, vec![Var(3)]);
    }

    #[test]
    fn keyfn_apply() {
        assert_eq!(
            KeyFn::AddInt(-1).apply(&Constant::int(5)),
            Some(Constant::int(4))
        );
        assert_eq!(KeyFn::AddInt(1).apply(&Constant::str("a")), None);
    }

    #[test]
    fn linearity_detection() {
        // T(x,y) :- E(x,y) + sum_z T(x,z)*E(z,y): linear.
        let mut p = Program::<Trop>::new();
        p.rule(
            Atom::new("T", vec![Term::v(0), Term::v(1)]),
            vec![
                SumProduct::new(vec![Factor::atom("E", vec![Term::v(0), Term::v(1)])]),
                SumProduct::new(vec![
                    Factor::atom("T", vec![Term::v(0), Term::v(2)]),
                    Factor::atom("E", vec![Term::v(2), Term::v(1)]),
                ]),
            ],
        );
        assert!(p.is_linear());
        // Quadratic TC: T(x,z)*T(z,y): not linear.
        let mut q = Program::<Trop>::new();
        q.rule(
            Atom::new("T", vec![Term::v(0), Term::v(1)]),
            vec![SumProduct::new(vec![
                Factor::atom("T", vec![Term::v(0), Term::v(2)]),
                Factor::atom("T", vec![Term::v(2), Term::v(1)]),
            ])],
        );
        assert!(!q.is_linear());
    }

    #[test]
    fn case_desugaring_adds_negated_guards() {
        use crate::formula::{CmpOp, Formula};
        let c1 = Formula::cmp(Term::v(0), CmpOp::Eq, Term::c(0));
        let c2 = Formula::cmp(Term::v(0), CmpOp::Lt, Term::c(100));
        let b1 = SumProduct::<Trop>::new(vec![Factor::atom("V", vec![Term::c(0)])]);
        let b2 = SumProduct::<Trop>::new(vec![Factor::atom("W", vec![Term::v(0)])]);
        let sps = desugar_case(
            vec![
                CaseBranch {
                    condition: c1.clone(),
                    body: vec![b1],
                },
                CaseBranch {
                    condition: c2,
                    body: vec![b2],
                },
            ],
            vec![],
        );
        assert_eq!(sps.len(), 2);
        // Second branch carries ¬C₁.
        let dbg = format!("{:?}", sps[1].condition);
        assert!(dbg.contains('¬') || dbg.contains("Not"), "got {dbg}");
    }

    #[test]
    fn program_constants_collected() {
        let mut p = Program::<Trop>::new();
        p.rule(
            Atom::new("L", vec![Term::v(0)]),
            vec![SumProduct::new(vec![Factor::atom(
                "E",
                vec![Term::c("a"), Term::v(0)],
            )])],
        );
        assert_eq!(p.constants(), vec![Constant::str("a")]);
    }
}
