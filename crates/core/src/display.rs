//! Pretty-printing datalog° programs back to the surface syntax.
//!
//! `render_program` inverts [`crate::parser`]: for POPS implementing
//! [`PrintValue`], `parse(render(p)) == p` up to variable renaming —
//! property-tested in the round-trip suite.

use crate::ast::{Atom, KeyFn, Program, Rule, SumProduct, Term};
use crate::formula::{CmpOp, Formula};
use crate::value::Constant;
use std::fmt::Write;

/// POPS whose scalar values have a textual form accepted by
/// [`crate::parser::ParseValue`].
pub trait PrintValue {
    /// Renders the scalar as it would appear after `$` in program text.
    fn print_value(&self) -> String;
}

impl PrintValue for dlo_pops::Trop {
    fn print_value(&self) -> String {
        if self.is_finite() {
            format!("{}", self.get())
        } else {
            "inf".into()
        }
    }
}

impl PrintValue for dlo_pops::Bool {
    fn print_value(&self) -> String {
        if self.0 { "true" } else { "false" }.into()
    }
}

impl PrintValue for dlo_pops::Nat {
    fn print_value(&self) -> String {
        self.0.to_string()
    }
}

impl PrintValue for dlo_pops::MinNat {
    fn print_value(&self) -> String {
        if self.is_finite() {
            self.0.to_string()
        } else {
            "inf".into()
        }
    }
}

impl PrintValue for dlo_pops::LiftedReal {
    fn print_value(&self) -> String {
        match self {
            dlo_pops::Lifted::Bot => "bot".into(),
            dlo_pops::Lifted::Val(r) => format!("{}", r.get()),
        }
    }
}

fn render_const(c: &Constant) -> String {
    match c {
        Constant::Int(i) => i.to_string(),
        Constant::Str(s) => {
            let plain = s.chars().next().is_some_and(|c| c.is_lowercase())
                && s.chars().all(|c| c.is_alphanumeric() || c == '_');
            if plain {
                s.to_string()
            } else {
                format!("{s:?}")
            }
        }
    }
}

fn render_term(t: &Term) -> String {
    match t {
        Term::Var(v) => format!("V{}", v.0),
        Term::Const(c) => render_const(c),
        Term::Apply(KeyFn::AddInt(d), inner) if *d >= 0 => {
            format!("{} + {d}", render_term(inner))
        }
        Term::Apply(KeyFn::AddInt(d), inner) => {
            format!("{} - {}", render_term(inner), -d)
        }
    }
}

fn render_atom(a: &Atom) -> String {
    let args: Vec<String> = a.args.iter().map(render_term).collect();
    format!("{}({})", a.pred, args.join(", "))
}

fn render_formula(f: &Formula) -> String {
    match f {
        Formula::True => "true".into(),
        Formula::False => "false".into(),
        Formula::BoolAtom(a) => render_atom(a),
        Formula::Not(x) => format!("!({})", render_formula(x)),
        Formula::And(a, b) => format!("({} && {})", render_formula(a), render_formula(b)),
        Formula::Or(a, b) => format!("({} || {})", render_formula(a), render_formula(b)),
        Formula::Cmp(l, op, r) => {
            let op = match op {
                CmpOp::Eq => "=",
                CmpOp::Ne => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            format!("{} {op} {}", render_term(l), render_term(r))
        }
    }
}

fn render_sum_product<P: PrintValue>(sp: &SumProduct<P>) -> String {
    let mut parts: Vec<String> = vec![];
    if let Some(c) = &sp.coeff {
        parts.push(format!("${}", c.print_value()));
    }
    for f in &sp.factors {
        match &f.func {
            None => parts.push(render_atom(&f.atom)),
            Some(func) => parts.push(format!("{}({})", func.name, render_atom(&f.atom))),
        }
    }
    if parts.is_empty() {
        parts.push("1".into());
    }
    let mut out = parts.join(" * ");
    if sp.condition != Formula::True {
        let _ = write!(out, " | {}", render_formula(&sp.condition));
    }
    out
}

/// Renders a rule in the surface syntax.
pub fn render_rule<P: PrintValue>(rule: &Rule<P>) -> String {
    let body: Vec<String> = rule.body.iter().map(render_sum_product).collect();
    format!("{} :- {}.", render_atom(&rule.head), body.join(" + "))
}

/// Renders a whole program, one rule per line.
pub fn render_program<P: PrintValue>(program: &Program<P>) -> String {
    program
        .rules
        .iter()
        .map(render_rule)
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use dlo_pops::Trop;

    #[test]
    fn render_and_reparse_apsp() {
        let src = "T(X, Y) :- E(X, Y) + T(X, Z) * E(Z, Y).";
        let p: Program<Trop> = parse_program(src).unwrap();
        let rendered = render_program(&p);
        let p2: Program<Trop> = parse_program(&rendered).unwrap();
        assert_eq!(p, p2, "round trip changed the program:\n{rendered}");
    }

    #[test]
    fn render_scalars_conditions_functions() {
        let src = "L(X) :- $0 | X = a.\nL(X) :- L(Z) * E(Z, X) | !(B(Z)) && X != 3.";
        let p: Program<Trop> = parse_program(src).unwrap();
        let rendered = render_program(&p);
        assert!(rendered.contains("$0"));
        assert!(rendered.contains("!("));
        let p2: Program<Trop> = parse_program(&rendered).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn render_key_functions() {
        let src = "W(I) :- W(I - 1) * V(I) | I != 0.";
        let p: Program<dlo_pops::LiftedReal> = parse_program(src).unwrap();
        let rendered = render_program(&p);
        assert!(rendered.contains("I - 1") || rendered.contains("V0 - 1"));
        let p2: Program<dlo_pops::LiftedReal> = parse_program(&rendered).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn strings_needing_quotes_are_quoted() {
        let c = Constant::str("Hello World");
        assert_eq!(render_const(&c), "\"Hello World\"");
        assert_eq!(render_const(&Constant::str("abc")), "abc");
        assert_eq!(render_const(&Constant::Int(-4)), "-4");
    }
}
